#!/usr/bin/env python
"""Quickstart: federate a ResNet-20 with SPATL and compare against FedAvg.

Runs a small non-IID CIFAR-style setting in about a minute on one CPU and
prints a Table-I-style comparison: rounds to target, per-round payloads,
and total communication.

Usage::

    python examples/quickstart.py [--rounds N] [--clients N]
"""

import argparse

from repro import compare_table, config_for, run_algorithms


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--model", default="resnet20",
                        choices=["resnet20", "resnet32", "vgg11"])
    parser.add_argument("--target", type=float, default=0.6,
                        help="target average top-1 accuracy")
    args = parser.parse_args()

    cfg = config_for("tiny", model=args.model, n_clients=args.clients,
                     sample_ratio=0.7, rounds=args.rounds)
    print(f"Setting: {args.model}, {args.clients} clients, "
          f"Dirichlet(beta={cfg.beta}) non-IID split, "
          f"{cfg.local_epochs} local epochs/round\n")

    results = run_algorithms(cfg, ["fedavg", "spatl"], rounds=args.rounds)

    for name, log in results.items():
        accs = ", ".join(f"{a:.2f}" for a in log["val_acc"])
        print(f"{name:7s} accuracy/round: [{accs}]")
    print()
    print(compare_table(results, target_accuracy=args.target))
    print("\nSPATL reaches the target in fewer rounds with a smoother "
          "curve, uploading only a salient subset of encoder filters and "
          "keeping each client's predictor private. Run "
          "examples/communication_budget.py for the per-protocol byte "
          "breakdown at full model sizes.")


if __name__ == "__main__":
    main()
