#!/usr/bin/env python
"""Train the GNN+PPO salient-parameter agent and transfer it across models.

Walks the paper's agent lifecycle (§IV-B, §V-F4):

1. train a ResNet-56 on synthetic CIFAR;
2. pre-train the PPO agent on the network-pruning task (reward = accuracy
   of the selected sub-network, Eq. 7);
3. transfer the agent to a ResNet-18, fine-tuning only its MLP heads;
4. one-shot propose a selection and report FLOPs / accuracy trade-off
   against magnitude and random pruning.

Usage::

    python examples/salient_pruning_agent.py [--updates N]
"""

import argparse
import time

import numpy as np

from repro.data import SyntheticCIFAR10, train_val_split
from repro.graph import build_graph
from repro.models import build_model
from repro.pruning import prune_magnitude, prune_random
from repro.pruning.baselines import evaluate, finetune
from repro.rl import pretrain_agent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=8,
                        help="PPO policy updates per phase")
    parser.add_argument("--flops-target", type=float, default=0.75)
    args = parser.parse_args()

    ds = SyntheticCIFAR10(n_samples=2000, size=16, seed=7)
    train, val = train_val_split(ds, 0.25, seed=0)

    print("== 1. train the source model (ResNet-56, scaled) ==")
    source = build_model("resnet56", input_size=16, width_mult=0.25, seed=1)
    finetune(source, train, epochs=4, lr=0.05, seed=0)
    print(f"dense accuracy: {evaluate(source, val):.3f}")

    print("\n== 2. pre-train the agent on the pruning task ==")
    t0 = time.perf_counter()
    agent, history = pretrain_agent(source, train, val,
                                    updates=args.updates,
                                    episodes_per_update=4,
                                    flops_target=args.flops_target, seed=0)
    print("reward per update:", [round(r, 3) for r in history])
    print(f"({time.perf_counter() - t0:.1f}s; agent size "
          f"{agent.policy.memory_bytes()} bytes)")

    print("\n== 3. transfer to ResNet-18 (MLP heads only) ==")
    target = build_model("resnet18", input_size=16, width_mult=0.1, seed=2)
    finetune(target, train, epochs=4, lr=0.05, seed=0)
    acc_dense = evaluate(target, val)
    ft_history = agent.finetune(target, val, updates=args.updates,
                                episodes_per_update=4,
                                flops_target=args.flops_target)
    print("fine-tune reward per update:", [round(r, 3) for r in ft_history])

    print("\n== 4. one-shot selection vs classical pruning ==")
    t0 = time.perf_counter()
    selection, info = agent.propose(target, val,
                                    flops_target=args.flops_target)
    propose_ms = (time.perf_counter() - t0) * 1000
    graph = build_graph(target.encoder)
    selection.apply_to(target.encoder)
    acc_agent = evaluate(target, val)
    target.encoder.clear_channel_masks()
    print(f"agent    : acc {acc_dense:.3f} -> {acc_agent:.3f}, "
          f"FLOPs x{graph.flops_ratio(selection.keep):.2f} "
          f"(proposed in {propose_ms:.1f} ms)")

    for fn, label in ((prune_magnitude, "magnitude"), (prune_random, "random")):
        model = build_model("resnet18", input_size=16, width_mult=0.1, seed=2)
        model.load_state_dict(_dense_state(target))
        res = fn(model, train, val, sparsity=selection.mean_sparsity(),
                 finetune_epochs=0, seed=0)
        print(f"{label:9s}: acc {res.acc_dense:.3f} -> {res.acc_pruned:.3f}, "
              f"FLOPs x{res.flops_ratio:.2f}")


def _dense_state(model):
    return model.state_dict()


if __name__ == "__main__":
    main()
