#!/usr/bin/env python
"""Communication accounting across all five FL protocols (§V-C, Eq. 13).

Runs one round of each algorithm on the same setting and breaks per-client
traffic into uplink/downlink bytes, then extrapolates the full-size
(paper-architecture) per-round payloads through the same codec — the "Cost
Round/Client" column of Tables I and II.

Usage::

    python examples/communication_budget.py [--model resnet20|vgg11]
"""

import argparse

from repro.experiments import config_for, make_algorithm, make_setting
from repro.experiments.communication import paper_scale_mb_per_round
from repro.models import paper_model_size_mb
from repro.utils.logging import render_table

METHODS = ("fedavg", "fedprox", "fednova", "scaffold", "spatl")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet20",
                        choices=["resnet20", "resnet32", "vgg11"])
    args = parser.parse_args()

    cfg = config_for("tiny", model=args.model, n_clients=4,
                     sample_ratio=1.0, n_samples=600, local_epochs=1)

    rows = []
    spatl_ratio = None
    for method in METHODS:
        model_fn, clients = make_setting(cfg)
        algo = make_algorithm(method, cfg, model_fn, clients)
        algo.run_round(0)
        up = sum(algo.ledger.uplink[0].values()) / len(clients) / 2 ** 20
        down = sum(algo.ledger.downlink[0].values()) / len(clients) / 2 ** 20
        rows.append([method, f"{down:.3f}", f"{up:.3f}",
                     f"{down + up:.3f}"])
        if method == "fedavg":
            fedavg_total = down + up
        if method == "spatl":
            spatl_ratio = (down + up) / fedavg_total * 2.0

    print(render_table(["method", "down MB/client", "up MB/client",
                        "total MB/client"], rows,
                       title=f"Measured one-round traffic ({args.model}, "
                             f"scaled width {cfg.width_mult})"))

    base = paper_model_size_mb(args.model)
    full_rows = [[m, f"{paper_scale_mb_per_round(m, args.model, spatl_ratio):.2f}"]
                 for m in METHODS]
    print()
    print(render_table(
        ["method", "MB/round/client"], full_rows,
        title=f"Implied full-size per-round payloads "
              f"({args.model}: encoder {base:.2f} MB fp32)"))
    print("\nShape to notice: SCAFFOLD/FedNova pay ~2x FedAvg for their "
          "control state; SPATL's salient upload + server-side variate "
          "reconstruction lands between FedAvg and the 2x protocols.")


if __name__ == "__main__":
    main()
