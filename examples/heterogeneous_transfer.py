#!/usr/bin/env python
"""Knowledge transfer to heterogeneous clients (§IV-A, Eq. 1-4).

Demonstrates the two transfer paths of the paper:

- *participating* clients train encoder + private predictor jointly and
  end up with uniform per-client accuracy despite non-IID data;
- a client that *never participated* downloads the trained encoder and
  adapts only its local predictor (Eq. 4) — a few cheap epochs suffice.

Usage::

    python examples/heterogeneous_transfer.py
"""

import numpy as np

from repro.core import SPATL, StaticSaliencyPolicy, transfer_to_client
from repro.data import SyntheticCIFAR10, dirichlet_partition
from repro.fl import make_federated_clients
from repro.models import build_model


def main() -> None:
    ds = SyntheticCIFAR10(n_samples=2200, size=16, seed=11)
    # strong label skew: each client sees a very different class mix
    parts = dirichlet_partition(ds.y, 8, beta=0.2, seed=4)
    clients = make_federated_clients(ds, parts, batch_size=32, seed=0)

    histograms = [np.bincount(ds.y[p], minlength=10) for p in parts]
    print("per-client label histograms (beta=0.2 -> strongly non-IID):")
    for cid, h in enumerate(histograms):
        print(f"  client {cid}: {h.tolist()}")

    def model_fn():
        return build_model("resnet20", input_size=16, width_mult=0.25,
                           seed=1)

    # hold client 7 out of federation entirely
    participating = clients[:7]
    late_client = clients[7]

    print("\n== federated training (7 participating clients) ==")
    algo = SPATL(model_fn, participating,
                 selection_policy=StaticSaliencyPolicy(0.3),
                 lr=0.05, local_epochs=2, sample_ratio=1.0, seed=0)
    log = algo.run(rounds=8)
    print("avg accuracy per round:", [round(a, 3) for a in log["val_acc"]])
    per_client = algo.per_client_accuracy()
    print("per-client accuracy:", [round(a, 3) for a in per_client],
          f"(std {np.std(per_client):.3f})")

    print("\n== Eq. 4: late client adapts predictor only ==")
    late_model = model_fn()
    late_model.load_encoder_state(algo.global_model.encoder_state())
    acc_before, _ = late_client.evaluate(late_model)
    transfer_to_client(late_model, late_client, epochs=3, lr=0.05)
    acc_after, _ = late_client.evaluate(late_model)
    print(f"late client accuracy: {acc_before:.3f} (fresh head) -> "
          f"{acc_after:.3f} (predictor-only adaptation, encoder frozen)")
    print("\nThe shared encoder's knowledge transfers: the unseen client "
          "reaches federation-level accuracy without joining a single "
          "round or sharing a byte of its data.")


if __name__ == "__main__":
    main()
