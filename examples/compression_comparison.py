#!/usr/bin/env python
"""Compare communication-compression strategies on one non-IID setting.

Pits SPATL's *structured* salient selection against the two generic
compressors the FL literature reaches for first:

- top-k delta sparsification with error feedback (``FedTopK``);
- fp16 payload quantisation on top of plain FedAvg.

The point the paper makes implicitly: generic compression shrinks bytes
but buys no inference speedup and no heterogeneity handling; SPATL's
selection is structural (whole filters), so the same mechanism that cuts
uplink also prunes client models and cooperates with private predictors.

Usage::

    python examples/compression_comparison.py [--rounds N]
"""

import argparse

from repro.core import SPATL, StaticSaliencyPolicy
from repro.data import SyntheticCIFAR10, dirichlet_partition
from repro.fl import FedAvg, FedTopK, dequantize_state, make_federated_clients, \
    quantize_state
from repro.graph import build_graph
from repro.models import build_model
from repro.utils.logging import render_table


class FP16FedAvg(FedAvg):
    """FedAvg whose uploads cross an fp16 wire (lossy but cheap)."""

    name = "fedavg-fp16"

    def upload_payload(self, update):
        return quantize_state(update["state"])

    def aggregate(self, updates, round_idx):
        for u in updates:
            u["state"] = dequantize_state(quantize_state(u["state"]))
        super().aggregate(updates, round_idx)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=8)
    args = parser.parse_args()

    ds = SyntheticCIFAR10(n_samples=1800, size=16, seed=21)
    parts = dirichlet_partition(ds.y, 6, beta=0.5, seed=2)

    def model_fn():
        return build_model("resnet20", input_size=16, width_mult=0.25,
                           seed=3)

    contenders = [
        ("fedavg", lambda c: FedAvg(model_fn, c, lr=0.05, local_epochs=2,
                                    sample_ratio=0.7, seed=1)),
        ("fedavg-fp16", lambda c: FP16FedAvg(model_fn, c, lr=0.05,
                                             local_epochs=2,
                                             sample_ratio=0.7, seed=1)),
        ("fedtopk-25%", lambda c: FedTopK(model_fn, c, lr=0.05,
                                          local_epochs=2, sample_ratio=0.7,
                                          fraction=0.25, seed=1)),
        ("spatl", lambda c: SPATL(model_fn, c,
                                  selection_policy=StaticSaliencyPolicy(0.3),
                                  lr=0.05, local_epochs=2, sample_ratio=0.7,
                                  seed=1)),
    ]

    rows = []
    for name, make in contenders:
        clients = make_federated_clients(ds, parts, batch_size=32, seed=0)
        algo = make(clients)
        log = algo.run(rounds=args.rounds)
        flops = "-"
        if isinstance(algo, SPATL) and algo.last_selection:
            graph = build_graph(algo.global_model.encoder)
            ratios = [graph.flops_ratio(s.keep)
                      for s in algo.last_selection.values()]
            flops = f"{(1 - sum(ratios) / len(ratios)):.0%} less"
        rows.append([name, f"{log.last('val_acc'):.3f}",
                     f"{log.meta['per_round_per_client_mb']:.3f}",
                     f"{log.meta['total_gb'] * 1024:.2f}", flops])

    print(render_table(
        ["method", "final acc", "MB/round/client", "total MB",
         "client inference FLOPs"],
        rows, title=f"Compression strategies ({args.rounds} rounds, "
                    f"6 clients, Dirichlet 0.5)"))
    print("\nOnly SPATL's column on the right is non-trivial: structured "
          "selection is the one compressor that also accelerates client "
          "inference.")


if __name__ == "__main__":
    main()
