"""Unit + integration tests: FedAvg, FedProx, FedNova, SCAFFOLD semantics."""

import numpy as np
import pytest

from repro.fl import FedAvg, FedNova, FedProx, Scaffold
from repro.fl.comm import payload_nbytes


def _fresh(tiny_dataset, tiny_setting):
    from repro.fl import make_federated_clients
    model_fn, parts = tiny_setting
    clients = make_federated_clients(tiny_dataset, parts, batch_size=32,
                                     seed=5)
    return model_fn, clients


class TestFedAvg:
    def test_aggregate_is_weighted_mean(self, tiny_dataset, tiny_setting):
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        algo = FedAvg(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        u1 = {"state": {"w": np.asarray([1.0], dtype=np.float32)}, "n": 1}
        u2 = {"state": {"w": np.asarray([4.0], dtype=np.float32)}, "n": 3}
        from repro.fl.local import weighted_average_states
        avg = weighted_average_states([u1["state"], u2["state"]],
                                      [u1["n"], u2["n"]])
        np.testing.assert_allclose(avg["w"], [3.25])

    def test_single_client_roundtrip_equals_local(self, tiny_dataset,
                                                  tiny_setting):
        # With one client at full participation, one FedAvg round must equal
        # plain local training of the global model.
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        algo = FedAvg(model_fn, clients[:1], lr=0.05, local_epochs=1, seed=0)
        reference = model_fn()
        from repro.fl.local import train_local
        train_local(reference, clients[0], 0, epochs=1, lr=0.05,
                    momentum=algo.momentum)
        algo.run_round(0)
        for (n, p_ref), (_, p_glob) in zip(
                reference.named_parameters(),
                algo.global_model.named_parameters()):
            np.testing.assert_allclose(p_ref.data, p_glob.data, atol=1e-6,
                                       err_msg=n)

    def test_symmetric_cost(self, tiny_dataset, tiny_setting):
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        algo = FedAvg(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        algo.run_round(0)
        up = sum(algo.ledger.uplink[0].values())
        down = sum(algo.ledger.downlink[0].values())
        assert up == down  # full model both ways


class TestFedProx:
    def test_mu_zero_matches_fedavg(self, tiny_dataset, tiny_setting):
        model_fn, clients_a = _fresh(tiny_dataset, tiny_setting)
        _, clients_b = _fresh(tiny_dataset, tiny_setting)
        fa = FedAvg(model_fn, clients_a, lr=0.05, local_epochs=1, seed=0)
        fp = FedProx(model_fn, clients_b, lr=0.05, local_epochs=1, seed=0,
                     mu=0.0)
        fa.run_round(0)
        fp.run_round(0)
        for (n, p1), (_, p2) in zip(fa.global_model.named_parameters(),
                                    fp.global_model.named_parameters()):
            np.testing.assert_allclose(p1.data, p2.data, atol=1e-6,
                                       err_msg=n)

    def test_prox_term_restricts_drift(self, tiny_dataset, tiny_setting):
        model_fn, clients_a = _fresh(tiny_dataset, tiny_setting)
        _, clients_b = _fresh(tiny_dataset, tiny_setting)
        small = FedProx(model_fn, clients_a, lr=0.05, local_epochs=2, seed=0,
                        mu=0.0)
        large = FedProx(model_fn, clients_b, lr=0.05, local_epochs=2, seed=0,
                        mu=10.0)
        init = {n: p.data.copy()
                for n, p in small.global_model.named_parameters()}

        def drift(algo):
            return sum(float(np.abs(p.data - init[n]).sum())
                       for n, p in algo.global_model.named_parameters())

        small.run_round(0)
        large.run_round(0)
        assert drift(large) < drift(small)

    def test_negative_mu_rejected(self, tiny_dataset, tiny_setting):
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        with pytest.raises(ValueError):
            FedProx(model_fn, clients, lr=0.05, mu=-1.0)


class TestFedNova:
    def test_effective_steps_momentum_formula(self, tiny_dataset,
                                              tiny_setting):
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        algo = FedNova(model_fn, clients, lr=0.05, momentum=0.9, seed=0)
        # closed form: a = (tau - rho(1-rho^tau)/(1-rho)) / (1-rho)
        tau, rho = 5, 0.9
        expected = (tau - rho * (1 - rho ** tau) / (1 - rho)) / (1 - rho)
        assert algo._effective_steps(tau) == pytest.approx(expected)

    def test_effective_steps_no_momentum(self, tiny_dataset, tiny_setting):
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        algo = FedNova(model_fn, clients, lr=0.05, momentum=0.0, seed=0)
        assert algo._effective_steps(7) == 7.0

    def test_uplink_carries_momentum_2x(self, tiny_dataset, tiny_setting):
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        nova = FedNova(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        nova.run_round(0)
        _, clients2 = _fresh(tiny_dataset, tiny_setting)
        avg = FedAvg(model_fn, clients2, lr=0.05, local_epochs=1, seed=0)
        avg.run_round(0)
        ratio = (nova.ledger.round_bytes(0) / avg.ledger.round_bytes(0))
        assert 1.7 < ratio < 2.3  # ~2x FedAvg per round, as in Table I

    def test_improves_over_rounds(self, tiny_dataset, tiny_setting):
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        algo = FedNova(model_fn, clients, lr=0.05, local_epochs=2, seed=0)
        log = algo.run(rounds=4)
        assert log["val_acc"][-1] > log["val_acc"][0] - 0.05


class TestScaffold:
    def test_defaults_to_vanilla_sgd(self, tiny_dataset, tiny_setting):
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        algo = Scaffold(model_fn, clients, lr=0.05, seed=0)
        assert algo.momentum == 0.0

    def test_first_round_matches_fedavg_sgd(self, tiny_dataset, tiny_setting):
        # c = c_i = 0 initially, so round 0 must equal FedAvg with plain SGD.
        # SCAFFOLD averages clients *unweighted*, so use equal-size shards.
        from repro.data import iid_partition
        from repro.fl import make_federated_clients
        model_fn, _ = tiny_setting
        parts = iid_partition(tiny_dataset.y, 4, seed=0)
        clients_a = make_federated_clients(tiny_dataset, parts, seed=5)
        clients_b = make_federated_clients(tiny_dataset, parts, seed=5)
        sc = Scaffold(model_fn, clients_a, lr=0.05, local_epochs=1, seed=0)
        fa = FedAvg(model_fn, clients_b, lr=0.05, local_epochs=1, seed=0,
                    momentum=0.0)
        sc.run_round(0)
        fa.run_round(0)
        for (n, p1), (_, p2) in zip(sc.global_model.named_parameters(),
                                    fa.global_model.named_parameters()):
            np.testing.assert_allclose(p1.data, p2.data, atol=1e-5,
                                       err_msg=n)

    def test_variate_refresh_equation(self, tiny_dataset, tiny_setting):
        # After one local update: c_i+ = c_i - c + (x - y)/(K*eta)
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        algo = Scaffold(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        client = clients[0]
        x = {n: p.data.copy()
             for n, p in algo.global_model.named_parameters()}
        update = algo.local_update(client, 0)
        steps = update["steps"]
        name = next(iter(update["delta_w"]))
        expected = -(update["delta_w"][name]) / (steps * algo.lr)
        np.testing.assert_allclose(client.local_state["c_i"][name], expected,
                                   atol=1e-6)

    def test_cost_is_2x_fedavg(self, tiny_dataset, tiny_setting):
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        sc = Scaffold(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        sc.run_round(0)
        _, clients2 = _fresh(tiny_dataset, tiny_setting)
        fa = FedAvg(model_fn, clients2, lr=0.05, local_epochs=1, seed=0)
        fa.run_round(0)
        ratio = sc.ledger.round_bytes(0) / fa.ledger.round_bytes(0)
        assert 1.7 < ratio < 2.3

    def test_server_variate_moves(self, tiny_dataset, tiny_setting):
        model_fn, clients = _fresh(tiny_dataset, tiny_setting)
        algo = Scaffold(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        algo.run_round(0)
        total = sum(float(np.abs(v).sum()) for v in algo.c_global.values())
        assert total > 0.0
