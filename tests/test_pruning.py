"""Unit + property tests: saliency criteria, selection, pruning baselines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import SyntheticCIFAR10, train_val_split
from repro.models import build_model
from repro.pruning import (dense_selection, filter_saliency,
                           geometric_median_saliency, l1_saliency,
                           l2_saliency, prune_dsa, prune_fpgm,
                           prune_magnitude, prune_random, prune_sfp,
                           select_salient, selection_from_sparsity)
from repro.pruning.baselines import evaluate, finetune

R = np.random.default_rng(0)


class TestSaliency:
    def test_l1_orders_by_magnitude(self):
        w = np.zeros((3, 2, 3, 3))
        w[0] = 5.0
        w[1] = 1.0
        w[2] = 3.0
        s = l1_saliency(w)
        assert s[0] > s[2] > s[1]

    def test_l2_scale(self):
        w = np.zeros((2, 1, 1, 1))
        w[0, 0, 0, 0] = 3.0
        w[1, 0, 0, 0] = 4.0
        np.testing.assert_allclose(l2_saliency(w), [3.0, 4.0])

    def test_geometric_median_marks_outliers_salient(self):
        # 5 nearly identical filters + 1 outlier: outlier farthest from
        # the geometric median -> most salient
        w = np.ones((6, 2, 3, 3)) + R.normal(0, 0.01, size=(6, 2, 3, 3))
        w[5] = -3.0
        s = geometric_median_saliency(w)
        assert s.argmax() == 5

    def test_dispatch(self):
        w = R.normal(size=(4, 2, 3, 3))
        np.testing.assert_allclose(filter_saliency(w, "l1"), l1_saliency(w))
        with pytest.raises(KeyError, match="l1"):
            filter_saliency(w, "nope")

    @given(st.integers(2, 16))
    @settings(max_examples=15, deadline=None)
    def test_saliency_nonnegative(self, out_c):
        w = np.random.default_rng(out_c).normal(size=(out_c, 3, 3, 3))
        for crit in ("l1", "l2", "geometric_median"):
            assert (filter_saliency(w, crit) >= 0).all()


class TestSelection:
    def _enc(self):
        return build_model("resnet20", input_size=16, width_mult=0.25,
                           seed=0).encoder

    def test_keep_fraction_matches(self):
        enc = self._enc()
        sel = selection_from_sparsity(
            enc, {n: 0.5 for n in enc.prunable_layers()})
        for name, keep in sel.keep.items():
            out_c = sel.masks[name].size
            assert abs(keep - 0.5) <= 1.0 / out_c + 1e-9

    def test_masks_and_indices_consistent(self):
        enc = self._enc()
        sel = selection_from_sparsity(
            enc, {n: 0.3 for n in enc.prunable_layers()})
        for name in sel.indices:
            np.testing.assert_array_equal(np.flatnonzero(sel.masks[name]),
                                          sel.indices[name])

    def test_selects_most_salient(self):
        enc = self._enc()
        layer = enc.prunable_layers()[0]
        w = dict(enc.named_parameters())[layer + ".weight"]
        w.data[...] = 0.01
        w.data[2] = 5.0  # one clearly salient filter
        sel = selection_from_sparsity(enc, {layer: 0.75}, min_keep=1)
        assert 2 in sel.indices[layer]

    def test_min_keep(self):
        enc = self._enc()
        sel = selection_from_sparsity(
            enc, {n: 1.0 for n in enc.prunable_layers()}, min_keep=1)
        assert all(len(idx) >= 1 for idx in sel.indices.values())

    def test_sequence_sparsity_accepted(self):
        enc = self._enc()
        n = len(enc.prunable_layers())
        sel = selection_from_sparsity(enc, np.full(n, 0.25))
        assert len(sel.keep) == n

    def test_wrong_length_rejected(self):
        enc = self._enc()
        with pytest.raises(ValueError):
            selection_from_sparsity(enc, [0.5])

    def test_dense_selection_keeps_all(self):
        sel = dense_selection(self._enc())
        assert sel.mean_keep() == pytest.approx(1.0)
        assert sel.mean_sparsity() == pytest.approx(0.0)

    def test_select_salient_extracts_rows(self):
        enc = self._enc()
        sel = selection_from_sparsity(
            enc, {n: 0.5 for n in enc.prunable_layers()})
        payload = select_salient(enc, sel)
        params = dict(enc.named_parameters())
        for name, (idx, rows) in payload.items():
            np.testing.assert_array_equal(
                rows, params[name + ".weight"].data[idx])

    def test_n_selected_counts(self):
        enc = self._enc()
        sel = dense_selection(enc)
        total_filters = sum(s.out_channels for s in enc.conv_specs())
        assert sel.n_selected() == total_filters

    @given(st.floats(0.0, 0.95))
    @settings(max_examples=15, deadline=None)
    def test_property_keep_plus_sparsity(self, s):
        enc = build_model("cnn2", input_size=28, width_mult=0.5,
                          seed=0).encoder
        sel = selection_from_sparsity(
            enc, {n: s for n in enc.prunable_layers()})
        for name, keep in sel.keep.items():
            assert 0.0 < keep <= 1.0
            assert len(sel.indices[name]) == round(keep * sel.masks[name].size)


@pytest.fixture(scope="module")
def trained_tiny_model():
    ds = SyntheticCIFAR10(n_samples=900, size=12, seed=21)
    train, val = train_val_split(ds, 0.25, seed=0)
    model = build_model("resnet20", input_size=12, width_mult=0.25, seed=3)
    finetune(model, train, epochs=3, lr=0.05, seed=0)
    return model.state_dict(), train, val


def _restore(state):
    model = build_model("resnet20", input_size=12, width_mult=0.25, seed=3)
    model.load_state_dict(state)
    return model


class TestBaselines:
    @pytest.mark.parametrize("fn", [prune_magnitude, prune_random,
                                    prune_fpgm])
    def test_runs_and_reports(self, fn, trained_tiny_model):
        state, train, val = trained_tiny_model
        res = fn(_restore(state), train, val, sparsity=0.25,
                 finetune_epochs=1, seed=0)
        assert 0.0 <= res.acc_pruned <= 1.0
        assert 0.0 < res.flops_ratio < 1.0
        assert res.mean_sparsity == pytest.approx(0.25, abs=0.1)

    def test_sfp_runs(self, trained_tiny_model):
        state, train, val = trained_tiny_model
        res = prune_sfp(_restore(state), train, val, sparsity=0.25, epochs=2,
                        finetune_epochs=1, seed=0)
        assert res.method == "sfp"
        assert res.flops_reduction > 0

    def test_dsa_hits_flops_budget(self, trained_tiny_model):
        state, train, val = trained_tiny_model
        res = prune_dsa(_restore(state), train, val, flops_target=0.7,
                        finetune_epochs=0, seed=0)
        assert res.flops_ratio == pytest.approx(0.7, abs=0.12)

    def test_saliency_beats_random_at_high_sparsity(self, trained_tiny_model):
        # aggregate over the fixed checkpoint: informed selection should
        # not be materially worse than random (usually clearly better)
        state, train, val = trained_tiny_model
        mag = prune_magnitude(_restore(state), train, val, sparsity=0.5,
                              finetune_epochs=0, seed=0)
        rnd = prune_random(_restore(state), train, val, sparsity=0.5,
                           finetune_epochs=0, seed=0)
        assert mag.acc_pruned >= rnd.acc_pruned - 0.1

    def test_masks_cleared_after_prune(self, trained_tiny_model):
        state, train, val = trained_tiny_model
        model = _restore(state)
        prune_magnitude(model, train, val, sparsity=0.3, finetune_epochs=0)
        assert not model.encoder._channel_masks

    def test_evaluate_bounds(self, trained_tiny_model):
        state, _, val = trained_tiny_model
        acc = evaluate(_restore(state), val)
        assert 0.0 <= acc <= 1.0
