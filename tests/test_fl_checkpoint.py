"""Unit tests: checkpoint save/resume for FL runs (sync and async)."""

import numpy as np
import pytest

from repro.core import SPATL, StaticSaliencyPolicy
from repro.fl import (AsyncConfig, AsyncFederatedRunner, AsyncProfile,
                      FaultModel, FedAvg, Scaffold, make_federated_clients,
                      serialize_state, state_fingerprint)
from repro.fl.checkpoint import (load_async_checkpoint, load_checkpoint,
                                 save_async_checkpoint, save_checkpoint)
from repro.fl.stub import make_stub


def _clients(tiny_dataset, tiny_setting):
    _, parts = tiny_setting
    return make_federated_clients(tiny_dataset, parts, batch_size=32, seed=5)


class TestCheckpointRoundtrip:
    def test_fedavg_state_restored(self, tmp_path, tiny_dataset, tiny_setting):
        model_fn, _ = tiny_setting
        algo = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                      lr=0.05, local_epochs=1, seed=0)
        algo.run(rounds=2)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(algo, path)

        fresh = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                       lr=0.05, local_epochs=1, seed=0)
        load_checkpoint(fresh, path)
        assert fresh.rounds_completed == 2
        for (n, p1), (_, p2) in zip(algo.global_model.named_parameters(),
                                    fresh.global_model.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data, err_msg=n)
        assert fresh.ledger.total_bytes() == algo.ledger.total_bytes()

    def test_resumed_run_matches_uninterrupted(self, tmp_path, tiny_dataset,
                                               tiny_setting):
        model_fn, _ = tiny_setting
        # uninterrupted: 3 rounds straight
        ref = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                     lr=0.05, local_epochs=1, seed=0)
        ref.run(rounds=3)
        # interrupted: 2 rounds, checkpoint, resume 1 round
        first = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                       lr=0.05, local_epochs=1, seed=0)
        first.run(rounds=2)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(first, path)
        resumed = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                         lr=0.05, local_epochs=1, seed=0)
        load_checkpoint(resumed, path)
        resumed.run(rounds=1)
        for (n, p1), (_, p2) in zip(ref.global_model.named_parameters(),
                                    resumed.global_model.named_parameters()):
            np.testing.assert_allclose(p1.data, p2.data, atol=1e-6,
                                       err_msg=n)

    def test_scaffold_variates_roundtrip(self, tmp_path, tiny_dataset,
                                         tiny_setting):
        model_fn, _ = tiny_setting
        algo = Scaffold(model_fn, _clients(tiny_dataset, tiny_setting),
                        lr=0.05, local_epochs=1, seed=0)
        algo.run(rounds=2)
        path = tmp_path / "sc.npz"
        save_checkpoint(algo, path)
        fresh = Scaffold(model_fn, _clients(tiny_dataset, tiny_setting),
                         lr=0.05, local_epochs=1, seed=0)
        load_checkpoint(fresh, path)
        for name, v in algo.c_global.items():
            np.testing.assert_array_equal(fresh.c_global[name], v,
                                          err_msg=name)
        # per-client variates restored too
        for c_old, c_new in zip(algo.clients, fresh.clients):
            if "c_i" in c_old.local_state:
                for k, v in c_old.local_state["c_i"].items():
                    np.testing.assert_array_equal(
                        c_new.local_state["c_i"][k], v)

    def test_spatl_full_state_roundtrip(self, tmp_path, tiny_dataset,
                                        tiny_setting):
        model_fn, _ = tiny_setting
        algo = SPATL(model_fn, _clients(tiny_dataset, tiny_setting),
                     selection_policy=StaticSaliencyPolicy(0.3),
                     lr=0.05, local_epochs=1, seed=0)
        algo.run(rounds=2)
        path = tmp_path / "spatl.npz"
        save_checkpoint(algo, path)
        fresh = SPATL(model_fn, _clients(tiny_dataset, tiny_setting),
                      selection_policy=StaticSaliencyPolicy(0.3),
                      lr=0.05, local_epochs=1, seed=0)
        load_checkpoint(fresh, path)
        # encoder control variate (ControlVariate object) restored
        for name in algo.c_global.names():
            np.testing.assert_array_equal(fresh.c_global[name],
                                          algo.c_global[name], err_msg=name)
        # private predictors restored per client
        for c_old, c_new in zip(algo.clients, fresh.clients):
            if "predictor" in c_old.local_state:
                for k, v in c_old.local_state["predictor"].items():
                    np.testing.assert_array_equal(
                        c_new.local_state["predictor"][k], v, err_msg=k)
        # resumed run proceeds without error and continues the counter
        fresh.run(rounds=1)
        assert fresh.rounds_completed == 3

    def test_fault_stats_roundtrip(self, tmp_path, tiny_dataset,
                                   tiny_setting):
        model_fn, _ = tiny_setting
        algo = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                      lr=0.05, local_epochs=1, seed=0,
                      fault_model=FaultModel(drop_prob=0.5, seed=2))
        algo.run(rounds=2)
        path = tmp_path / "faulty.npz"
        save_checkpoint(algo, path)
        fresh = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                       lr=0.05, local_epochs=1, seed=0,
                       fault_model=FaultModel(drop_prob=0.5, seed=2))
        load_checkpoint(fresh, path)
        assert fresh.fault_stats == algo.fault_stats

    def test_client_count_mismatch_rejected(self, tmp_path, tiny_dataset,
                                            tiny_setting):
        model_fn, _ = tiny_setting
        clients = _clients(tiny_dataset, tiny_setting)
        algo = FedAvg(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        algo.run(rounds=1)
        path = tmp_path / "c.npz"
        save_checkpoint(algo, path)
        smaller = FedAvg(model_fn, clients[:2], lr=0.05, local_epochs=1,
                         seed=0)
        with pytest.raises(ValueError):
            load_checkpoint(smaller, path)


class TestMidRoundCrashResume:
    """ISSUE-1 satellite: a crash *mid-round* must not poison a resume —
    restarting from the last round-boundary checkpoint reproduces the
    uninterrupted run's accuracy and ledger trajectory seed-for-seed."""

    def _crash_mid_round(self, doomed):
        """Partially execute the next round, then abandon the instance (the
        simulated crash): download + train one client, never aggregate."""
        r = doomed.rounds_completed
        from repro.fl.base import sample_clients
        victim = sample_clients(doomed.clients, doomed.sample_ratio,
                                doomed.seed, r)[0]
        doomed.download_payload(victim)
        doomed.local_update(victim, r)  # mutates doomed's in-memory state

    def _assert_same_trajectory(self, ref, resumed, ref_log, resumed_log):
        assert resumed_log.meta["rounds_run"] == ref_log.meta["rounds_run"]
        np.testing.assert_allclose(resumed_log["val_acc"][-1],
                                   ref_log["val_acc"][-1], atol=1e-12)
        assert resumed.ledger.total_bytes() == ref.ledger.total_bytes()
        for (n, p1), (_, p2) in zip(ref.global_model.named_parameters(),
                                    resumed.global_model.named_parameters()):
            np.testing.assert_allclose(p1.data, p2.data, atol=1e-7,
                                       err_msg=n)

    def test_fedavg(self, tmp_path, tiny_dataset, tiny_setting):
        model_fn, _ = tiny_setting

        def fresh():
            return FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                          lr=0.05, local_epochs=1, seed=0)

        ref = fresh()
        ref_log = ref.run(rounds=3)

        doomed = fresh()
        doomed.run(rounds=2)
        path = tmp_path / "mid.npz"
        save_checkpoint(doomed, path)
        self._crash_mid_round(doomed)  # crash during round 2

        resumed = fresh()
        load_checkpoint(resumed, path)
        assert resumed.rounds_completed == 2
        resumed_log = resumed.run(rounds=1)
        self._assert_same_trajectory(ref, resumed, ref_log, resumed_log)

    def test_spatl(self, tmp_path, tiny_dataset, tiny_setting):
        model_fn, _ = tiny_setting

        def fresh():
            return SPATL(model_fn, _clients(tiny_dataset, tiny_setting),
                         selection_policy=StaticSaliencyPolicy(0.3),
                         lr=0.05, local_epochs=1, seed=0)

        ref = fresh()
        ref_log = ref.run(rounds=3)

        doomed = fresh()
        doomed.run(rounds=2)
        path = tmp_path / "mid_spatl.npz"
        save_checkpoint(doomed, path)
        self._crash_mid_round(doomed)  # mutates a private predictor + c_i

        resumed = fresh()
        load_checkpoint(resumed, path)
        resumed_log = resumed.run(rounds=1)
        self._assert_same_trajectory(ref, resumed, ref_log, resumed_log)

    def test_faulty_run_with_retries_resumes_byte_identical(
            self, tmp_path, tiny_dataset, tiny_setting):
        """ISSUE-6 satellite: crash mid-round while the fault path's
        retry machinery is active; resuming from the last boundary
        checkpoint must reproduce the uninterrupted faulty run's final
        state *byte-identically* (the fault RNG tree is keyed, never
        sequential, so a half-executed round leaks no draws)."""
        model_fn, _ = tiny_setting
        fault_kw = dict(
            lr=0.05, local_epochs=1, seed=0, min_clients=2,
            fault_model=FaultModel(drop_prob=0.4, straggler_prob=0.3,
                                   timeout=6.0, corrupt_prob=0.1,
                                   crash_prob=0.1, seed=7))

        def fresh():
            return FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                          **fault_kw)

        ref = fresh()
        ref.run(rounds=3)
        assert ref.fault_stats.n_retries > 0  # the retry loop really ran

        doomed = fresh()
        doomed.run(rounds=2)
        path = tmp_path / "faulty_mid.npz"
        save_checkpoint(doomed, path)
        # Crash partway through round 2's retry loop: a client trains
        # (mutating in-memory state), further retries never happen.
        from repro.fl.base import sample_clients
        victim = sample_clients(doomed.clients, doomed.sample_ratio,
                                doomed.seed, 2)[0]
        doomed.local_update(victim, 2)

        resumed = fresh()
        load_checkpoint(resumed, path)
        assert resumed.fault_stats == doomed.fault_stats
        resumed.run(rounds=1)
        assert serialize_state(dict(ref.global_model.state_dict())) \
            == serialize_state(dict(resumed.global_model.state_dict()))
        assert resumed.ledger.total_bytes() == ref.ledger.total_bytes()
        assert resumed.fault_stats == ref.fault_stats


class TestScaleMidRoundCheckpoint:
    """Population-scale mid-round snapshots (DESIGN.md §13): a partial
    round — fold accumulators, spill position, client-store manifest —
    resumes in a fresh runner byte-identical to the uninterrupted run."""

    def _pool(self, tiny_dataset, tiny_setting, root):
        from repro.fl import (ClientStateStore, ShardedClientFactory,
                              VirtualClientPool)
        _, parts = tiny_setting
        factory = ShardedClientFactory(dataset=tiny_dataset, parts=parts,
                                       batch_size=32, seed=5)
        return VirtualClientPool(factory, len(parts),
                                 ClientStateStore(root))

    def _final(self, algo):
        return (serialize_state(dict(algo.global_model.state_dict())),
                algo.ledger.total_bytes())

    def test_fedavg_with_pool_resumes_byte_identical(
            self, tmp_path, tiny_dataset, tiny_setting):
        from repro.fl import ScaleRunner
        model_fn, _ = tiny_setting

        # uninterrupted reference: 2 full streaming rounds
        ref_pool = self._pool(tiny_dataset, tiny_setting, tmp_path / "ref")
        ref = FedAvg(model_fn, ref_pool.clients(), lr=0.05, local_epochs=1,
                     seed=0, sample_ratio=1.0)
        ScaleRunner(ref, pool=ref_pool,
                    spill_dir=tmp_path / "ref_spills").run(2)

        # interrupted: round 0, then half of round 1's cohort, snapshot
        store_root = tmp_path / "store"
        pool = self._pool(tiny_dataset, tiny_setting, store_root)
        doomed = FedAvg(model_fn, pool.clients(), lr=0.05, local_epochs=1,
                        seed=0, sample_ratio=1.0)
        runner = ScaleRunner(doomed, pool=pool,
                             spill_dir=tmp_path / "spills")
        runner.run_round(0)
        runner.run_round_partial(1, 2)
        path = tmp_path / "scale.npz"
        runner.save_round_checkpoint(path)

        # fresh process: same store root, fresh pool/algorithm/runner
        pool2 = self._pool(tiny_dataset, tiny_setting, store_root)
        resumed_algo = FedAvg(model_fn, pool2.clients(), lr=0.05,
                              local_epochs=1, seed=0, sample_ratio=1.0)
        resumed = ScaleRunner(resumed_algo, pool=pool2,
                              spill_dir=tmp_path / "spills")
        resumed.load_round_checkpoint(path)
        result = resumed.resume_round()
        assert result.round_idx == 1
        assert self._final(resumed_algo) == self._final(ref)

    def test_spatl_materialized_resumes_byte_identical(
            self, tmp_path, tiny_dataset, tiny_setting):
        from repro.fl import ScaleRunner
        model_fn, _ = tiny_setting

        def fresh():
            return SPATL(model_fn, _clients(tiny_dataset, tiny_setting),
                         selection_policy=StaticSaliencyPolicy(0.3),
                         lr=0.05, local_epochs=1, seed=0, sample_ratio=1.0)

        ref = fresh()
        ScaleRunner(ref, spill_dir=tmp_path / "ref_spills").run(2)

        doomed = fresh()
        runner = ScaleRunner(doomed, spill_dir=tmp_path / "spills")
        runner.run_round(0)
        runner.run_round_partial(1, 2)
        path = tmp_path / "scale_spatl.npz"
        runner.save_round_checkpoint(path)

        resumed_algo = fresh()
        resumed = ScaleRunner(resumed_algo, spill_dir=tmp_path / "spills")
        resumed.load_round_checkpoint(path)
        resumed.resume_round()
        assert self._final(resumed_algo) == self._final(ref)
        for name in ref.c_global.names():
            np.testing.assert_array_equal(resumed_algo.c_global[name],
                                          ref.c_global[name], err_msg=name)

    def test_resume_without_pending_rejected(self, tmp_path, tiny_dataset,
                                             tiny_setting):
        from repro.fl import ScaleRunner
        model_fn, _ = tiny_setting
        algo = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                      lr=0.05, local_epochs=1, seed=0)
        runner = ScaleRunner(algo, spill_dir=tmp_path / "spills")
        with pytest.raises(RuntimeError):
            runner.resume_round()
        with pytest.raises(RuntimeError):
            runner.save_round_checkpoint(tmp_path / "none.npz")

    def test_sync_checkpoint_rejected_by_scale_loader(
            self, tmp_path, tiny_dataset, tiny_setting):
        from repro.fl import ScaleRunner
        model_fn, _ = tiny_setting
        algo = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                      lr=0.05, local_epochs=1, seed=0)
        algo.run(rounds=1)
        path = tmp_path / "sync.npz"
        save_checkpoint(algo, path)
        runner = ScaleRunner(algo, spill_dir=tmp_path / "spills")
        with pytest.raises(ValueError, match="scale"):
            runner.load_round_checkpoint(path)


HOSTILE = dict(jitter=0.3, straggler_prob=0.4, slowdown=6.0,
               arrival_spread=1.0, churn_prob=0.15, crash_prob=0.1,
               duplicate_prob=0.25)


class TestAsyncCheckpoint:
    """Mid-flight snapshots of the async runtime: clock, buffer, in-flight
    jobs, dedup registry, and counters all resume bit-exactly."""

    def _fresh(self, seed=5):
        profile = AsyncProfile(seed=seed, **HOSTILE)
        config = AsyncConfig(buffer_k=3, max_inflight=4, max_queue=4)
        return AsyncFederatedRunner(make_stub(n_clients=10, seed=seed),
                                    profile, config)

    def _state(self, runner):
        return (state_fingerprint(dict(
                    runner.algo.global_model.state_dict())),
                dict(runner.counters), runner.clock.now,
                runner.server_step,
                runner.algo.ledger.total_bytes(),
                [(r.step, r.n_updates, r.time, r.max_staleness)
                 for r in runner.step_results])

    def test_mid_buffer_resume_matches_uninterrupted(self, tmp_path):
        ref = self._fresh()
        ref.run(steps=12)

        first = self._fresh()
        first.pump(23)   # mid-flight: somewhere inside a server step
        assert first.buffer or first.inflight  # snapshot is genuinely mid-work
        path = tmp_path / "async.npz"
        save_async_checkpoint(first, path)

        resumed = self._fresh()
        load_async_checkpoint(resumed, path)
        assert resumed.buffer == first.buffer
        assert resumed.inflight == first.inflight
        assert resumed.queue == first.queue
        resumed.run(steps=12 - resumed.server_step)
        assert self._state(resumed) == self._state(ref)

    def test_spatl_mid_buffer_resume(self, tmp_path, tiny_dataset,
                                     tiny_setting):
        model_fn, _ = tiny_setting
        profile = AsyncProfile(seed=5, **HOSTILE)
        config = AsyncConfig(buffer_k=2, max_inflight=3, max_queue=3)

        def fresh():
            algo = SPATL(model_fn, _clients(tiny_dataset, tiny_setting),
                         selection_policy=StaticSaliencyPolicy(0.3),
                         lr=0.05, local_epochs=1, seed=0)
            return AsyncFederatedRunner(algo, profile, config)

        ref = fresh()
        ref.run(steps=4)

        first = fresh()
        first.pump(9)
        path = tmp_path / "async_spatl.npz"
        save_async_checkpoint(first, path)
        resumed = fresh()
        load_async_checkpoint(resumed, path)
        resumed.run(steps=4 - resumed.server_step)
        assert serialize_state(dict(ref.algo.global_model.state_dict())) \
            == serialize_state(dict(
                resumed.algo.global_model.state_dict()))
        assert resumed.algo.ledger.total_bytes() \
            == ref.algo.ledger.total_bytes()
        assert resumed.counters == ref.counters

    def test_config_mismatch_rejected(self, tmp_path):
        runner = self._fresh()
        runner.pump(10)
        path = tmp_path / "a.npz"
        save_async_checkpoint(runner, path)
        other = AsyncFederatedRunner(
            make_stub(n_clients=10, seed=5),
            AsyncProfile(seed=5, **HOSTILE),
            AsyncConfig(buffer_k=5, max_inflight=4, max_queue=4))
        with pytest.raises(ValueError):
            load_async_checkpoint(other, path)

    def test_profile_mismatch_rejected(self, tmp_path):
        runner = self._fresh()
        runner.pump(10)
        path = tmp_path / "b.npz"
        save_async_checkpoint(runner, path)
        other = AsyncFederatedRunner(
            make_stub(n_clients=10, seed=5), AsyncProfile(seed=99),
            AsyncConfig(buffer_k=3, max_inflight=4, max_queue=4))
        with pytest.raises(ValueError):
            load_async_checkpoint(other, path)

    def test_sync_checkpoint_rejected_by_async_loader(self, tmp_path,
                                                      tiny_dataset,
                                                      tiny_setting):
        model_fn, _ = tiny_setting
        algo = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                      lr=0.05, local_epochs=1, seed=0)
        algo.run(rounds=1)
        path = tmp_path / "sync.npz"
        save_checkpoint(algo, path)
        runner = self._fresh()
        with pytest.raises(ValueError):
            load_async_checkpoint(runner, path)
