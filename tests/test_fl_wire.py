"""Fast transport layer (repro.fl.wire): zero-copy codec + broadcast cache.

The contract under test (DESIGN.md §11): the single-buffer writer is
byte-identical to the original join-based encoder; ``copy=False``
decodes are read-only views over the payload; the
:class:`BroadcastCache` changes who pays the encode CPU but never the
bytes charged to the ledger; and header-capacity overflows surface as
typed :class:`PayloadError`, never raw ``struct.error``.
"""

from __future__ import annotations

import json
import pickle
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.fl import wire
from repro.fl.comm import (CommLedger, PayloadError, decode_update,
                           deserialize_state, encode_update, payload_nbytes,
                           serialize_state, sparse_payload_nbytes)
from repro.fl.faults import FaultModel, FaultyTransport
from repro.fl.wire import BroadcastCache, codec_validate, state_fingerprint
from repro.obs.trace import tracing


# --------------------------------------------------------------------- #
# the original encoder, verbatim, as the byte-identity oracle            #
# --------------------------------------------------------------------- #
def _legacy_serialize(state, checksums=False):
    """The pre-PR join-based encoder the wire format is defined by."""
    parts = [struct.pack("<I", len(state))]
    for name, value in state.items():
        arr = np.ascontiguousarray(value)
        if np.ndim(value) == 0:
            arr = arr.reshape(())
        raw_name = name.encode("utf-8")
        record = [struct.pack("<H", len(raw_name)), raw_name,
                  struct.pack("<BB", wire._DTYPE_CODE[arr.dtype], arr.ndim),
                  struct.pack(f"<{arr.ndim}I", *arr.shape), arr.tobytes()]
        if checksums:
            record.append(struct.pack("<I", zlib.crc32(b"".join(record))))
        parts.extend(record)
    return b"".join(parts)


def _rand_state(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "conv.weight": rng.normal(size=(8, 3, 3, 3)).astype(np.float32),
        "bn.running_var": rng.normal(size=8).astype(np.float64),
        "idx": rng.integers(0, 100, size=17).astype(np.int32),
        "steps": np.asarray(rng.integers(0, 9), dtype=np.int64),  # 0-d
        "mask": rng.random(11) > 0.5,
        "half": rng.normal(size=(2, 5)).astype(np.float16),
        "bytes": rng.integers(0, 256, size=6).astype(np.uint8),
        "empty": np.zeros((0, 4), dtype=np.float32),
        "ünïcode.wéight": rng.normal(size=3).astype(np.float32),
    }


class TestByteIdentity:
    @pytest.mark.parametrize("checksums", [False, True])
    def test_fast_writer_matches_legacy_encoder(self, checksums):
        state = _rand_state(1)
        fast = wire.serialize(state, checksums=checksums)
        assert fast == _legacy_serialize(state, checksums=checksums)
        out = wire.deserialize(fast, checksums=checksums)
        assert set(out) == set(state)
        for k in state:
            np.testing.assert_array_equal(out[k], np.asarray(state[k]),
                                          err_msg=k)
            assert out[k].dtype == np.asarray(state[k]).dtype
            assert out[k].shape == np.asarray(state[k]).shape

    def test_serialize_state_wrapper_matches_core(self):
        state = _rand_state(2)
        assert serialize_state(state) == wire.serialize(state)

    def test_serialize_into_accepts_any_writable_buffer(self):
        state = _rand_state(3)
        want = _legacy_serialize(state)
        n = payload_nbytes(state)
        for buf in (bytearray(n), np.zeros(n, dtype=np.uint8),
                    memoryview(bytearray(n + 10))):
            written = wire.serialize_into(state, buf)
            assert written == n == len(want)
            assert bytes(memoryview(buf).cast("B")[:n]) == want


class TestScratchSerialize:
    def test_scratch_view_matches_serialize(self):
        state = _rand_state(4)
        view = wire.serialize_scratch(state, checksums=True)
        assert bytes(view) == wire.serialize(state, checksums=True)

    def test_scratch_buffer_is_reused_across_calls(self):
        owner = type("Owner", (), {})()     # weak-referenceable
        a = wire.serialize_scratch(_rand_state(5), owner=owner)
        b = wire.serialize_scratch(_rand_state(6), owner=owner)
        # same power-of-two bucket => same arena buffer, no new allocation
        assert a.obj is b.obj

    def test_scratch_is_transient(self):
        """A second call of similar size overwrites the first view."""
        owner = type("Owner", (), {})()
        state = {"w": np.arange(8, dtype=np.float32)}
        view = wire.serialize_scratch(state, owner=owner)
        first = bytes(view)
        wire.serialize_scratch({"w": np.zeros(8, dtype=np.float32)},
                               owner=owner)
        assert bytes(view) != first


class TestZeroCopyDeserialize:
    STATE = {"w": np.arange(12, dtype=np.float32).reshape(3, 4),
             "n": np.asarray(7, dtype=np.int64)}

    def test_views_are_read_only_and_alias_the_payload(self):
        blob = wire.serialize(self.STATE)
        out = wire.deserialize(blob, copy=False)
        backing = np.frombuffer(blob, dtype=np.uint8)
        for k in self.STATE:
            np.testing.assert_array_equal(out[k], self.STATE[k], err_msg=k)
            assert not out[k].flags.writeable
            assert np.shares_memory(out[k], backing)
            with pytest.raises(ValueError):
                out[k][...] = 0

    def test_copy_mode_returns_writable_independent_arrays(self):
        blob = wire.serialize(self.STATE)
        out = wire.deserialize(blob, copy=True)
        backing = np.frombuffer(blob, dtype=np.uint8)
        for k in self.STATE:
            assert out[k].flags.writeable
            assert not np.shares_memory(out[k], backing)

    def test_zero_copy_validates_like_copy_mode(self):
        blob = wire.serialize(self.STATE, checksums=True)
        bad = bytearray(blob)
        bad[len(bad) // 2] ^= 0x08
        with pytest.raises(PayloadError):
            wire.deserialize(bytes(bad), checksums=True, copy=False)
        with pytest.raises(PayloadError):
            wire.deserialize(blob[:-3], checksums=True, copy=False)

    def test_deserialize_state_wrapper_forwards_copy_flag(self):
        blob = serialize_state(self.STATE)
        out = deserialize_state(blob, copy=False)
        assert not out["w"].flags.writeable


# --------------------------------------------------------------------- #
# satellite: header-capacity validation                                  #
# --------------------------------------------------------------------- #
class TestHeaderCapacityValidation:
    LONG = "n" * 70_000            # > u16 name-length capacity

    def test_oversized_name_raises_payload_error_everywhere(self):
        state = {self.LONG: np.zeros(2, dtype=np.float32)}
        for fn in (payload_nbytes, serialize_state, wire.serialize):
            with pytest.raises(PayloadError, match="65535"):
                fn(state)

    def test_oversized_dim_raises_payload_error(self):
        # shape (2**32, 0) holds zero bytes, so only the header overflows
        state = {"huge": np.zeros((2 ** 32, 0), dtype=np.float32)}
        for fn in (payload_nbytes, serialize_state, wire.serialize):
            with pytest.raises(PayloadError, match="u32"):
                fn(state)

    def test_error_names_the_entry_not_struct(self):
        with pytest.raises(PayloadError) as exc:
            payload_nbytes({self.LONG: np.zeros(1, dtype=np.float32)})
        assert exc.value.entry == self.LONG
        assert not isinstance(exc.value, struct.error)

    def test_limits_are_inclusive(self):
        name = "a" * wire._MAX_NAME_BYTES
        state = {name: np.zeros(1, dtype=np.float32)}
        blob = wire.serialize(state)
        assert payload_nbytes(state) == len(blob)
        assert name in wire.deserialize(blob)

    def test_sparse_sizing_validates_too(self):
        sel = {self.LONG: (np.arange(2, dtype=np.int32),
                           np.zeros((2, 3), dtype=np.float32))}
        with pytest.raises(PayloadError):
            sparse_payload_nbytes(sel)


# --------------------------------------------------------------------- #
# satellite: exact-size property                                         #
# --------------------------------------------------------------------- #
_SHAPES = hnp.array_shapes(min_dims=0, max_dims=3, min_side=0, max_side=4)
_ARRAYS = st.one_of(
    hnp.arrays(np.dtype(np.float32), _SHAPES,
               elements=st.floats(-8, 8, width=32)),
    hnp.arrays(np.dtype(np.float16), _SHAPES,
               elements=st.floats(-8, 8, width=16)),
    hnp.arrays(np.dtype(np.int64), _SHAPES, elements=st.integers(-99, 99)),
    hnp.arrays(np.dtype(np.uint8), _SHAPES, elements=st.integers(0, 255)),
    hnp.arrays(np.dtype(bool), _SHAPES),
)


class TestExactSizeProperty:
    @given(state=st.dictionaries(st.text(min_size=1, max_size=12), _ARRAYS,
                                 max_size=5),
           checksums=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_payload_nbytes_equals_serialized_length(self, state, checksums):
        blob = serialize_state(state, checksums=checksums)
        assert payload_nbytes(state, checksums=checksums) == len(blob)
        out = deserialize_state(blob, checksums=checksums)
        assert set(out) == set(state)
        for k in state:
            np.testing.assert_array_equal(out[k], state[k])
            assert out[k].shape == state[k].shape     # incl. 0-d and empty

    def test_edge_entries_explicitly(self):
        state = {"zero_d": np.asarray(1.5, dtype=np.float16),
                 "empty": np.zeros((3, 0, 2), dtype=np.float32),
                 "flags": np.asarray([True, False]),
                 "ünïcode→name": np.ones(1, dtype=np.float64)}
        for cs in (False, True):
            assert payload_nbytes(state, checksums=cs) \
                == len(serialize_state(state, checksums=cs))

    def test_sparse_nbytes_matches_equivalent_dense_dict(self):
        rng = np.random.default_rng(9)
        sel = {"features.conv1": (np.asarray([0, 3, 5], dtype=np.int64),
                                  rng.normal(size=(3, 4, 3, 3))
                                  .astype(np.float32)),
               "clässifier": (np.zeros(0, dtype=np.int64),
                              np.zeros((0, 16), dtype=np.float32)),
               "head.bias": (np.asarray([2], dtype=np.int32),
                             rng.normal(size=1).astype(np.float64))}
        equivalent = {}
        for name, (idx, val) in sel.items():
            equivalent[name + ".idx"] = np.asarray(idx).astype(np.int32)
            equivalent[name + ".val"] = np.asarray(val)
        assert sparse_payload_nbytes(sel) == payload_nbytes(equivalent)


# --------------------------------------------------------------------- #
# satellite: update framing round-trips and faults                       #
# --------------------------------------------------------------------- #
class TestUpdateFraming:
    def test_nan_and_inf_round_trip_bitwise(self):
        update = {
            "arr": np.asarray([np.nan, np.inf, -np.inf, 0.0, -0.0],
                              dtype=np.float32),
            "loss": float("nan"),
            "bound": float("inf"),
        }
        decoded = decode_update(encode_update(update))
        assert decoded["arr"].tobytes() == update["arr"].tobytes()
        assert np.isnan(decoded["loss"])
        assert decoded["bound"] == float("inf")

    def test_empty_containers_round_trip(self):
        update = {"salient": {}, "pair": (), "items": [],
                  "nested": {"inner": ((), {})}}
        decoded = decode_update(encode_update(update))
        assert decoded == update
        assert isinstance(decoded["pair"], tuple)
        assert isinstance(decoded["nested"]["inner"][0], tuple)
        assert decode_update(encode_update({})) == {}

    def test_missing_array_id_is_payload_error_not_key_error(self):
        manifest = {"k": "dict", "items": [["w", {"k": "arr", "id": "t9"}]]}
        raw = json.dumps(manifest, separators=(",", ":")).encode("utf-8")
        blob = serialize_state(
            {"__pytree__": np.frombuffer(raw, dtype=np.uint8)})
        with pytest.raises(PayloadError, match="missing array id"):
            decode_update(blob)

    def test_missing_numpy_scalar_id_is_payload_error(self):
        manifest = {"k": "np", "id": "t3"}
        raw = json.dumps(manifest, separators=(",", ":")).encode("utf-8")
        blob = serialize_state(
            {"__pytree__": np.frombuffer(raw, dtype=np.uint8)})
        with pytest.raises(PayloadError, match="missing array id"):
            decode_update(blob)

    def test_zero_copy_decode_returns_read_only_arrays(self):
        update = {"w": np.arange(6, dtype=np.float32), "n": 3}
        decoded = decode_update(encode_update(update), copy=False)
        assert not decoded["w"].flags.writeable
        np.testing.assert_array_equal(decoded["w"], update["w"])


# --------------------------------------------------------------------- #
# broadcast cache                                                        #
# --------------------------------------------------------------------- #
class TestBroadcastCache:
    def test_token_hit_serves_same_blob_without_reencoding(self):
        cache = BroadcastCache()
        state = _rand_state(7)
        first = cache.encode(state, token=1)
        again = cache.encode(state, token=1)
        assert first is again
        assert (cache.misses, cache.hits, cache.content_hits) == (1, 1, 0)
        assert first == wire.serialize(state)

    def test_content_hit_survives_token_bump(self):
        cache = BroadcastCache()
        state = _rand_state(8)
        first = cache.encode(state, token=1)
        again = cache.encode(state, token=2)      # unchanged content
        assert first is again
        assert cache.content_hits == 1
        # the fingerprint match moved the token: next call is a cheap hit
        cache.encode(state, token=2)
        assert cache.hits == 1

    def test_changed_content_misses(self):
        cache = BroadcastCache()
        state = _rand_state(9)
        first = cache.encode(state, token=1)
        state["conv.weight"] = state["conv.weight"] + 1.0
        second = cache.encode(state, token=2)
        assert cache.misses == 2
        assert second != first
        assert second == wire.serialize(state)

    def test_same_token_different_entry_count_never_served_stale(self):
        cache = BroadcastCache()
        a = {"w": np.ones(4, dtype=np.float32)}
        b = {"w": np.ones(4, dtype=np.float32),
             "b": np.zeros(2, dtype=np.float32)}
        cache.encode(a, token=5)
        blob_b = cache.encode(b, token=5)
        assert blob_b == wire.serialize(b)

    def test_channels_and_checksums_are_independent_keys(self):
        cache = BroadcastCache()
        down = {"w": np.ones(3, dtype=np.float32)}
        sync = {"model.w": np.zeros(3, dtype=np.float32)}
        assert cache.encode(down, token=1, channel="down") \
            == wire.serialize(down)
        assert cache.encode(sync, token=1, channel="sync") \
            == wire.serialize(sync)
        assert cache.encode(down, token=1, channel="down",
                            checksums=True) == wire.serialize(down,
                                                              checksums=True)
        assert cache.misses == 3
        # none of the three evicted another
        cache.encode(down, token=1, channel="down")
        cache.encode(sync, token=1, channel="sync")
        cache.encode(down, token=1, channel="down", checksums=True)
        assert cache.hits == 3

    def test_variant_is_part_of_the_cache_key(self):
        """A quantization-config change must never serve a stale blob:
        same state + same token under a different ``variant`` is a miss,
        and the variants coexist without evicting each other."""
        cache = BroadcastCache()
        state = _rand_state(12)
        plain = cache.encode(state, token=1)
        quant = cache.encode(state, token=1, variant=("quant", 4, 0, True))
        assert cache.misses == 2
        assert quant == plain == wire.serialize(state)   # same bytes, but
        # a re-request of either variant is a hit — neither evicted the other
        assert cache.encode(state, token=1) is plain
        assert cache.encode(state, token=1,
                            variant=("quant", 4, 0, True)) is quant
        assert cache.hits == 2
        # a different quant config is yet another key
        cache.encode(state, token=1, variant=("quant", 8, 0, True))
        assert cache.misses == 3

    def test_variant_eviction_is_per_key(self):
        """With a bounded cache, hammering one variant evicts LRU entries
        of the other rather than corrupting them."""
        cache = BroadcastCache(max_entries=2)
        state = _rand_state(13)
        cache.encode(state, token=1)                     # key A
        cache.encode(state, token=1, variant=("quant", 4, 0, True))  # key B
        cache.encode(state, token=1, variant=("quant", 8, 0, True))  # evicts A
        assert cache.evictions == 1
        cache.encode(state, token=1)                     # A re-encodes
        assert cache.misses == 4

    def test_eviction_counter_exported_to_metrics(self):
        """LRU evictions land in both ``cache.evictions`` and the
        ``wire.broadcast_evictions`` registry counter."""
        from repro.obs.metrics import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            cache = BroadcastCache(max_entries=2)
            for i in range(5):
                cache.encode({"w": np.full(3, float(i), dtype=np.float32)},
                             token=i, channel=f"ch{i}")
        finally:
            set_registry(previous)
        assert cache.evictions == 3
        counters = registry.snapshot()["counters"]
        assert counters.get("wire.broadcast_evictions") == 3

    def test_pickles_cold(self):
        cache = BroadcastCache()
        state = _rand_state(10)
        cache.encode(state, token=1)
        clone = pickle.loads(pickle.dumps(cache))
        assert (clone.hits, clone.content_hits, clone.misses) == (0, 0, 0)
        assert clone.encode(state, token=1) == wire.serialize(state)
        assert clone.misses == 1                    # replica re-encodes once

    def test_traced_encode_reports_full_bytes_with_cached_marker(self):
        cache = BroadcastCache()
        state = _rand_state(11)
        with tracing() as tracer:
            blob = cache.encode(state, token=1)
            cache.encode(state, token=1)
        spans = [s for s in tracer.spans if s.name == "serialize"]
        assert [s.attrs["cached"] for s in spans] == [False, True]
        # ledger invariance: the cached span still carries the full length
        assert all(s.attrs["bytes"] == len(blob) for s in spans)
        assert all(s.attrs["entries"] == len(state) for s in spans)

    def test_state_fingerprint_discriminates(self):
        a = {"w": np.arange(4, dtype=np.float32)}
        b = {"w": np.arange(4, dtype=np.float32).reshape(2, 2)}
        c = {"v": np.arange(4, dtype=np.float32)}
        prints = {state_fingerprint(s) for s in (a, b, c)}
        assert len(prints) == 3
        assert state_fingerprint(a) == state_fingerprint(
            {"w": np.arange(4, dtype=np.float32)})


class TestCodecValidate:
    def test_emits_matched_span_pair_with_exact_bytes(self):
        state = _rand_state(12)
        with tracing() as tracer:
            n = codec_validate(state)
        assert n == payload_nbytes(state)
        ser = [s for s in tracer.spans if s.name == "serialize"]
        de = [s for s in tracer.spans if s.name == "deserialize"]
        assert len(ser) == 1 and len(de) == 1
        assert ser[0].attrs["bytes"] == de[0].attrs["bytes"] == n
        assert ser[0].attrs["scratch"] is True
        assert de[0].attrs["zero_copy"] is True
        assert ser[0].attrs["entries"] == de[0].attrs["entries"] == len(state)


# --------------------------------------------------------------------- #
# ledger invariance of the cached faulty transport                       #
# --------------------------------------------------------------------- #
class TestFaultyTransportBroadcast:
    STATE = {"w": np.arange(20, dtype=np.float32).reshape(4, 5),
             "b": np.ones(4, dtype=np.float64)}

    def _download_all(self, broadcast):
        ledger = CommLedger()
        transport = FaultyTransport(FaultModel(seed=0), ledger,
                                    broadcast=broadcast)
        transport.token = 1
        decoded = [transport.download(0, cid, self.STATE)
                   for cid in range(5)]
        return ledger, decoded

    def test_cached_downlink_charges_every_client_full_bytes(self):
        plain_ledger, plain = self._download_all(None)
        cached_ledger, cached = self._download_all(BroadcastCache())
        assert plain_ledger.downlink == cached_ledger.downlink
        assert plain_ledger.round_bytes(0) \
            == 5 * payload_nbytes(self.STATE, checksums=True)
        for a, b in zip(plain, cached):
            assert set(a) == set(b)
            for k in a:
                np.testing.assert_array_equal(a[k], b[k], err_msg=k)

    def test_upload_never_goes_through_the_cache(self):
        cache = BroadcastCache()
        ledger = CommLedger()
        transport = FaultyTransport(FaultModel(seed=0), ledger,
                                    broadcast=cache)
        transport.token = 1
        transport.upload(0, 0, self.STATE)
        transport.upload(0, 1, {"w": np.zeros(3, dtype=np.float32)})
        assert cache.misses == 0 and cache.hits == 0

    def test_decoded_views_are_read_only(self):
        _, decoded = self._download_all(BroadcastCache())
        for out in decoded:
            for arr in out.values():
                assert not arr.flags.writeable


# --------------------------------------------------------------------- #
# end-to-end: broadcast caching changes neither bytes nor parameters     #
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faults"])
def test_workers2_broadcast_off_matches_on(tiny_dataset, tiny_setting,
                                           faults):
    from repro.data import dirichlet_partition
    from repro.fl import make_federated_clients
    from repro.fl.fedavg import FedAvg
    from repro.fl.parallel import ProcessPoolRoundExecutor

    model_fn, _ = tiny_setting
    parts = dirichlet_partition(tiny_dataset.y, 4, beta=0.5, seed=3)
    fault_model = (FaultModel(drop_prob=0.2, corrupt_prob=0.05, seed=21)
                   if faults else None)

    def run(broadcast):
        clients = make_federated_clients(tiny_dataset, parts, batch_size=32,
                                         seed=5)
        algo = FedAvg(model_fn, clients, lr=0.05, local_epochs=1,
                      sample_ratio=1.0, seed=0, fault_model=fault_model,
                      executor=ProcessPoolRoundExecutor(
                          2, broadcast=broadcast))
        try:
            results = [algo.run_round(r) for r in range(2)]
        finally:
            algo.close()
        return (serialize_state(algo.global_model.state_dict()),
                algo.ledger.total_bytes(),
                [r.round_bytes for r in results])

    state_on, total_on, rounds_on = run(True)
    state_off, total_off, rounds_off = run(False)
    assert state_on == state_off            # byte-identical parameters
    assert total_on == total_off            # byte-identical accounting
    assert rounds_on == rounds_off
