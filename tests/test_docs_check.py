"""The docs-check CI gate works in both directions (tools/docs_check.py).

Asserts the current tree passes, and that the check is not vacuous: it
must fail if ``--workers`` disappeared from README.md or a ``DESIGN.md
§N`` reference pointed at a missing section.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "docs_check", REPO_ROOT / "tools" / "docs_check.py")
docs_check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(docs_check)


def test_current_tree_passes():
    """Every CLI flag is in README and every DESIGN §N reference resolves."""
    readme = (REPO_ROOT / "README.md").read_text()
    assert docs_check.undocumented_flags(readme) == []
    design = (REPO_ROOT / "DESIGN.md").read_text()
    refs = docs_check.referenced_design_sections()
    assert docs_check.missing_design_sections(design, refs) == {}
    assert "9" in refs, "DESIGN.md §9 should be referenced by the sources"


def test_removing_workers_from_readme_fails():
    """The flag check is live: dropping --workers from README is a failure."""
    readme = (REPO_ROOT / "README.md").read_text()
    stripped = readme.replace("--workers", "")
    assert "--workers" in docs_check.undocumented_flags(stripped)


def test_dangling_design_reference_fails():
    """The section check is live: a §99 reference has no matching heading."""
    design = (REPO_ROOT / "DESIGN.md").read_text()
    refs = {"99": {"src/fake.py"}}
    assert docs_check.missing_design_sections(design, refs) == refs


def test_main_exits_zero_on_current_tree(capsys):
    """The CLI entry point agrees with the pure functions."""
    assert docs_check.main() == 0
    assert "docs-check: OK" in capsys.readouterr().out
