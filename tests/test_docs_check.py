"""The docs-check CI gate works in both directions (tools/docs_check.py).

Asserts the current tree passes, and that the checks are not vacuous:
they must fail if ``--workers`` disappeared from README.md, if README
mentioned a flag nothing defines, or if a ``DESIGN.md §N`` reference
pointed at a missing section.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "docs_check", REPO_ROOT / "tools" / "docs_check.py")
docs_check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(docs_check)


def test_current_tree_passes():
    """Every CLI flag is in README and every DESIGN §N reference resolves."""
    readme = (REPO_ROOT / "README.md").read_text()
    assert docs_check.undocumented_flags(readme) == []
    design = (REPO_ROOT / "DESIGN.md").read_text()
    refs = docs_check.referenced_design_sections()
    assert docs_check.missing_design_sections(design, refs) == {}
    assert "9" in refs, "DESIGN.md §9 should be referenced by the sources"


def test_removing_workers_from_readme_fails():
    """The flag check is live: dropping --workers from README is a failure."""
    readme = (REPO_ROOT / "README.md").read_text()
    stripped = readme.replace("--workers", "")
    assert "--workers" in docs_check.undocumented_flags(stripped)


def test_readme_mentions_only_known_flags():
    """The reverse direction: every --flag README mentions is defined by
    the CLI parser, a benchmark/tool/example script, or the external
    allowlist."""
    readme = (REPO_ROOT / "README.md").read_text()
    known = docs_check.known_flags()
    assert docs_check.unknown_readme_flags(readme, known) == []
    # the allowlist and the scrape both feed the known set
    assert "--benchmark-only" in known          # external (pytest-benchmark)
    assert "--executors" in known               # scraped from bench_parallel
    assert "--shm" in known                     # repro.cli parser


def test_phantom_readme_flag_fails():
    """The reverse check is live: a flag nothing defines is a failure."""
    readme = (REPO_ROOT / "README.md").read_text()
    doctored = readme + "\nRun with `--does-not-exist` for magic.\n"
    unknown = docs_check.unknown_readme_flags(doctored,
                                              docs_check.known_flags())
    assert unknown == ["--does-not-exist"]


def test_dangling_design_reference_fails():
    """The section check is live: a §99 reference has no matching heading."""
    design = (REPO_ROOT / "DESIGN.md").read_text()
    refs = {"99": {"src/fake.py"}}
    assert docs_check.missing_design_sections(design, refs) == refs


def test_main_exits_zero_on_current_tree(capsys):
    """The CLI entry point agrees with the pure functions."""
    assert docs_check.main() == 0
    assert "docs-check: OK" in capsys.readouterr().out
