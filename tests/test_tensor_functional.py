"""Unit + property tests: functional ops (losses, softmax, dropout)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, functional as F
from tests.conftest import assert_grad_close, numerical_gradient

R = np.random.default_rng(7)


def _t(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True,
                  dtype=np.float64)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = _t(R.normal(size=(4, 6)) * 10)
        out = F.softmax(x, axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4), atol=1e-12)

    def test_stable_under_large_logits(self):
        x = _t(np.asarray([[1000.0, 1000.0, -1000.0]]))
        out = F.softmax(x, axis=1)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data[0, :2], [0.5, 0.5], atol=1e-9)

    def test_gradcheck(self):
        x0 = R.normal(size=(3, 4))

        def f(v):
            return (F.softmax(_t(v), axis=1) ** 2).sum()

        x = _t(x0)
        (F.softmax(x, axis=1) ** 2).sum().backward()
        assert_grad_close(x.grad, numerical_gradient(
            lambda v: f(v).item(), x0.copy()))

    def test_log_softmax_consistent(self):
        x = _t(R.normal(size=(2, 5)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), atol=1e-10)

    def test_log_softmax_gradcheck(self):
        x0 = R.normal(size=(2, 4))
        x = _t(x0)
        (F.log_softmax(x) * F.log_softmax(x)).sum().backward()
        num = numerical_gradient(
            lambda v: float((F.log_softmax(_t(v)).data ** 2).sum()), x0.copy())
        assert_grad_close(x.grad, num, atol=1e-5)


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = R.normal(size=(5, 3))
        labels = R.integers(0, 3, 5)
        loss = F.cross_entropy(_t(logits), labels)
        # manual
        e = np.exp(logits - logits.max(axis=1, keepdims=True))
        p = e / e.sum(axis=1, keepdims=True)
        manual = -np.log(p[np.arange(5), labels]).mean()
        np.testing.assert_allclose(loss.item(), manual, rtol=1e-10)

    def test_gradcheck(self):
        logits0 = R.normal(size=(4, 5))
        labels = R.integers(0, 5, 4)
        x = _t(logits0)
        F.cross_entropy(x, labels).backward()
        num = numerical_gradient(
            lambda v: F.cross_entropy(_t(v), labels).item(), logits0.copy())
        assert_grad_close(x.grad, num)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = F.cross_entropy(_t(logits), np.asarray([1, 2]))
        assert loss.item() < 1e-6

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            F.cross_entropy(_t(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))

    @given(st.integers(2, 8), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_uniform_logits_give_log_k(self, n, k):
        loss = F.cross_entropy(Tensor(np.zeros((n, k))),
                               np.zeros(n, dtype=int))
        np.testing.assert_allclose(loss.item(), np.log(k), rtol=1e-5)


class TestOtherLosses:
    def test_nll_matches_cross_entropy(self):
        logits = R.normal(size=(4, 3))
        labels = R.integers(0, 3, 4)
        ce = F.cross_entropy(_t(logits), labels).item()
        nll = F.nll_loss(F.log_softmax(_t(logits), axis=1), labels).item()
        np.testing.assert_allclose(ce, nll, rtol=1e-6)

    def test_mse(self):
        pred = _t([1.0, 2.0])
        loss = F.mse_loss(pred, [0.0, 0.0])
        np.testing.assert_allclose(loss.item(), 2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])

    def test_smooth_l1_quadratic_zone(self):
        pred = _t([0.5])
        loss = F.smooth_l1_loss(pred, [0.0], beta=1.0)
        np.testing.assert_allclose(loss.item(), 0.125)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [0.5])

    def test_smooth_l1_linear_zone(self):
        pred = _t([3.0])
        loss = F.smooth_l1_loss(pred, [0.0], beta=1.0)
        np.testing.assert_allclose(loss.item(), 2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0])

    def test_logsumexp_stable_and_correct(self):
        x0 = R.normal(size=(3, 4))
        out = F.logsumexp(_t(x0), axis=1)
        np.testing.assert_allclose(out.data, np.log(np.exp(x0).sum(axis=1)),
                                   rtol=1e-8)
        big = F.logsumexp(Tensor(np.asarray([[1e4, 1e4]])), axis=1)
        assert np.isfinite(big.data).all()

    def test_logsumexp_gradcheck(self):
        x0 = R.normal(size=(2, 3))
        x = _t(x0)
        F.logsumexp(x, axis=1).sum().backward()
        num = numerical_gradient(
            lambda v: float(np.log(np.exp(v).sum(axis=1)).sum()), x0.copy())
        assert_grad_close(x.grad, num)


class TestDropoutAccuracyHelpers:
    def test_dropout_eval_is_identity(self):
        x = Tensor(R.normal(size=(10,)).astype(np.float32))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, 0.3, rng, training=True)
        np.testing.assert_allclose(out.data.mean(), 1.0, atol=0.02)

    def test_dropout_p_one_rejected(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))

    def test_one_hot(self):
        oh = F.one_hot(np.asarray([0, 2]), 3)
        np.testing.assert_allclose(oh, [[1, 0, 0], [0, 0, 1]])

    def test_accuracy(self):
        logits = np.asarray([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert F.accuracy(logits, np.asarray([0, 1, 1])) == pytest.approx(2 / 3)

    def test_leaky_relu_grad(self):
        x = _t([-2.0, 3.0])
        F.leaky_relu(x, 0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])
