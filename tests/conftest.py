"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticCIFAR10, dirichlet_partition
from repro.fl import make_federated_clients
from repro.models import build_model


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def numerical_gradient(f, x, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        hi = f(x)
        x[i] = old - eps
        lo = f(x)
        x[i] = old
        g[i] = (hi - lo) / (2 * eps)
    return g


def assert_grad_close(analytic, numeric, atol=1e-6, rtol=1e-4):
    analytic = np.asarray(analytic, dtype=np.float64)
    numeric = np.asarray(numeric, dtype=np.float64)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


@pytest.fixture(scope="session")
def tiny_dataset():
    """800-sample 12x12 synthetic CIFAR — shared read-only across tests."""
    return SyntheticCIFAR10(n_samples=800, size=12, seed=99)


@pytest.fixture(scope="session")
def tiny_setting(tiny_dataset):
    """(model_fn, partition) for FL tests; clients built per test."""
    parts = dirichlet_partition(tiny_dataset.y, 4, beta=0.5, seed=3)

    def model_fn():
        return build_model("resnet20", width_mult=0.2, input_size=12, seed=11)

    return model_fn, parts


@pytest.fixture
def tiny_clients(tiny_dataset, tiny_setting):
    _, parts = tiny_setting
    return make_federated_clients(tiny_dataset, parts, batch_size=32, seed=5)


@pytest.fixture
def tiny_model_fn(tiny_setting):
    return tiny_setting[0]
