"""Low-bit quantized transport (DESIGN.md §16) and sparse-at-init masks.

The contracts under test:

- the codec level — vectorized nibble kernels bitwise-match the naive
  reference, stochastic rounding stays on the grid with per-block error
  at most one scale step, records are self-describing and round-trip
  through the ordinary wire format, and structural damage raises
  :class:`PayloadError`;
- the payload level — non-float and tiny entries pass through
  bit-exactly, ``quant_payload_nbytes`` predicts the serialized size
  exactly, error feedback carries rounding residuals across rounds, and
  NUL-bearing names are rejected;
- the algorithm level — ``bits=32`` is byte-identical to the unquantized
  run (the CI golden), the ledger charges exactly the codec-reported
  bytes, and quantized runs compose byte-identically across the process
  pool, the vectorized executor, the async runtime, and the
  population-scale streaming folds;
- the sparse-at-init algorithms — SSFL's zero-bootstrap magnitude mask
  and SalientGrads' charged gradient-saliency mask, index-free uplinks,
  unmasked coordinates pinned at init, and multiplicative stacking with
  the low-bit codec.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import dirichlet_partition
from repro.fl import (ALGORITHMS, AsyncConfig, AsyncFederatedRunner,
                      AsyncProfile, ScaleRunner, make_executor,
                      make_federated_clients, make_quant_config)
from repro.fl.comm import PayloadError, deserialize_state, payload_nbytes, \
    serialize_state
from repro.fl.fedavg import FedAvg
from repro.fl.quant import (QUANT_SUFFIX, QUANT_WIRE_KEY, QuantConfig,
                            decode_record, dequantize_payload,
                            dequantize_values, encode_record,
                            naive_pack_nibbles, naive_unpack_nibbles,
                            pack_nibbles, quant_payload_nbytes,
                            quantize_payload, record_nbytes,
                            stochastic_quantize, unpack_nibbles)
from repro.fl.sparse_init import SSFL, SalientGrads
from repro.fl.topk import FedTopK
from repro.core.spatl import SPATL
from repro.core.selection_policies import StaticSaliencyPolicy

INT8 = QuantConfig(bits=8)
INT4 = QuantConfig(bits=4)


def _rng(seed=0):
    return np.random.default_rng(seed)


# --------------------------------------------------------------------- #
# codec core                                                            #
# --------------------------------------------------------------------- #
class TestNibbleKernels:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 64, 1023])
    def test_vectorized_matches_naive_bitwise(self, n):
        codes = _rng(n).integers(0, 16, size=n).astype(np.uint8)
        packed = pack_nibbles(codes)
        np.testing.assert_array_equal(packed, naive_pack_nibbles(codes))
        np.testing.assert_array_equal(unpack_nibbles(packed, n),
                                      naive_unpack_nibbles(packed, n))

    @pytest.mark.parametrize("n", [1, 5, 6, 333])
    def test_roundtrip_is_identity(self, n):
        codes = _rng(7 + n).integers(0, 16, size=n).astype(np.uint8)
        np.testing.assert_array_equal(
            unpack_nibbles(pack_nibbles(codes), n), codes)

    def test_packed_size_is_ceil_half(self):
        assert pack_nibbles(np.zeros(5, dtype=np.uint8)).size == 3
        assert pack_nibbles(np.zeros(6, dtype=np.uint8)).size == 3


class TestStochasticQuantize:
    @pytest.mark.parametrize("bits,block", [(8, 0), (8, 16), (4, 0), (4, 16)])
    def test_codes_stay_on_grid_and_error_bounded(self, bits, block):
        x = _rng(1).normal(size=200).astype(np.float64)
        codes, scales = stochastic_quantize(x, bits, block, _rng(2))
        qmax = 127 if bits == 8 else 7
        bias = 128 if bits == 8 else 8
        assert codes.dtype == np.uint8
        assert codes.min() >= bias - qmax and codes.max() <= bias + qmax
        assert scales.dtype == np.float32
        deq = dequantize_values(codes, scales, bits, block)
        # Stochastic rounding can land on either neighbouring grid point,
        # so the per-value bound is one full scale step (not scale / 2 as
        # deterministic nearest-rounding would give).
        width = x.size if block == 0 else block
        for b in range(scales.size):
            seg = slice(b * width, (b + 1) * width)
            err = np.abs(x[seg] - deq[seg])
            assert err.max() <= scales[b] * (1 + 1e-5) + 1e-12

    def test_zero_tensor_has_zero_scale_and_exact_roundtrip(self):
        codes, scales = stochastic_quantize(np.zeros(10), 8, 0, _rng(0))
        assert scales[0] == 0.0
        np.testing.assert_array_equal(
            dequantize_values(codes, scales, 8, 0), np.zeros(10))

    def test_same_rng_stream_reproduces_codes(self):
        x = _rng(5).normal(size=97)
        a, _ = stochastic_quantize(x, 4, 16, _rng(11))
        b, _ = stochastic_quantize(x, 4, 16, _rng(11))
        np.testing.assert_array_equal(a, b)

    def test_unbiased_over_many_draws(self):
        x = np.asarray([0.3, -0.7, 0.123, 1.0], dtype=np.float64)
        draws = 3000
        acc = np.zeros_like(x)
        rng = _rng(3)
        for _ in range(draws):
            codes, scales = stochastic_quantize(x, 4, 0, rng)
            acc += dequantize_values(codes, scales, 4, 0)
        scale = float(np.abs(x).max() / 7)
        # mean of `draws` draws has std <= scale/2/sqrt(draws); 0.1*scale
        # is a > 10-sigma band for the seeds pinned here.
        np.testing.assert_allclose(acc / draws, x, atol=0.1 * scale)

    def test_block_count_rounds_up(self):
        _, scales = stochastic_quantize(np.ones(100), 8, 32, _rng(0))
        assert scales.size == 4          # ceil(100 / 32)


class TestRecords:
    @pytest.mark.parametrize("config", [INT8, INT4, QuantConfig(bits=16),
                                        QuantConfig(bits=8, block=64)])
    def test_decode_reconstructs_exactly_what_encode_reports(self, config):
        arr = _rng(9).normal(size=(6, 5, 4)).astype(np.float32)
        record, deq = encode_record(arr, config, _rng(1))
        assert record.dtype == np.uint8
        assert record.size == record_nbytes(arr, config.bits, config.block)
        decoded = decode_record(record)
        assert decoded.dtype == arr.dtype and decoded.shape == arr.shape
        np.testing.assert_array_equal(decoded, deq)

    def test_fp16_record_restores_original_float64_dtype(self):
        arr = np.asarray([0.5, -1.25, 3.0], dtype=np.float64)
        record, deq = encode_record(arr, QuantConfig(bits=16), _rng(0))
        decoded = decode_record(record)
        assert decoded.dtype == np.float64
        np.testing.assert_array_equal(decoded, arr)   # fp16-representable
        np.testing.assert_array_equal(deq, arr)

    def test_record_survives_wire_roundtrip(self):
        arr = _rng(2).normal(size=33).astype(np.float32)
        record, deq = encode_record(arr, INT4, _rng(3))
        blob = serialize_state({"w" + QUANT_SUFFIX: record})
        back = deserialize_state(blob)
        np.testing.assert_array_equal(decode_record(back["w" + QUANT_SUFFIX]),
                                      deq)

    def test_truncated_record_raises_payload_error(self):
        record, _ = encode_record(np.ones(20, dtype=np.float32), INT8,
                                  _rng(0))
        with pytest.raises(PayloadError):
            decode_record(record[:3])          # shorter than the header
        with pytest.raises(PayloadError):
            decode_record(record[:-1])         # data bytes missing

    def test_garbage_bit_width_raises_payload_error(self):
        record, _ = encode_record(np.ones(8, dtype=np.float32), INT8,
                                  _rng(0))
        bad = record.copy()
        bad[0] = 3
        with pytest.raises(PayloadError, match="bit width"):
            decode_record(bad)


# --------------------------------------------------------------------- #
# payload level                                                         #
# --------------------------------------------------------------------- #
def _mixed_payload(seed=0):
    rng = _rng(seed)
    return {
        "conv.weight": rng.normal(size=(8, 3, 3, 3)).astype(np.float32),
        "bn.running_mean": rng.normal(size=8).astype(np.float32),
        "bn.num_batches_tracked": np.asarray(7, dtype=np.int64),
        "mask.idx": rng.integers(0, 99, size=40).astype(np.int32),
        "tiny_bias": np.asarray([0.5], dtype=np.float32),
    }


class TestQuantizePayload:
    @pytest.mark.parametrize("config", [INT8, INT4])
    def test_non_float_and_tiny_entries_pass_through(self, config):
        payload = _mixed_payload()
        wire_dict, decoded = quantize_payload(payload, config, _rng(1))
        for name in ("bn.num_batches_tracked", "mask.idx", "tiny_bias"):
            assert wire_dict[name] is decoded[name]
            np.testing.assert_array_equal(wire_dict[name], payload[name])
            assert wire_dict[name].dtype == payload[name].dtype
        assert "conv.weight" + QUANT_SUFFIX in wire_dict
        assert "conv.weight" not in wire_dict

    @pytest.mark.parametrize("config", [INT8, INT4, QuantConfig(bits=16),
                                        QuantConfig(bits=4, block=32)])
    @pytest.mark.parametrize("checksums", [False, True])
    def test_sizing_is_exact(self, config, checksums):
        payload = _mixed_payload(2)
        wire_dict, _ = quantize_payload(payload, config, _rng(4))
        assert quant_payload_nbytes(payload, config, checksums=checksums) \
            == payload_nbytes(wire_dict, checksums=checksums)
        assert payload_nbytes(wire_dict) \
            == len(serialize_state(wire_dict))

    def test_dequantize_payload_matches_sender_side_decoded(self):
        payload = _mixed_payload(3)
        wire_dict, decoded = quantize_payload(payload, INT4, _rng(5))
        received = dequantize_payload(wire_dict)
        assert set(received) == set(payload)
        for name in payload:
            np.testing.assert_array_equal(received[name], decoded[name],
                                          err_msg=name)
            assert received[name].dtype == payload[name].dtype

    def test_nul_in_payload_name_rejected(self):
        with pytest.raises(ValueError, match="NUL"):
            quantize_payload({"a\x00b": np.ones(4, dtype=np.float32)},
                             INT8, _rng(0))

    def test_error_feedback_residual_carries_over(self):
        x = _rng(6).normal(size=500).astype(np.float32)
        residuals = {}
        _, decoded = quantize_payload({"w": x}, INT4, _rng(7), residuals)
        # residual is exactly what this round's rounding dropped
        np.testing.assert_allclose(residuals["w"], x - decoded["w"],
                                   atol=1e-6)
        # next round quantizes x + residual, so the *cumulative* fed-back
        # signal is unbiased even at 4 bits
        _, decoded2 = quantize_payload({"w": x}, INT4, _rng(8), residuals)
        np.testing.assert_allclose(residuals["w"],
                                   (x - decoded["w"]) + x - decoded2["w"],
                                   atol=1e-5)

    def test_shape_changed_residual_is_reset_not_misapplied(self):
        residuals = {"w": np.full(9, 100.0, dtype=np.float32)}
        x = _rng(9).normal(size=500).astype(np.float32)
        _, decoded = quantize_payload({"w": x}, INT8, _rng(10), residuals)
        assert residuals["w"].shape == x.shape
        # the stale residual was dropped: deq tracks x, not x + 100
        assert np.abs(decoded["w"] - x).max() < 1.0

    def test_quantization_reduces_bytes(self):
        payload = {"w": _rng(11).normal(size=10_000).astype(np.float32)}
        dense = payload_nbytes(payload)
        assert quant_payload_nbytes(payload, INT8) < dense / 3.8
        assert quant_payload_nbytes(payload, INT4) < dense / 7.4


# --------------------------------------------------------------------- #
# algorithm integration                                                 #
# --------------------------------------------------------------------- #
N_CLIENTS = 4
ROUNDS = 2


def _fresh_clients(tiny_dataset, tiny_setting):
    _, parts = tiny_setting
    return make_federated_clients(tiny_dataset, parts, batch_size=32, seed=5)


def _build(name, model_fn, clients, quant=None, **kw):
    common = dict(lr=0.05, local_epochs=1, sample_ratio=1.0, seed=0, **kw)
    if quant is not None:
        common["quant"] = quant
    if name == "spatl":
        return SPATL(model_fn, clients,
                     selection_policy=StaticSaliencyPolicy(0.3), **common)
    return ALGORITHMS[name](model_fn, clients, **common)


def _final_state(algo):
    return serialize_state(dict(algo.global_model.state_dict()))


def _uplink_total(algo):
    return sum(sum(per.values()) for per in algo.ledger.uplink.values())


class TestAlgorithmIntegration:
    def test_bits32_config_is_byte_identical_to_unquantized(
            self, tiny_model_fn, tiny_dataset, tiny_setting):
        """The CI golden: quant_bits=32 must not change a single byte."""
        base = _build("fedavg", tiny_model_fn,
                      _fresh_clients(tiny_dataset, tiny_setting))
        base.run(ROUNDS)
        quant = _build("fedavg", tiny_model_fn,
                       _fresh_clients(tiny_dataset, tiny_setting),
                       quant=make_quant_config(32))
        assert quant.quant is None
        quant.run(ROUNDS)
        assert _final_state(quant) == _final_state(base)
        assert quant.ledger.total_bytes() == base.ledger.total_bytes()

    @pytest.mark.parametrize("name", ["fedavg", "fedprox", "fednova",
                                      "scaffold", "fedtopk", "spatl",
                                      "salientgrads", "ssfl"])
    def test_every_algorithm_runs_quantized_and_charges_fewer_bytes(
            self, name, tiny_model_fn, tiny_dataset, tiny_setting):
        dense = _build(name, tiny_model_fn,
                       _fresh_clients(tiny_dataset, tiny_setting))
        dense.run(1)
        quant = _build(name, tiny_model_fn,
                       _fresh_clients(tiny_dataset, tiny_setting),
                       quant=INT8)
        log = quant.run(1)
        assert np.isfinite(log["train_loss"][-1])
        assert _uplink_total(quant) < _uplink_total(dense)

    def test_ledger_charges_exactly_the_codec_bytes(
            self, tiny_model_fn, tiny_dataset, tiny_setting):
        algo = _build("fedavg", tiny_model_fn,
                      _fresh_clients(tiny_dataset, tiny_setting), quant=INT8)
        algo.run_round(0)
        template = {k: np.asarray(v)
                    for k, v in algo.global_model.state_dict().items()}
        per_client = quant_payload_nbytes(template, INT8)
        assert _uplink_total(algo) == per_client * N_CLIENTS

    def test_residuals_live_in_client_state_and_wire_key_is_stashed(
            self, tiny_model_fn, tiny_dataset, tiny_setting):
        clients = _fresh_clients(tiny_dataset, tiny_setting)
        algo = _build("fedavg", tiny_model_fn, clients, quant=INT4)
        algo.run_round(0)
        for client in clients:
            res = client.local_state["quant_residual"]
            assert res and all(v.dtype.kind == "f" for v in res.values())
        # no-EF config keeps client state clean
        clients2 = _fresh_clients(tiny_dataset, tiny_setting)
        algo2 = _build("fedavg", tiny_model_fn, clients2,
                       quant=QuantConfig(bits=4, error_feedback=False))
        algo2.run_round(0)
        assert all("quant_residual" not in c.local_state for c in clients2)

    def test_bn_step_counter_survives_quantized_roundtrip(
            self, tiny_model_fn, tiny_dataset, tiny_setting):
        algo = _build("fedavg", tiny_model_fn,
                      _fresh_clients(tiny_dataset, tiny_setting), quant=INT4)
        algo.run_round(0)
        state = dict(algo.global_model.state_dict())
        counters = [v for k, v in state.items()
                    if k.endswith("num_batches_tracked")]
        assert counters
        assert all(np.asarray(v).dtype.kind in "iu" for v in counters)


# --------------------------------------------------------------------- #
# executor / runtime composition                                        #
# --------------------------------------------------------------------- #
class TestComposition:
    """A quantized run is one protocol: every engine reproduces the
    serial engine's bytes, ledger, and error-feedback trajectory."""

    def _serial(self, tiny_model_fn, tiny_dataset, tiny_setting, quant):
        algo = _build("fedavg", tiny_model_fn,
                      _fresh_clients(tiny_dataset, tiny_setting), quant=quant)
        algo.run(ROUNDS)
        return algo

    @pytest.mark.parametrize("kind,workers", [("process", 2),
                                              ("vectorized", 1)])
    def test_executors_match_serial_bitwise(self, kind, workers,
                                            tiny_model_fn, tiny_dataset,
                                            tiny_setting):
        base = self._serial(tiny_model_fn, tiny_dataset, tiny_setting, INT4)
        algo = _build("fedavg", tiny_model_fn,
                      _fresh_clients(tiny_dataset, tiny_setting), quant=INT4,
                      executor=make_executor(workers, kind=kind))
        try:
            algo.run(ROUNDS)
        finally:
            algo.close()
        assert _final_state(algo) == _final_state(base)
        assert algo.ledger.total_bytes() == base.ledger.total_bytes()

    def test_async_buffered_commits_match_sync_bitwise(
            self, tiny_model_fn, tiny_dataset, tiny_setting):
        base = self._serial(tiny_model_fn, tiny_dataset, tiny_setting, INT8)
        async_algo = _build("fedavg", tiny_model_fn,
                            _fresh_clients(tiny_dataset, tiny_setting),
                            quant=INT8)
        n = len(async_algo.clients)
        runner = AsyncFederatedRunner(
            async_algo, AsyncProfile(seed=5),
            AsyncConfig(buffer_k=n, max_inflight=n))
        results = runner.run(steps=ROUNDS)
        assert all(r.n_updates == n for r in results)
        assert _final_state(async_algo) == _final_state(base)
        assert async_algo.ledger.total_bytes() == base.ledger.total_bytes()

    def test_scale_runner_streaming_fold_matches_plain_run(
            self, tmp_path, tiny_model_fn, tiny_dataset, tiny_setting):
        base = self._serial(tiny_model_fn, tiny_dataset, tiny_setting, INT8)
        algo = _build("fedavg", tiny_model_fn,
                      _fresh_clients(tiny_dataset, tiny_setting), quant=INT8)
        runner = ScaleRunner(algo, edges=2, spill_dir=tmp_path / "spills")
        runner.run(ROUNDS)
        assert _final_state(algo) == _final_state(base)
        assert algo.ledger.total_bytes() == base.ledger.total_bytes()


# --------------------------------------------------------------------- #
# sparse-at-init algorithms                                             #
# --------------------------------------------------------------------- #
class TestSparseInit:
    DENSITY = 0.25

    def _build(self, cls, tiny_model_fn, tiny_dataset, tiny_setting, **kw):
        kw.setdefault("density", self.DENSITY)
        return cls(tiny_model_fn, _fresh_clients(tiny_dataset, tiny_setting),
                   lr=0.05, local_epochs=1, sample_ratio=1.0, seed=0, **kw)

    def test_density_validated(self, tiny_model_fn, tiny_dataset,
                               tiny_setting):
        with pytest.raises(ValueError, match="density"):
            self._build(SSFL, tiny_model_fn, tiny_dataset, tiny_setting,
                        density=0.0)

    def test_ssfl_mask_is_top_magnitude_of_init(self, tiny_model_fn,
                                                tiny_dataset, tiny_setting):
        algo = self._build(SSFL, tiny_model_fn, tiny_dataset, tiny_setting)
        params = dict(algo.global_model.named_parameters())
        assert set(algo.masks) == set(params)
        for name, idx in algo.masks.items():
            flat = np.abs(params[name].data.ravel())
            k = max(1, int(round(self.DENSITY * flat.size)))
            assert idx.size == k
            assert np.all(np.diff(idx) > 0)          # sorted, unique
            # every kept coordinate outranks every dropped one
            if k < flat.size:
                dropped = np.setdiff1d(np.arange(flat.size), idx)
                assert flat[idx].min() >= flat[dropped].max() - 1e-12

    def test_ssfl_bootstrap_is_free_salientgrads_is_charged(
            self, tiny_model_fn, tiny_dataset, tiny_setting):
        ssfl = self._build(SSFL, tiny_model_fn, tiny_dataset, tiny_setting)
        assert ssfl.ledger.total_bytes() == 0
        sg = self._build(SalientGrads, tiny_model_fn, tiny_dataset,
                         tiny_setting)
        assert sg.ledger.round_bytes(0) > 0          # scores up + mask down
        assert sg.ledger.uplink[0] and sg.ledger.downlink[0]

    def test_unmasked_coordinates_stay_at_init(self, tiny_model_fn,
                                               tiny_dataset, tiny_setting):
        algo = self._build(SSFL, tiny_model_fn, tiny_dataset, tiny_setting)
        init = {n: p.data.copy()
                for n, p in algo.global_model.named_parameters()}
        algo.run(2)
        changed_any = False
        for name, p in algo.global_model.named_parameters():
            keep = np.zeros(p.data.size, dtype=bool)
            keep[algo.masks[name]] = True
            flat_now = p.data.ravel()
            flat_init = init[name].ravel()
            np.testing.assert_array_equal(flat_now[~keep], flat_init[~keep],
                                          err_msg=name)
            changed_any |= bool(np.any(flat_now[keep] != flat_init[keep]))
        assert changed_any                           # training did happen

    def test_uplink_is_density_priced_and_index_free(
            self, tiny_model_fn, tiny_dataset, tiny_setting):
        dense = _build("fedavg", tiny_model_fn,
                       _fresh_clients(tiny_dataset, tiny_setting))
        dense.run_round(0)
        algo = self._build(SSFL, tiny_model_fn, tiny_dataset, tiny_setting)
        algo.run_round(0)
        # masked floats shrink to ~density of their dense bytes; dense
        # buffers ride along unchanged, so total sits well under 50%
        assert _uplink_total(algo) < 0.5 * _uplink_total(dense)

    def test_quant_stacks_multiplicatively_on_sparse_uplink(
            self, tiny_model_fn, tiny_dataset, tiny_setting):
        plain = self._build(SSFL, tiny_model_fn, tiny_dataset, tiny_setting)
        plain.run_round(0)
        quant = self._build(SSFL, tiny_model_fn, tiny_dataset, tiny_setting,
                            quant=INT4)
        log = quant.run(1)
        assert np.isfinite(log["train_loss"][-1])
        assert _uplink_total(quant) < 0.5 * _uplink_total(plain)

    def test_salientgrads_trains(self, tiny_model_fn, tiny_dataset,
                                 tiny_setting):
        algo = self._build(SalientGrads, tiny_model_fn, tiny_dataset,
                           tiny_setting)
        log = algo.run(2)
        assert np.isfinite(log["train_loss"][-1])
        assert len(log["val_acc"]) == 2

    def test_deterministic_given_seed(self, tiny_model_fn, tiny_dataset,
                                      tiny_setting):
        runs = []
        for _ in range(2):
            algo = self._build(SSFL, tiny_model_fn, tiny_dataset,
                               tiny_setting, quant=INT8)
            algo.run(2)
            runs.append((_final_state(algo), algo.ledger.total_bytes()))
        assert runs[0] == runs[1]
