"""Unit tests: FL base loop, client construction, sampling, local training."""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR10, dirichlet_partition
from repro.fl import Client, FedAvg, make_federated_clients, sample_clients
from repro.fl.local import train_local, weighted_average_states
from repro.models import build_model


class TestSampling:
    def _clients(self, n):
        ds = SyntheticCIFAR10(n_samples=20 * n, size=12, seed=0)
        parts = [np.arange(i * 20, (i + 1) * 20) for i in range(n)]
        return make_federated_clients(ds, parts, seed=0)

    def test_sample_count(self):
        clients = self._clients(10)
        assert len(sample_clients(clients, 0.4, seed=0, round_idx=0)) == 4
        assert len(sample_clients(clients, 1.0, seed=0, round_idx=0)) == 10

    def test_sample_distinct(self):
        clients = self._clients(10)
        chosen = sample_clients(clients, 0.7, seed=0, round_idx=3)
        ids = [c.client_id for c in chosen]
        assert len(set(ids)) == len(ids)

    def test_deterministic_per_round(self):
        clients = self._clients(10)
        a = [c.client_id for c in sample_clients(clients, 0.5, 1, 2)]
        b = [c.client_id for c in sample_clients(clients, 0.5, 1, 2)]
        assert a == b
        c = [c.client_id for c in sample_clients(clients, 0.5, 1, 3)]
        assert a != c  # different round, different draw (w.h.p.)

    def test_invalid_ratio(self):
        clients = self._clients(4)
        with pytest.raises(ValueError):
            sample_clients(clients, 0.0, 0, 0)
        with pytest.raises(ValueError):
            sample_clients(clients, 1.5, 0, 0)

    def test_at_least_one(self):
        clients = self._clients(4)
        assert len(sample_clients(clients, 0.01, 0, 0)) == 1


class TestClients:
    def test_make_federated_clients_splits(self):
        ds = SyntheticCIFAR10(n_samples=200, size=12, seed=0)
        parts = dirichlet_partition(ds.y, 4, beta=0.5, seed=0)
        clients = make_federated_clients(ds, parts, val_fraction=0.25, seed=0)
        assert len(clients) == 4
        for c, p in zip(clients, parts):
            assert len(c.train_data) + len(c.val_data) == len(p)
            assert len(c.val_data) >= 1

    def test_evaluate_returns_acc_and_loss(self, tiny_clients, tiny_model_fn):
        model = tiny_model_fn()
        acc, loss = tiny_clients[0].evaluate(model)
        assert 0.0 <= acc <= 1.0
        assert loss > 0

    def test_train_loader_deterministic(self, tiny_clients):
        c = tiny_clients[0]
        a = [yb.tolist() for _, yb in c.train_loader(5)]
        b = [yb.tolist() for _, yb in c.train_loader(5)]
        assert a == b


class TestLocalTraining:
    def test_reduces_loss(self, tiny_clients, tiny_model_fn):
        model = tiny_model_fn()
        loss1, steps, _ = train_local(model, tiny_clients[0], 0, epochs=1,
                                      lr=0.05)
        loss2, _, _ = train_local(model, tiny_clients[0], 1, epochs=2,
                                  lr=0.05)
        assert steps == len(tiny_clients[0].train_loader(0))
        assert loss2 < loss1

    def test_param_filter_restricts_updates(self, tiny_clients, tiny_model_fn):
        model = tiny_model_fn()
        enc_before = {n: p.data.copy()
                      for n, p in model.encoder.named_parameters()}
        train_local(model, tiny_clients[0], 0, epochs=1, lr=0.1,
                    param_filter=lambda n: n.startswith("predictor."))
        for n, p in model.encoder.named_parameters():
            np.testing.assert_array_equal(p.data, enc_before[n], err_msg=n)

    def test_extra_loss_term_used(self, tiny_clients, tiny_model_fn):
        model = tiny_model_fn()
        calls = []

        def extra(m):
            calls.append(1)
            from repro.tensor import Tensor
            return next(iter(m.parameters())).sum() * 0.0

        train_local(model, tiny_clients[0], 0, epochs=1, lr=0.05,
                    extra_loss=extra)
        assert len(calls) > 0


class TestWeightedAverage:
    def test_exact_weighted_mean(self):
        s1 = {"w": np.asarray([0.0, 0.0], dtype=np.float32)}
        s2 = {"w": np.asarray([3.0, 6.0], dtype=np.float32)}
        avg = weighted_average_states([s1, s2], [1.0, 2.0])
        np.testing.assert_allclose(avg["w"], [2.0, 4.0])

    def test_integer_buffers_take_first(self):
        s1 = {"n": np.asarray(3, dtype=np.int64)}
        s2 = {"n": np.asarray(7, dtype=np.int64)}
        avg = weighted_average_states([s1, s2], [1.0, 1.0])
        assert avg["n"] == 3

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            weighted_average_states([], [])
        with pytest.raises(ValueError):
            weighted_average_states([{"a": np.ones(1)}], [1.0, 2.0])


class TestRunLoop:
    def test_target_stop(self, tiny_clients, tiny_model_fn):
        algo = FedAvg(tiny_model_fn, tiny_clients, lr=0.05, local_epochs=1,
                      seed=0)
        log = algo.run(rounds=30, target_accuracy=0.0)  # trivially reached
        assert len(log["val_acc"]) == 1
        assert log.meta["reached_target_at"] == 1

    def test_patience_stop(self, tiny_clients, tiny_model_fn):
        algo = FedAvg(tiny_model_fn, tiny_clients, lr=0.0, local_epochs=1,
                      seed=0)  # lr=0: accuracy frozen -> converges fast
        log = algo.run(rounds=30, patience=2)
        assert len(log["val_acc"]) <= 5
        assert "converged_at" in log.meta

    def test_run_resumes_round_numbering(self, tiny_clients, tiny_model_fn):
        algo = FedAvg(tiny_model_fn, tiny_clients, lr=0.05, local_epochs=1,
                      seed=0)
        algo.run(rounds=2)
        assert algo.rounds_completed == 2
        algo.run(rounds=1)
        assert algo.rounds_completed == 3

    def test_requires_clients(self, tiny_model_fn):
        with pytest.raises(ValueError):
            FedAvg(tiny_model_fn, [], lr=0.1)

    def test_log_has_comm_series(self, tiny_clients, tiny_model_fn):
        algo = FedAvg(tiny_model_fn, tiny_clients, lr=0.05, local_epochs=1,
                      seed=0)
        log = algo.run(rounds=2)
        assert len(log["round_gb"]) == 2
        assert log.meta["total_gb"] > 0
        assert log.meta["per_round_per_client_mb"] > 0

    def test_per_client_accuracy_length(self, tiny_clients, tiny_model_fn):
        algo = FedAvg(tiny_model_fn, tiny_clients, lr=0.05, local_epochs=1,
                      seed=0)
        algo.run(rounds=1)
        assert len(algo.per_client_accuracy()) == len(tiny_clients)

    def test_rounds_run_overwritten_on_resume(self, tiny_clients,
                                              tiny_model_fn):
        # regression: a setdefault kept the stale pre-resume count when the
        # same log object was reused across run() calls
        algo = FedAvg(tiny_model_fn, tiny_clients, lr=0.05, local_epochs=1,
                      seed=0)
        log = algo.run(rounds=2)
        assert log.meta["rounds_run"] == 2
        log = algo.run(rounds=1, log=log)
        assert log.meta["rounds_run"] == 3

    def test_empty_round_guard(self, tiny_clients, tiny_model_fn):
        algo = FedAvg(tiny_model_fn, tiny_clients, lr=0.05, local_epochs=1,
                      seed=0)
        with pytest.raises(ValueError):
            algo.aggregate([], 0)
