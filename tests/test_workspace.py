"""Workspace arena, gradient donation, dtype guard, and conv+BN folding.

Covers the DESIGN.md §10 machinery: buffer identity/zero semantics and
hit/miss accounting, slot lifetime tied to the owner, metrics export,
the ``_accumulate`` donation protocol (leaf grads never alias arena
memory), the float64 upcast guard over a full train step, and the
eval-only conv+BN fold.
"""

import gc

import numpy as np
import pytest

from repro.tensor import Tensor, forbid_dtype, no_grad, workspace
from repro.tensor.tensor import Tensor as RawTensor


class Owner:
    """Weak-referenceable slot owner."""


class TestWorkspaceSlot:
    def test_buffer_identity_and_keying(self):
        ws = workspace.slot_for(Owner())
        a = ws.buffer("t.x", (4, 4), np.float32)
        assert ws.buffer("t.x", (4, 4), np.float32) is a
        assert ws.buffer("t.x", (4, 4), np.float64) is not a
        assert ws.buffer("t.x", (2, 8), np.float32) is not a
        assert ws.buffer("t.y", (4, 4), np.float32) is not a

    def test_zero_semantics(self):
        ws = workspace.slot_for(Owner())
        buf = ws.buffer("t.alloc", (3,), np.float32, zero="alloc")
        assert np.all(buf == 0)
        buf[:] = 7
        assert np.all(ws.buffer("t.alloc", (3,), np.float32, zero="alloc") == 7)
        always = ws.buffer("t.always", (3,), np.float32, zero="always")
        always[:] = 5
        assert np.all(ws.buffer("t.always", (3,), np.float32,
                                zero="always") == 0)

    def test_cached_memoizes_builder(self):
        ws = workspace.slot_for(Owner())
        calls = []
        obj = ws.cached("t.view", ("k",), lambda: calls.append(1) or [1, 2])
        assert ws.cached("t.view", ("k",), lambda: calls.append(1) or [3]) is obj
        assert len(calls) == 1
        assert ws.cached("t.view", ("other",), lambda: [9]) == [9]

    def test_cached_views_stay_valid_over_buffer(self):
        # The memoized derived object may be a strided view over a cached
        # buffer; both must keep their identity across re-requests, so
        # closures that captured the view keep writing through to the
        # buffer (the conv gather indices and max-pool base offsets, and
        # the step compiler's bound closures, rely on this).
        ws = workspace.slot_for(Owner())
        buf = ws.buffer("t.vbase", (4, 6), np.float32)
        view = ws.cached("t.vview", ("win",), lambda: buf[:, ::2])
        assert ws.cached("t.vview", ("win",), lambda: None) is view
        assert ws.buffer("t.vbase", (4, 6), np.float32) is buf
        buf[...] = 7.0
        assert np.all(view == 7.0)

    def test_cohort_shapes_coexist_per_tag(self):
        # Cohort-mode stacks k clients into one (k*n, ...) batch; the same
        # slot then serves both the per-client and the stacked shape under
        # one tag.  Shapes are distinct keys: alternating between them
        # must reuse both buffers (no eviction, no reallocation) — the
        # vectorized executor's arena behaviour depends on it.
        ws = workspace.slot_for(Owner())
        small = ws.buffer("t.cohort", (8, 3, 4, 4), np.float32)
        big = ws.buffer("t.cohort", (32, 3, 4, 4), np.float32)
        assert small is not big
        st = workspace.tag_stats("t.cohort")
        hits0, misses0 = st.hits, st.misses
        for _ in range(3):
            assert ws.buffer("t.cohort", (32, 3, 4, 4), np.float32) is big
            assert ws.buffer("t.cohort", (8, 3, 4, 4), np.float32) is small
        assert st.misses == misses0
        assert st.hits == hits0 + 6

    def test_cached_keys_include_cohort_geometry(self):
        # Derived objects keyed by geometry tuples (e.g. maxpool.base keyed
        # by (n, c, h, w, ho, wo, s)) must not collide when cohort mode
        # changes only the leading batch extent.
        ws = workspace.slot_for(Owner())
        a = ws.cached("t.geom", (8, 3, 4, 4, 2), lambda: np.zeros(2))
        b = ws.cached("t.geom", (32, 3, 4, 4, 2), lambda: np.ones(2))
        assert a is not b
        assert ws.cached("t.geom", (8, 3, 4, 4, 2), lambda: None) is a
        assert ws.cached("t.geom", (32, 3, 4, 4, 2), lambda: None) is b

    def test_hit_miss_and_bytes_accounting(self):
        ws = workspace.slot_for(Owner())
        before = workspace.tag_stats("t.acct")
        h0, m0, s0 = before.hits, before.misses, before.bytes_saved
        ws.buffer("t.acct", (8,), np.float32)
        ws.buffer("t.acct", (8,), np.float32)
        st = workspace.tag_stats("t.acct")
        assert st.misses == m0 + 1
        assert st.hits == h0 + 1
        assert st.bytes_saved == s0 + 32
        assert 0 < st.hit_rate <= 1

    def test_slot_dies_with_owner(self):
        owner = Owner()
        slot = workspace.slot_for(owner)
        assert workspace.slot_for(owner) is slot
        ref_count = len(workspace._slots)
        del owner
        gc.collect()
        assert len(workspace._slots) < ref_count

    def test_publish_metrics(self):
        from repro.obs.metrics import MetricsRegistry
        ws = workspace.slot_for(Owner())
        ws.buffer("t.pub", (4,), np.float32)
        ws.buffer("t.pub", (4,), np.float32)
        reg = MetricsRegistry()
        workspace.publish_metrics(reg)
        st = workspace.tag_stats("t.pub")
        assert reg.counter("workspace.hits", tag="t.pub").value == st.hits
        assert reg.counter("workspace.misses", tag="t.pub").value == st.misses
        assert reg.counter("workspace.bytes_saved",
                           tag="t.pub").value == st.bytes_saved


class TestGradientDonation:
    """``_accumulate(grad, donate=...)``: 'fresh' transfers ownership
    unconditionally; 'scratch' (arena memory) is taken only by non-leaf
    nodes, whose grads the engine releases — user-visible ``.grad`` of
    leaves must never alias the arena."""

    def test_leaf_copies_scratch(self):
        leaf = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        arena = np.ones(3, dtype=np.float32)
        leaf._accumulate(arena, donate="scratch")
        assert not np.shares_memory(leaf.grad, arena)
        np.testing.assert_array_equal(leaf.grad, arena)

    def test_leaf_takes_fresh(self):
        leaf = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        fresh = np.ones(3, dtype=np.float32)
        leaf._accumulate(fresh, donate="fresh")
        assert np.shares_memory(leaf.grad, fresh)

    def test_nonleaf_takes_scratch(self):
        parent = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        node = RawTensor._make(np.zeros(3, dtype=np.float32), (parent,),
                               lambda g: None)
        arena = np.ones(3, dtype=np.float32)
        node._accumulate(arena, donate="scratch")
        assert np.shares_memory(node.grad, arena)

    def test_no_donation_copies(self):
        leaf = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        buf = np.ones(3, dtype=np.float32)
        leaf._accumulate(buf)
        assert not np.shares_memory(leaf.grad, buf)

    def test_conv_input_grad_does_not_alias_arena(self):
        """End to end: a leaf conv input's ``.grad`` survives a second
        forward/backward unchanged (no aliasing of reused arena memory)."""
        from repro.nn.conv import Conv2d
        rng = np.random.default_rng(0)
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        x1 = Tensor(rng.standard_normal((2, 2, 6, 6)).astype(np.float32),
                    requires_grad=True)
        (layer(x1) ** 2).sum().backward()
        saved = x1.grad.copy()
        x2 = Tensor(rng.standard_normal((2, 2, 6, 6)).astype(np.float32),
                    requires_grad=True)
        (layer(x2) ** 2).sum().backward()
        np.testing.assert_array_equal(x1.grad, saved)


class TestForbidDtype:
    def test_blocks_tensor_and_grad(self):
        with forbid_dtype(np.float64):
            with pytest.raises(AssertionError):
                Tensor(np.zeros(2, dtype=np.float64), dtype=np.float64)
            t = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
            with pytest.raises(AssertionError):
                t._accumulate(np.zeros(2, dtype=np.float64))
        # outside the context both are fine again
        Tensor(np.zeros(2, dtype=np.float64), dtype=np.float64)

    def test_resnet20_train_step_stays_float32(self):
        """A full forward/backward/step at the tiny scale must not route
        any float64 array through the Tensor/gradient surface."""
        from repro.models import build_model
        from repro.optim.sgd import SGD
        from repro.tensor import functional as F
        rng = np.random.default_rng(1)
        model = build_model("resnet20", width_mult=0.25, input_size=16, seed=2)
        opt = SGD(model.named_parameters(), lr=0.05, momentum=0.9)
        x = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
        y = rng.integers(0, 10, 8)
        with forbid_dtype(np.float64):
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()


class TestConvBnFold:
    @pytest.mark.parametrize("name,in_ch,size", [
        ("resnet20", 3, 16),
        ("vgg11", 3, 32),       # five maxpools: needs the full 32x32
        ("cnn2", 1, 28),        # MNIST-shaped
    ])
    def test_verify_fold_registry_models(self, name, in_ch, size):
        from repro.models import build_model
        from repro.nn.fuse import verify_fold
        model = build_model(name, width_mult=0.25, input_size=size, seed=3)
        # non-trivial running stats so the fold actually rescales
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((4, in_ch, size, size)).astype(np.float32))
        model(x)        # one training-mode batch updates running stats
        verify_fold(model, x)

    def test_folded_inference_requires_eval_and_no_grad(self):
        from repro.models import build_model
        from repro.nn.fuse import folded_inference
        model = build_model("resnet20", width_mult=0.25, input_size=16, seed=3)
        with pytest.raises(RuntimeError):
            with folded_inference(model):
                pass
        model.eval()
        with pytest.raises(RuntimeError):
            with folded_inference(model):
                pass
        with no_grad(), folded_inference(model):
            pass

    def test_fold_inert_outside_context(self):
        from repro.nn import conv as _conv
        from repro.models import build_model
        from repro.nn.fuse import folded_inference
        model = build_model("resnet20", width_mult=0.25, input_size=16, seed=3)
        model.eval()
        with no_grad(), folded_inference(model):
            assert _conv._ACTIVE_FOLDS and _conv._FOLDED_BNS
        assert not _conv._ACTIVE_FOLDS
        assert not _conv._FOLDED_BNS

    def test_training_numerics_untouched_by_fold_machinery(self):
        """Training-mode forwards ignore any registered folds entirely
        (the fold tables are only populated inside the context, which
        training can never enter)."""
        from repro.models import build_model
        rng = np.random.default_rng(2)
        model = build_model("resnet20", width_mult=0.25, input_size=16, seed=5)
        x = Tensor(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
        out1 = model(x).data.copy()
        model.eval()
        with no_grad():
            from repro.nn.fuse import folded_inference
            with folded_inference(model):
                model(x)
        model.train()
        out2 = model(x).data
        np.testing.assert_array_equal(out1, out2)


class TestProfilerWorkspaceJoin:
    def test_workspace_stats_deltas_and_table(self):
        from repro.obs import OpProfiler, hotspot_table
        from repro.nn.conv import Conv2d
        rng = np.random.default_rng(0)
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = Tensor(rng.standard_normal((2, 2, 8, 8)).astype(np.float32),
                   requires_grad=True)
        (layer(x) ** 2).sum().backward()        # warm the arena first
        with OpProfiler() as prof:
            (layer(x) ** 2).sum().backward()
        stats = prof.workspace_stats()
        conv_tags = {t for t in stats if t.startswith("conv2d.")}
        assert conv_tags, stats
        assert all(sum(d) > 0 for d in stats.values())
        table = prof.report(n=8)
        assert "ws hit%" in table and "ws MB saved" in table
