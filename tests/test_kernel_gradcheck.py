"""Float64 gradchecks for the rewritten hot-path kernels (DESIGN.md §10).

The arena-backed conv2d and the vectorized pooling backwards replace the
original formulations; these checks exercise exactly the configurations
whose code paths differ — strided, padded, non-square spatial maps,
overlapping and gapped pooling windows — against central differences.
"""

import numpy as np
import pytest

from repro.nn.conv import conv2d
from repro.nn.pooling import avg_pool2d, max_pool2d
from repro.tensor import Tensor, workspace
from tests.conftest import assert_grad_close, numerical_gradient

R = np.random.default_rng(7)


class _Owner:
    """Weak-referenceable stand-in for a layer owning a workspace slot."""


def _t(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True,
                  dtype=np.float64)


class TestConv2dWorkspaceGradcheck:
    """conv2d through an arena slot: gather/copyto im2col, buffered GEMMs,
    in-place col2im — per stride/padding/aspect combination."""

    @pytest.mark.parametrize("stride,padding,hw", [
        (1, 0, (6, 6)),
        (1, 1, (6, 6)),
        (2, 1, (7, 7)),
        (2, 0, (8, 5)),     # non-square map, strided
        (1, 2, (5, 8)),     # non-square map, wide padding
        (3, 1, (9, 7)),
    ])
    def test_gradcheck(self, stride, padding, hw):
        h, w = hw
        x0 = R.normal(size=(2, 2, h, w))
        w0 = R.normal(size=(3, 2, 3, 3)) * 0.5
        b0 = R.normal(size=(3,)) * 0.1
        ws = workspace.slot_for(_Owner())

        def f(xv, wv, bv):
            x, wt, b = _t(xv), _t(wv), _t(bv)
            out = conv2d(x, wt, b, stride, padding, ws=ws)
            return x, wt, b, (out ** 2).sum()

        x, wt, b, out = f(x0, w0, b0)
        out.backward()
        assert_grad_close(x.grad, numerical_gradient(
            lambda v: f(v, w0, b0)[3].item(), x0.copy()), atol=1e-5)
        assert_grad_close(wt.grad, numerical_gradient(
            lambda v: f(x0, v, b0)[3].item(), w0.copy()), atol=1e-5)
        assert_grad_close(b.grad, numerical_gradient(
            lambda v: f(x0, w0, v)[3].item(), b0.copy()), atol=1e-5)

    def test_workspace_matches_allocating_path(self):
        """Same values with and without an arena slot (float64, repeated
        so the second call runs entirely on warm buffers)."""
        ws = workspace.slot_for(_Owner())
        x0 = R.normal(size=(2, 3, 6, 7))
        w0 = R.normal(size=(4, 3, 3, 3))
        b0 = R.normal(size=(4,))
        for _ in range(2):
            xa, xb = _t(x0), _t(x0)
            wa, wb = _t(w0), _t(w0)
            ba, bb = _t(b0), _t(b0)
            oa = (conv2d(xa, wa, ba, 2, 1, ws=ws) ** 2).sum()
            ob = (conv2d(xb, wb, bb, 2, 1, ws=None) ** 2).sum()
            assert np.array_equal(oa.data, ob.data)
            oa.backward()
            ob.backward()
            assert np.array_equal(xa.grad, xb.grad)
            assert np.array_equal(wa.grad, wb.grad)
            assert np.array_equal(ba.grad, bb.grad)


class TestPoolingGradcheck:
    """Vectorized pooling backwards: disjoint (k == s), gapped (s > k),
    and overlapping (s < k, the bincount path) windows."""

    @pytest.mark.parametrize("k,s,hw", [
        (2, 2, (6, 6)),     # tiling: flat-index assignment
        (3, 2, (7, 7)),     # overlapping: bincount accumulation
        (2, 3, (8, 8)),     # gapped: strided-slice adds
        (2, 2, (6, 8)),     # non-square
    ])
    def test_max_pool(self, k, s, hw):
        h, w = hw
        # Distinct values so argmax ties (non-differentiable points)
        # cannot occur and central differences are valid.
        x0 = R.permutation(2 * 3 * h * w).astype(np.float64).reshape(2, 3, h, w)
        x0 /= x0.size

        def f(xv):
            x = _t(xv)
            return x, (max_pool2d(x, k, s) ** 2).sum()

        x, out = f(x0)
        out.backward()
        assert_grad_close(x.grad, numerical_gradient(
            lambda v: f(v)[1].item(), x0.copy()), atol=1e-5)

    @pytest.mark.parametrize("k,s,hw", [
        (2, 2, (6, 6)),
        (3, 2, (7, 7)),
        (2, 3, (8, 8)),
        (2, 2, (4, 8)),
    ])
    def test_avg_pool(self, k, s, hw):
        h, w = hw
        x0 = R.normal(size=(2, 3, h, w))

        def f(xv):
            x = _t(xv)
            return x, (avg_pool2d(x, k, s) ** 2).sum()

        x, out = f(x0)
        out.backward()
        assert_grad_close(x.grad, numerical_gradient(
            lambda v: f(v)[1].item(), x0.copy()), atol=1e-5)

    def test_max_pool_workspace_slot_reuse(self):
        """The layer-owned cached base-index array survives repeat calls."""
        from repro.nn.pooling import MaxPool2d
        layer = MaxPool2d(2, 2)
        x0 = R.normal(size=(2, 3, 6, 6))
        grads = []
        for _ in range(2):
            x = _t(x0)
            (layer(x) ** 2).sum().backward()
            grads.append(x.grad)
        assert np.array_equal(grads[0], grads[1])
