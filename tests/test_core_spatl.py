"""Integration tests: the SPATL trainer end to end."""

import numpy as np
import pytest

from repro.core import SPATL, StaticSaliencyPolicy
from repro.fl import FedAvg, make_federated_clients


def _fresh(tiny_dataset, tiny_setting, n_policy=0.3):
    model_fn, parts = tiny_setting
    clients = make_federated_clients(tiny_dataset, parts, batch_size=32,
                                     seed=5)
    algo = SPATL(model_fn, clients,
                 selection_policy=StaticSaliencyPolicy(n_policy),
                 lr=0.05, local_epochs=1, seed=0)
    return algo, clients


class TestProtocol:
    def test_predictor_never_leaves_client(self, tiny_dataset, tiny_setting):
        algo, clients = _fresh(tiny_dataset, tiny_setting)
        down = algo.download_payload(clients[0])
        update = algo.local_update(clients[0], 0)
        up = algo.upload_payload(update)
        pred_keys = set(algo.global_model.predictor_state())
        for payload in (down, up):
            for key in payload:
                for pk in pred_keys:
                    assert not key.endswith("pred." + pk), key
            assert not any(k.startswith("pred.") for k in payload)

    def test_download_contains_encoder_and_variate(self, tiny_dataset,
                                                   tiny_setting):
        algo, clients = _fresh(tiny_dataset, tiny_setting)
        down = algo.download_payload(clients[0])
        assert any(k.startswith("enc.") for k in down)
        assert any(k.startswith("c.") for k in down)

    def test_no_gradient_control_skips_variate_download(self, tiny_dataset,
                                                        tiny_setting):
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        algo = SPATL(model_fn, clients, use_gradient_control=False,
                     lr=0.05, local_epochs=1, seed=0)
        down = algo.download_payload(clients[0])
        assert not any(k.startswith("c.") for k in down)

    def test_upload_contains_indices_and_salient_rows(self, tiny_dataset,
                                                      tiny_setting):
        algo, clients = _fresh(tiny_dataset, tiny_setting)
        update = algo.local_update(clients[0], 0)
        up = algo.upload_payload(update)
        idx_keys = [k for k in up if k.endswith(".idx")]
        val_keys = [k for k in up if k.endswith(".val")]
        assert len(idx_keys) == len(val_keys) == len(algo.prunable)
        for k in idx_keys:
            assert up[k].dtype == np.int32

    def test_upload_smaller_than_dense(self, tiny_dataset, tiny_setting):
        from repro.fl.comm import payload_nbytes
        algo, clients = _fresh(tiny_dataset, tiny_setting, n_policy=0.5)
        update = algo.local_update(clients[0], 0)
        up_bytes = payload_nbytes(algo.upload_payload(update))
        dense_bytes = payload_nbytes(
            {f"enc.{k}": v for k, v in
             algo.global_model.encoder_state().items()})
        assert up_bytes < dense_bytes

    def test_client_keeps_private_predictor(self, tiny_dataset, tiny_setting):
        algo, clients = _fresh(tiny_dataset, tiny_setting)
        algo.run_round(0)
        states = [c.local_state.get("predictor") for c in clients]
        participating = [s for s in states if s is not None]
        assert participating
        # different clients hold different predictor weights after training
        if len(participating) >= 2:
            k = next(iter(participating[0]))
            assert not np.array_equal(participating[0][k],
                                      participating[1][k])

    def test_client_variates_refresh(self, tiny_dataset, tiny_setting):
        algo, clients = _fresh(tiny_dataset, tiny_setting)
        algo.run_round(0)
        c_i = clients[0].local_state["c_i"]
        assert sum(float(np.abs(v).sum()) for v in c_i.values.values()) > 0

    def test_server_variate_updates(self, tiny_dataset, tiny_setting):
        algo, clients = _fresh(tiny_dataset, tiny_setting)
        algo.run_round(0)
        assert sum(float(np.abs(v).sum())
                   for v in algo.c_global.values.values()) > 0

    def test_aggregation_covers_all_when_dense(self, tiny_dataset,
                                               tiny_setting):
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        algo = SPATL(model_fn, clients, use_selection=False, lr=0.05,
                     local_epochs=1, seed=0)
        before = {n: p.data.copy()
                  for n, p in algo.global_model.encoder.named_parameters()}
        algo.run_round(0)
        moved = [n for n, p in algo.global_model.encoder.named_parameters()
                 if not np.array_equal(p.data, before[n])]
        # dense selection: every encoder parameter must move
        assert len(moved) == len(before)

    def test_eval_model_composes_encoder_and_private_head(self, tiny_dataset,
                                                          tiny_setting):
        algo, clients = _fresh(tiny_dataset, tiny_setting)
        algo.run_round(0)
        m = algo.client_eval_model(clients[0])
        pred_state = clients[0].local_state["predictor"]
        for k, v in m.predictor_state().items():
            np.testing.assert_array_equal(v, pred_state[k], err_msg=k)
        for k, v in m.encoder_state().items():
            np.testing.assert_array_equal(
                v, algo.global_model.encoder_state()[k], err_msg=k)


class TestBehaviour:
    def test_learns(self, tiny_dataset, tiny_setting):
        algo, _ = _fresh(tiny_dataset, tiny_setting)
        log = algo.run(rounds=6)
        assert log["val_acc"][-1] > log["val_acc"][0]
        assert log["val_acc"][-1] > 0.3

    def test_momentum_corrected_effective_steps(self, tiny_dataset,
                                                tiny_setting):
        # SPATL keeps momentum by using FedNova-style effective steps in
        # the Eq. 10 denominator (unlike SCAFFOLD, which must drop it).
        algo, _ = _fresh(tiny_dataset, tiny_setting)
        assert algo.momentum == 0.9
        tau, rho = 8, 0.9
        expected = (tau - rho * (1 - rho ** tau) / (1 - rho)) / (1 - rho)
        assert algo._effective_steps(tau) == pytest.approx(expected)
        assert algo._effective_steps(tau) > tau  # momentum amplifies
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        algo2 = SPATL(model_fn, clients, seed=0, lr=0.05, momentum=0.0)
        assert algo2._effective_steps(7) == 7.0

    def test_cheaper_than_scaffold_per_round(self, tiny_dataset,
                                             tiny_setting):
        from repro.fl import Scaffold
        algo, _ = _fresh(tiny_dataset, tiny_setting, n_policy=0.5)
        algo.run_round(0)
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        sc = Scaffold(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        sc.run_round(0)
        assert algo.ledger.round_bytes(0) < sc.ledger.round_bytes(0)

    def test_inference_report(self, tiny_dataset, tiny_setting):
        algo, _ = _fresh(tiny_dataset, tiny_setting)
        algo.run_round(0)
        rep = algo.inference_report()
        assert rep
        for stats in rep.values():
            assert 0.0 < stats["flops_ratio"] <= 1.0
            assert 0.0 < stats["params_ratio"] <= 1.0

    def test_ablation_no_transfer_shares_predictor(self, tiny_dataset,
                                                   tiny_setting):
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        algo = SPATL(model_fn, clients, use_transfer=False, lr=0.05,
                     local_epochs=1, seed=0)
        down = algo.download_payload(clients[0])
        assert any(k.startswith("pred.") for k in down)
        update = algo.local_update(clients[0], 0)
        assert update["predictor_state"] is not None
        algo.run_round(1)
        # predictor head aggregated globally, no private copies needed
        m = algo.client_eval_model(clients[0])
        for k, v in m.predictor_state().items():
            np.testing.assert_array_equal(
                v, algo.global_model.predictor_state()[k])
