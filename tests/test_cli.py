"""Unit tests: the CLI parses and dispatches (tiny footprints)."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        for cmd in COMMANDS:
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_overrides(self):
        args = build_parser().parse_args(
            ["table1", "--scale", "small", "--clients", "12",
             "--target", "0.7"])
        assert args.scale == "small"
        assert args.clients == 12
        assert args.target == pytest.approx(0.7)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["make-coffee"])

    def test_fault_knobs_parse(self):
        args = build_parser().parse_args(
            ["fault-tolerance", "--fault-drop", "0.3", "--fault-corrupt",
             "0.05", "--fault-timeout", "6", "--min-clients", "3",
             "--fault-rates", "0.0", "0.2"])
        assert args.fault_drop == pytest.approx(0.3)
        assert args.fault_corrupt == pytest.approx(0.05)
        assert args.fault_timeout == pytest.approx(6.0)
        assert args.min_clients == 3
        assert args.fault_rates == [0.0, 0.2]

    def test_fault_knobs_default_off(self):
        args = build_parser().parse_args(["table1"])
        assert args.fault_drop == 0.0
        assert args.fault_corrupt == 0.0
        assert args.fault_timeout is None


class TestDispatch:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for cmd in COMMANDS:
            assert cmd in out

    def test_learning_efficiency_smoke(self, capsys):
        rc = main(["learning-efficiency", "--clients", "2", "--rounds", "1",
                   "--sample-ratio", "1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spatl" in out and "fedavg" in out

    def test_fault_tolerance_smoke(self, capsys):
        rc = main(["fault-tolerance", "--clients", "2", "--rounds", "1",
                   "--sample-ratio", "1.0", "--fault-rates", "0.0", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fedavg" in out and "spatl" in out
        assert "drop p" in out


class TestObservability:
    def test_obs_flags_parse(self):
        args = build_parser().parse_args(
            ["profile", "--trace-out", "t.json", "--metrics-out", "m.json",
             "--algorithm", "spatl"])
        assert args.command == "profile"
        assert args.trace_out == "t.json"
        assert args.metrics_out == "m.json"
        assert args.algorithm == "spatl"

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["table1"])
        assert args.trace_out is None
        assert args.metrics_out is None

    def test_profile_smoke_emits_chrome_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main(["profile", "--clients", "2", "--rounds", "1",
                   "--sample-ratio", "1.0", "--trace-out", str(trace),
                   "--metrics-out", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        # hotspot table names the conv ops; codec bytes line is printed
        assert "conv2d.forward" in out
        assert "codec bytes:" in out
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        names = {e["name"] for e in events}
        assert {"round", "serialize", "deserialize"} <= names
        snap = json.loads(metrics.read_text())
        assert snap["counters"]  # fl.* counters were recorded

    def test_trace_out_on_regular_command(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        rc = main(["learning-efficiency", "--clients", "2", "--rounds", "1",
                   "--sample-ratio", "1.0", "--trace-out", str(trace)])
        assert rc == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert any(r["name"] == "algorithm" for r in records)
