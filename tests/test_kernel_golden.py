"""Golden-state byte-identity: optimized kernels vs the pre-PR reference.

The workspace/in-place kernel rewrites (DESIGN.md §10) must not change
training numerics *at all*: after identical FedAvg and SPATL rounds, the
serialized global model state produced by the optimized kernels must be
byte-for-byte equal to the state produced by the verbatim pre-PR
implementations in :mod:`repro.nn.reference` — and the process-parallel
executor must agree with both.
"""

import numpy as np
import pytest

from repro.experiments.configs import config_for, make_algorithm, make_setting
from repro.fl.comm import serialize_state
from repro.nn.reference import reference_kernels


def _final_state(algo_name: str, *, use_reference: bool = False,
                 workers: int = 1, rounds: int = 2) -> bytes:
    cfg = config_for("tiny", n_clients=4, n_samples=400, rounds=rounds,
                     workers=workers, seed=0)
    if use_reference:
        with reference_kernels():
            return _run(algo_name, cfg, rounds)
    return _run(algo_name, cfg, rounds)


def _run(algo_name, cfg, rounds) -> bytes:
    model_fn, clients = make_setting(cfg)
    algo = make_algorithm(algo_name, cfg, model_fn, clients)
    try:
        for r in range(rounds):
            algo.run_round(r)
        return serialize_state(dict(algo.global_model.state_dict()))
    finally:
        algo.close()


@pytest.mark.parametrize("algo_name", ["fedavg", "spatl"])
class TestGoldenState:
    def test_serial_matches_reference(self, algo_name):
        opt = _final_state(algo_name)
        ref = _final_state(algo_name, use_reference=True)
        assert opt == ref, (
            f"{algo_name}: optimized kernels changed training numerics")

    def test_workers2_matches_serial(self, algo_name):
        serial = _final_state(algo_name)
        parallel = _final_state(algo_name, workers=2)
        assert serial == parallel, (
            f"{algo_name}: worker-pool run diverged from serial")


def test_partial_batch_conv_backward_matches_reference():
    """Batch sizes whose transposed grad reshapes to a zero-copy view
    (N == 1) steer BLAS differently; the optimized backward must follow
    the reference layout exactly.  Regression test for the last-partial-
    batch divergence found during the rewrite."""
    from repro.models import build_model
    from repro.optim.sgd import SGD
    from repro.tensor import Tensor, functional as F

    def train(use_reference):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 3, 12, 12)).astype(np.float32)
        y = rng.integers(0, 10, 1)

        def steps():
            model = build_model("resnet20", width_mult=0.25, input_size=12,
                                seed=4)
            opt = SGD(model.named_parameters(), lr=0.05, momentum=0.9)
            for _ in range(2):
                opt.zero_grad()
                F.cross_entropy(model(Tensor(x)), y).backward()
                opt.step()
            return {k: v.copy() for k, v in model.state_dict().items()}

        if use_reference:
            with reference_kernels():
                return steps()
        return steps()

    opt_state = train(False)
    ref_state = train(True)
    for key in ref_state:
        assert np.array_equal(opt_state[key], ref_state[key]), key
