"""Unit tests: Module/Parameter plumbing, state dicts, containers."""

import numpy as np
import pytest

from repro.nn import (BatchNorm2d, Conv2d, Linear, Module, ModuleList,
                      Parameter, ReLU, Sequential)
from repro.tensor import Tensor

RNG = np.random.default_rng(0)


class Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=RNG)
        self.fc2 = Linear(8, 2, rng=RNG)
        self.scale = Parameter(np.ones(1, dtype=np.float32))
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestTraversal:
    def test_named_parameters_order_and_names(self):
        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["scale", "fc1.weight", "fc1.bias",
                         "fc2.weight", "fc2.bias"]

    def test_parameters_are_parameters(self):
        assert all(isinstance(p, Parameter) for p in Net().parameters())

    def test_named_buffers(self):
        net = Net()
        buf_names = [n for n, _ in net.named_buffers()]
        assert buf_names == ["counter"]

    def test_named_modules(self):
        net = Net()
        names = [n for n, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_num_parameters(self):
        net = Net()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_apply(self):
        net = Net()
        seen = []
        net.apply(lambda m: seen.append(type(m).__name__))
        assert "Net" in seen and seen.count("Linear") == 2


class TestStateDict:
    def test_roundtrip(self):
        net1, net2 = Net(), Net()
        state = net1.state_dict()
        net2.load_state_dict(state)
        for (n1, p1), (_, p2) in zip(net1.named_parameters(),
                                     net2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data, err_msg=n1)

    def test_state_dict_copies(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"][...] = 0
        assert not np.all(net.fc1.weight.data == 0)

    def test_load_checks_shapes(self):
        net = Net()
        bad = net.state_dict()
        bad["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(bad)

    def test_strict_missing_raises(self):
        net = Net()
        state = net.state_dict()
        del state["fc2.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_strict_unexpected_raises(self):
        net = Net()
        state = net.state_dict()
        state["ghost"] = np.ones(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_non_strict_ignores(self):
        net = Net()
        state = net.state_dict()
        del state["fc2.bias"]
        state["ghost"] = np.ones(1)
        net.load_state_dict(state, strict=False)

    def test_buffers_load(self):
        net1, net2 = Net(), Net()
        net1.set_buffer("counter", np.asarray([42.0]))
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_allclose(net2.counter, [42.0])

    def test_set_unknown_buffer_raises(self):
        with pytest.raises(KeyError):
            Net().set_buffer("ghost", np.ones(1))


class TestTrainingModeAndGrad:
    def test_train_eval_recursive(self):
        net = Sequential(Linear(2, 2, rng=RNG), BatchNorm2d(2))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = Net()
        out = net(Tensor(RNG.normal(size=(3, 4)).astype(np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestContainers:
    def test_sequential_forward_order(self):
        seq = Sequential(Linear(3, 5, rng=RNG), ReLU(), Linear(5, 2, rng=RNG))
        out = seq(Tensor(RNG.normal(size=(4, 3)).astype(np.float32)))
        assert out.shape == (4, 2)

    def test_sequential_indexing(self):
        seq = Sequential(ReLU(), ReLU())
        assert isinstance(seq[0], ReLU)
        assert isinstance(seq[-1], ReLU)
        assert len(seq) == 2

    def test_sequential_append(self):
        seq = Sequential(ReLU())
        seq.append(ReLU())
        assert len(seq) == 2

    def test_module_list(self):
        ml = ModuleList([Linear(2, 2, rng=RNG) for _ in range(3)])
        assert len(ml) == 3
        assert sum(1 for _ in ml) == 3
        ml.append(Linear(2, 2, rng=RNG))
        assert len(ml) == 4
        # parameters of children are discovered
        assert sum(1 for _ in ml.named_parameters()) == 8

    def test_repr_contains_children(self):
        assert "Linear" in repr(Sequential(Linear(2, 2, rng=RNG)))


def test_conv_module_registration():
    conv = Conv2d(3, 8, 3, rng=RNG)
    names = [n for n, _ in conv.named_parameters()]
    assert names == ["weight", "bias"]
    conv_nb = Conv2d(3, 8, 3, bias=False, rng=RNG)
    assert [n for n, _ in conv_nb.named_parameters()] == ["weight"]
