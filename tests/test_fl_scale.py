"""Tests for the population-scale subsystem (``repro.fl.scale``).

Covers the spill-to-disk client-state store, virtual-client pool,
streaming folds, and the golden byte-identity contract: a ScaleRunner
round — streaming, hierarchical, virtual-pooled, or process-pooled — is
bitwise-equal to the materialized baseline ``run_round``.
"""

import pickle

import numpy as np
import pytest

from repro.core import SPATL, StaticSaliencyPolicy
from repro.core.gradient_control import ControlVariate
from repro.fl import (AsyncConfig, AsyncFederatedRunner, AsyncProfile,
                      BroadcastCache, ClientStateStore, FedAvg, Scaffold,
                      ScaleRunner, ShardedClientFactory, StubClientFactory,
                      UpdateSpill, VirtualClientPool, make_executor,
                      make_federated_clients, serialize_state,
                      state_fingerprint)
from repro.fl.scale import (SpillReplayFold, decode_client_state,
                            encode_client_state)
from repro.fl.stub import make_stub


def _clients(tiny_dataset, tiny_setting):
    _, parts = tiny_setting
    return make_federated_clients(tiny_dataset, parts, batch_size=32, seed=5)


def _virtual_pool(tiny_dataset, tiny_setting, store, resident_limit=64):
    """Pool producing byte-identical clients to :func:`_clients`."""
    _, parts = tiny_setting
    factory = ShardedClientFactory(dataset=tiny_dataset, parts=parts,
                                   batch_size=32, seed=5)
    return VirtualClientPool(factory, len(parts), store,
                             resident_limit=resident_limit)


# ---------------------------------------------------------------- store

class TestClientStateStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ClientStateStore(tmp_path / "s", shards=3)
        blobs = {f"client/{i}": bytes([i]) * (10 + i) for i in range(20)}
        for key, blob in blobs.items():
            store.put(key, blob)
        assert len(store) == 20
        for key, blob in blobs.items():
            assert store.get(key) == blob
            assert key in store
        assert store.get("client/999") is None
        assert "client/999" not in store

    def test_overwrite_and_delete(self, tmp_path):
        store = ClientStateStore(tmp_path / "s")
        store.put("k", b"old")
        store.put("k", b"new-value")
        assert store.get("k") == b"new-value"
        assert len(store) == 1
        store.delete("k")
        assert store.get("k") is None
        store.delete("k")  # missing_ok by default
        with pytest.raises(KeyError):
            store.delete("k", missing_ok=False)

    def test_reopen_rebuilds_index(self, tmp_path):
        store = ClientStateStore(tmp_path / "s", shards=2)
        store.put("a", b"first")
        store.put("b", b"second")
        store.put("a", b"rewritten")  # later record must win on replay
        store.close()
        reopened = ClientStateStore(tmp_path / "s", shards=2)
        assert reopened.get("a") == b"rewritten"
        assert reopened.get("b") == b"second"
        assert len(reopened) == 2

    def test_compaction_keeps_live_records(self, tmp_path):
        store = ClientStateStore(tmp_path / "s", shards=1,
                                 auto_compact=False)
        for i in range(50):
            store.put("hot", bytes([i]) * 100)   # 49 dead records
        store.put("cold", b"keep-me")
        before = store.nbytes
        store.compact()
        assert store.nbytes < before
        assert store.get("hot") == bytes([49]) * 100
        assert store.get("cold") == b"keep-me"

    def test_manifest_attach_truncates_later_writes(self, tmp_path):
        store = ClientStateStore(tmp_path / "s", shards=2)
        store.put("kept", b"before-snapshot")
        manifest = store.snapshot_manifest()
        store.put("lost", b"after-snapshot")
        store.put("kept", b"mutated-after-snapshot")
        store.close()
        restored = ClientStateStore.attach(tmp_path / "s", manifest)
        assert restored.get("kept") == b"before-snapshot"
        assert restored.get("lost") is None
        assert len(restored) == 1

    def test_pickled_replica_is_frozen(self, tmp_path):
        store = ClientStateStore(tmp_path / "s")
        store.put("k", b"value")
        replica = pickle.loads(pickle.dumps(store))
        assert replica.frozen
        assert replica.get("k") == b"value"
        with pytest.raises(RuntimeError):
            replica.put("k", b"nope")
        with pytest.raises(RuntimeError):
            replica.delete("k")
        # the parent is untouched and still writable
        store.put("k2", b"still-writable")
        assert store.get("k2") == b"still-writable"


class TestClientStateCodec:
    def test_roundtrip_with_control_variate(self):
        cv = ControlVariate({})
        cv.values = {"w": np.arange(6, dtype=np.float32).reshape(2, 3)}
        state = {"c_i": cv,
                 "predictor": {"fc.weight": np.ones((2, 2), np.float32)},
                 "nested": [{"a": np.float64(1.5)}, (np.int64(3),)]}
        back = decode_client_state(encode_client_state(state))
        assert isinstance(back["c_i"], ControlVariate)
        np.testing.assert_array_equal(back["c_i"].values["w"], cv.values["w"])
        np.testing.assert_array_equal(back["predictor"]["fc.weight"],
                                      state["predictor"]["fc.weight"])
        assert isinstance(back["nested"], list)
        assert isinstance(back["nested"][1], tuple)


# ---------------------------------------------------------------- spill

class TestUpdateSpill:
    def test_append_iter_roundtrip(self, tmp_path):
        spill = UpdateSpill(tmp_path / "u.spill")
        blobs = [bytes([i]) * (i + 1) for i in range(7)]
        for blob in blobs:
            spill.append(blob)
        assert list(spill) == blobs
        assert list(spill) == blobs  # re-iterable (pread, no shared offset)
        assert spill.n_records == 7

    def test_attach_truncates(self, tmp_path):
        spill = UpdateSpill(tmp_path / "u.spill")
        spill.append(b"one")
        spill.append(b"two")
        n_records, nbytes = spill.n_records, spill.nbytes
        spill.append(b"post-snapshot")
        spill.flush()
        reattached = UpdateSpill.attach(tmp_path / "u.spill", n_records,
                                        nbytes)
        assert list(reattached) == [b"one", b"two"]
        reattached.append(b"three")
        assert list(reattached) == [b"one", b"two", b"three"]


# ----------------------------------------------------------- virtual pool

class TestVirtualClientPool:
    def test_factory_matches_eager_clients(self, tmp_path, tiny_dataset,
                                           tiny_setting):
        eager = _clients(tiny_dataset, tiny_setting)
        _, parts = tiny_setting
        factory = ShardedClientFactory(dataset=tiny_dataset, parts=parts,
                                       batch_size=32, seed=5)
        for cid, ref in enumerate(eager):
            built = factory(cid)
            assert built.client_id == ref.client_id
            assert built.seed == ref.seed
            np.testing.assert_array_equal(built.train_data.x,
                                          ref.train_data.x)
            np.testing.assert_array_equal(built.val_data.y, ref.val_data.y)

    def test_lru_bound_and_state_survival(self, tmp_path):
        store = ClientStateStore(tmp_path / "s")
        pool = VirtualClientPool(StubClientFactory(), 10, store,
                                 resident_limit=2)
        clients = pool.clients()
        clients[0].local_state["x"] = {"v": np.float64(7.0)}
        for c in clients[1:]:  # churn client 0 out of residency
            c.local_state
        assert pool.resident <= 2
        assert "client/0" in store
        assert clients[0].local_state["x"]["v"] == 7.0  # hydrated back

    def test_stateless_population_keeps_store_empty(self, tmp_path):
        store = ClientStateStore(tmp_path / "s")
        pool = VirtualClientPool(StubClientFactory(), 100, store,
                                 resident_limit=4)
        for c in pool.clients():
            c.client_id, c.local_state  # touch every member
        assert pool.resident <= 4
        assert len(store) == 0          # O(stateful clients), not O(pop)
        assert store.nbytes == 0

    def test_proxy_pickles_as_proxy(self, tmp_path):
        store = ClientStateStore(tmp_path / "s")
        pool = VirtualClientPool(StubClientFactory(), 4, store)
        proxy = pool.clients()[2]
        proxy.local_state["k"] = {"v": np.float64(1.0)}
        clone = pickle.loads(pickle.dumps(proxy))
        assert clone.client_id == 2
        assert clone._pool.store.frozen  # replica pool rides a frozen store


# ------------------------------------------------------- golden identity

def _final_state(algo):
    return serialize_state(dict(algo.global_model.state_dict()))


class TestGoldenIdentity:
    """Streaming / hierarchical / virtual rounds == materialized baseline."""

    ROUNDS = 2

    def _baseline(self, cls, tiny_dataset, tiny_setting, **kw):
        model_fn, _ = tiny_setting
        algo = cls(model_fn, _clients(tiny_dataset, tiny_setting),
                   lr=0.05, local_epochs=1, seed=0, sample_ratio=0.7, **kw)
        log = algo.run(rounds=self.ROUNDS)
        return algo, log

    def _scale_run(self, cls, tiny_dataset, tiny_setting, tmp_path, *,
                   edges=1, virtual=False, **kw):
        model_fn, _ = tiny_setting
        if virtual:
            store = ClientStateStore(tmp_path / "store")
            pool = _virtual_pool(tiny_dataset, tiny_setting, store)
            clients = pool.clients()
        else:
            pool = None
            clients = _clients(tiny_dataset, tiny_setting)
        algo = cls(model_fn, clients, lr=0.05, local_epochs=1, seed=0,
                   sample_ratio=0.7, **kw)
        runner = ScaleRunner(algo, pool=pool, edges=edges,
                             spill_dir=tmp_path / "spills")
        results = runner.run(self.ROUNDS)
        return algo, results

    def _assert_match(self, base, base_log, algo, results):
        assert _final_state(algo) == _final_state(base)
        assert algo.ledger.total_bytes() == base.ledger.total_bytes()
        np.testing.assert_array_equal(results[-1].avg_val_acc,
                                      base_log["val_acc"][-1])

    @pytest.mark.parametrize("edges", [1, 2])
    def test_fedavg(self, tmp_path, tiny_dataset, tiny_setting, edges):
        base, base_log = self._baseline(FedAvg, tiny_dataset, tiny_setting)
        algo, results = self._scale_run(FedAvg, tiny_dataset, tiny_setting,
                                        tmp_path, edges=edges)
        self._assert_match(base, base_log, algo, results)

    @pytest.mark.parametrize("edges", [1, 2])
    def test_spatl(self, tmp_path, tiny_dataset, tiny_setting, edges):
        kw = dict(selection_policy=StaticSaliencyPolicy(0.3))
        base, base_log = self._baseline(SPATL, tiny_dataset, tiny_setting,
                                        **kw)
        kw = dict(selection_policy=StaticSaliencyPolicy(0.3))
        algo, results = self._scale_run(SPATL, tiny_dataset, tiny_setting,
                                        tmp_path, edges=edges, **kw)
        self._assert_match(base, base_log, algo, results)
        for name in base.c_global.names():
            np.testing.assert_array_equal(algo.c_global[name],
                                          base.c_global[name], err_msg=name)

    def test_fedavg_virtual_pool(self, tmp_path, tiny_dataset, tiny_setting):
        base, base_log = self._baseline(FedAvg, tiny_dataset, tiny_setting)
        algo, results = self._scale_run(FedAvg, tiny_dataset, tiny_setting,
                                        tmp_path, virtual=True)
        self._assert_match(base, base_log, algo, results)

    def test_spatl_virtual_pool(self, tmp_path, tiny_dataset, tiny_setting):
        """Virtual clients must hydrate predictors/variates losslessly."""
        base, base_log = self._baseline(
            SPATL, tiny_dataset, tiny_setting,
            selection_policy=StaticSaliencyPolicy(0.3))
        algo, results = self._scale_run(
            SPATL, tiny_dataset, tiny_setting, tmp_path, virtual=True,
            selection_policy=StaticSaliencyPolicy(0.3))
        self._assert_match(base, base_log, algo, results)

    def test_scaffold_spill_replay(self, tmp_path, tiny_dataset,
                                   tiny_setting):
        """Order-coupled aggregation rides the lossless replay fold."""
        base, base_log = self._baseline(Scaffold, tiny_dataset, tiny_setting)
        algo, results = self._scale_run(Scaffold, tiny_dataset, tiny_setting,
                                        tmp_path)
        assert isinstance(algo.make_fold(UpdateSpill(tmp_path / "probe")),
                          SpillReplayFold)
        self._assert_match(base, base_log, algo, results)
        for name, v in base.c_global.items():
            np.testing.assert_array_equal(algo.c_global[name], v,
                                          err_msg=name)

    def test_process_pool_composition(self, tmp_path, tiny_dataset,
                                      tiny_setting):
        """Virtual pool + hierarchy over the process-pool executor."""
        base, base_log = self._baseline(FedAvg, tiny_dataset, tiny_setting)
        model_fn, _ = tiny_setting
        store = ClientStateStore(tmp_path / "store")
        pool = _virtual_pool(tiny_dataset, tiny_setting, store)
        algo = FedAvg(model_fn, pool.clients(), lr=0.05, local_epochs=1,
                      seed=0, sample_ratio=0.7, executor=make_executor(2))
        try:
            runner = ScaleRunner(algo, pool=pool, edges=2,
                                 spill_dir=tmp_path / "spills")
            results = runner.run(self.ROUNDS)
        finally:
            algo.close()
        self._assert_match(base, base_log, algo, results)

    def test_empty_round_rejected(self, tmp_path):
        algo = make_stub(n_clients=4)
        spill = UpdateSpill(tmp_path / "e.spill")
        fold = algo.make_fold(spill)
        with pytest.raises(ValueError, match="surviving update"):
            fold.finalize(0)

    def test_fault_model_rejected(self, tiny_dataset, tiny_setting):
        from repro.fl import FaultModel
        model_fn, _ = tiny_setting
        algo = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                      lr=0.05, local_epochs=1, seed=0,
                      fault_model=FaultModel(drop_prob=0.5, seed=1))
        with pytest.raises(ValueError, match="fault-free"):
            ScaleRunner(algo)


# --------------------------------------------------- async update store

class TestAsyncUpdateStore:
    HOSTILE = dict(jitter=0.3, straggler_prob=0.4, slowdown=6.0,
                   arrival_spread=1.0, churn_prob=0.1, crash_prob=0.05,
                   duplicate_prob=0.25)

    def _run(self, tmp_path, store=None):
        runner = AsyncFederatedRunner(
            make_stub(n_clients=10, seed=5),
            AsyncProfile(seed=5, **self.HOSTILE),
            AsyncConfig(buffer_k=3, max_inflight=4, max_queue=4),
            update_store=store)
        runner.run(steps=12)
        return runner

    def test_store_mode_matches_in_memory(self, tmp_path):
        ref = self._run(tmp_path)
        store = ClientStateStore(tmp_path / "updates")
        stored = self._run(tmp_path, store=store)
        assert state_fingerprint(dict(
            stored.algo.global_model.state_dict())) == state_fingerprint(
                dict(ref.algo.global_model.state_dict()))
        assert stored.counters == ref.counters
        assert stored.algo.ledger.total_bytes() == ref.algo.ledger.total_bytes()
        # committed jobs drained their blobs; only undelivered ones remain
        live = {jid for jid, job in stored.jobs.items()
                if not job.accepted and not job.crashed
                and jid in stored.inflight}
        for key in store.keys():
            assert int(key.split("/")[1]) in live

    def test_dedup_registry_bounded(self, tmp_path):
        runner = AsyncFederatedRunner(
            make_stub(n_clients=10, seed=5),
            AsyncProfile(seed=5, **self.HOSTILE),
            AsyncConfig(buffer_k=3, max_inflight=4, max_queue=4,
                        dedup_capacity=2))
        runner.run(steps=10)
        assert len(runner._fp_registry) <= 2
        assert runner.dedup_evictions > 0

    def test_dedup_capacity_validated(self):
        with pytest.raises(ValueError):
            AsyncConfig(dedup_capacity=0)

    def test_store_mode_checkpoint_resume(self, tmp_path):
        """Mid-flight snapshot re-parks spilled updates on load."""
        from repro.fl.checkpoint import (load_async_checkpoint,
                                         save_async_checkpoint)

        def fresh(store):
            return AsyncFederatedRunner(
                make_stub(n_clients=10, seed=5),
                AsyncProfile(seed=5, **self.HOSTILE),
                AsyncConfig(buffer_k=3, max_inflight=4, max_queue=4),
                update_store=store)

        ref = fresh(ClientStateStore(tmp_path / "ref"))
        ref.run(steps=12)

        first = fresh(ClientStateStore(tmp_path / "first"))
        first.pump(23)
        path = tmp_path / "async_store.npz"
        save_async_checkpoint(first, path)

        resumed = fresh(ClientStateStore(tmp_path / "resumed"))
        load_async_checkpoint(resumed, path)
        resumed.run(steps=12 - resumed.server_step)
        assert state_fingerprint(dict(
            resumed.algo.global_model.state_dict())) == state_fingerprint(
                dict(ref.algo.global_model.state_dict()))
        assert resumed.counters == ref.counters


# ------------------------------------------------ broadcast cache bound

class TestBroadcastCacheEviction:
    def test_lru_eviction_counts(self):
        cache = BroadcastCache(max_entries=2)
        token = object()
        for i in range(4):
            state = {"w": np.full(4, float(i), dtype=np.float32)}
            cache.encode(state, token=token, channel=f"ch{i}")
        assert len(cache._entries) == 2
        assert cache.evictions == 2

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            BroadcastCache(max_entries=0)

    def test_replica_ships_cold_with_bound(self):
        cache = BroadcastCache(max_entries=3)
        cache.encode({"w": np.zeros(4, np.float32)}, token=1)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.max_entries == 3
        assert not clone._entries
