"""Parallel round-execution engine: equivalence, crashes, obs merge.

The contract under test (DESIGN.md §9): a ``ProcessPoolRoundExecutor``
run is *byte-identical* to a ``SerialExecutor`` run — same global model
bytes, same ``RoundResult`` fields, same fault statistics, same metric
counters, and the same span multiset when traced — because all RNG is
order-independent and the parent commits worker results in cohort order.
"""

from __future__ import annotations

import math
import os
import warnings
from collections import Counter

import numpy as np
import pytest

from repro.data import dirichlet_partition
from repro.fl import make_federated_clients
from repro.fl.comm import (CommLedger, PayloadError, decode_update,
                           encode_update, serialize_state)
from repro.fl.faults import FaultModel
from repro.fl.fedavg import FedAvg
from repro.fl.parallel import (ProcessPoolRoundExecutor, SerialExecutor,
                               make_executor)
from repro.fl.resilience import (ClientDropped, StragglerTimeout,
                                 TransferCorrupted, WorkerCrashed)
from repro.core.spatl import SPATL
from repro.core.selection_policies import StaticSaliencyPolicy
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import tracing

N_CLIENTS = 8
ROUNDS = 2


@pytest.fixture
def eight_client_setting(tiny_dataset, tiny_model_fn):
    """(model_fn, make_clients) with an 8-client partition.

    Clients are rebuilt per run so persistent local state (predictors,
    control variates, top-k residuals) never leaks between the serial
    and parallel runs being compared.
    """
    parts = dirichlet_partition(tiny_dataset.y, N_CLIENTS, beta=0.5, seed=7)

    def make_clients():
        return make_federated_clients(tiny_dataset, parts, batch_size=32,
                                      seed=5)

    return tiny_model_fn, make_clients


def _fault_model():
    return FaultModel(drop_prob=0.2, corrupt_prob=0.05, crash_prob=0.1,
                      seed=21)


def _build(algo_name, model_fn, clients, workers, fault_model=None):
    common = dict(lr=0.05, local_epochs=1, sample_ratio=1.0, seed=0,
                  fault_model=fault_model, executor=make_executor(workers))
    if algo_name == "spatl":
        return SPATL(model_fn, clients,
                     selection_policy=StaticSaliencyPolicy(0.3), **common)
    return FedAvg(model_fn, clients, **common)


def _run(algo_name, setting, workers, fault_model=None, traced=False):
    model_fn, make_clients = setting
    algo = _build(algo_name, model_fn, make_clients(), workers, fault_model)
    registry = MetricsRegistry()
    previous = set_registry(registry)
    tracer = None
    try:
        if traced:
            with tracing() as tracer:
                results = [algo.run_round(r) for r in range(ROUNDS)]
        else:
            results = [algo.run_round(r) for r in range(ROUNDS)]
    finally:
        set_registry(previous)
        algo.close()
    return {
        "results": results,
        "state": serialize_state(algo.global_model.state_dict()),
        "fault_stats": algo.fault_stats.as_dict(),
        "counters": registry.snapshot()["counters"],
        "tracer": tracer,
    }


def _assert_round_results_equal(lhs, rhs):
    """RoundResult equality with NaN-tolerant loss comparison."""
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert (a.avg_train_loss == b.avg_train_loss
                or (math.isnan(a.avg_train_loss)
                    and math.isnan(b.avg_train_loss)))
        for field in ("round_idx", "avg_val_acc", "n_participants",
                      "round_bytes", "n_dropped", "n_retries", "n_corrupt",
                      "n_resamples", "committed"):
            assert getattr(a, field) == getattr(b, field), field


# ------------------------------------------------------------ equivalence
@pytest.mark.parametrize("algo_name", ["fedavg", "spatl"])
@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faults"])
def test_parallel_matches_serial(eight_client_setting, algo_name, faults):
    fault_model = _fault_model() if faults else None
    serial = _run(algo_name, eight_client_setting, 1, fault_model)
    parallel = _run(algo_name, eight_client_setting, 2, fault_model)
    assert serial["state"] == parallel["state"]          # byte-identical
    _assert_round_results_equal(serial["results"], parallel["results"])
    assert serial["fault_stats"] == parallel["fault_stats"]
    assert serial["counters"] == parallel["counters"]


def test_parallel_spatl_local_state_round_trips(eight_client_setting):
    """Predictors/variates mutated in workers land back on parent clients."""
    model_fn, make_clients = eight_client_setting
    serial_clients = make_clients()
    parallel_clients = make_clients()
    for clients, workers in ((serial_clients, 1), (parallel_clients, 2)):
        algo = _build("spatl", model_fn, clients, workers)
        for r in range(ROUNDS):
            algo.run_round(r)
        algo.close()
    for cs, cp in zip(serial_clients, parallel_clients):
        assert set(cs.local_state) == set(cp.local_state)
        assert cs.local_state["predictor"].keys() \
            == cp.local_state["predictor"].keys()
        for name, value in cs.local_state["predictor"].items():
            np.testing.assert_array_equal(
                value, cp.local_state["predictor"][name])
        for name, value in cs.local_state["c_i"].values.items():
            np.testing.assert_array_equal(
                value, cp.local_state["c_i"].values[name])


# ------------------------------------------------------------ obs merge
def test_obs_merge_matches_serial(eight_client_setting):
    """Worker spans/metrics merged into the parent sum to serial counts."""
    fault_model = _fault_model()   # nonzero worker-side attempt counters
    serial = _run("fedavg", eight_client_setting, 1, fault_model,
                  traced=True)
    parallel = _run("fedavg", eight_client_setting, 2, fault_model,
                    traced=True)
    assert serial["counters"] == parallel["counters"]
    span_names_s = Counter(s.name for s in serial["tracer"].spans)
    span_names_p = Counter(s.name for s in parallel["tracer"].spans)
    assert span_names_s == span_names_p
    # Codec spans carry byte counts; their totals must agree (and match
    # the ledger — the §8 cross-check) despite the extra plumbing codec
    # traffic parallel execution adds, which is deliberately untraced.
    for direction in ("serialize", "deserialize"):
        tot_s = sum(s.attrs.get("bytes", 0)
                    for s in serial["tracer"].spans if s.name == direction)
        tot_p = sum(s.attrs.get("bytes", 0)
                    for s in parallel["tracer"].spans if s.name == direction)
        assert tot_s == tot_p


def test_tracer_absorb_depth_and_records():
    from repro.obs.trace import Tracer
    worker = Tracer()
    with worker.span("download", client=3):
        with worker.span("deserialize"):
            pass
    parent = Tracer()
    with parent.span("round", round=0):
        parent.absorb(worker.records(), base_depth=parent.depth)
    depths = {s.name: s.depth for s in parent.spans}
    assert depths == {"round": 0, "download": 1, "deserialize": 2}
    names = {s.name for s in parent.spans}
    assert names == {"round", "download", "deserialize"}
    assert [s.attrs for s in parent.spans if s.name == "download"] \
        == [{"client": 3}]


# ------------------------------------------------------------ crashes
class ExitingFedAvg(FedAvg):
    """FedAvg whose client 2 kills its whole worker process in round 0."""

    name = "exiting-fedavg"

    def local_update(self, client, round_idx):
        if client.client_id == 2 and round_idx == 0:
            os._exit(13)
        return super().local_update(client, round_idx)


def test_worker_crash_raises_without_fault_model(eight_client_setting):
    model_fn, make_clients = eight_client_setting
    algo = ExitingFedAvg(model_fn, make_clients(), lr=0.05, local_epochs=1,
                         sample_ratio=1.0, seed=0,
                         executor=ProcessPoolRoundExecutor(2))
    try:
        with pytest.raises(WorkerCrashed):
            algo.run_round(0)
    finally:
        algo.close()


def test_worker_crash_drops_client_with_fault_model(eight_client_setting):
    """With faults configured the crash degrades the round, then the pool
    rebuilds and the next round runs clean."""
    model_fn, make_clients = eight_client_setting
    algo = ExitingFedAvg(model_fn, make_clients(), lr=0.05, local_epochs=1,
                         sample_ratio=1.0, seed=0,
                         fault_model=FaultModel(seed=1),
                         executor=ProcessPoolRoundExecutor(2))
    try:
        r0 = algo.run_round(0)
        assert r0.n_dropped >= 1                 # the pool-breaking crash
        assert r0.n_participants + r0.n_dropped == N_CLIENTS
        r1 = algo.run_round(1)                   # rebuilt pool, no crash
        assert r1.n_dropped == 0
        assert r1.n_participants == N_CLIENTS
    finally:
        algo.close()


def test_worker_crashed_is_client_dropped():
    failure = WorkerCrashed(4, 2, "worker died")
    assert isinstance(failure, ClientDropped)
    assert failure.client_id == 4 and failure.round_idx == 2


def test_failures_survive_pickling():
    import pickle
    for failure in (WorkerCrashed(1, 2, "gone"),
                    StragglerTimeout(3, 4, 9.0, 5.0),
                    TransferCorrupted(5, 6, "up", ValueError("crc"))):
        clone = pickle.loads(pickle.dumps(failure))
        assert type(clone) is type(failure)
        assert clone.client_id == failure.client_id
        assert clone.round_idx == failure.round_idx
        assert str(clone) == str(failure)


# ------------------------------------------------------------ codec
def test_update_codec_round_trips_losslessly():
    update = {
        "salient": {"conv1": (np.arange(3, dtype=np.int32),
                              np.random.default_rng(0).normal(size=(3, 4))
                              .astype(np.float32))},
        "dense": {"bn.bias": np.linspace(-1, 1, 5)},
        "n": 100, "train_loss": 0.1 + 0.2, "steps": 7,
        "flag": True, "nothing": None, "tag": "spatl",
        "np_scalar": np.float64(1 / 3),
        "nested": [1, (2.5, "x"), {"deep": np.ones(2, dtype=np.float16)}],
    }
    decoded = decode_update(encode_update(update))
    assert decoded["n"] == 100 and decoded["steps"] == 7
    assert decoded["train_loss"] == update["train_loss"]     # exact float
    assert decoded["flag"] is True and decoded["nothing"] is None
    assert decoded["tag"] == "spatl"
    assert type(decoded["np_scalar"]) is np.float64
    assert decoded["np_scalar"] == update["np_scalar"]
    idx, rows = decoded["salient"]["conv1"]
    assert idx.dtype == np.int32 and rows.dtype == np.float32
    np.testing.assert_array_equal(idx, update["salient"]["conv1"][0])
    np.testing.assert_array_equal(rows, update["salient"]["conv1"][1])
    np.testing.assert_array_equal(decoded["dense"]["bn.bias"],
                                  update["dense"]["bn.bias"])
    assert isinstance(decoded["nested"][1], tuple)
    assert decoded["nested"][1] == (2.5, "x")
    assert decoded["nested"][2]["deep"].dtype == np.float16


def test_update_codec_rejects_bad_trees():
    with pytest.raises(TypeError):
        encode_update({1: np.zeros(2)})          # non-str dict key
    with pytest.raises(TypeError):
        encode_update({"x": object()})           # unframable leaf
    with pytest.raises(PayloadError):
        decode_update(serialize_state({"t0": np.zeros(2)}))  # no manifest


def test_comm_ledger_merge():
    a, b = CommLedger(), CommLedger()
    a.record_up(0, 1, 100)
    b.record_up(0, 1, 50)
    b.record_down(1, 2, 10)
    a.merge(b)
    assert a.uplink[0][1] == 150
    assert a.downlink[1][2] == 10
    assert a.total_bytes() == 160


# ------------------------------------------------------------ loss fix
class LosslessFedAvg(FedAvg):
    """FedAvg whose updates (wrongly) carry no train_loss key."""

    name = "lossless-fedavg"

    def local_update(self, client, round_idx):
        update = super().local_update(client, round_idx)
        del update["train_loss"]
        return update


def test_missing_train_loss_warns_once(eight_client_setting):
    model_fn, make_clients = eight_client_setting
    LosslessFedAvg._warned_lossless_update = False   # isolate from reruns
    algo = LosslessFedAvg(model_fn, make_clients(), lr=0.05, local_epochs=1,
                          sample_ratio=1.0, seed=0)
    with pytest.warns(RuntimeWarning, match="train_loss"):
        r0 = algo.run_round(0)
    assert math.isnan(r0.avg_train_loss)
    with warnings.catch_warnings():
        warnings.simplefilter("error")            # any warning -> failure
        r1 = algo.run_round(1)                    # warned once, not per-round
    assert math.isnan(r1.avg_train_loss)


def test_avg_loss_ignores_non_finite(eight_client_setting):
    """A cohort mixing real and missing losses averages the finite ones."""
    model_fn, make_clients = eight_client_setting

    class HalfLossFedAvg(FedAvg):
        name = "half-loss-fedavg"

        def local_update(self, client, round_idx):
            update = super().local_update(client, round_idx)
            if client.client_id % 2 == 0:
                del update["train_loss"]
            return update

    algo = HalfLossFedAvg(model_fn, make_clients(), lr=0.05, local_epochs=1,
                          sample_ratio=1.0, seed=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        result = algo.run_round(0)
    assert math.isfinite(result.avg_train_loss)


# ------------------------------------------------------------ factory
def test_make_executor_dispatch():
    assert isinstance(make_executor(0), SerialExecutor)
    assert isinstance(make_executor(1), SerialExecutor)
    pooled = make_executor(2)
    assert isinstance(pooled, ProcessPoolRoundExecutor)
    pooled.close()                                # never started: no-op
    with pytest.raises(ValueError):
        ProcessPoolRoundExecutor(1)
