"""Unit tests: elementary tensor operations and their gradients."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, tensor
from repro.tensor.tensor import concatenate, stack, unbroadcast
from tests.conftest import assert_grad_close, numerical_gradient

R = np.random.default_rng(0)


def _t(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True,
                  dtype=np.float64)


def check_unary(op, x0, **tol):
    x = _t(x0)
    out = op(x)
    out.sum().backward()
    num = numerical_gradient(lambda v: float(op(_t(v)).sum().item()), x0.copy())
    assert_grad_close(x.grad, num, **tol)


class TestArithmetic:
    def test_add_broadcast(self):
        a = _t(R.normal(size=(3, 4)))
        b = _t(R.normal(size=(4,)))
        out = a + b
        assert out.shape == (3, 4)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_radd_scalar(self):
        a = _t([1.0, 2.0])
        out = 5.0 + a
        np.testing.assert_allclose(out.data, [6.0, 7.0])

    def test_sub_rsub(self):
        a = _t([3.0])
        out = 10.0 - a
        out.backward(np.ones(1))
        np.testing.assert_allclose(out.data, [7.0])
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_mul_grad(self):
        x0 = R.normal(size=(2, 3))
        y0 = R.normal(size=(2, 3))
        x, y = _t(x0), _t(y0)
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, y0)
        np.testing.assert_allclose(y.grad, x0)

    def test_div_grad(self):
        x0 = R.normal(size=(3,)) + 3.0
        y0 = R.normal(size=(3,)) + 3.0
        x, y = _t(x0), _t(y0)
        (x / y).sum().backward()
        assert_grad_close(x.grad, 1.0 / y0)
        assert_grad_close(y.grad, -x0 / y0 ** 2)

    def test_neg(self):
        x = _t([1.0, -2.0])
        (-x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_pow(self):
        x0 = np.abs(R.normal(size=(4,))) + 0.5
        check_unary(lambda t: t ** 3, x0)

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            _t([1.0]) ** _t([2.0])

    @given(hnp.arrays(np.float64, hnp.array_shapes(max_dims=3, max_side=4),
                      elements=st.floats(-5, 5)))
    @settings(max_examples=30, deadline=None)
    def test_add_commutes(self, arr):
        a, b = Tensor(arr, dtype=np.float64), Tensor(arr * 2, dtype=np.float64)
        np.testing.assert_allclose((a + b).data, (b + a).data)


class TestMatmul:
    @pytest.mark.parametrize("sa,sb", [((3, 4), (4, 5)), ((4,), (4, 5)),
                                       ((3, 4), (4,)), ((4,), (4,)),
                                       ((2, 3, 4), (4, 5))])
    def test_matmul_grad(self, sa, sb):
        a0, b0 = R.normal(size=sa), R.normal(size=sb)

        def f(av, bv):
            a, b = _t(av), _t(bv)
            return a, b, ((a @ b) * (a @ b)).sum()

        a, b, out = f(a0, b0)
        out.backward()
        assert_grad_close(a.grad, numerical_gradient(
            lambda v: f(v, b0)[2].item(), a0.copy()))
        assert_grad_close(b.grad, numerical_gradient(
            lambda v: f(a0, v)[2].item(), b0.copy()))


class TestReductionsShapes:
    def test_sum_axis_keepdims(self):
        x = _t(R.normal(size=(2, 3, 4)))
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_mean_tuple_axis(self):
        x0 = R.normal(size=(2, 3, 4, 4))
        check_unary(lambda t: (t.mean(axis=(2, 3)) ** 2), x0)

    def test_var(self):
        x0 = R.normal(size=(5, 3))
        check_unary(lambda t: t.var(axis=0), x0, atol=1e-5)

    def test_max_grad_spreads_ties(self):
        x = _t([[1.0, 2.0, 2.0]])
        x.max().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 0.5, 0.5]])

    def test_max_axis(self):
        x0 = R.normal(size=(3, 5))
        check_unary(lambda t: t.max(axis=1), x0)

    def test_reshape_roundtrip(self):
        x0 = R.normal(size=(2, 6))
        check_unary(lambda t: (t.reshape(3, 4) ** 2), x0)

    def test_transpose(self):
        x0 = R.normal(size=(2, 3, 4))
        check_unary(lambda t: (t.transpose(2, 0, 1) ** 2), x0)

    def test_getitem(self):
        x0 = R.normal(size=(5, 3))
        check_unary(lambda t: (t[1:4] ** 2), x0)

    def test_getitem_fancy(self):
        x0 = R.normal(size=(5, 3))
        idx = np.asarray([0, 2, 2])

        def op(t):
            return (t[idx] ** 2)
        check_unary(op, x0)

    def test_pad2d(self):
        x0 = R.normal(size=(1, 2, 3, 3))
        check_unary(lambda t: (t.pad2d(2) ** 2), x0)

    def test_flatten_from(self):
        x = _t(R.normal(size=(2, 3, 4)))
        assert x.flatten_from(1).shape == (2, 12)


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu", "sqrt"])
    def test_unary_grad(self, name):
        x0 = np.abs(R.normal(size=(3, 3))) + 0.5
        check_unary(lambda t: getattr(t, name)(), x0)

    def test_log(self):
        x0 = np.abs(R.normal(size=(4,))) + 1.0
        check_unary(lambda t: t.log(), x0)

    def test_clip_grad_zero_outside(self):
        x = _t([-2.0, 0.5, 2.0])
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_comparisons_return_arrays(self):
        x = Tensor([1.0, 2.0])
        assert (x > 1.5).dtype == bool
        assert (x <= 2.0).all()


class TestConcatStack:
    def test_concatenate_grad(self):
        a0, b0 = R.normal(size=(2, 3)), R.normal(size=(4, 3))

        def f(av, bv):
            a, b = _t(av), _t(bv)
            return a, b, (concatenate([a, b], axis=0) ** 2).sum()

        a, b, out = f(a0, b0)
        out.backward()
        assert_grad_close(a.grad, 2 * a0)
        assert_grad_close(b.grad, 2 * b0)

    def test_stack_grad(self):
        a0 = R.normal(size=(3,))
        a, b = _t(a0), _t(a0 * 2)
        (stack([a, b], axis=0) ** 2).sum().backward()
        assert_grad_close(a.grad, 2 * a0)
        assert_grad_close(b.grad, 4 * a0)


class TestUnbroadcast:
    @given(st.sampled_from([((3, 4), (4,)), ((2, 3, 4), (3, 4)),
                            ((5, 1, 3), (5, 1, 3)), ((2, 4), (1, 4)),
                            ((6, 2, 3), (1, 1, 3))]))
    @settings(max_examples=20, deadline=None)
    def test_matches_explicit_sum(self, shapes):
        big, small = shapes
        g = np.arange(np.prod(big), dtype=np.float64).reshape(big)
        reduced = unbroadcast(g, small)
        assert reduced.shape == small
        # total mass is preserved by the reduction
        np.testing.assert_allclose(reduced.sum(), g.sum())

    def test_identity(self):
        g = np.ones((2, 2))
        assert unbroadcast(g, (2, 2)) is g


def test_tensor_constructor_helpers():
    t = tensor([1, 2, 3], dtype=np.float32)
    assert t.dtype == np.float32
    assert t.size == 3 and t.ndim == 1 and len(t) == 3
    d = t.detach()
    assert not d.requires_grad and d.data is t.data
    c = t.copy()
    assert c.data is not t.data
    assert "Tensor" in repr(t)
