"""Vectorized cohort executor + shared-memory transport (DESIGN.md §14).

The contract under test: a :class:`VectorizedRoundExecutor` run — and a
``ProcessPoolRoundExecutor(shm=True)`` run — is *byte-identical* to a
:class:`SerialExecutor` run: same global model bytes, same
``RoundResult`` fields, same fault statistics, same metric counters.
Anything the cohort kernels cannot replicate (unsupported layers,
customised ``local_update``) must fall back to serial, still
byte-identical.  Also covers the executor-lifetime pool (stable worker
PIDs, identity-based rebinding) and the compositions with the
population-scale runner and the async runtime.
"""

from __future__ import annotations

import math
import types

import numpy as np
import pytest

from repro.data import dirichlet_partition
from repro.fl import (AsyncConfig, AsyncFederatedRunner, AsyncProfile,
                      make_federated_clients)
from repro.fl.comm import serialize_state
from repro.fl.faults import FaultModel
from repro.fl.fedavg import FedAvg
from repro.fl.fedprox import FedProx
from repro.fl.parallel import (ProcessPoolRoundExecutor, SerialExecutor,
                               SharedMemoryTransport, make_executor)
from repro.fl.vectorized import (CohortTrainer, CohortUnsupported,
                                 VectorizedRoundExecutor)
from repro.core.spatl import SPATL
from repro.core.selection_policies import StaticSaliencyPolicy
from repro.obs.metrics import MetricsRegistry, set_registry

N_CLIENTS = 8
ROUNDS = 2


@pytest.fixture
def eight_client_setting(tiny_dataset, tiny_model_fn):
    """(model_fn, make_clients) with an 8-client partition (fresh clients
    per run so local state never leaks between compared runs)."""
    parts = dirichlet_partition(tiny_dataset.y, N_CLIENTS, beta=0.5, seed=7)

    def make_clients():
        return make_federated_clients(tiny_dataset, parts, batch_size=32,
                                      seed=5)

    return tiny_model_fn, make_clients


def _fault_model():
    return FaultModel(drop_prob=0.2, corrupt_prob=0.05, crash_prob=0.1,
                      seed=21)


def _build(algo_name, model_fn, clients, executor, fault_model=None):
    common = dict(lr=0.05, local_epochs=1, sample_ratio=1.0, seed=0,
                  fault_model=fault_model, executor=executor)
    if algo_name == "spatl":
        return SPATL(model_fn, clients,
                     selection_policy=StaticSaliencyPolicy(0.3), **common)
    if algo_name == "fedprox":
        return FedProx(model_fn, clients, **common)
    return FedAvg(model_fn, clients, **common)


def _run(algo_name, setting, executor_fn, fault_model=None):
    model_fn, make_clients = setting
    algo = _build(algo_name, model_fn, make_clients(), executor_fn(),
                  fault_model)
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        results = [algo.run_round(r) for r in range(ROUNDS)]
    finally:
        set_registry(previous)
        algo.close()
    return {
        "results": results,
        "state": serialize_state(algo.global_model.state_dict()),
        "fault_stats": algo.fault_stats.as_dict(),
        "counters": registry.snapshot()["counters"],
    }


def _assert_round_results_equal(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        for field in ("avg_train_loss", "avg_val_acc"):
            va, vb = getattr(a, field), getattr(b, field)
            assert va == vb or (math.isnan(va) and math.isnan(vb)), field
        for field in ("round_idx", "n_participants", "round_bytes",
                      "n_dropped", "n_retries", "n_corrupt", "n_resamples",
                      "committed"):
            assert getattr(a, field) == getattr(b, field), field


def _assert_equivalent(serial, other):
    assert serial["state"] == other["state"]            # byte-identical
    _assert_round_results_equal(serial["results"], other["results"])
    assert serial["fault_stats"] == other["fault_stats"]
    assert serial["counters"] == other["counters"]


# ------------------------------------------------------------ equivalence
@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faults"])
def test_vectorized_matches_serial(eight_client_setting, faults):
    fault_model = _fault_model() if faults else None
    serial = _run("fedavg", eight_client_setting, SerialExecutor,
                  fault_model)
    vector = _run("fedavg", eight_client_setting, VectorizedRoundExecutor,
                  fault_model)
    _assert_equivalent(serial, vector)


@pytest.mark.parametrize("algo_name", ["spatl", "fedprox"])
def test_vectorized_fallback_matches_serial(eight_client_setting, algo_name):
    """Algorithms outside the cohort envelope run on the fallback,
    byte-identical: SPATL has no hook; FedProx inherits FedAvg's hook but
    overrides ``local_update`` (proximal term), which the hook detects."""
    serial = _run(algo_name, eight_client_setting, SerialExecutor)
    vector = _run(algo_name, eight_client_setting, VectorizedRoundExecutor)
    _assert_equivalent(serial, vector)


def test_fedprox_hook_rejects_overridden_local_update(eight_client_setting):
    model_fn, make_clients = eight_client_setting
    algo = _build("fedprox", model_fn, make_clients(), SerialExecutor())
    try:
        with pytest.raises(CohortUnsupported, match="overrides local_update"):
            algo.cohort_local_updates(algo.clients, 0)
    finally:
        algo.close()


def test_cohort_trainer_rejects_dropout():
    from repro.nn import Dropout, Linear, Sequential

    rng = np.random.default_rng(0)
    model = Sequential(Linear(4, 8, rng=rng), Dropout(0.5, seed=1),
                       Linear(8, 2, rng=rng))
    with pytest.raises(CohortUnsupported, match="dropout"):
        CohortTrainer(types.SimpleNamespace(model_fn=lambda: model))


@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faults"])
def test_shm_executor_matches_serial(eight_client_setting, faults):
    fault_model = _fault_model() if faults else None
    serial = _run("fedavg", eight_client_setting, SerialExecutor,
                  fault_model)
    shm = _run("fedavg", eight_client_setting,
               lambda: ProcessPoolRoundExecutor(2, shm=True), fault_model)
    _assert_equivalent(serial, shm)


# ------------------------------------------------------------ transport
def test_shared_memory_transport_reuses_and_grows():
    transport = SharedMemoryTransport()
    try:
        name1, n1 = transport.publish(b"abc")
        assert (name1, n1) == (transport.name, 3)
        name2, n2 = transport.publish(b"xy")         # fits: same segment
        assert name2 == name1 and n2 == 2
        big = bytes(range(256)) * 64
        name3, n3 = transport.publish(big)           # outgrown: new segment
        assert name3 != name1 and n3 == len(big)
        from multiprocessing import shared_memory
        reader = shared_memory.SharedMemory(name=name3)
        try:
            assert bytes(reader.buf[:n3]) == big
        finally:
            reader.close()
    finally:
        transport.close()
    transport.close()                                # idempotent


def test_transport_unlinks_on_gc():
    """A transport dropped without close() (executor leaked by a caller)
    still unlinks its segment at GC instead of stranding it until the
    resource tracker's shutdown sweep."""
    import gc
    from multiprocessing import shared_memory

    transport = SharedMemoryTransport()
    name, _ = transport.publish(b"abc")
    del transport
    gc.collect()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


# ------------------------------------------------------------ pool life
def test_worker_pids_stable_across_rounds(eight_client_setting):
    """The pool lives for the executor's lifetime: same pool object and
    same worker processes across rounds (replica setup is paid once)."""
    model_fn, make_clients = eight_client_setting
    executor = ProcessPoolRoundExecutor(2)
    algo = _build("fedavg", model_fn, make_clients(), executor)
    try:
        pids = []
        pools = []
        for r in range(3):
            algo.run_round(r)
            pools.append(executor._pool)
            pids.append(frozenset(executor._pool._processes))
        assert pools[0] is pools[1] is pools[2]
        assert pids[0] == pids[1] == pids[2]
        assert executor._pool_algorithm is algo
    finally:
        algo.close()


def test_pool_rebinds_by_identity(eight_client_setting):
    """Rebinding to a different algorithm object rebuilds the pool; the
    binding is a strong identity reference, not an id() key that a
    recycled address could collide with."""
    model_fn, make_clients = eight_client_setting
    executor = ProcessPoolRoundExecutor(2)
    algo1 = _build("fedavg", model_fn, make_clients(), executor)
    try:
        algo1.run_round(0)
        pool1 = executor._pool
        assert executor._pool_algorithm is algo1
        algo2 = _build("fedavg", model_fn, make_clients(), executor)
        algo2.run_round(0)
        assert executor._pool is not pool1
        assert executor._pool_algorithm is algo2
    finally:
        executor.close()


# ------------------------------------------------------------ compose
def test_scale_runner_composes_with_vectorized(tiny_dataset, tiny_model_fn):
    from repro.fl import ScaleRunner

    parts = dirichlet_partition(tiny_dataset.y, N_CLIENTS, beta=0.5, seed=7)

    def run(executor, wave=None):
        clients = make_federated_clients(tiny_dataset, parts, batch_size=32,
                                         seed=5)
        algo = _build("fedavg", tiny_model_fn, clients, executor)
        runner = ScaleRunner(algo, eval_mode="none", wave=wave)
        results = runner.run(ROUNDS)
        state = serialize_state(algo.global_model.state_dict())
        algo.close()
        return state, results, runner.wave

    state_s, results_s, _ = run(SerialExecutor())
    # default wave comes from the executor's preferred_wave hint
    state_v, results_v, wave = run(VectorizedRoundExecutor())
    assert wave == VectorizedRoundExecutor.preferred_wave
    assert state_s == state_v
    _assert_round_results_equal(results_s, results_v)
    # a wave that splits the cohort into uneven sub-cohorts still matches
    state_w, results_w, _ = run(VectorizedRoundExecutor(), wave=3)
    assert state_s == state_w
    _assert_round_results_equal(results_s, results_w)


def test_async_runtime_composes_with_vectorized(eight_client_setting):
    """The async runtime dispatches ``local_update`` directly (no
    executor), so attaching the vectorized executor must not perturb an
    async run."""
    model_fn, make_clients = eight_client_setting

    def run(executor):
        algo = _build("fedavg", model_fn, make_clients(), executor)
        runner = AsyncFederatedRunner(
            algo, AsyncProfile(seed=0),
            AsyncConfig(buffer_k=2, max_inflight=N_CLIENTS,
                        max_queue=N_CLIENTS))
        runner.run(steps=4)
        runner.finalize()
        state = serialize_state(algo.global_model.state_dict())
        counters = dict(runner.counters)
        algo.close()
        return state, counters

    assert run(SerialExecutor()) == run(VectorizedRoundExecutor())


# ------------------------------------------------------------ factory
def test_make_executor_kinds():
    assert isinstance(make_executor(1), SerialExecutor)
    assert isinstance(make_executor(4, kind="serial"), SerialExecutor)
    pooled = make_executor(2, kind="process", shm=True)
    assert isinstance(pooled, ProcessPoolRoundExecutor) and pooled.shm
    pooled.close()
    solo = make_executor(1, kind="vectorized")
    assert isinstance(solo, VectorizedRoundExecutor)
    assert isinstance(solo.fallback, SerialExecutor)
    solo.close()
    fanned = make_executor(2, kind="vectorized", shm=True)
    assert isinstance(fanned.fallback, ProcessPoolRoundExecutor)
    assert fanned.fallback.shm
    fanned.close()
    with pytest.raises(ValueError, match="unknown executor kind"):
        make_executor(2, kind="threads")
    with pytest.raises(ValueError):
        make_executor(1, kind="process")
    # shm without a process pool is an error, not silently ignored
    with pytest.raises(ValueError, match="workers >= 2"):
        make_executor(1, shm=True)
    with pytest.raises(ValueError, match="workers >= 2"):
        make_executor(4, kind="serial", shm=True)
