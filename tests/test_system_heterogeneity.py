"""Tests: system heterogeneity (variable local epochs per client/round).

This is the objective-inconsistency regime FedNova (one of the paper's
baselines) was designed for: slow clients run fewer local epochs, and
naive averaging then biases toward fast clients.
"""

import numpy as np
import pytest

from repro.core import SPATL
from repro.fl import FedAvg, FedNova, make_federated_clients


def _clients(tiny_dataset, tiny_setting):
    _, parts = tiny_setting
    return make_federated_clients(tiny_dataset, parts, batch_size=32, seed=5)


class TestEpochsFor:
    def test_uniform_int(self, tiny_dataset, tiny_setting):
        model_fn, _ = tiny_setting
        algo = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                      lr=0.05, local_epochs=3, seed=0)
        assert algo.epochs_for(algo.clients[0], 0) == 3
        assert algo.epochs_for(algo.clients[1], 7) == 3

    def test_range_samples_within_bounds(self, tiny_dataset, tiny_setting):
        model_fn, _ = tiny_setting
        algo = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                      lr=0.05, local_epochs=(1, 4), seed=0)
        draws = [algo.epochs_for(c, r)
                 for c in algo.clients for r in range(10)]
        assert min(draws) >= 1 and max(draws) <= 4
        assert len(set(draws)) > 1  # actually heterogeneous

    def test_range_deterministic(self, tiny_dataset, tiny_setting):
        model_fn, _ = tiny_setting
        a1 = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                    lr=0.05, local_epochs=(1, 5), seed=3)
        a2 = FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                    lr=0.05, local_epochs=(1, 5), seed=3)
        for c1, c2 in zip(a1.clients, a2.clients):
            assert a1.epochs_for(c1, 4) == a2.epochs_for(c2, 4)

    def test_invalid_range_rejected(self, tiny_dataset, tiny_setting):
        model_fn, _ = tiny_setting
        with pytest.raises(ValueError):
            FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                   lr=0.05, local_epochs=(4, 2))
        with pytest.raises(ValueError):
            FedAvg(model_fn, _clients(tiny_dataset, tiny_setting),
                   lr=0.05, local_epochs=(0, 2))


class TestHeterogeneousTraining:
    def test_fednova_normalizes_unequal_work(self, tiny_dataset,
                                             tiny_setting):
        # One round with (1, 4)-epoch clients: every algorithm must still
        # produce finite, learning updates.
        model_fn, _ = tiny_setting
        for cls in (FedAvg, FedNova, SPATL):
            algo = cls(model_fn, _clients(tiny_dataset, tiny_setting),
                       lr=0.05, local_epochs=(1, 4), seed=0)
            result = algo.run_round(0)
            assert np.isfinite(result.avg_val_acc), cls.__name__
            for _, p in algo.global_model.named_parameters():
                assert np.isfinite(p.data).all(), cls.__name__

    def test_fednova_step_counts_differ_across_clients(self, tiny_dataset,
                                                       tiny_setting):
        model_fn, _ = tiny_setting
        algo = FedNova(model_fn, _clients(tiny_dataset, tiny_setting),
                       lr=0.05, local_epochs=(1, 5), sample_ratio=1.0,
                       seed=0)
        updates = [algo.local_update(c, 0) for c in algo.clients]
        steps = {u["steps"] for u in updates}
        assert len(steps) > 1
        # normalized deltas stay on comparable scales despite unequal work
        norms = [np.sqrt(sum(float((d ** 2).sum())
                             for d in u["delta"].values()))
                 for u in updates]
        assert max(norms) / max(min(norms), 1e-9) < 50

    def test_spatl_variate_uses_actual_steps(self, tiny_dataset,
                                             tiny_setting):
        # eff_steps must reflect the per-client epoch draw, not the range.
        model_fn, _ = tiny_setting
        algo = SPATL(model_fn, _clients(tiny_dataset, tiny_setting),
                     lr=0.05, local_epochs=(1, 4), sample_ratio=1.0, seed=0)
        updates = [algo.local_update(c, 0) for c in algo.clients]
        effs = {round(u["eff_steps"], 3) for u in updates}
        assert len(effs) > 1
