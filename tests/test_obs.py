"""Unit tests: the repro.obs subsystem (tracer, metrics, profiler, reports)."""

import io
import json

import numpy as np
import pytest

from repro.data import SyntheticCIFAR10
from repro.fl import FedAvg, make_federated_clients, serialize_state
from repro.models import build_model
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.obs import (NULL_SPAN, MetricsRegistry, NullTracer, OpProfiler,
                       Tracer, codec_byte_totals, get_tracer, hotspot_table,
                       round_timeline_table, set_tracer, span_attr_total,
                       span_total_seconds, tracing)
from repro.tensor import Tensor
from repro.tensor.tensor import set_backward_op_hook


def _tiny_setting(n_clients=2, seed=0):
    ds = SyntheticCIFAR10(n_samples=40 * n_clients, size=12, seed=seed)
    parts = [np.arange(i * 40, (i + 1) * 40) for i in range(n_clients)]
    clients = make_federated_clients(ds, parts, batch_size=20, seed=seed)
    model_fn = lambda: build_model("resnet20", num_classes=10, input_size=12,
                                   width_mult=0.25, seed=seed + 1)
    return model_fn, clients


class TestTracer:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", kind="unit") as span:
            span.set(items=3)
        assert len(tracer.spans) == 1
        s = tracer.spans[0]
        assert s.name == "work"
        assert s.attrs == {"kind": "unit", "items": 3}
        assert s.duration >= 0.0

    def test_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_default_tracer_is_noop(self):
        tracer = get_tracer()
        assert not tracer.enabled
        assert tracer.span("anything", x=1) is NULL_SPAN
        assert NULL_SPAN.set(a=2) is NULL_SPAN  # never stores anything
        assert NULL_SPAN.attrs == {}

    def test_tracing_context_installs_and_restores(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer
            with tracer.span("inside"):
                pass
        assert get_tracer() is before
        assert [s.name for s in tracer.spans] == ["inside"]

    def test_set_tracer_returns_previous(self):
        t = Tracer()
        prev = set_tracer(t)
        try:
            assert get_tracer() is t
        finally:
            set_tracer(prev)
        assert isinstance(get_tracer(), (NullTracer, Tracer))

    def test_chrome_trace_export_well_formed(self):
        tracer = Tracer()
        with tracer.span("phase", round=0, bytes=128):
            pass
        doc = tracer.to_chrome_trace()
        payload = json.loads(json.dumps(doc))   # must be JSON-serialisable
        events = payload["traceEvents"]
        assert len(events) == 1
        ev = events[0]
        assert ev["ph"] == "X" and ev["name"] == "phase"
        assert set(ev) >= {"ts", "dur", "pid", "tid", "args"}
        assert ev["args"]["bytes"] == 128

    def test_jsonl_export_parses_line_per_span(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b", n=2):
            pass
        lines = tracer.to_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["a", "b"]
        assert records[1]["attrs"] == {"n": 2}

    def test_span_helpers(self):
        tracer = Tracer()
        for nbytes in (10, 32):
            with tracer.span("serialize", bytes=nbytes):
                pass
        assert span_attr_total(tracer, "serialize", "bytes") == 42
        assert span_total_seconds(tracer, "serialize") >= 0.0
        assert span_total_seconds(tracer, "missing") == 0.0


class TestMetrics:
    def test_counter_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2)
        reg.counter("hits", side="up").inc(5)
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["counters"]["hits{side=up}"] == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_last_value_wins(self):
        reg = MetricsRegistry()
        reg.gauge("acc").set(0.5)
        reg.gauge("acc").set(0.75)
        assert reg.snapshot()["gauges"]["acc"] == 0.75

    def test_histogram_buckets_and_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["buckets"] == [1, 1, 1]
        assert s["min"] == 0.5 and s["max"] == 50.0
        assert s["mean"] == pytest.approx(55.5 / 3)

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(1.0,)).observe(2.0)
        b.gauge("g").set(7.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["n"] == 3
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["buckets"] == [1, 1]

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.01)
        json.loads(reg.to_json())


class TestProfiler:
    def _run_small_model(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        fc = Linear(4 * 8 * 8, 10, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        out = fc(conv(x).relu().flatten_from(1))
        out.sum().backward()

    def test_records_conv_forward_and_backward(self):
        with OpProfiler() as prof:
            self._run_small_model()
        assert "conv2d.forward" in prof.stats
        assert "conv2d.backward" in prof.stats
        assert "linear.forward" in prof.stats
        fwd = prof.stats["conv2d.forward"]
        assert fwd.calls == 1 and fwd.flops > 0 and fwd.seconds > 0

    def test_conv_flops_match_analytic_count(self):
        with OpProfiler() as prof:
            self._run_small_model()
        # conv: 2 * (out_c * ho * wo * in_c * k^2) + bias, x batch of 2
        macs = 4 * 8 * 8 * 3 * 9
        expected = (2 * macs + 4 * 8 * 8) * 2
        assert prof.stats["conv2d.forward"].flops == expected

    def test_uninstall_restores_originals(self):
        original_conv = Conv2d.forward
        original_linear = Linear.forward
        prof = OpProfiler().install()
        assert Conv2d.forward is not original_conv
        prof.uninstall()
        assert Conv2d.forward is original_conv
        assert Linear.forward is original_linear
        prof.uninstall()                       # idempotent
        assert Conv2d.forward is original_conv

    def test_no_recording_without_install(self):
        prof = OpProfiler()
        self._run_small_model()
        assert prof.stats == {}
        # the engine hook must be clear again after any prior uninstall
        assert set_backward_op_hook(None) is None

    def test_top_hotspots_ordering_and_report(self):
        with OpProfiler() as prof:
            self._run_small_model()
        ranked = prof.top_hotspots(5)
        seconds = [stat.seconds for _, stat in ranked]
        assert seconds == sorted(seconds, reverse=True)
        table = hotspot_table(prof, n=5)
        assert "conv2d.forward" in table and "GFLOP" in table


class TestTracedFederatedRun:
    def test_traced_run_is_numerically_identical(self):
        model_fn, clients = _tiny_setting()
        plain = FedAvg(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        plain_log = plain.run(2)

        model_fn2, clients2 = _tiny_setting()
        traced = FedAvg(model_fn2, clients2, lr=0.05, local_epochs=1, seed=0)
        with tracing() as tracer, OpProfiler() as prof:
            traced_log = traced.run(2)

        assert traced_log["val_acc"] == plain_log["val_acc"]
        assert traced_log["train_loss"] == plain_log["train_loss"]
        assert tracer.spans and prof.stats

    def test_codec_span_bytes_match_ledger(self):
        model_fn, clients = _tiny_setting()
        algo = FedAvg(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        with tracing() as tracer:
            algo.run(2)
        totals = codec_byte_totals(tracer)
        assert totals["serialize"] == algo.ledger.total_bytes()
        assert totals["deserialize"] == algo.ledger.total_bytes()
        # phase spans carry the same per-transfer byte attributes
        updown = (span_attr_total(tracer, "download", "bytes")
                  + span_attr_total(tracer, "upload", "bytes"))
        assert updown == algo.ledger.total_bytes()

    def test_round_timeline_covers_phases(self):
        model_fn, clients = _tiny_setting()
        algo = FedAvg(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        with tracing() as tracer:
            algo.run(1)
        table = round_timeline_table(tracer)
        for phase in ("sample", "download", "local_update", "upload",
                      "aggregate", "evaluate"):
            assert phase in table

    def test_serialize_span_bytes_equal_wire_length(self):
        state = {"w": np.arange(12, dtype=np.float32).reshape(3, 4),
                 "b": np.zeros(3, dtype=np.float32)}
        with tracing() as tracer:
            blob = serialize_state(state)
        spans = [s for s in tracer.spans if s.name == "serialize"]
        assert len(spans) == 1
        assert spans[0].attrs["bytes"] == len(blob)
        assert spans[0].attrs["entries"] == 2
