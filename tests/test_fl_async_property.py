"""Property-based tests of the async runtime's scheduling invariants.

Hypothesis drives the event-driven server through arbitrary seeded
interleavings of arrivals, uploads, crashes, churn, and duplicate
deliveries (the :mod:`repro.fl.stub` algorithm keeps each simulated run
in the milliseconds).  Whatever the schedule:

- the buffer invariant holds — every accepted upload is either committed
  or still buffered, and every dispatched job ends exactly one way
  (in flight, crashed, or accepted);
- the virtual clock never runs backwards and ``run`` always returns
  (bounded event budget — a permanently-crashing cohort stalls, it does
  not spin);
- commits never fold more than ``buffer_k`` updates, and a finished run
  reached exactly the requested number of steps;
- the whole simulation is a pure function of the seeds: replaying the
  same draw reproduces the final state and counters bit-for-bit.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.fl import (AsyncConfig, AsyncFederatedRunner, AsyncProfile,
                      state_fingerprint)  # noqa: E402
from repro.fl.stub import make_stub  # noqa: E402

PROBS = st.sampled_from([0.0, 0.1, 0.5, 1.0])

SCHEDULES = dict(
    seed=st.integers(0, 2 ** 16), n_clients=st.integers(1, 10),
    buffer_k=st.integers(1, 12), max_inflight=st.integers(1, 10),
    max_queue=st.integers(0, 10), crash=PROBS, churn=PROBS,
    duplicate=PROBS, straggler=PROBS,
    deadline=st.sampled_from([None, 2.0, 10.0]),
    steps=st.integers(1, 12))


def _build(seed, n_clients, buffer_k, max_inflight, max_queue, crash,
           churn, duplicate, straggler, deadline):
    profile = AsyncProfile(seed=seed, jitter=0.4, straggler_prob=straggler,
                           slowdown=5.0, arrival_spread=1.0,
                           churn_prob=churn, crash_prob=crash,
                           duplicate_prob=duplicate)
    config = AsyncConfig(buffer_k=buffer_k, max_inflight=max_inflight,
                         max_queue=max_queue, commit_deadline=deadline)
    return AsyncFederatedRunner(make_stub(n_clients=n_clients, seed=seed),
                                profile, config)


@given(**SCHEDULES)
@settings(max_examples=50, deadline=None)
def test_interleavings_preserve_buffer_invariant(seed, n_clients, buffer_k,
                                                 max_inflight, max_queue,
                                                 crash, churn, duplicate,
                                                 straggler, deadline, steps):
    runner = _build(seed, n_clients, buffer_k, max_inflight, max_queue,
                    crash, churn, duplicate, straggler, deadline)
    results = runner.run(steps=steps, max_events=2000)  # always returns
    c = runner.counters
    # committed updates == deduped accepted uploads still unaccounted-for
    assert c["committed"] + len(runner.buffer) == c["accepted"]
    # every dispatched job ends exactly one way
    assert c["accepted"] \
        == c["dispatched"] - c["crashed"] - len(runner.inflight)
    # admission control held throughout (inflight is live state)
    assert len(runner.inflight) <= max_inflight
    assert len(runner.queue) <= max_queue
    # the virtual clock is monotone and commits respect buffer_k
    times = [r.time for r in results]
    assert times == sorted(times)
    assert all(1 <= r.n_updates <= buffer_k for r in results)
    assert runner.server_step <= steps
    if not runner.stalled:
        assert runner.server_step == steps


@given(**SCHEDULES)
@settings(max_examples=15, deadline=None)
def test_same_seed_replays_bitwise(seed, n_clients, buffer_k, max_inflight,
                                   max_queue, crash, churn, duplicate,
                                   straggler, deadline, steps):
    outcomes = []
    for _ in range(2):
        runner = _build(seed, n_clients, buffer_k, max_inflight, max_queue,
                        crash, churn, duplicate, straggler, deadline)
        runner.run(steps=steps, max_events=1500)
        outcomes.append((
            state_fingerprint(dict(runner.algo.global_model.state_dict())),
            dict(runner.counters), runner.clock.now, runner.server_step,
            sorted(runner.buffer), sorted(runner.inflight)))
    assert outcomes[0] == outcomes[1]
