"""Unit tests: Linear, Conv2d, norms, pooling, dropout, init."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d, Dropout,
                      GlobalAvgPool2d, LayerNorm, Linear, MaxPool2d, init)
from repro.nn.conv import conv2d
from repro.nn.pooling import avg_pool2d, max_pool2d
from repro.tensor import Tensor
from tests.conftest import assert_grad_close, numerical_gradient

R = np.random.default_rng(3)


def _t(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True,
                  dtype=np.float64)


class TestLinear:
    def test_shapes_and_math(self):
        lin = Linear(3, 5, rng=R)
        x = np.asarray(R.normal(size=(2, 3)), dtype=np.float32)
        out = lin(Tensor(x))
        expected = x @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_no_bias(self):
        lin = Linear(3, 5, bias=False, rng=R)
        assert lin.bias is None
        assert lin(Tensor(np.zeros((1, 3), dtype=np.float32))).data.max() == 0


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (3, 2)])
    def test_gradcheck(self, stride, padding):
        x0 = R.normal(size=(2, 2, 7, 7))
        w0 = R.normal(size=(3, 2, 3, 3)) * 0.5
        b0 = R.normal(size=(3,)) * 0.1

        def f(xv, wv, bv):
            x, w, b = _t(xv), _t(wv), _t(bv)
            return x, w, b, (conv2d(x, w, b, stride, padding) ** 2).sum()

        x, w, b, out = f(x0, w0, b0)
        out.backward()
        assert_grad_close(x.grad, numerical_gradient(
            lambda v: f(v, w0, b0)[3].item(), x0.copy()), atol=1e-5)
        assert_grad_close(w.grad, numerical_gradient(
            lambda v: f(x0, v, b0)[3].item(), w0.copy()), atol=1e-5)
        assert_grad_close(b.grad, numerical_gradient(
            lambda v: f(x0, w0, v)[3].item(), b0.copy()), atol=1e-5)

    def test_matches_naive_convolution(self):
        x = R.normal(size=(1, 1, 5, 5))
        w = R.normal(size=(1, 1, 3, 3))
        out = conv2d(Tensor(x, dtype=np.float64),
                     Tensor(w, dtype=np.float64), None).data
        naive = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                naive[i, j] = (x[0, 0, i:i + 3, j:j + 3] * w[0, 0]).sum()
        np.testing.assert_allclose(out[0, 0], naive, rtol=1e-10)

    def test_output_shape(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=R)
        out = conv(Tensor(np.zeros((2, 3, 16, 16), dtype=np.float32)))
        assert out.shape == (2, 8, 8, 8)

    def test_channel_mismatch_raises(self):
        conv = Conv2d(3, 8, 3, rng=R)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 4, 8, 8), dtype=np.float32)))


class TestBatchNorm:
    def test_training_normalizes(self):
        bn = BatchNorm2d(4)
        x = Tensor(R.normal(5, 3, size=(8, 4, 6, 6)).astype(np.float32))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)),
                                   np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)),
                                   np.ones(4), atol=1e-3)

    def test_running_stats_update(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.ones((4, 2, 3, 3), dtype=np.float32) * 10)
        bn(x)
        assert bn.running_mean.mean() > 0
        assert bn.num_batches_tracked == 1

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        for _ in range(80):  # EMA with momentum 0.1 needs ~60 steps to settle
            bn(Tensor(R.normal(2.0, 1.0, size=(16, 2, 4, 4)).astype(np.float32)))
        bn.eval()
        x = Tensor(np.full((1, 2, 4, 4), 2.0, dtype=np.float32))
        out = bn(x)
        np.testing.assert_allclose(out.data, np.zeros_like(out.data), atol=0.2)

    def test_gradcheck_training(self):
        bn = BatchNorm2d(3)
        bn.weight.data = np.asarray(R.normal(1, 0.2, 3), dtype=np.float32)
        x0 = R.normal(size=(4, 3, 4, 4))

        def f(v):
            bn2 = BatchNorm2d(3)
            bn2.weight.data = bn.weight.data.copy()
            bn2.bias.data = bn.bias.data.copy()
            return (bn2(_t(v)) ** 2).sum()

        x = _t(x0)
        (bn(x) ** 2).sum().backward()
        assert_grad_close(x.grad, numerical_gradient(
            lambda v: f(v).item(), x0.copy()), atol=1e-4, rtol=1e-3)

    def test_batchnorm1d(self):
        bn = BatchNorm1d(5)
        out = bn(Tensor(R.normal(size=(16, 5)).astype(np.float32)))
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(5),
                                   atol=1e-5)

    def test_no_affine(self):
        bn = BatchNorm2d(2, affine=False)
        assert bn.weight is None
        out = bn(Tensor(R.normal(size=(4, 2, 3, 3)).astype(np.float32)))
        assert out.shape == (4, 2, 3, 3)


class TestLayerNorm:
    def test_normalizes_last_dim(self):
        ln = LayerNorm(8)
        out = ln(Tensor(R.normal(3, 2, size=(4, 8)).astype(np.float32)))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4),
                                   atol=1e-4)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x, dtype=np.float64), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_goes_to_max(self):
        x = _t(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4))
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(x.grad[0, 0], expected)

    @pytest.mark.parametrize("k,s", [(2, 2), (3, 1), (2, 1)])
    def test_avg_pool_gradcheck(self, k, s):
        x0 = R.normal(size=(1, 2, 5, 5))
        x = _t(x0)
        (avg_pool2d(x, k, s) ** 2).sum().backward()
        num = numerical_gradient(
            lambda v: float((avg_pool2d(_t(v), k, s).data ** 2).sum()),
            x0.copy())
        assert_grad_close(x.grad, num, atol=1e-6)

    def test_layer_wrappers(self):
        x = Tensor(R.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert MaxPool2d(2)(x).shape == (2, 3, 4, 4)
        assert AvgPool2d(2)(x).shape == (2, 3, 4, 4)
        assert GlobalAvgPool2d()(x).shape == (2, 3)

    def test_global_avg_pool_value(self):
        x = Tensor(np.ones((1, 2, 3, 3), dtype=np.float32) * 7)
        np.testing.assert_allclose(GlobalAvgPool2d()(x).data, [[7.0, 7.0]])


class TestDropoutLayer:
    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_eval_identity(self):
        d = Dropout(0.9, seed=0)
        d.eval()
        x = Tensor(np.ones(100, dtype=np.float32))
        assert d(x) is x

    def test_train_zeroes_roughly_p(self):
        d = Dropout(0.5, seed=0)
        out = d(Tensor(np.ones(10_000, dtype=np.float32)))
        frac_zero = (out.data == 0).mean()
        assert 0.45 < frac_zero < 0.55


class TestInit:
    @pytest.mark.parametrize("fn", [init.kaiming_normal, init.kaiming_uniform,
                                    init.xavier_normal, init.xavier_uniform])
    def test_shapes_and_dtype(self, fn):
        w = fn((16, 8, 3, 3), np.random.default_rng(0))
        assert w.shape == (16, 8, 3, 3)
        assert w.dtype == np.float32

    def test_kaiming_variance(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((2000, 100), rng)
        np.testing.assert_allclose(w.std(), np.sqrt(2.0 / 100), rtol=0.05)

    def test_orthogonal_is_orthogonal(self):
        w = init.orthogonal((8, 8), np.random.default_rng(0))
        np.testing.assert_allclose(w @ w.T, np.eye(8), atol=1e-5)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            init.kaiming_normal((3,), np.random.default_rng(0))

    def test_deterministic_given_seed(self):
        a = init.xavier_uniform((4, 4), np.random.default_rng(5))
        b = init.xavier_uniform((4, 4), np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_fan_in_bias_bounds(self, out_f, in_f):
        b = init.uniform_fan_in_bias((out_f, in_f), np.random.default_rng(0))
        assert b.shape == (out_f,)
        assert np.all(np.abs(b) <= 1.0 / np.sqrt(in_f) + 1e-7)
