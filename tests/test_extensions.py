"""Tests: Non-IID benchmark partition variants, fp16 wire compression,
FedTopK baseline, LEAF I/O, evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (SyntheticFEMNIST, apply_feature_noise,
                        feature_noise_levels, partition_summary,
                        quantity_label_skew, quantity_skew)
from repro.data.leaf import (export_leaf_json, leaf_statistics,
                             leaf_train_test_split, load_leaf_json)
from repro.fl import (FedAvg, FedTopK, dequantize_state, make_federated_clients,
                      payload_nbytes, quantize_state, serialize_state,
                      deserialize_state)
from repro.fl.topk import topk_mask
from repro.utils.evaluation import (confusion_matrix, evaluate_per_class,
                                    macro_f1, per_class_accuracy,
                                    topk_accuracy)

R = np.random.default_rng(0)


class TestQuantityLabelSkew:
    def test_partition_exact(self):
        labels = R.integers(0, 10, 600)
        parts = quantity_label_skew(labels, 6, k=2, seed=0)
        joined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(joined, np.arange(600))

    def test_clients_hold_few_classes(self):
        labels = np.repeat(np.arange(10), 100)
        parts = quantity_label_skew(labels, 8, k=2, seed=0)
        class_counts = [len(np.unique(labels[p])) for p in parts]
        # most clients hold <= k classes (donor sample may add one)
        assert np.median(class_counts) <= 3

    def test_more_skewed_than_dirichlet_mild(self):
        labels = R.integers(0, 10, 2000)
        sharp = partition_summary(labels,
                                  quantity_label_skew(labels, 10, k=1, seed=1))
        assert sharp["mean_tv_distance"] > 0.7

    def test_k_validated(self):
        with pytest.raises(ValueError):
            quantity_label_skew(np.zeros(10, dtype=int), 2, k=0)


class TestQuantitySkew:
    def test_partition_exact_and_skewed(self):
        labels = R.integers(0, 10, 1000)
        parts = quantity_skew(labels, 6, beta=0.3, seed=0)
        joined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(joined, np.arange(1000))
        sizes = np.asarray([len(p) for p in parts])
        assert sizes.max() > 2 * sizes.min()  # genuinely size-skewed

    def test_labels_stay_iidish(self):
        labels = np.repeat(np.arange(10), 200)
        parts = quantity_skew(labels, 4, beta=0.5, seed=0)
        s = partition_summary(labels, parts)
        assert s["mean_tv_distance"] < 0.2


class TestFeatureNoise:
    def test_levels_monotone(self):
        lv = feature_noise_levels(5, max_noise=0.5)
        assert len(lv) == 5
        assert np.all(np.diff(lv) > 0)
        assert lv[-1] == pytest.approx(0.5)

    def test_apply(self):
        x = np.zeros((10, 3, 4, 4), dtype=np.float32)
        noisy = apply_feature_noise(x, 0.3, np.random.default_rng(0))
        assert noisy.std() > 0.1
        same = apply_feature_noise(x, 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(same, x)


class TestQuantizedWire:
    def test_roundtrip_halves_floats(self):
        state = {"w": R.normal(size=(64, 64)).astype(np.float32),
                 "idx": np.arange(10, dtype=np.int32)}
        q = quantize_state(state)
        assert q["w"].dtype == np.float16
        assert q["idx"].dtype == np.int32
        assert payload_nbytes(q) < payload_nbytes(state) * 0.6
        back = dequantize_state(q)
        assert back["w"].dtype == np.float32
        np.testing.assert_allclose(back["w"], state["w"], atol=1e-2)

    def test_fp16_survives_codec(self):
        state = quantize_state({"w": R.normal(size=(8,)).astype(np.float32)})
        out = deserialize_state(serialize_state(state))
        assert out["w"].dtype == np.float16

    def test_fedavg_trains_through_fp16(self, tiny_dataset, tiny_setting):
        # quantize/dequantize the aggregate each round; training survives
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)

        class FP16FedAvg(FedAvg):
            """FedAvg whose uploads cross an fp16 wire."""
            name = "fedavg16"

            def upload_payload(self, update):
                return quantize_state(update["state"])

            def aggregate(self, updates, round_idx):
                for u in updates:
                    u["state"] = dequantize_state(
                        quantize_state(u["state"]))
                super().aggregate(updates, round_idx)

        algo = FP16FedAvg(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        log = algo.run(rounds=3)
        assert log["val_acc"][-1] > 0.15
        # the fp16 payload must be roughly half the fp32 ledger rate
        plain = FedAvg(model_fn, make_federated_clients(
            tiny_dataset, parts, seed=5), lr=0.05, local_epochs=1, seed=0)
        plain.run_round(0)
        up16 = sum(algo.ledger.uplink[0].values())
        up32 = sum(plain.ledger.uplink[0].values())
        assert up16 < 0.6 * up32


class TestFedTopK:
    def test_topk_mask_picks_largest(self):
        d = np.asarray([[0.1, -5.0], [0.01, 2.0]])
        idx = topk_mask(d, 0.5)
        np.testing.assert_array_equal(idx, [1, 3])

    def test_fraction_validated(self, tiny_dataset, tiny_setting):
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        with pytest.raises(ValueError):
            FedTopK(model_fn, clients, lr=0.05, fraction=0.0)

    def test_uplink_smaller_than_fedavg(self, tiny_dataset, tiny_setting):
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        tk = FedTopK(model_fn, clients, lr=0.05, local_epochs=1,
                     fraction=0.1, seed=0)
        tk.run_round(0)
        fa = FedAvg(model_fn, make_federated_clients(tiny_dataset, parts,
                                                     seed=5),
                    lr=0.05, local_epochs=1, seed=0)
        fa.run_round(0)
        up_tk = sum(tk.ledger.uplink[0].values())
        up_fa = sum(fa.ledger.uplink[0].values())
        assert up_tk < 0.6 * up_fa

    def test_trains_with_error_feedback(self, tiny_dataset, tiny_setting):
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        algo = FedTopK(model_fn, clients, lr=0.05, local_epochs=1,
                       fraction=0.25, seed=0)
        log = algo.run(rounds=4)
        assert log["val_acc"][-1] > log["val_acc"][0] - 0.05
        # residuals were accumulated
        assert all("residual" in c.local_state for c in clients)

    def test_fraction_one_equals_fedavg_direction(self, tiny_dataset,
                                                  tiny_setting):
        # with fraction=1 the sparse aggregate equals dense weighted deltas
        model_fn, parts = tiny_setting
        clients_a = make_federated_clients(tiny_dataset, parts, seed=5)
        clients_b = make_federated_clients(tiny_dataset, parts, seed=5)
        tk = FedTopK(model_fn, clients_a, lr=0.05, local_epochs=1,
                     fraction=1.0, seed=0)
        fa = FedAvg(model_fn, clients_b, lr=0.05, local_epochs=1, seed=0)
        tk.run_round(0)
        fa.run_round(0)
        for (n, p1), (_, p2) in zip(tk.global_model.named_parameters(),
                                    fa.global_model.named_parameters()):
            np.testing.assert_allclose(p1.data, p2.data, atol=1e-5,
                                       err_msg=n)


class TestLeafIO:
    @pytest.fixture(scope="class")
    def femnist(self):
        return SyntheticFEMNIST(n_writers=5, samples_per_writer=12, size=14,
                                seed=2, num_classes=10)

    def test_export_import_roundtrip(self, tmp_path, femnist):
        path = tmp_path / "femnist.json"
        export_leaf_json(femnist, path)
        shards = load_leaf_json(path)
        assert len(shards) == 5
        total = sum(len(s) for s in shards.values())
        assert total == len(femnist)
        # content preserved for one writer
        w0 = np.flatnonzero(femnist.writer_ids == 0)
        np.testing.assert_allclose(shards["writer_0000"].x,
                                   femnist.x[w0], rtol=1e-6)
        np.testing.assert_array_equal(shards["writer_0000"].y,
                                      femnist.y[w0])

    def test_shape_override_required_without_metadata(self, tmp_path,
                                                      femnist):
        import json
        path = tmp_path / "raw.json"
        export_leaf_json(femnist, path)
        payload = json.loads(path.read_text())
        del payload["metadata"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_leaf_json(path)
        shards = load_leaf_json(path, shape=(1, 14, 14))
        assert shards["writer_0000"].x.shape[1:] == (1, 14, 14)

    def test_per_user_split(self, tmp_path, femnist):
        path = tmp_path / "f.json"
        export_leaf_json(femnist, path)
        shards = load_leaf_json(path)
        train, test = leaf_train_test_split(shards, 0.25, seed=0)
        for user in shards:
            assert len(train[user]) + len(test[user]) == len(shards[user])
            assert len(test[user]) >= 1

    def test_statistics(self, tmp_path, femnist):
        path = tmp_path / "f.json"
        export_leaf_json(femnist, path)
        stats = leaf_statistics(load_leaf_json(path))
        assert stats["num_users"] == 5
        assert stats["total_samples"] == 60
        assert stats["min_samples"] == stats["max_samples"] == 12


class TestEvaluationMetrics:
    def test_confusion_matrix(self):
        cm = confusion_matrix(np.asarray([0, 1, 1, 2]),
                              np.asarray([0, 1, 2, 2]), 3)
        np.testing.assert_array_equal(cm, [[1, 0, 0], [0, 1, 0], [0, 1, 1]])

    def test_per_class_accuracy(self):
        cm = np.asarray([[8, 2], [5, 5]])
        np.testing.assert_allclose(per_class_accuracy(cm), [0.8, 0.5])

    def test_per_class_nan_for_absent(self):
        cm = np.asarray([[3, 0], [0, 0]])
        acc = per_class_accuracy(cm)
        assert acc[0] == 1.0 and np.isnan(acc[1])

    def test_macro_f1_perfect(self):
        cm = np.diag([5, 3, 2])
        assert macro_f1(cm) == pytest.approx(1.0)

    def test_macro_f1_degenerate(self):
        cm = np.asarray([[0, 5], [0, 5]])  # predicts class 1 always
        assert 0.0 < macro_f1(cm) < 1.0

    def test_topk_accuracy(self):
        logits = np.asarray([[0.1, 0.5, 0.4], [0.9, 0.05, 0.05]])
        labels = np.asarray([2, 1])
        assert topk_accuracy(logits, labels, k=1) == pytest.approx(0.0)
        assert topk_accuracy(logits, labels, k=2) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            topk_accuracy(logits, labels, k=5)

    def test_evaluate_per_class_model(self, tiny_dataset, tiny_model_fn):
        model = tiny_model_fn()
        out = evaluate_per_class(model, tiny_dataset.subset(np.arange(64)))
        assert out["confusion"].sum() == 64
        assert 0.0 <= out["accuracy"] <= 1.0

    @given(st.integers(2, 6), st.integers(10, 60))
    @settings(max_examples=15, deadline=None)
    def test_property_cm_row_sums(self, k, n):
        rng = np.random.default_rng(k * 100 + n)
        labels = rng.integers(0, k, n)
        pred = rng.integers(0, k, n)
        cm = confusion_matrix(pred, labels, k)
        np.testing.assert_array_equal(cm.sum(axis=1),
                                      np.bincount(labels, minlength=k))
        assert cm.sum() == n
