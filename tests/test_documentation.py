"""Meta-tests: documentation coverage of the public API.

Every public module of the library, and every class or function *defined*
in it, must carry a docstring — this is enforced, not aspirational.
(Methods inherit documentation from their class/base-class contract and
are not individually required.)
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [m.name for m in pkgutil.walk_packages(repro.__path__, "repro.")]


def _defined_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) == module.__name__:
                yield name, obj


@pytest.mark.parametrize("modname", MODULES)
def test_module_has_docstring(modname):
    module = importlib.import_module(modname)
    assert module.__doc__ and module.__doc__.strip(), modname


@pytest.mark.parametrize("modname", MODULES)
def test_defined_members_documented(modname):
    module = importlib.import_module(modname)
    undocumented = [f"{modname}.{name}"
                    for name, obj in _defined_members(module)
                    if not (obj.__doc__ and obj.__doc__.strip())]
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
