"""Unit tests: SPATL's mechanisms — control variates, Eq. 12 aggregation,
selection policies, knowledge transfer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (ControlVariate, NoSelectionPolicy,
                        RandomSelectionPolicy, RLSelectionPolicy,
                        StaticSaliencyPolicy, salient_aggregate,
                        transfer_to_client)
from repro.core.aggregation import coverage_fraction
from repro.core.gradient_control import (make_correction_hook,
                                         refresh_client_variate,
                                         server_variate_delta)
from repro.models import build_model
from repro.rl import SalientParameterAgent

R = np.random.default_rng(0)


class TestControlVariate:
    def _cv(self):
        return ControlVariate({"a": np.zeros((2, 2)), "b": np.zeros(3)})

    def test_zeros_and_names(self):
        cv = self._cv()
        assert set(cv.names()) == {"a", "b"}
        assert np.all(cv["a"] == 0)

    def test_copy_independent(self):
        cv = self._cv()
        cp = cv.copy()
        cp.values["a"] += 1
        assert np.all(cv["a"] == 0)

    def test_as_state_prefixes(self):
        state = self._cv().as_state("c.")
        assert set(state) == {"c.a", "c.b"}

    def test_nbytes(self):
        assert self._cv().nbytes() == (4 + 3) * 8

    def test_zeros_like_params(self):
        model = build_model("cnn2", input_size=28, width_mult=0.25, seed=0)
        cv = ControlVariate.zeros_like_params(
            model.encoder.named_parameters())
        assert set(cv.names()) == {n for n, _ in
                                   model.encoder.named_parameters()}


class TestCorrectionHook:
    def test_eq9_applied_to_encoder_only(self):
        c = ControlVariate({"w": np.zeros(2)})
        c.values["w"] = np.asarray([1.0, 1.0])
        c_i = ControlVariate({"w": np.zeros(2)})
        c_i.values["w"] = np.asarray([0.25, 0.25])
        hook = make_correction_hook(
            c, c_i, lambda n: n[8:] if n.startswith("encoder.") else None)
        g = np.zeros(2)
        np.testing.assert_allclose(hook("encoder.w", g), [0.75, 0.75])
        np.testing.assert_allclose(hook("predictor.w", g), [0.0, 0.0])

    def test_unknown_key_passthrough(self):
        c = ControlVariate({"w": np.zeros(1)})
        hook = make_correction_hook(c, c.copy())
        g = np.asarray([5.0])
        np.testing.assert_allclose(hook("ghost", g), [5.0])


class TestVariateRefresh:
    def test_eq10_exact(self):
        c = ControlVariate({"w": np.zeros(2)})
        c.values["w"] = np.asarray([0.5, 0.5])
        c_i = ControlVariate({"w": np.zeros(2)})
        c_i.values["w"] = np.asarray([0.1, 0.1])
        before = {"w": np.asarray([1.0, 1.0])}
        after = {"w": np.asarray([0.0, 2.0])}
        fresh = refresh_client_variate(c_i, c, before, after, steps=4, lr=0.5)
        # c_i - c + (x - y)/(K*eta) = 0.1 - 0.5 + ([1,-1])/2
        np.testing.assert_allclose(fresh["w"], [0.1, -0.9])

    def test_server_reconstruction_matches_client_delta(self):
        # delta c_i = c_i+ - c_i must equal the server's reconstruction
        # from uploaded parameters alone.
        c = ControlVariate({"w": np.asarray([0.3, -0.2])})
        c_i = ControlVariate({"w": np.asarray([1.0, 2.0])})
        before = {"w": np.asarray([5.0, 5.0])}
        after = {"w": np.asarray([4.0, 7.0])}
        fresh = refresh_client_variate(c_i, c, before, after, steps=10,
                                       lr=0.1)
        client_delta = fresh["w"] - c_i["w"]
        server_delta = server_variate_delta(c, before, {"w": after["w"]},
                                            steps=10, lr=0.1)
        np.testing.assert_allclose(server_delta["w"], client_delta,
                                   atol=1e-12)


class TestSalientAggregate:
    def test_full_coverage_equals_mean(self):
        g = np.zeros((4, 2), dtype=np.float32)
        idx = np.arange(4)
        u1 = (idx, np.ones((4, 2), dtype=np.float32))
        u2 = (idx, np.full((4, 2), 3.0, dtype=np.float32))
        out = salient_aggregate(g, [u1, u2])
        np.testing.assert_allclose(out, np.full((4, 2), 2.0))

    def test_uncovered_rows_untouched(self):
        g = np.full((4, 2), 7.0, dtype=np.float32)
        out = salient_aggregate(g, [(np.asarray([1]),
                                     np.zeros((1, 2), dtype=np.float32))])
        np.testing.assert_allclose(out[0], [7.0, 7.0])
        np.testing.assert_allclose(out[1], [0.0, 0.0])
        np.testing.assert_allclose(out[2:], 7.0)

    def test_partial_overlap_counts(self):
        g = np.zeros(3, dtype=np.float32).reshape(3, 1)
        u1 = (np.asarray([0, 1]), np.asarray([[2.0], [2.0]], dtype=np.float32))
        u2 = (np.asarray([1, 2]), np.asarray([[4.0], [4.0]], dtype=np.float32))
        out = salient_aggregate(g, [u1, u2])
        np.testing.assert_allclose(out.ravel(), [2.0, 3.0, 4.0])

    def test_step_size_scales_movement(self):
        g = np.zeros((2, 1), dtype=np.float32)
        u = (np.asarray([0, 1]), np.ones((2, 1), dtype=np.float32))
        out = salient_aggregate(g, [u], step_size=0.5)
        np.testing.assert_allclose(out.ravel(), [0.5, 0.5])

    def test_4d_conv_weights(self):
        g = R.normal(size=(6, 3, 3, 3)).astype(np.float32)
        idx = np.asarray([0, 4])
        rows = R.normal(size=(2, 3, 3, 3)).astype(np.float32)
        out = salient_aggregate(g, [(idx, rows)])
        np.testing.assert_allclose(out[idx], rows, rtol=1e-6)
        untouched = np.setdiff1d(np.arange(6), idx)
        np.testing.assert_array_equal(out[untouched], g[untouched])

    def test_input_not_mutated(self):
        g = np.zeros((2, 1), dtype=np.float32)
        salient_aggregate(g, [(np.asarray([0]),
                               np.ones((1, 1), dtype=np.float32))])
        np.testing.assert_array_equal(g, np.zeros((2, 1)))

    def test_shape_mismatch_rejected(self):
        g = np.zeros((4, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            salient_aggregate(g, [(np.asarray([0, 1]),
                                   np.ones((3, 2), dtype=np.float32))])

    def test_out_of_range_index_rejected(self):
        g = np.zeros((2, 1), dtype=np.float32)
        with pytest.raises(IndexError):
            salient_aggregate(g, [(np.asarray([5]),
                                   np.ones((1, 1), dtype=np.float32))])

    @given(st.integers(1, 5), st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_property_result_in_convex_hull(self, n_clients, n_filters):
        # With step 1.0, every covered row ends up within [min, max] of the
        # values proposed for it (convexity of the mean-based update when
        # starting from the global value).
        rng = np.random.default_rng(n_clients * 100 + n_filters)
        g = rng.normal(size=(n_filters, 2)).astype(np.float32)
        uploads = []
        for _ in range(n_clients):
            k = rng.integers(1, n_filters + 1)
            idx = np.sort(rng.choice(n_filters, size=k, replace=False))
            uploads.append((idx, rng.normal(size=(k, 2)).astype(np.float32)))
        out = salient_aggregate(g, uploads)
        for f in range(n_filters):
            vals = [g[f]] + [rows[list(idx).index(f)]
                             for idx, rows in uploads if f in idx]
            lo = np.min(vals, axis=0) - 1e-5
            hi = np.max(vals, axis=0) + 1e-5
            assert np.all(out[f] >= lo) and np.all(out[f] <= hi)

    def test_coverage_fraction(self):
        uploads = [(np.asarray([0, 1]), None), (np.asarray([1, 2]), None)]
        assert coverage_fraction(4, uploads) == pytest.approx(0.75)


class TestAggregationOracle:
    """The vectorized Eq. 12 must match the pre-PR scatter **bitwise**
    (DESIGN.md §11.3): golden-state byte identity across the repo rests
    on aggregation producing the exact same floats, not allclose ones."""

    SHAPES = [(16, 3, 3, 3),    # conv weight: wide rows, fancy-add path
              (32, 16),         # fc weight
              (12,),            # bias: narrow rows, np.add.at path
              (7, 1)]           # single-column edge

    @staticmethod
    def _random_uploads(rng, n_filters, tail, n_clients, duplicates):
        uploads = []
        for _ in range(n_clients):
            k = int(rng.integers(0, n_filters + 1))
            if duplicates and k:
                idx = rng.integers(0, n_filters, size=k)       # may repeat
            else:
                idx = rng.choice(n_filters, size=k, replace=False)
            rows = rng.normal(size=(k,) + tail).astype(np.float32)
            uploads.append((np.sort(idx), rows))
        return uploads

    @pytest.mark.parametrize("duplicates", [False, True],
                             ids=["unique", "duplicate-indices"])
    def test_bitwise_equal_to_reference(self, duplicates):
        from repro.fl.reference_agg import reference_salient_aggregate
        rng = np.random.default_rng(42 + duplicates)
        for shape in self.SHAPES:
            for trial in range(25):
                g = rng.normal(size=shape).astype(np.float32)
                uploads = self._random_uploads(rng, shape[0], shape[1:],
                                               int(rng.integers(1, 6)),
                                               duplicates)
                step = float(rng.choice([1.0, 0.5, 0.1]))
                fast = salient_aggregate(g, uploads, step_size=step)
                ref = reference_salient_aggregate(g, uploads, step_size=step)
                assert fast.tobytes() == ref.tobytes(), \
                    f"shape={shape} trial={trial} step={step}"
                assert fast.dtype == ref.dtype == g.dtype

    def test_bitwise_equal_in_float64(self):
        from repro.fl.reference_agg import reference_salient_aggregate
        rng = np.random.default_rng(7)
        g = rng.normal(size=(8, 4))
        uploads = self._random_uploads(rng, 8, (4,), 3, False)
        assert salient_aggregate(g, uploads).tobytes() \
            == reference_salient_aggregate(g, uploads).tobytes()

    def test_empty_uploads_bitwise(self):
        from repro.fl.reference_agg import reference_salient_aggregate
        g = np.random.default_rng(1).normal(size=(5, 2)).astype(np.float32)
        assert salient_aggregate(g, []).tobytes() \
            == reference_salient_aggregate(g, []).tobytes()
        assert salient_aggregate(
            g, [(np.zeros(0, dtype=np.int64),
                 np.zeros((0, 2), dtype=np.float32))]).tobytes() \
            == g.astype(np.float64).astype(np.float32).tobytes()

    def test_reference_rejects_same_errors(self):
        from repro.fl.reference_agg import reference_salient_aggregate
        g = np.zeros((4, 2), dtype=np.float32)
        for agg in (salient_aggregate, reference_salient_aggregate):
            with pytest.raises(ValueError):
                agg(g, [(np.asarray([0, 1]),
                         np.ones((3, 2), dtype=np.float32))])
            with pytest.raises(IndexError):
                agg(g, [(np.asarray([-1]),
                         np.ones((1, 2), dtype=np.float32))])
            with pytest.raises(IndexError):
                agg(g, [(np.asarray([4]),
                         np.ones((1, 2), dtype=np.float32))])


class TestSelectionPolicies:
    def _model(self):
        return build_model("resnet20", input_size=12, width_mult=0.25, seed=0)

    def test_no_selection_dense(self, tiny_dataset):
        policy = NoSelectionPolicy()
        sel = policy.select(self._model(), tiny_dataset, 0, 0)
        assert sel.mean_keep() == pytest.approx(1.0)
        assert not policy.communicates_sparse()

    def test_static_policy_sparsity(self, tiny_dataset):
        policy = StaticSaliencyPolicy(0.4)
        sel = policy.select(self._model(), tiny_dataset, 0, 0)
        assert sel.mean_sparsity() == pytest.approx(0.4, abs=0.15)
        assert policy.communicates_sparse()

    def test_static_policy_validates(self):
        with pytest.raises(ValueError):
            StaticSaliencyPolicy(1.5)

    def test_random_policy_differs_across_clients(self, tiny_dataset):
        policy = RandomSelectionPolicy(0.5, seed=0)
        s0 = policy.select(self._model(), tiny_dataset, 0, 0)
        s1 = policy.select(self._model(), tiny_dataset, 1, 0)
        same = all(np.array_equal(s0.indices[k], s1.indices[k])
                   for k in s0.indices)
        assert not same

    def test_rl_policy_caches_per_client_agents(self, tiny_dataset):
        agent = SalientParameterAgent(seed=0)
        policy = RLSelectionPolicy(agent, finetune_rounds=0,
                                   flops_target=0.8)
        model = self._model()
        val = tiny_dataset.subset(np.arange(64))
        policy.select(model, val, 3, 0)
        policy.select(model, val, 5, 0)
        assert set(policy._client_agents) == {3, 5}
        # client agents are clones, not the shared pretrained object
        assert policy._client_agents[3] is not agent
        assert policy._client_agents[3] is not policy._client_agents[5]


class TestTransfer:
    def test_predictor_only_update(self, tiny_clients, tiny_model_fn):
        model = tiny_model_fn()
        enc_before = {n: p.data.copy()
                      for n, p in model.encoder.named_parameters()}
        pred_before = {n: p.data.copy()
                       for n, p in model.predictor.named_parameters()}
        transfer_to_client(model, tiny_clients[0], epochs=1, lr=0.1)
        for n, p in model.encoder.named_parameters():
            np.testing.assert_array_equal(p.data, enc_before[n], err_msg=n)
        moved = any(not np.array_equal(p.data, pred_before[n])
                    for n, p in model.predictor.named_parameters())
        assert moved

    def test_full_finetune_moves_encoder(self, tiny_clients, tiny_model_fn):
        model = tiny_model_fn()
        enc_before = {n: p.data.copy()
                      for n, p in model.encoder.named_parameters()}
        transfer_to_client(model, tiny_clients[0], epochs=1, lr=0.1,
                           freeze_encoder=False)
        moved = any(not np.array_equal(p.data, enc_before[n])
                    for n, p in model.encoder.named_parameters())
        assert moved

    def test_transfer_improves_predictor_fit(self, tiny_clients,
                                             tiny_model_fn):
        model = tiny_model_fn()
        acc_before, _ = tiny_clients[0].evaluate(model,
                                                 tiny_clients[0].train_data)
        transfer_to_client(model, tiny_clients[0], epochs=3, lr=0.1)
        acc_after, _ = tiny_clients[0].evaluate(model,
                                                tiny_clients[0].train_data)
        assert acc_after >= acc_before
