"""Integration tests: experiment configs and harness (tiny footprints)."""

import numpy as np
import pytest

from repro.experiments import (ExperimentConfig, compare_table, config_for,
                               fault_degradation_curve, make_algorithm,
                               make_fault_model, make_setting,
                               render_fault_table, run_algorithms)
from repro.experiments.ablation import stability
from repro.experiments.communication import (CostRow, paper_scale_mb_per_round,
                                             render_cost_table,
                                             table1_target_cost)
from repro.experiments.configs import make_dataset


class TestConfig:
    def test_scales_exist(self):
        for scale in ("tiny", "small", "paper"):
            cfg = config_for(scale)
            assert isinstance(cfg, ExperimentConfig)
        with pytest.raises(KeyError):
            config_for("huge")

    def test_overrides(self):
        cfg = config_for("tiny", n_clients=3, model="vgg11")
        assert cfg.n_clients == 3 and cfg.model == "vgg11"

    def test_scaled_method(self):
        cfg = config_for("tiny").scaled(lr=0.5)
        assert cfg.lr == 0.5

    def test_make_dataset_dispatch(self):
        cifar = make_dataset(config_for("tiny", n_samples=100))
        assert cifar.x.shape[1] == 3
        fem = make_dataset(config_for("tiny", dataset="femnist",
                                      n_samples=200, n_clients=2,
                                      num_classes=10, input_size=16))
        assert fem.x.shape[1] == 1
        with pytest.raises(KeyError):
            make_dataset(config_for("tiny", dataset="imagenet"))

    def test_make_setting_deterministic_model(self):
        cfg = config_for("tiny", n_samples=200, n_clients=2)
        model_fn, clients = make_setting(cfg)
        m1, m2 = model_fn(), model_fn()
        for (n, p1), (_, p2) in zip(m1.named_parameters(),
                                    m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data, err_msg=n)
        assert len(clients) == 2

    def test_make_algorithm_all_names(self):
        cfg = config_for("tiny", n_samples=200, n_clients=2)
        model_fn, clients = make_setting(cfg)
        for name in ("fedavg", "fedprox", "fednova", "scaffold", "spatl"):
            algo = make_algorithm(name, cfg, model_fn, clients)
            assert algo.name == name
        with pytest.raises(KeyError):
            make_algorithm("sgd", cfg, model_fn, clients)


class TestFaultConfig:
    def test_faults_off_by_default(self):
        cfg = config_for("tiny")
        assert not cfg.faults_enabled
        assert make_fault_model(cfg) is None

    def test_fault_model_built_from_knobs(self):
        cfg = config_for("tiny", fault_drop_prob=0.2, fault_corrupt_prob=0.01,
                         fault_timeout=6.0, seed=7)
        assert cfg.faults_enabled
        fm = make_fault_model(cfg)
        assert fm is not None
        assert fm.drop_prob == pytest.approx(0.2)
        assert fm.corrupt_prob == pytest.approx(0.01)
        assert fm.timeout == pytest.approx(6.0)
        assert fm.seed == 7  # defaults to cfg.seed
        fm2 = make_fault_model(cfg.scaled(fault_seed=99))
        assert fm2.seed == 99

    def test_degradation_curve_smoke(self):
        cfg = config_for("tiny", n_samples=300, n_clients=2, local_epochs=1,
                         sample_ratio=1.0)
        results = fault_degradation_curve(cfg, drop_probs=(0.0, 0.5),
                                          algorithms=("fedavg",), rounds=1)
        assert set(results) == {"fedavg"}
        assert set(results["fedavg"]) == {0.0, 0.5}
        clean = results["fedavg"][0.0]
        assert clean["n_dropped"] == 0 and clean["n_corrupt"] == 0
        assert all(0.0 <= r["final_acc"] <= 1.0
                   for r in results["fedavg"].values())
        table = render_fault_table(results)
        assert "fedavg" in table and "drop p" in table


class TestHarness:
    @pytest.fixture(scope="class")
    def small_results(self):
        cfg = config_for("tiny", n_samples=400, n_clients=3, local_epochs=1)
        return run_algorithms(cfg, ["fedavg", "spatl"], rounds=2)

    def test_runs_and_collects(self, small_results):
        assert set(small_results) == {"fedavg", "spatl"}
        for log in small_results.values():
            assert len(log["val_acc"]) == 2
            assert "per_client_acc" in log.meta

    def test_compare_table_renders(self, small_results):
        out = compare_table(small_results, target_accuracy=0.5)
        assert "fedavg" in out and "spatl" in out
        assert "MB/round/client" in out

    def test_spatl_has_inference_meta(self, small_results):
        assert "inference" in small_results["spatl"].meta


class TestCommunicationHelpers:
    def test_paper_scale_mb(self):
        fedavg = paper_scale_mb_per_round("fedavg", "resnet20")
        scaffold = paper_scale_mb_per_round("scaffold", "resnet20")
        assert scaffold == pytest.approx(2 * fedavg)
        spatl = paper_scale_mb_per_round("spatl", "resnet20",
                                         measured_ratio=2.5)
        assert fedavg < spatl < scaffold * 1.5

    def test_render_cost_table(self):
        rows = [CostRow("fedavg", "resnet20", 10, 5, True, 2.0, 0.1, 1.0,
                        0.8, 0.0)]
        out = render_cost_table(rows, "Table I")
        assert "fedavg" in out and "Table I" in out

    def test_table1_tiny(self):
        cfg = config_for("tiny", n_samples=400, n_clients=3, local_epochs=1,
                         rounds=2)
        rows = table1_target_cost(cfg, target=0.99,
                                  methods=("fedavg", "spatl"), max_rounds=2)
        assert len(rows) == 2
        assert all(not r.reached_target for r in rows)
        assert all(r.total_gb > 0 for r in rows)


def test_stability_metric():
    assert stability([0.5, 0.5, 0.5]) == 0.0
    assert stability([0.0, 1.0, 0.0]) == pytest.approx(1.0)
    assert stability([0.5]) == 0.0


class TestMultiSetting:
    def test_multi_setting_curves_micro(self):
        from repro.experiments.learning_efficiency import multi_setting_curves
        grid = multi_setting_curves(scale="tiny", model="resnet20",
                                    settings=((2, 1.0),),
                                    methods=("fedavg",), seed=1)
        assert (2, 1.0) in grid
        assert "fedavg" in grid[(2, 1.0)]
        assert len(grid[(2, 1.0)]["fedavg"]["val_acc"]) > 0
