"""Property tests: streaming folds are bitwise-equal to the batch oracles.

Floating-point addition is not associative, so the streaming folds in
:mod:`repro.fl.scale.fold` replay the *exact* per-key / per-coordinate
addition order of their batch counterparts.  Hypothesis drives arbitrary
cohorts — sizes, example counts, weights, magnitudes, duplicate and
empty salient index sets — and asserts byte-for-byte equality against
``weighted_average_states`` / ``salient_aggregate`` / the algorithm's own
``aggregate`` and ``aggregate_weighted``.
"""

import tempfile

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.aggregation import salient_aggregate  # noqa: E402
from repro.fl import UpdateSpill, serialize_state  # noqa: E402
from repro.fl.local import weighted_average_states  # noqa: E402
from repro.fl.scale.fold import (SPATLFold,  # noqa: E402
                                 _stream_weighted_average)
from repro.fl.stub import make_stub  # noqa: E402

WEIGHT = st.sampled_from([0.25, 1.0, 1.0, 1.75, 3.0])
MAGNITUDE = st.sampled_from([1e-8, 1.0, 1e8])
SEED = st.integers(0, 2 ** 16)


def _states(seed, n_states, dim, magnitude):
    """Aligned mixed-dtype state dicts (float32/float64/int64 entries)."""
    rng = np.random.default_rng(seed)
    return [{"w": (magnitude
                   * rng.standard_normal(dim)).astype(np.float32),
             "b": magnitude * rng.standard_normal(2),
             "steps": np.asarray(rng.integers(0, 100), dtype=np.int64)}
            for _ in range(n_states)]


@given(seed=SEED, n_states=st.integers(1, 6), dim=st.integers(1, 16),
       magnitude=MAGNITUDE,
       weights=st.lists(WEIGHT, min_size=6, max_size=6))
@settings(max_examples=80, deadline=None)
def test_stream_weighted_average_bitwise(seed, n_states, dim, magnitude,
                                         weights):
    states = _states(seed, n_states, dim, magnitude)
    weights = weights[:n_states]
    batch = weighted_average_states(states, weights)
    streamed = _stream_weighted_average(iter(states), weights)
    assert list(streamed) == list(batch)  # same key order
    for key in batch:
        assert streamed[key].tobytes() == batch[key].tobytes(), key
        assert streamed[key].dtype == batch[key].dtype, key


@given(seed=SEED, n_updates=st.integers(1, 6), dim=st.integers(1, 12),
       ns=st.lists(st.integers(1, 500), min_size=6, max_size=6),
       weights=st.lists(WEIGHT, min_size=6, max_size=6),
       weighted=st.booleans())
@settings(max_examples=60, deadline=None)
def test_dict_mean_fold_matches_aggregate(seed, n_updates, dim, ns,
                                          weights, weighted):
    """FedAvg-family oracle: fold == aggregate / aggregate_weighted."""
    rng = np.random.default_rng(seed)
    batch_algo = make_stub(n_clients=2, dim=dim, seed=seed)
    fold_algo = make_stub(n_clients=2, dim=dim, seed=seed)
    updates = [{"state": {"w": rng.standard_normal(dim).astype(np.float32)},
                "n": ns[i], "train_loss": 0.0, "steps": 1}
               for i in range(n_updates)]
    weights = weights[:n_updates]
    with tempfile.TemporaryDirectory() as tmp:
        fold = fold_algo.make_fold(UpdateSpill(tmp + "/u.spill"),
                                   weighted=weighted)
        if weighted:
            for u, w in zip(updates, weights):
                fold.add(u, w)
            fold.finalize(0)
            batch_algo.aggregate_weighted(updates, weights, 0)
        else:
            for u in updates:
                fold.add(u)
            fold.finalize(0)
            batch_algo.aggregate(updates, 0)
    assert serialize_state(fold_algo.global_model.state_dict()) \
        == serialize_state(batch_algo.global_model.state_dict())


# ------------------------------------------------------------- SPATL core

class _Param:
    def __init__(self, arr):
        self.data = arr


class _Encoder:
    def __init__(self, params):
        self._params = params

    def named_parameters(self):
        return list(self._params.items())

    def _buffer_owners(self):
        return {}


class _Model:
    def __init__(self, params):
        self.encoder = _Encoder(params)


class _MiniSPATL:
    """The minimal surface :class:`SPATLFold` reads off a SPATL instance:
    one prunable layer (Eq. 12) plus one dense parameter."""

    name = "spatl"
    use_gradient_control = False
    use_transfer = True
    lr = 0.05
    clients = ()

    def __init__(self, weight, dense, aggregation_step):
        self.global_model = _Model({"conv.weight": _Param(weight),
                                    "fc.weight": _Param(dense)})
        self.prunable = ["conv"]
        self.aggregation_step = aggregation_step


ROW_SHAPES = [(), (3,), (9,), (2, 5)]  # row widths 1/3/9/10: both add paths


@given(seed=SEED, n_filters=st.integers(1, 12),
       shape_idx=st.integers(0, len(ROW_SHAPES) - 1),
       magnitude=MAGNITUDE, step=st.sampled_from([1.0, 0.5]),
       n_uploads=st.integers(1, 5),
       weights=st.lists(WEIGHT, min_size=5, max_size=5),
       weighted=st.booleans(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_spatl_fold_matches_salient_aggregate(seed, n_filters, shape_idx,
                                              magnitude, step, n_uploads,
                                              weights, weighted, data):
    """Eq. 12 oracle, duplicate- and empty-index-safe, both weight modes."""
    rng = np.random.default_rng(seed)
    row_shape = ROW_SHAPES[shape_idx]
    weight = (magnitude * rng.standard_normal(
        (n_filters,) + row_shape)).astype(np.float32)
    dense = rng.standard_normal(4).astype(np.float32)
    weights = weights[:n_uploads]

    uploads, updates = [], []
    for i in range(n_uploads):
        idx = np.asarray(data.draw(st.lists(
            st.integers(0, n_filters - 1), min_size=0,
            max_size=n_filters + 2)), dtype=np.int64)
        rows = (magnitude * rng.standard_normal(
            (len(idx),) + row_shape)).astype(np.float32)
        uploads.append((idx, rows))
        updates.append({"salient": {"conv": (idx, rows)},
                        "dense": {"fc.weight":
                                  rng.standard_normal(4).astype(np.float32)},
                        "predictor_state": {}, "n": 1 + i})

    expected = salient_aggregate(weight, uploads, step_size=step,
                                 weights=weights if weighted else None)
    dense_weights = [u["n"] * w for u, w in zip(updates, weights)] \
        if weighted else [u["n"] for u in updates]
    expected_dense = weighted_average_states(
        [u["dense"] for u in updates], dense_weights)["fc.weight"]

    algo = _MiniSPATL(weight.copy(), dense.copy(), step)
    with tempfile.TemporaryDirectory() as tmp:
        fold = SPATLFold(algo, UpdateSpill(tmp + "/u.spill"),
                         weighted=weighted)
        for u, w in zip(updates, weights):
            fold.add(u, w) if weighted else fold.add(u)
        fold.finalize(0)

    got = algo.global_model.encoder._params["conv.weight"].data
    assert got.tobytes() == expected.tobytes()
    got_dense = algo.global_model.encoder._params["fc.weight"].data
    assert got_dense.tobytes() == expected_dense.tobytes()


@given(seed=SEED, n_uploads=st.integers(1, 5),
       weights=st.lists(WEIGHT, min_size=5, max_size=5), data=st.data())
@settings(max_examples=60, deadline=None)
def test_running_weighted_counts_match_bincount(seed, n_uploads, weights,
                                               data):
    """The Eq. 12 denominator lemma: per-upload ``np.add.at`` scatter in
    cohort order == one concatenated ``np.bincount(..., weights=...)``."""
    n = 10
    running = np.zeros(n, dtype=np.float64)
    idx_parts, w_parts = [], []
    for i in range(n_uploads):
        idx = np.asarray(data.draw(st.lists(st.integers(0, n - 1),
                                            min_size=0, max_size=15)),
                         dtype=np.int64)
        np.add.at(running, idx, weights[i])
        idx_parts.append(idx)
        w_parts.append(np.full(idx.size, weights[i], dtype=np.float64))
    batch = np.bincount(np.concatenate(idx_parts),
                        weights=np.concatenate(w_parts), minlength=n) \
        if idx_parts else np.zeros(n)
    assert running.tobytes() == batch.tobytes()
