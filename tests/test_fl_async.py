"""Asynchronous runtime: determinism, sync equivalence, buffering, admission.

Protocol-level properties run on the cheap :mod:`repro.fl.stub`
algorithm (microseconds per simulated step); the bitwise sync-equivalence
checks run the real FedAvg/SPATL training stack on the shared tiny
setting, since byte identity across two different server loops is
exactly the kind of claim that must be tested on the real numerics.
"""

import math

import numpy as np
import pytest

from repro.core import SPATL, StaticSaliencyPolicy
from repro.core.aggregation import salient_aggregate
from repro.fl import (AsyncConfig, AsyncFederatedRunner, AsyncProfile,
                      FedAvg, VirtualClock, serialize_state,
                      state_fingerprint, staleness_weight)
from repro.fl.stub import make_stub
from repro.obs import Tracer, codec_byte_totals, set_tracer

HOSTILE = dict(jitter=0.3, straggler_prob=0.4, slowdown=6.0,
               arrival_spread=1.0, churn_prob=0.15, crash_prob=0.1,
               duplicate_prob=0.25)


def _stub_runner(n_clients=12, seed=3, profile=None, **cfg_kw):
    cfg_kw.setdefault("buffer_k", 3)
    cfg_kw.setdefault("max_inflight", 6)
    cfg_kw.setdefault("max_queue", 6)
    profile = profile or AsyncProfile(seed=seed, **HOSTILE)
    algo = make_stub(n_clients=n_clients, seed=seed)
    return AsyncFederatedRunner(algo, profile, AsyncConfig(**cfg_kw))


class TestAsyncProfile:
    def test_draws_deterministic_and_keyed(self):
        a = AsyncProfile(seed=9, jitter=0.5, straggler_prob=0.5,
                         crash_prob=0.5, duplicate_prob=0.5, churn_prob=0.5)
        b = AsyncProfile(seed=9, jitter=0.5, straggler_prob=0.5,
                         crash_prob=0.5, duplicate_prob=0.5, churn_prob=0.5)
        for cid in range(4):
            for job in range(4):
                assert a.duration(cid, job, 2) == b.duration(cid, job, 2)
                assert a.crashes(cid, job) == b.crashes(cid, job)
                assert a.duplicate_lag(cid, job) == b.duplicate_lag(cid, job)
                assert a.rejoin_after(cid, job) == b.rejoin_after(cid, job)
        # different jobs draw independently
        durations = {a.duration(0, j, 2) for j in range(8)}
        assert len(durations) > 1

    def test_uniform_durations_without_jitter(self):
        p = AsyncProfile(seed=1)
        assert p.duration(0, 0, 3) == p.duration(7, 5, 3) == 3.0
        assert p.first_arrival(2) == 0.0
        assert p.crashes(1, 1) is False
        assert p.duplicate_lag(1, 1) is None
        assert p.rejoin_after(1, 1) == (0.0, False)

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncProfile(mean_latency=0.0)
        with pytest.raises(ValueError):
            AsyncProfile(jitter=1.0)
        with pytest.raises(ValueError):
            AsyncProfile(crash_prob=1.5)


class TestVirtualClock:
    def test_orders_by_time_then_schedule_seq(self):
        clock = VirtualClock()
        clock.schedule(2.0, "b", {"i": 0})
        clock.schedule(1.0, "a", {"i": 1})
        clock.schedule(1.0, "a", {"i": 2})
        seen = [clock.pop() for _ in range(3)]
        assert [d["i"] for _, d in seen] == [1, 2, 0]
        assert clock.now == 2.0

    def test_rejects_scheduling_into_the_past(self):
        clock = VirtualClock()
        clock.schedule(5.0, "x", {})
        clock.pop()
        with pytest.raises(ValueError):
            clock.schedule(4.0, "x", {})

    def test_snapshot_restore_roundtrip(self):
        clock = VirtualClock()
        for t in (3.0, 1.0, 2.0):
            clock.schedule(t, "e", {"t": t})
        clock.pop()
        restored = VirtualClock.restore(clock.snapshot())
        assert restored.now == clock.now
        assert [restored.pop() for _ in range(2)] \
            == [clock.pop() for _ in range(2)]


class TestStalenessWeight:
    def test_exact_values(self):
        assert staleness_weight(0, 0.5) == 1.0
        assert staleness_weight(3, 1.0) == 0.25
        assert staleness_weight(1, 0.5) == pytest.approx(1 / math.sqrt(2))
        assert staleness_weight(5, 0.0) == 1.0  # alpha=0 disables discount

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            staleness_weight(-1, 0.5)


class TestAsyncConfigValidation:
    @pytest.mark.parametrize("kw", [dict(buffer_k=0), dict(max_inflight=0),
                                    dict(max_queue=-1), dict(commit_deadline=0),
                                    dict(staleness_alpha=-0.1),
                                    dict(eval_every=-1)])
    def test_bad_values(self, kw):
        with pytest.raises(ValueError):
            AsyncConfig(**kw)


class TestDeterminism:
    def test_same_seed_same_everything(self):
        runs = []
        for _ in range(2):
            runner = _stub_runner()
            runner.run(steps=40)
            runs.append((
                state_fingerprint(dict(
                    runner.algo.global_model.state_dict())),
                dict(runner.counters), runner.clock.now,
                runner.algo.ledger.total_bytes(),
                [(r.step, r.n_updates, r.max_staleness, r.time)
                 for r in runner.step_results]))
        assert runs[0] == runs[1]

    def test_different_seed_differs(self):
        a = _stub_runner(seed=3)
        b = _stub_runner(seed=4)
        a.run(steps=20)
        b.run(steps=20)
        assert a.clock.now != b.clock.now or a.counters != b.counters


class TestSyncEquivalence:
    """buffer_k == cohort + uniform durations bitwise-reproduces sync."""

    def _pair(self, make_algo, rounds):
        # make_algo builds fresh clients each call: client local state is
        # mutated by a run, so sync and async must start from scratch.
        sync_algo = make_algo()
        sync_algo.run(rounds)
        async_algo = make_algo()
        n = len(async_algo.clients)
        runner = AsyncFederatedRunner(
            async_algo, AsyncProfile(seed=5),
            AsyncConfig(buffer_k=n, max_inflight=n))
        results = runner.run(steps=rounds)
        assert all(r.max_staleness == 0 for r in results)
        assert all(r.n_updates == n for r in results)
        return sync_algo, async_algo

    @staticmethod
    def _fresh_clients(tiny_dataset, tiny_setting):
        from repro.fl import make_federated_clients
        _, parts = tiny_setting
        return make_federated_clients(tiny_dataset, parts, batch_size=32,
                                      seed=5)

    def test_fedavg_bitwise(self, tiny_model_fn, tiny_dataset, tiny_setting):
        sync_algo, async_algo = self._pair(
            lambda: FedAvg(tiny_model_fn,
                           self._fresh_clients(tiny_dataset, tiny_setting),
                           lr=0.05, local_epochs=1, sample_ratio=1.0,
                           seed=0),
            rounds=2)
        assert serialize_state(dict(sync_algo.global_model.state_dict())) \
            == serialize_state(dict(async_algo.global_model.state_dict()))
        assert sync_algo.ledger.total_bytes() \
            == async_algo.ledger.total_bytes()

    def test_spatl_bitwise(self, tiny_model_fn, tiny_dataset, tiny_setting):
        def make_algo():
            return SPATL(tiny_model_fn,
                         self._fresh_clients(tiny_dataset, tiny_setting),
                         lr=0.05, local_epochs=1, sample_ratio=1.0, seed=0,
                         selection_policy=StaticSaliencyPolicy(0.5))
        sync_algo, async_algo = self._pair(make_algo, rounds=2)
        assert serialize_state(dict(sync_algo.global_model.state_dict())) \
            == serialize_state(dict(async_algo.global_model.state_dict()))
        assert sync_algo.ledger.total_bytes() \
            == async_algo.ledger.total_bytes()

    def test_stub_bitwise_across_many_rounds(self):
        sync_algo = make_stub(n_clients=6, seed=2)
        for r in range(8):
            sync_algo.run_round(r)
        async_algo = make_stub(n_clients=6, seed=2)
        runner = AsyncFederatedRunner(
            async_algo, AsyncProfile(seed=1),
            AsyncConfig(buffer_k=6, max_inflight=6))
        runner.run(steps=8)
        assert state_fingerprint(dict(sync_algo.global_model.state_dict())) \
            == state_fingerprint(dict(async_algo.global_model.state_dict()))


class TestAdmissionControl:
    def test_inflight_never_exceeds_cap(self):
        runner = _stub_runner(max_inflight=3, max_queue=4)
        original = runner._dispatch

        seen = []

        def spy(cid):
            original(cid)
            seen.append(len(runner.inflight))

        runner._dispatch = spy
        runner.run(steps=30)
        assert seen and max(seen) <= 3

    def test_rejection_backoff_when_queue_full(self):
        runner = _stub_runner(n_clients=12, max_inflight=1, max_queue=0)
        runner.run(steps=10)
        assert runner.counters["rejected"] > 0
        assert runner.server_step == 10  # rejected clients re-arrive

    def test_queue_is_fifo_in_dispatch_order(self):
        # 4 clients, 1 slot: dispatch order must follow arrival order.
        runner = _stub_runner(n_clients=4, seed=0, max_inflight=1,
                              max_queue=4, buffer_k=1,
                              profile=AsyncProfile(seed=0))
        order = []
        original = runner._dispatch
        runner._dispatch = lambda cid: (order.append(cid), original(cid))
        runner.run(steps=8)
        assert order[:4] == [0, 1, 2, 3]


class TestDedupAndBufferInvariant:
    def test_duplicates_never_double_commit_or_charge(self):
        profile = AsyncProfile(seed=6, duplicate_prob=1.0,
                               duplicate_delay=0.5)
        runner = _stub_runner(n_clients=6, profile=profile, buffer_k=2,
                              max_inflight=6)
        runner.run(steps=12)
        c = runner.counters
        assert c["deduped"] > 0
        # every accepted upload commits exactly once; duplicates vanish
        assert c["accepted"] == c["committed"] + len(runner.buffer)
        # ledger: one uplink charge per *accepted* upload
        up_entries = sum(len(d) for d in runner.algo.ledger.uplink.values())
        assert up_entries <= c["accepted"]  # (same round+client merges)

    def test_dedup_eviction_counter_exported_to_metrics(self):
        """FIFO evictions of the bounded fingerprint registry land in both
        ``runner.dedup_evictions`` and the ``async.dedup_evictions``
        registry counter."""
        from repro.obs.metrics import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            runner = _stub_runner(n_clients=6, profile=AsyncProfile(seed=2),
                                  dedup_capacity=1)
            runner.run(steps=10)
        finally:
            set_registry(previous)
        assert runner.dedup_evictions > 0
        assert len(runner._fp_registry) <= 1
        counters = registry.snapshot()["counters"]
        assert counters.get("async.dedup_evictions") \
            == runner.dedup_evictions

    def test_buffer_invariant_under_hostility(self):
        runner = _stub_runner()
        runner.run(steps=50)
        c = runner.counters
        assert c["committed"] + len(runner.buffer) == c["accepted"]
        # every dispatched job ends exactly one way: still in flight,
        # crashed, or delivered-and-accepted (dups never re-enter here)
        assert c["accepted"] \
            == c["dispatched"] - c["crashed"] - len(runner.inflight)


class TestDeadlineCommits:
    def test_deadline_fires_when_buffer_starves(self):
        # buffer_k larger than the cohort: only the deadline can commit.
        runner = _stub_runner(n_clients=4, buffer_k=100, max_inflight=4,
                              commit_deadline=3.0,
                              profile=AsyncProfile(seed=2, rejoin_delay=1.0))
        runner.run(steps=3)
        assert runner.server_step == 3
        assert runner.counters["deadline_commits"] == 3
        assert all(r.deadline_commit for r in runner.step_results)

    def test_stale_deadline_is_idempotent(self):
        # deadline armed, then buffer_k commit happens first: the late
        # deadline event must not commit a second time.
        runner = _stub_runner(n_clients=6, buffer_k=2, max_inflight=6,
                              commit_deadline=50.0,
                              profile=AsyncProfile(seed=2))
        runner.run(steps=6)
        assert runner.counters["deadline_commits"] == 0
        assert runner.server_step == 6

    def test_partial_flush_on_stall(self):
        # every job crashes: no uploads, so the run stalls; flush_final
        # has nothing to commit and the runner reports the stall.
        runner = _stub_runner(n_clients=4, buffer_k=2,
                              profile=AsyncProfile(seed=1, crash_prob=1.0))
        results = runner.run(steps=2, max_events=500)
        assert runner.stalled
        assert results == []
        assert runner.counters["crashed"] > 0

    def test_partial_flush_commits_leftover_buffer(self):
        # budget of 2 events covers exactly one arrive + one upload: the
        # buffer holds 1 < buffer_k when the budget runs out, and
        # flush_final commits the partial buffer.
        runner = _stub_runner(n_clients=1, buffer_k=2, max_inflight=1,
                              profile=AsyncProfile(seed=1))
        results = runner.run(steps=1, max_events=2)
        assert runner.stalled
        assert len(results) == 1 and results[0].partial
        assert results[0].n_updates == 1


class TestStalenessWeighting:
    def test_alpha_changes_aggregation(self):
        def run(alpha):
            runner = _stub_runner(seed=11, staleness_alpha=alpha)
            runner.run(steps=30)
            hist_max = max((r.max_staleness for r in runner.step_results),
                           default=0)
            return hist_max, state_fingerprint(dict(
                runner.algo.global_model.state_dict()))

        s0, fp0 = run(0.0)
        s1, fp1 = run(2.0)
        assert s0 > 0  # the hostile profile actually produces staleness
        assert fp0 != fp1  # discounting changed the trajectory

    def test_base_weighted_aggregate_scales_n(self):
        algo = make_stub(n_clients=3, seed=0)
        updates = [algo.local_update(c, 0) for c in algo.clients]
        ref = make_stub(n_clients=3, seed=0)
        scaled = [dict(u, n=u["n"] * w)
                  for u, w in zip(updates, (1.0, 0.5, 0.25))]
        ref.aggregate(scaled, 0)
        algo.aggregate_weighted(updates, [1.0, 0.5, 0.25], 0)
        assert state_fingerprint(dict(algo.global_model.state_dict())) \
            == state_fingerprint(dict(ref.global_model.state_dict()))

    def test_all_ones_delegates_bitwise(self):
        a = make_stub(n_clients=3, seed=0)
        b = make_stub(n_clients=3, seed=0)
        updates = [a.local_update(c, 0) for c in a.clients]
        a.aggregate(updates, 0)
        b.aggregate_weighted(updates, [1.0, 1.0, 1.0], 0)
        assert state_fingerprint(dict(a.global_model.state_dict())) \
            == state_fingerprint(dict(b.global_model.state_dict()))

    def test_weight_validation(self):
        algo = make_stub(n_clients=2, seed=0)
        updates = [algo.local_update(c, 0) for c in algo.clients]
        with pytest.raises(ValueError):
            algo.aggregate_weighted(updates, [1.0], 0)
        with pytest.raises(ValueError):
            algo.aggregate_weighted(updates, [1.0, 0.0], 0)


class TestWeightedSalientAggregate:
    def test_weighted_mean_math(self):
        rng = np.random.default_rng(0)
        global_w = rng.standard_normal((6, 3)).astype(np.float32)
        up_a = (np.array([0, 2]), rng.standard_normal((2, 3)))
        up_b = (np.array([0, 4]), rng.standard_normal((2, 3)))
        w_a, w_b = 1.0, 0.25
        out = salient_aggregate(global_w, [up_a, up_b],
                                weights=[w_a, w_b])
        # row 0 covered by both: weighted mean of the diffs
        expect0 = global_w[0] + (
            w_a * (up_a[1][0] - global_w[0])
            + w_b * (up_b[1][0] - global_w[0])) / (w_a + w_b)
        np.testing.assert_allclose(out[0], expect0, rtol=1e-6)
        # row 2 only client a (weight cancels), row 4 only client b
        np.testing.assert_allclose(out[2], up_a[1][1], rtol=1e-6)
        np.testing.assert_allclose(out[4], up_b[1][1], rtol=1e-6)
        # uncovered rows untouched
        np.testing.assert_array_equal(out[1], global_w[1])

    def test_unit_weights_match_unweighted_closely(self):
        rng = np.random.default_rng(1)
        global_w = rng.standard_normal((8, 4)).astype(np.float32)
        uploads = [(np.array([0, 3, 5]), rng.standard_normal((3, 4))),
                   (np.array([3, 5, 7]), rng.standard_normal((3, 4)))]
        a = salient_aggregate(global_w, uploads)
        b = salient_aggregate(global_w, uploads, weights=[1.0, 1.0])
        np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            salient_aggregate(np.zeros((4, 2)),
                              [(np.array([0]), np.zeros((1, 2)))],
                              weights=[1.0, 2.0])


class TestObservabilityParity:
    def test_traced_codec_bytes_equal_ledger(self):
        runner = _stub_runner(n_clients=8, seed=7)
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            runner.run(steps=15)
        finally:
            set_tracer(previous)
        codec = codec_byte_totals(tracer)
        total = runner.algo.ledger.total_bytes()
        assert int(codec["serialize"]) == total
        assert int(codec["deserialize"]) == total
        names = {s.name for s in tracer.spans}
        assert {"dispatch", "buffer", "commit"} <= names

    def test_tracing_does_not_change_results(self):
        untraced = _stub_runner(seed=9)
        untraced.run(steps=20)
        traced = _stub_runner(seed=9)
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            traced.run(steps=20)
        finally:
            set_tracer(previous)
        assert state_fingerprint(dict(
            untraced.algo.global_model.state_dict())) \
            == state_fingerprint(dict(traced.algo.global_model.state_dict()))
        assert untraced.counters == traced.counters


class TestFinalize:
    def test_never_delivering_clients_count_once(self):
        runner = _stub_runner(n_clients=4,
                              profile=AsyncProfile(seed=1, crash_prob=1.0),
                              buffer_k=2)
        runner.run(steps=2, max_events=400)
        assert runner.counters["crashed"] > 4  # clients crashed repeatedly
        runner.finalize()
        stats = runner.algo.fault_stats
        assert stats.n_dropped == 4          # distinct clients, not crashes
        assert stats.n_crashes == runner.counters["crashed"]

    def test_delivering_clients_not_dropped(self):
        runner = _stub_runner(seed=3)
        runner.run(steps=30)
        delivered = {runner.jobs[j].client_id
                     for j in runner._fp_registry.values()}
        runner.finalize()
        assert runner.algo.fault_stats.n_dropped \
            == len(runner._clients) - len(delivered)


class TestRunMisc:
    def test_run_validates_steps(self):
        with pytest.raises(ValueError):
            _stub_runner().run(steps=0)

    def test_pump_then_run_matches_straight_run(self):
        straight = _stub_runner(seed=13)
        straight.run(steps=25)
        chunked = _stub_runner(seed=13)
        chunked.pump(37)
        chunked.run(steps=25 - chunked.server_step)
        assert state_fingerprint(dict(
            straight.algo.global_model.state_dict())) \
            == state_fingerprint(dict(
                chunked.algo.global_model.state_dict()))
        assert straight.counters == chunked.counters
        assert straight.clock.now == chunked.clock.now
