"""Unit + property tests: wire codec and communication ledger."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.fl import (CommLedger, deserialize_state, payload_nbytes,
                      serialize_state, sparse_payload_nbytes)


class TestCodec:
    def test_roundtrip_mixed_dtypes(self):
        state = {
            "w": np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32),
            "idx": np.asarray([1, 5, 9], dtype=np.int32),
            "flag": np.asarray([True, False]),
            "scalar": np.asarray(3.5, dtype=np.float64),
            "big": np.arange(10, dtype=np.int64),
        }
        out = deserialize_state(serialize_state(state))
        assert set(out) == set(state)
        for k in state:
            np.testing.assert_array_equal(out[k], state[k], err_msg=k)
            assert out[k].dtype == state[k].dtype

    def test_payload_nbytes_is_exact(self):
        state = {"a": np.zeros((5, 5), dtype=np.float32),
                 "long.dotted.name": np.ones(7, dtype=np.int64)}
        assert payload_nbytes(state) == len(serialize_state(state))

    def test_empty_state(self):
        assert deserialize_state(serialize_state({})) == {}
        assert payload_nbytes({}) == 4

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError):
            serialize_state({"c": np.zeros(2, dtype=np.complex64)})

    def test_unicode_names(self):
        state = {"ünïcode.wéight": np.ones(2, dtype=np.float32)}
        out = deserialize_state(serialize_state(state))
        assert "ünïcode.wéight" in out

    @given(st.dictionaries(
        st.text(min_size=1, max_size=20).filter(lambda s: "\x00" not in s),
        hnp.arrays(st.sampled_from([np.float32, np.int32, np.int64]).map(np.dtype),
                   hnp.array_shapes(max_dims=3, max_side=5),
                   elements=st.integers(-100, 100)),
        max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, state):
        out = deserialize_state(serialize_state(state))
        assert set(out) == set(state)
        for k in state:
            np.testing.assert_array_equal(out[k], state[k])
        assert payload_nbytes(state) == len(serialize_state(state))


class TestSparsePayload:
    def test_counts_values_and_int32_indices(self):
        sel = {"conv": (np.asarray([0, 2], dtype=np.int64),
                        np.zeros((2, 3, 3, 3), dtype=np.float32))}
        n = sparse_payload_nbytes(sel)
        values_bytes = 2 * 3 * 3 * 3 * 4
        index_bytes = 2 * 4
        assert n > values_bytes + index_bytes
        assert n < values_bytes + index_bytes + 100  # headers only

    def test_sparser_is_smaller(self):
        full = {"c": (np.arange(16, dtype=np.int32),
                      np.zeros((16, 3, 3, 3), dtype=np.float32))}
        half = {"c": (np.arange(8, dtype=np.int32),
                      np.zeros((8, 3, 3, 3), dtype=np.float32))}
        assert sparse_payload_nbytes(half) < sparse_payload_nbytes(full) / 1.8


class TestLedger:
    def test_round_and_total(self):
        ledger = CommLedger()
        ledger.record_down(0, 1, 100)
        ledger.record_up(0, 1, 50)
        ledger.record_down(1, 2, 200)
        assert ledger.round_bytes(0) == 150
        assert ledger.round_bytes(1) == 200
        assert ledger.total_bytes() == 350
        assert ledger.total_bytes(up_to_round=0) == 150

    def test_accumulates_same_round_client(self):
        ledger = CommLedger()
        ledger.record_up(0, 1, 10)
        ledger.record_up(0, 1, 5)
        assert ledger.round_bytes(0) == 15

    def test_per_round_per_client_mb(self):
        ledger = CommLedger()
        mb = 2 ** 20
        ledger.record_down(0, 0, mb)
        ledger.record_up(0, 0, mb)
        ledger.record_down(0, 1, 3 * mb)
        ledger.record_up(0, 1, 3 * mb)
        assert ledger.per_round_per_client_mb() == pytest.approx(4.0)

    def test_total_gb(self):
        ledger = CommLedger()
        ledger.record_up(0, 0, 2 ** 30)
        assert ledger.total_gb() == pytest.approx(1.0)

    def test_empty_ledger(self):
        assert CommLedger().total_bytes() == 0
        assert CommLedger().per_round_per_client_mb() == 0.0
