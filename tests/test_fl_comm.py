"""Unit + property tests: wire codec and communication ledger."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.fl import (CommLedger, PayloadError, dequantize_state,
                      deserialize_state, payload_nbytes, quantize_state,
                      serialize_state, sparse_payload_nbytes)


class TestCodec:
    def test_roundtrip_mixed_dtypes(self):
        state = {
            "w": np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32),
            "idx": np.asarray([1, 5, 9], dtype=np.int32),
            "flag": np.asarray([True, False]),
            "scalar": np.asarray(3.5, dtype=np.float64),
            "big": np.arange(10, dtype=np.int64),
        }
        out = deserialize_state(serialize_state(state))
        assert set(out) == set(state)
        for k in state:
            np.testing.assert_array_equal(out[k], state[k], err_msg=k)
            assert out[k].dtype == state[k].dtype

    def test_payload_nbytes_is_exact(self):
        state = {"a": np.zeros((5, 5), dtype=np.float32),
                 "long.dotted.name": np.ones(7, dtype=np.int64)}
        assert payload_nbytes(state) == len(serialize_state(state))

    def test_empty_state(self):
        assert deserialize_state(serialize_state({})) == {}
        assert payload_nbytes({}) == 4

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError):
            serialize_state({"c": np.zeros(2, dtype=np.complex64)})

    def test_unicode_names(self):
        state = {"ünïcode.wéight": np.ones(2, dtype=np.float32)}
        out = deserialize_state(serialize_state(state))
        assert "ünïcode.wéight" in out

    @given(st.dictionaries(
        st.text(min_size=1, max_size=20).filter(lambda s: "\x00" not in s),
        hnp.arrays(st.sampled_from([np.float32, np.int32, np.int64]).map(np.dtype),
                   hnp.array_shapes(max_dims=3, max_side=5),
                   elements=st.integers(-100, 100)),
        max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, state):
        out = deserialize_state(serialize_state(state))
        assert set(out) == set(state)
        for k in state:
            np.testing.assert_array_equal(out[k], state[k])
        assert payload_nbytes(state) == len(serialize_state(state))


class TestPayloadValidation:
    STATE = {"layer.weight": np.arange(24, dtype=np.float32).reshape(2, 3, 4),
             "layer.bias": np.ones(2, dtype=np.float64)}

    def test_truncated_payload_raises_typed_error(self):
        blob = serialize_state(self.STATE)
        for cut in (0, 3, 5, len(blob) // 2, len(blob) - 1):
            with pytest.raises(PayloadError):
                deserialize_state(blob[:cut])

    def test_error_names_entry_and_offset(self):
        blob = serialize_state(self.STATE)
        with pytest.raises(PayloadError) as exc:
            deserialize_state(blob[:len(blob) - 1])
        assert exc.value.entry is not None
        assert exc.value.offset is not None
        assert "offset" in str(exc.value)

    def test_trailing_garbage_rejected(self):
        blob = serialize_state(self.STATE)
        with pytest.raises(PayloadError):
            deserialize_state(blob + b"\x00\x01")

    def test_unknown_dtype_code_rejected(self):
        blob = bytearray(serialize_state({"w": np.ones(2, dtype=np.float32)}))
        # entry layout after u32 count: u16 name_len, name, u8 dtype code
        blob[4 + 2 + 1] = 250
        with pytest.raises(PayloadError):
            deserialize_state(bytes(blob))

    def test_payload_error_is_value_error(self):
        assert issubclass(PayloadError, ValueError)


class TestChecksummedCodec:
    STATE = {"w": np.random.default_rng(0).normal(size=(3, 5)).astype(
        np.float32), "n": np.asarray(7, dtype=np.int64)}

    def test_roundtrip(self):
        blob = serialize_state(self.STATE, checksums=True)
        out = deserialize_state(blob, checksums=True)
        for k in self.STATE:
            np.testing.assert_array_equal(out[k], self.STATE[k], err_msg=k)

    def test_checksummed_size_is_exact(self):
        blob = serialize_state(self.STATE, checksums=True)
        assert payload_nbytes(self.STATE, checksums=True) == len(blob)
        # exactly 4 CRC bytes per entry on top of the plain format
        assert len(blob) == len(serialize_state(self.STATE)) + 4 * len(
            self.STATE)

    def test_single_bit_flip_detected_everywhere(self):
        blob = serialize_state(self.STATE, checksums=True)
        for pos in range(4, len(blob)):  # skip the uncovered count header
            bad = bytearray(blob)
            bad[pos] ^= 0x10
            with pytest.raises(PayloadError):
                deserialize_state(bytes(bad), checksums=True)

    def test_count_header_flip_detected(self):
        blob = serialize_state(self.STATE, checksums=True)
        for pos in range(4):
            bad = bytearray(blob)
            bad[pos] ^= 0x01
            with pytest.raises(PayloadError):
                deserialize_state(bytes(bad), checksums=True)

    def test_plain_format_unchanged_by_checksum_support(self):
        # default serialisation must stay byte-identical to the original
        # wire format (fault-free accounting depends on it)
        blob = serialize_state(self.STATE)
        assert payload_nbytes(self.STATE) == len(blob)
        out = deserialize_state(blob)
        for k in self.STATE:
            np.testing.assert_array_equal(out[k], self.STATE[k])


class TestSparsePayload:
    def test_counts_values_and_int32_indices(self):
        sel = {"conv": (np.asarray([0, 2], dtype=np.int64),
                        np.zeros((2, 3, 3, 3), dtype=np.float32))}
        n = sparse_payload_nbytes(sel)
        values_bytes = 2 * 3 * 3 * 3 * 4
        index_bytes = 2 * 4
        assert n > values_bytes + index_bytes
        assert n < values_bytes + index_bytes + 100  # headers only

    def test_sparser_is_smaller(self):
        full = {"c": (np.arange(16, dtype=np.int32),
                      np.zeros((16, 3, 3, 3), dtype=np.float32))}
        half = {"c": (np.arange(8, dtype=np.int32),
                      np.zeros((8, 3, 3, 3), dtype=np.float32))}
        assert sparse_payload_nbytes(half) < sparse_payload_nbytes(full) / 1.8


class TestLedger:
    def test_round_and_total(self):
        ledger = CommLedger()
        ledger.record_down(0, 1, 100)
        ledger.record_up(0, 1, 50)
        ledger.record_down(1, 2, 200)
        assert ledger.round_bytes(0) == 150
        assert ledger.round_bytes(1) == 200
        assert ledger.total_bytes() == 350
        assert ledger.total_bytes(up_to_round=0) == 150

    def test_accumulates_same_round_client(self):
        ledger = CommLedger()
        ledger.record_up(0, 1, 10)
        ledger.record_up(0, 1, 5)
        assert ledger.round_bytes(0) == 15

    def test_per_round_per_client_mb(self):
        ledger = CommLedger()
        mb = 2 ** 20
        ledger.record_down(0, 0, mb)
        ledger.record_up(0, 0, mb)
        ledger.record_down(0, 1, 3 * mb)
        ledger.record_up(0, 1, 3 * mb)
        assert ledger.per_round_per_client_mb() == pytest.approx(4.0)

    def test_total_gb(self):
        ledger = CommLedger()
        ledger.record_up(0, 0, 2 ** 30)
        assert ledger.total_gb() == pytest.approx(1.0)

    def test_empty_ledger(self):
        assert CommLedger().total_bytes() == 0
        assert CommLedger().per_round_per_client_mb() == 0.0


class TestDuplicateEntryRejection:
    def test_duplicate_entry_name_raises(self):
        # Craft a payload that repeats one well-formed record twice: a
        # hostile (or buggy) sender must not silently overwrite entries.
        blob = serialize_state({"w": np.arange(6, dtype=np.float32)})
        record = blob[4:]                       # skip the u32 entry count
        forged = struct.pack("<I", 2) + record + record
        with pytest.raises(PayloadError, match="duplicate"):
            deserialize_state(forged)

    def test_duplicate_detected_with_checksums(self):
        blob = serialize_state({"w": np.zeros(3, dtype=np.float32)},
                               checksums=True)
        record = blob[4:]
        forged = struct.pack("<I", 2) + record + record
        with pytest.raises(PayloadError, match="duplicate"):
            deserialize_state(forged, checksums=True)

    def test_distinct_names_still_accepted(self):
        state = {"a": np.ones(2, dtype=np.float32),
                 "b": np.ones(2, dtype=np.float32)}
        out = deserialize_state(serialize_state(state))
        assert set(out) == {"a", "b"}


class TestQuantization:
    def test_fp16_roundtrip_within_tolerance(self):
        rng = np.random.default_rng(3)
        state = {"w": rng.normal(size=(8, 4)).astype(np.float32),
                 "b": rng.normal(size=4).astype(np.float32)}
        back = dequantize_state(quantize_state(state))
        for k in state:
            assert back[k].dtype == np.float32
            np.testing.assert_allclose(back[k], state[k], atol=1e-3,
                                       rtol=1e-3, err_msg=k)

    def test_fp16_representable_values_are_lossless(self):
        # Values exactly representable in fp16 must survive the narrow
        # cast bit-for-bit after widening back.
        state = {"w": np.asarray([0.0, 0.5, -1.25, 2.0, 1024.0],
                                 dtype=np.float32)}
        back = dequantize_state(quantize_state(state))
        np.testing.assert_array_equal(back["w"], state["w"])

    def test_integer_and_bool_entries_pass_through(self):
        state = {"idx": np.asarray([1, 5, 9], dtype=np.int32),
                 "mask": np.asarray([True, False, True]),
                 "count": np.asarray(7, dtype=np.int64)}
        quant = quantize_state(state)
        back = dequantize_state(quant)
        for k in state:
            assert quant[k].dtype == state[k].dtype
            assert back[k].dtype == state[k].dtype
            np.testing.assert_array_equal(back[k], state[k], err_msg=k)

    def test_quantized_payload_is_smaller(self):
        state = {"w": np.zeros((32, 32), dtype=np.float32)}
        assert payload_nbytes(quantize_state(state)) < payload_nbytes(state)

    def test_float64_roundtrips_without_downcast(self):
        # Regression: dequantize_state used to force float64 entries down
        # to float32 on receipt.  An already-wide float must pass through
        # bit-exactly; only floats *narrower* than the target widen.
        state = {"acc": np.asarray([1.0 + 2 ** -40, -3.5], dtype=np.float64)}
        back = dequantize_state(state)
        assert back["acc"].dtype == np.float64
        np.testing.assert_array_equal(back["acc"], state["acc"])

    def test_fp16_entry_not_renarrowed_by_quantize(self):
        # Already-at-or-below-target floats are untouched by the narrow
        # cast, so quantize is idempotent.
        state = {"w": np.asarray([0.5, 2.0], dtype=np.float16)}
        quant = quantize_state(state)
        assert quant["w"] is state["w"]
        again = quantize_state(quant)
        assert again["w"] is state["w"]

    def test_mixed_state_full_roundtrip_restores_every_dtype(self):
        rng = np.random.default_rng(17)
        state = {
            "w32": rng.normal(size=6).astype(np.float32),
            "w64": rng.normal(size=6).astype(np.float64),
            "w16": rng.normal(size=6).astype(np.float16),
            "idx": np.arange(4, dtype=np.int32),
            "count": np.asarray(9, dtype=np.int64),
            "mask": np.asarray([True, False]),
        }
        back = dequantize_state(quantize_state(state))
        # the lossy knob funnels every wide float through fp16 and widens
        # back to the float32 compute dtype; non-floats are untouched
        expected = {"w32": np.float32, "w64": np.float32,
                    "w16": np.float32, "idx": np.int32,
                    "count": np.int64, "mask": np.bool_}
        for name, dt in expected.items():
            assert back[name].dtype == dt, name
        for name in ("idx", "count", "mask"):
            np.testing.assert_array_equal(back[name], state[name],
                                          err_msg=name)

    def test_non_float_target_rejected(self):
        with pytest.raises(TypeError, match="float dtype"):
            quantize_state({}, dtype=np.int8)
        with pytest.raises(TypeError, match="float dtype"):
            dequantize_state({}, dtype=np.int32)
