"""Unit tests: optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, ConstantLR, CosineAnnealingLR, StepLR
from repro.tensor import Tensor, functional as F

R = np.random.default_rng(0)


def quadratic_params():
    """Single parameter with loss ||p - target||^2."""
    p = Parameter(np.asarray([4.0, -3.0], dtype=np.float32))
    target = np.asarray([1.0, 2.0], dtype=np.float32)
    return p, target


def quad_step(p, target):
    p.grad = 2 * (p.data - target)


class TestSGD:
    def test_converges_on_quadratic(self):
        p, target = quadratic_params()
        opt = SGD([("p", p)], lr=0.1)
        for _ in range(100):
            quad_step(p, target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        losses = {}
        for mom in (0.0, 0.9):
            p, target = quadratic_params()
            opt = SGD([("p", p)], lr=0.02, momentum=mom)
            for _ in range(30):
                quad_step(p, target)
                opt.step()
            losses[mom] = float(((p.data - target) ** 2).sum())
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.asarray([10.0], dtype=np.float32))
        opt = SGD([("p", p)], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 10.0

    def test_correction_hook_applied(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        opt = SGD([("p", p)], lr=1.0)
        opt.add_correction_hook(lambda name, g: g + 5.0)
        p.grad = np.zeros(2, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [-5.0, -5.0])

    def test_hooks_receive_name(self):
        p1 = Parameter(np.zeros(1, dtype=np.float32))
        p2 = Parameter(np.zeros(1, dtype=np.float32))
        opt = SGD([("a", p1), ("b", p2)], lr=1.0)
        opt.add_correction_hook(
            lambda name, g: g + (1.0 if name == "a" else 0.0))
        p1.grad = np.zeros(1, dtype=np.float32)
        p2.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p1.data, [-1.0])
        np.testing.assert_allclose(p2.data, [0.0])

    def test_clear_hooks(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = SGD([("p", p)], lr=1.0)
        opt.add_correction_hook(lambda n, g: g + 1.0)
        opt.clear_correction_hooks()
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [0.0])

    def test_grad_norm_clip(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        opt = SGD([("p", p)], lr=1.0, max_grad_norm=1.0)
        p.grad = np.full(4, 100.0, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(np.linalg.norm(p.data), 1.0, rtol=1e-4)

    def test_skips_none_grads(self):
        p = Parameter(np.ones(1, dtype=np.float32))
        SGD([("p", p)], lr=1.0).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_state_dict_roundtrip(self):
        p, target = quadratic_params()
        opt = SGD([("p", p)], lr=0.1, momentum=0.9)
        quad_step(p, target)
        opt.step()
        state = opt.state_dict()
        opt2 = SGD([("p", p)], lr=0.5, momentum=0.9)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1
        np.testing.assert_array_equal(opt2._velocity["p"], opt._velocity["p"])

    def test_trains_real_model(self):
        lin = Linear(4, 2, rng=R)
        x = R.normal(size=(64, 4)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        opt = SGD(list(lin.named_parameters()), lr=0.5, momentum=0.9)
        first_loss = None
        for _ in range(40):
            loss = F.cross_entropy(lin(Tensor(x)), y)
            if first_loss is None:
                first_loss = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.3 * first_loss


class TestAdam:
    def test_converges_on_quadratic(self):
        p, target = quadratic_params()
        opt = Adam([("p", p)], lr=0.2)
        for _ in range(200):
            quad_step(p, target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_freeze_by_prefix(self):
        p1 = Parameter(np.zeros(1, dtype=np.float32))
        p2 = Parameter(np.zeros(1, dtype=np.float32))
        opt = Adam([("gnn.w", p1), ("head.w", p2)], lr=0.1)
        opt.freeze(["gnn."])
        p1.grad = np.ones(1, dtype=np.float32)
        p2.grad = np.ones(1, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p1.data, [0.0])
        assert p2.data[0] != 0.0

    def test_unfreeze(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = Adam([("gnn.w", p)], lr=0.1)
        opt.freeze(["gnn."])
        opt.unfreeze_all()
        p.grad = np.ones(1, dtype=np.float32)
        opt.step()
        assert p.data[0] != 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Adam([])


class TestSchedulers:
    def _opt(self):
        return SGD([("p", Parameter(np.zeros(1, dtype=np.float32)))], lr=1.0)

    def test_constant(self):
        sch = ConstantLR(self._opt())
        assert sch.step() == 1.0
        assert sch.step() == 1.0

    def test_step_lr(self):
        opt = self._opt()
        sch = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sch.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])
        assert opt.lr == pytest.approx(0.01)

    def test_step_lr_validates(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)

    def test_cosine(self):
        sch = CosineAnnealingLR(self._opt(), t_max=10, eta_min=0.0)
        lrs = [sch.step() for _ in range(10)]
        assert lrs[0] > lrs[4] > lrs[-1]
        np.testing.assert_allclose(lrs[-1], 0.0, atol=1e-8)

    def test_cosine_clamps_past_tmax(self):
        sch = CosineAnnealingLR(self._opt(), t_max=2, eta_min=0.1)
        for _ in range(5):
            lr = sch.step()
        assert lr == pytest.approx(0.1)
