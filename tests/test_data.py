"""Unit + property tests: datasets, partitioners, dataloader."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (ArrayDataset, DataLoader, SyntheticCIFAR10,
                        SyntheticFEMNIST, by_writer_partition,
                        dirichlet_partition, iid_partition, partition_summary,
                        shard_partition, train_val_split)


class TestArrayDataset:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4))

    def test_subset(self):
        ds = ArrayDataset(np.arange(12).reshape(3, 1, 2, 2), np.asarray([0, 1, 2]))
        sub = ds.subset([2, 0])
        np.testing.assert_array_equal(sub.y, [2, 0])

    def test_class_counts(self):
        ds = ArrayDataset(np.zeros((4, 1, 1, 1)), np.asarray([0, 0, 1, 2]))
        np.testing.assert_array_equal(ds.class_counts(4), [2, 1, 1, 0])


class TestSyntheticCIFAR:
    def test_shapes_and_types(self):
        ds = SyntheticCIFAR10(n_samples=100, size=16, seed=0)
        assert ds.x.shape == (100, 3, 16, 16)
        assert ds.x.dtype == np.float32
        assert ds.y.dtype == np.int64
        assert ds.y.min() >= 0 and ds.y.max() < 10

    def test_deterministic(self):
        a = SyntheticCIFAR10(n_samples=50, size=16, seed=5)
        b = SyntheticCIFAR10(n_samples=50, size=16, seed=5)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_seed_changes_data(self):
        a = SyntheticCIFAR10(n_samples=50, size=16, seed=5)
        b = SyntheticCIFAR10(n_samples=50, size=16, seed=6)
        assert not np.array_equal(a.x, b.x)

    def test_split_changes_instances_not_classes(self):
        tr = SyntheticCIFAR10(n_samples=50, size=16, seed=5, split="train")
        te = SyntheticCIFAR10(n_samples=50, size=16, seed=5, split="test")
        assert not np.array_equal(tr.x, te.x)

    def test_standardized(self):
        ds = SyntheticCIFAR10(n_samples=500, size=16, seed=1)
        np.testing.assert_allclose(ds.x.mean(axis=(0, 2, 3)), np.zeros(3),
                                   atol=1e-3)
        np.testing.assert_allclose(ds.x.std(axis=(0, 2, 3)), np.ones(3),
                                   atol=1e-2)

    def test_classes_distinguishable_by_mean_template(self):
        # nearest-class-mean classifier must beat chance by a wide margin
        ds = SyntheticCIFAR10(n_samples=1500, size=16, seed=2, noise=0.9)
        flat = ds.x.reshape(len(ds), -1)
        means = np.stack([flat[ds.y == k].mean(axis=0) for k in range(10)])
        pred = np.argmax(flat @ means.T - 0.5 * (means ** 2).sum(1), axis=1)
        assert (pred == ds.y).mean() > 0.4  # chance = 0.1


class TestSyntheticFEMNIST:
    def test_writers_and_shapes(self):
        ds = SyntheticFEMNIST(n_writers=8, samples_per_writer=20, size=28,
                              seed=0, num_classes=20)
        assert ds.x.shape == (160, 1, 28, 28)
        assert len(np.unique(ds.writer_ids)) == 8

    def test_writer_class_skew(self):
        # writers use skewed class subsets — per-writer label distributions
        # must differ from uniform
        ds = SyntheticFEMNIST(n_writers=6, samples_per_writer=60, seed=0,
                              num_classes=10)
        summaries = partition_summary(
            ds.y, [np.flatnonzero(ds.writer_ids == w) for w in range(6)], 10)
        assert summaries["mean_tv_distance"] > 0.2

    def test_deterministic(self):
        a = SyntheticFEMNIST(n_writers=3, samples_per_writer=10, seed=4)
        b = SyntheticFEMNIST(n_writers=3, samples_per_writer=10, seed=4)
        np.testing.assert_array_equal(a.x, b.x)


class TestTrainValSplit:
    def test_disjoint_and_complete(self):
        ds = SyntheticCIFAR10(n_samples=100, size=16, seed=0)
        tr, va = train_val_split(ds, 0.2, seed=1)
        assert len(tr) + len(va) == 100
        assert len(va) == 20

    def test_invalid_fraction(self):
        ds = SyntheticCIFAR10(n_samples=10, size=16, seed=0)
        with pytest.raises(ValueError):
            train_val_split(ds, 1.5)


class TestDirichletPartition:
    def test_complete_and_disjoint(self):
        labels = np.random.default_rng(0).integers(0, 10, 500)
        parts = dirichlet_partition(labels, 8, beta=0.5, seed=0)
        all_idx = np.concatenate(parts)
        assert len(all_idx) == 500
        assert len(np.unique(all_idx)) == 500

    def test_min_size_respected(self):
        labels = np.random.default_rng(0).integers(0, 10, 500)
        parts = dirichlet_partition(labels, 8, beta=0.1, seed=0, min_size=5)
        assert min(len(p) for p in parts) >= 5

    def test_beta_controls_skew(self):
        labels = np.random.default_rng(0).integers(0, 10, 2000)
        skewed = partition_summary(labels, dirichlet_partition(
            labels, 10, beta=0.1, seed=1))["mean_tv_distance"]
        mild = partition_summary(labels, dirichlet_partition(
            labels, 10, beta=10.0, seed=1))["mean_tv_distance"]
        assert skewed > mild + 0.1

    def test_validates_args(self):
        labels = np.zeros(10, dtype=int)
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 0)
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 2, beta=-1)

    def test_impossible_min_size_raises(self):
        labels = np.zeros(4, dtype=int)
        with pytest.raises(RuntimeError):
            dirichlet_partition(labels, 4, beta=0.5, min_size=10,
                                max_retries=3)

    @given(st.integers(2, 12), st.floats(0.1, 5.0))
    @settings(max_examples=15, deadline=None)
    def test_property_partition_is_exact(self, n_clients, beta):
        labels = np.random.default_rng(42).integers(0, 5, 300)
        parts = dirichlet_partition(labels, n_clients, beta=beta, seed=7,
                                    min_size=1)
        joined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(joined, np.arange(300))


class TestOtherPartitions:
    def test_iid_near_equal(self):
        labels = np.zeros(100, dtype=int)
        parts = iid_partition(labels, 7, seed=0)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_pathological(self):
        labels = np.repeat(np.arange(10), 50)
        parts = shard_partition(labels, 10, shards_per_client=2, seed=0)
        # each client sees at most 2 (often fewer distinct) classes... at
        # most the classes spanned by two contiguous shards
        for p in parts:
            assert len(np.unique(labels[p])) <= 4
        assert sum(len(p) for p in parts) == 500

    def test_by_writer_keeps_writers_whole(self):
        writer_ids = np.repeat(np.arange(6), 10)
        parts = by_writer_partition(writer_ids, 3, seed=0)
        for p in parts:
            writers_here = np.unique(writer_ids[p])
            for w in writers_here:
                assert np.isin(np.flatnonzero(writer_ids == w), p).all()

    def test_too_few_writers_raises(self):
        with pytest.raises(ValueError):
            by_writer_partition(np.zeros(10, dtype=int), 2)


class TestDataLoader:
    def _ds(self, n=20):
        return ArrayDataset(np.arange(n * 4).reshape(n, 1, 2, 2),
                            np.arange(n) % 3)

    def test_covers_everything(self):
        loader = DataLoader(self._ds(), batch_size=6, seed=0)
        seen = np.concatenate([yb for _, yb in loader])
        assert len(seen) == 20

    def test_drop_last(self):
        loader = DataLoader(self._ds(), batch_size=6, drop_last=True, seed=0)
        batches = list(loader)
        assert len(batches) == 3
        assert all(len(yb) == 6 for _, yb in batches)

    def test_len(self):
        assert len(DataLoader(self._ds(), batch_size=6)) == 4
        assert len(DataLoader(self._ds(), batch_size=6, drop_last=True)) == 3

    def test_deterministic_per_epoch_and_seed(self):
        l1 = DataLoader(self._ds(), batch_size=5, seed=3)
        l2 = DataLoader(self._ds(), batch_size=5, seed=3)
        e1 = [yb.tolist() for _, yb in l1]
        e2 = [yb.tolist() for _, yb in l2]
        assert e1 == e2
        # second epoch differs from the first (reshuffled)
        e1b = [yb.tolist() for _, yb in l1]
        assert e1b != e1

    def test_no_shuffle_is_sequential(self):
        loader = DataLoader(self._ds(), batch_size=7, shuffle=False)
        first = next(iter(loader))[1]
        np.testing.assert_array_equal(first, np.arange(7) % 3)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._ds(), batch_size=0)
