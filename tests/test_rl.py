"""Unit tests: policy, buffer/GAE, PPO, pruning environment, agent."""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR10, train_val_split
from repro.graph import FEATURE_DIM, build_graph, node_feature_matrix, \
    normalized_adjacency
from repro.models import build_model
from repro.optim import Adam
from repro.pruning.baselines import finetune
from repro.rl import (ActorCriticPolicy, GraphState, PPOConfig, PruningEnv,
                      RolloutBuffer, SalientParameterAgent, Transition,
                      ppo_update, pretrain_agent)

R = np.random.default_rng(0)


def _graph_state(model_name="resnet20", size=16):
    m = build_model(model_name, input_size=size, width_mult=0.25, seed=0)
    g = build_graph(m.encoder)
    return GraphState(node_feature_matrix(g), normalized_adjacency(g),
                      np.asarray(g.prunable_indices()))


@pytest.fixture(scope="module")
def trained_setup():
    ds = SyntheticCIFAR10(n_samples=900, size=12, seed=31)
    train, val = train_val_split(ds, 0.25, seed=0)
    model = build_model("resnet20", input_size=12, width_mult=0.25, seed=3)
    finetune(model, train, epochs=3, lr=0.05, seed=0)
    return model, train, val


class TestPolicy:
    def test_action_dim_matches_prunable(self):
        policy = ActorCriticPolicy(FEATURE_DIM, seed=0)
        state = _graph_state()
        mu, value = policy(state)
        assert mu.shape == (state.n_actions,)
        assert value.shape == ()

    def test_transfers_across_architectures(self):
        # same policy, different graphs -> action dims adapt (agent
        # transferability, Fig. 6)
        policy = ActorCriticPolicy(FEATURE_DIM, seed=0)
        s20 = _graph_state("resnet20")
        s56 = _graph_state("resnet56")
        assert policy(s20)[0].shape == (9,)
        assert policy(s56)[0].shape == (27,)

    def test_act_deterministic_repeatable(self):
        policy = ActorCriticPolicy(FEATURE_DIM, seed=0)
        state = _graph_state()
        a1, _, v1 = policy.act(state, np.random.default_rng(0),
                               deterministic=True)
        a2, _, v2 = policy.act(state, np.random.default_rng(99),
                               deterministic=True)
        np.testing.assert_array_equal(a1, a2)
        assert v1 == v2

    def test_stochastic_logp_matches_manual(self):
        policy = ActorCriticPolicy(FEATURE_DIM, seed=0)
        state = _graph_state()
        action, logp, _ = policy.act(state, np.random.default_rng(1))
        mu, _ = policy(state)
        std = float(np.exp(policy.log_std.data[0]))
        z = (action - mu.data) / std
        manual = float(np.sum(-0.5 * z ** 2 - np.log(std)
                              - 0.5 * np.log(2 * np.pi)))
        assert logp == pytest.approx(manual, rel=1e-5)

    def test_evaluate_actions_differentiable(self):
        policy = ActorCriticPolicy(FEATURE_DIM, seed=0)
        state = _graph_state()
        action = np.zeros(state.n_actions)
        logp, value, entropy = policy.evaluate_actions(state, action)
        (logp + value + entropy.sum()).backward()
        head_names = policy.head_parameter_names()
        grads = {n: p.grad for n, p in policy.named_parameters()}
        assert any(grads[n] is not None for n in head_names)

    def test_head_parameter_names(self):
        policy = ActorCriticPolicy(FEATURE_DIM, seed=0)
        heads = policy.head_parameter_names()
        assert all(n.startswith(("actor_head.", "critic_head.", "log_std"))
                   for n in heads)
        assert not any(n.startswith("gnn.") for n in heads)

    def test_memory_budget(self):
        # paper quotes ~26 KB; ours must be the same order of magnitude
        policy = ActorCriticPolicy(FEATURE_DIM, hidden_dim=32, seed=0)
        assert policy.memory_bytes() < 60_000


class TestBufferGAE:
    def _tr(self, reward, value, done):
        state = GraphState(np.zeros((2, FEATURE_DIM), dtype=np.float32),
                           np.eye(2, dtype=np.float32), np.asarray([1]))
        return Transition(state, np.zeros(1), 0.0, value, reward, done)

    def test_single_step_episode_advantage(self):
        buf = RolloutBuffer(gamma=0.9, gae_lambda=1.0)
        buf.add(self._tr(reward=2.0, value=0.5, done=True))
        buf.compute_gae()
        np.testing.assert_allclose(buf.advantages, [1.5])
        np.testing.assert_allclose(buf.returns, [2.0])

    def test_two_step_episode(self):
        buf = RolloutBuffer(gamma=0.5, gae_lambda=1.0)
        buf.add(self._tr(reward=0.0, value=1.0, done=False))
        buf.add(self._tr(reward=4.0, value=2.0, done=True))
        buf.compute_gae()
        # terminal step: delta = 4 - 2 = 2
        # first step: delta = 0 + 0.5*2 - 1 = 0; gae = 0 + 0.5*1*2 = 1
        np.testing.assert_allclose(buf.advantages, [1.0, 2.0])

    def test_episode_boundary_resets(self):
        buf = RolloutBuffer(gamma=0.9, gae_lambda=0.9)
        buf.add(self._tr(1.0, 0.0, True))
        buf.add(self._tr(1.0, 0.0, True))
        buf.compute_gae()
        np.testing.assert_allclose(buf.advantages, [1.0, 1.0])

    def test_normalized_advantages(self):
        buf = RolloutBuffer()
        for r in (0.0, 1.0, 2.0, 3.0):
            buf.add(self._tr(r, 0.0, True))
        buf.compute_gae()
        norm = buf.normalized_advantages()
        assert abs(norm.mean()) < 1e-8
        assert norm.std() == pytest.approx(1.0, abs=1e-6)

    def test_normalized_requires_gae(self):
        buf = RolloutBuffer()
        buf.add(self._tr(1.0, 0.0, True))
        with pytest.raises(RuntimeError):
            buf.normalized_advantages()

    def test_minibatch_partition(self):
        buf = RolloutBuffer()
        for _ in range(10):
            buf.add(self._tr(0.0, 0.0, True))
        batches = buf.minibatch_indices(3, np.random.default_rng(0))
        flat = np.sort(np.concatenate(batches))
        np.testing.assert_array_equal(flat, np.arange(10))

    def test_clear(self):
        buf = RolloutBuffer()
        buf.add(self._tr(0.0, 0.0, True))
        buf.compute_gae()
        buf.clear()
        assert len(buf) == 0 and buf.advantages is None


class TestPPO:
    def test_update_moves_policy_toward_high_reward_actions(self):
        policy = ActorCriticPolicy(FEATURE_DIM, seed=0)
        state = _graph_state()
        opt = Adam(list(policy.named_parameters()), lr=5e-3)
        cfg = PPOConfig(update_epochs=3, minibatch_size=8)
        rng = np.random.default_rng(0)
        # Synthetic bandit: reward = +1 when mean raw action > 0, else -1.
        mu_before = policy(state)[0].data.mean()
        for _ in range(8):
            buf = RolloutBuffer(gamma=cfg.gamma, gae_lambda=cfg.gae_lambda)
            for _ in range(16):
                action, logp, value = policy.act(state, rng)
                reward = 1.0 if action.mean() > 0 else -1.0
                buf.add(Transition(state, action, logp, value, reward, True))
            ppo_update(policy, buf, opt, cfg, rng)
        mu_after = policy(state)[0].data.mean()
        assert mu_after > mu_before

    def test_empty_buffer_noop(self):
        policy = ActorCriticPolicy(FEATURE_DIM, seed=0)
        opt = Adam(list(policy.named_parameters()))
        diag = ppo_update(policy, RolloutBuffer(), opt, PPOConfig(),
                          np.random.default_rng(0))
        assert diag["policy_loss"] == 0.0


class TestEnv:
    def test_reset_state(self, trained_setup):
        model, _, val = trained_setup
        env = PruningEnv(model, val, flops_target=0.7)
        state = env.reset()
        assert state.n_actions == env.n_actions == 9
        assert env.current_flops_ratio() == pytest.approx(1.0)

    def test_step_reduces_flops(self, trained_setup):
        model, _, val = trained_setup
        env = PruningEnv(model, val, flops_target=0.1, max_steps=3)
        env.reset()
        _, _, _, info = env.step(np.zeros(env.n_actions))  # sigmoid(0)=s_max/2
        assert info["flops_ratio"] < 1.0

    def test_terminates_on_target(self, trained_setup):
        model, _, val = trained_setup
        env = PruningEnv(model, val, flops_target=0.9, max_steps=5)
        env.reset()
        _, reward, done, info = env.step(np.full(env.n_actions, 5.0))
        assert done
        assert "accuracy" in info
        assert 0.0 <= info["accuracy"] <= 1.0

    def test_max_steps_truncation_with_penalty(self, trained_setup):
        model, _, val = trained_setup
        env = PruningEnv(model, val, flops_target=0.01, max_steps=2,
                         s_max=0.1)
        env.reset()
        _, r1, d1, _ = env.step(np.full(env.n_actions, -10.0))
        assert not d1 and r1 == 0.0
        _, r2, d2, info = env.step(np.full(env.n_actions, -10.0))
        assert d2
        assert r2 < info["accuracy"]  # gap penalty applied

    def test_action_length_checked(self, trained_setup):
        model, _, val = trained_setup
        env = PruningEnv(model, val)
        env.reset()
        with pytest.raises(ValueError):
            env.step(np.zeros(3))

    def test_invalid_target_rejected(self, trained_setup):
        model, _, val = trained_setup
        with pytest.raises(ValueError):
            PruningEnv(model, val, flops_target=0.0)

    def test_sigmoid_squash_bounds(self, trained_setup):
        model, _, val = trained_setup
        env = PruningEnv(model, val, s_max=0.6)
        s = env.action_to_sparsity(np.asarray([-100.0, 0.0, 100.0]))
        np.testing.assert_allclose(s, [0.0, 0.3, 0.6], atol=1e-6)

    def test_masks_cleared_after_reward_eval(self, trained_setup):
        model, _, val = trained_setup
        env = PruningEnv(model, val, flops_target=0.9)
        env.reset()
        env.step(np.full(env.n_actions, 5.0))
        assert not model.encoder._channel_masks


class TestAgent:
    def test_pretrain_returns_history(self, trained_setup):
        model, train, val = trained_setup
        agent, hist = pretrain_agent(model, train, val, updates=2,
                                     episodes_per_update=2,
                                     flops_target=0.8, seed=0)
        assert len(hist) == 2
        assert all(np.isfinite(h) for h in hist)

    def test_propose_deterministic(self, trained_setup):
        model, _, val = trained_setup
        agent = SalientParameterAgent(seed=0)
        s1, i1 = agent.propose(model, val, flops_target=0.7)
        s2, i2 = agent.propose(model, val, flops_target=0.7)
        assert s1.keep == s2.keep
        assert i1["flops_ratio"] <= 0.7 + 1e-6

    def test_finetune_freezes_gnn(self, trained_setup):
        model, _, val = trained_setup
        agent = SalientParameterAgent(seed=0)
        gnn_before = {n: p.data.copy()
                      for n, p in agent.policy.named_parameters()
                      if n.startswith("gnn.")}
        head_before = {n: p.data.copy()
                       for n, p in agent.policy.named_parameters()
                       if n.startswith("actor_head.")}
        agent.finetune(model, val, updates=2, episodes_per_update=2,
                       flops_target=0.8)
        for n, p in agent.policy.named_parameters():
            if n.startswith("gnn."):
                np.testing.assert_array_equal(p.data, gnn_before[n],
                                              err_msg=n)
        changed = any(not np.array_equal(p.data, head_before[n])
                      for n, p in agent.policy.named_parameters()
                      if n.startswith("actor_head."))
        assert changed

    def test_clone_is_independent(self):
        agent = SalientParameterAgent(seed=0)
        clone = agent.clone()
        first = next(iter(clone.policy.parameters()))
        first.data += 100.0
        orig_first = next(iter(agent.policy.parameters()))
        assert not np.array_equal(first.data, orig_first.data)

    def test_state_dict_roundtrip(self):
        a = SalientParameterAgent(seed=0)
        b = SalientParameterAgent(seed=1)
        b.load_state_dict(a.state_dict())
        for (n, pa), (_, pb) in zip(a.policy.named_parameters(),
                                    b.policy.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=n)


class TestPPOStabilisers:
    def _setup(self):
        policy = ActorCriticPolicy(FEATURE_DIM, seed=0)
        state = _graph_state()
        opt = Adam(list(policy.named_parameters()), lr=5e-3)
        rng = np.random.default_rng(0)
        buf = RolloutBuffer()
        for _ in range(12):
            action, logp, value = policy.act(state, rng)
            buf.add(Transition(state, action, logp, value,
                               float(action.mean() > 0), True))
        return policy, opt, buf, rng

    def test_value_clipping_changes_loss_path(self):
        policy, opt, buf, rng = self._setup()
        cfg_clip = PPOConfig(update_epochs=1, value_clip_eps=0.01,
                             target_kl=None)
        diag = ppo_update(policy, buf, opt, cfg_clip, rng)
        assert np.isfinite(diag["value_loss"])

    def test_target_kl_stops_early(self):
        policy, opt, buf, rng = self._setup()
        # absurdly small target: the very first minibatch may exceed it
        cfg = PPOConfig(update_epochs=8, minibatch_size=4, target_kl=1e-12,
                        lr=0.05)
        diag_small = ppo_update(policy, buf, opt, cfg, rng)
        # with no KL guard, many more minibatch updates are recorded
        policy2, opt2, buf2, rng2 = self._setup()
        cfg_off = PPOConfig(update_epochs=8, minibatch_size=4,
                            target_kl=None, lr=0.05)
        # count updates via approx_kl entries
        import repro.rl.ppo as ppo_mod
        d1 = diag_small
        d2 = ppo_update(policy2, buf2, opt2, cfg_off, rng2)
        assert np.isfinite(d1["approx_kl"])
        assert np.isfinite(d2["approx_kl"])

    def test_disabled_stabilisers_still_work(self):
        policy, opt, buf, rng = self._setup()
        cfg = PPOConfig(update_epochs=2, value_clip_eps=None, target_kl=None)
        diag = ppo_update(policy, buf, opt, cfg, rng)
        assert np.isfinite(diag["policy_loss"])
