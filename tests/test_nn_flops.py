"""Unit tests: FLOPs counting against hand-computed values."""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import (Conv2d, Linear, MaxPool2d, ReLU, Sequential, count_flops,
                      count_params)

R = np.random.default_rng(0)


class TestConvFlops:
    def test_single_conv_formula(self):
        # 8 out channels, 3 in, 3x3 kernel, 32x32 output (padding 1)
        m = Sequential(Conv2d(3, 8, 3, padding=1, bias=False, rng=R))
        rep = count_flops(m, (3, 32, 32))
        assert rep.total == 2 * 8 * 32 * 32 * 3 * 9

    def test_conv_bias_adds_outputs(self):
        no_bias = count_flops(Sequential(Conv2d(3, 8, 3, padding=1,
                                                bias=False, rng=R)),
                              (3, 16, 16)).total
        with_bias = count_flops(Sequential(Conv2d(3, 8, 3, padding=1,
                                                  bias=True, rng=R)),
                                (3, 16, 16)).total
        assert with_bias - no_bias == 8 * 16 * 16

    def test_stride_reduces_flops(self):
        s1 = count_flops(Sequential(Conv2d(3, 8, 3, stride=1, padding=1,
                                           rng=R)), (3, 32, 32)).total
        s2 = count_flops(Sequential(Conv2d(3, 8, 3, stride=2, padding=1,
                                           rng=R)), (3, 32, 32)).total
        assert abs(s1 / s2 - 4.0) < 0.1

    def test_linear_formula(self):
        m = Sequential(Linear(100, 10, bias=False, rng=R))
        assert count_flops(m, (100,)).total == 2 * 100 * 10

    def test_params_match_model(self):
        m = Sequential(Conv2d(3, 4, 3, rng=R), ReLU(), MaxPool2d(2),
                       Linear(4 * 7 * 7, 10, rng=R))
        rep = count_flops(m, (3, 16, 16))
        assert rep.params == m.num_parameters() == count_params(m)

    def test_by_layer_breakdown_sums_to_total(self):
        m = Sequential(Conv2d(3, 4, 3, padding=1, rng=R), ReLU(),
                       Linear(4 * 8 * 8, 5, rng=R))
        rep = count_flops(m, (3, 8, 8))
        assert sum(rep.by_layer.values()) == rep.total


class TestModelFlops:
    @pytest.mark.parametrize("name", ["resnet20", "vgg11", "cnn2"])
    def test_conv_specs_flops_positive_and_consistent(self, name):
        size = 28 if name == "cnn2" else 32
        m = build_model(name, input_size=size, width_mult=0.25, seed=0)
        specs = m.encoder.conv_specs()
        assert all(s.flops > 0 for s in specs)
        assert all(s.weight_numel > 0 for s in specs)
        # spec names match actual parameters
        params = dict(m.encoder.named_parameters())
        for s in specs:
            assert s.name + ".weight" in params
            w = params[s.name + ".weight"]
            assert w.shape[0] == s.out_channels
            assert w.shape[1] == s.in_channels

    def test_width_mult_scales_flops_quadratically(self):
        full = build_model("vgg11", input_size=32, width_mult=1.0, seed=0)
        half = build_model("vgg11", input_size=32, width_mult=0.5, seed=0)
        f_full = sum(s.flops for s in full.encoder.conv_specs())
        f_half = sum(s.flops for s in half.encoder.conv_specs())
        assert 3.3 < f_full / f_half < 4.7  # ~4x (both in/out channels halve)

    def test_resnet20_paperish_flops(self):
        # Full-size ResNet-20 on 32x32 is ~41M MACs (~82 MFLOPs in our
        # 2-FLOPs-per-MAC convention); conv specs cover most of it.
        m = build_model("resnet20", input_size=32, width_mult=1.0, seed=0)
        conv1_flops = sum(s.flops for s in m.encoder.conv_specs())
        assert 1e7 < conv1_flops < 1e8
