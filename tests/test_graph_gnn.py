"""Unit tests: computational graph extraction, features, GNN."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gnn import GCNLayer, GraphEncoder
from repro.graph import (FEATURE_DIM, build_graph, node_feature_matrix,
                         normalized_adjacency, to_networkx)
from repro.models import build_model
from repro.tensor import Tensor

R = np.random.default_rng(0)


def _model(name="resnet20", size=16):
    return build_model(name, input_size=size, width_mult=0.25, seed=0)


class TestGraphStructure:
    def test_resnet_graph_counts(self):
        g = build_graph(_model().encoder)
        # input + stem + 9 blocks x (conv1, conv2) + gap
        assert g.n_nodes == 2 + 18 + 1
        assert len(g.prunable_names) == 9
        # 9 skip edges exist
        assert sum(1 for *_, op in g.edges if op == "skip") == 9

    def test_vgg_graph_is_chain(self):
        g = build_graph(_model("vgg11", 32).encoder)
        nxg = to_networkx(g)
        assert nx.is_directed_acyclic_graph(nxg)
        # chain: each non-terminal node has exactly one successor
        assert all(nxg.out_degree(n) <= 1 for n in nxg.nodes)
        assert len(g.prunable_names) == 8  # 8 convs in VGG-11

    def test_prunable_indices_point_at_prunable_nodes(self):
        g = build_graph(_model().encoder)
        for i in g.prunable_indices():
            assert g.nodes[i].prunable

    def test_dag_and_connected(self):
        for name, size in [("resnet20", 16), ("vgg11", 32), ("cnn2", 28)]:
            g = build_graph(_model(name, size).encoder)
            nxg = to_networkx(g)
            assert nx.is_directed_acyclic_graph(nxg)
            assert nx.is_weakly_connected(nxg)


class TestFlopsRatio:
    def test_keep_all_is_one(self):
        g = build_graph(_model().encoder)
        assert g.flops_ratio({n: 1.0 for n in g.prunable_names}) == \
            pytest.approx(1.0)

    def test_monotone_in_keep(self):
        g = build_graph(_model().encoder)
        r_low = g.flops_ratio({n: 0.3 for n in g.prunable_names})
        r_high = g.flops_ratio({n: 0.7 for n in g.prunable_names})
        assert r_low < r_high < 1.0

    def test_resnet_half_keep_close_to_half(self):
        # pruning conv1 scales both conv1 (out) and conv2 (in) linearly,
        # so uniform keep k gives ratio ~ k on the block convs
        g = build_graph(_model().encoder)
        ratio = g.flops_ratio({n: 0.5 for n in g.prunable_names})
        assert 0.4 < ratio < 0.65

    def test_vgg_half_keep_is_quadratic(self):
        # chained: both in and out sides shrink -> ~k^2 on interior layers
        g = build_graph(_model("vgg11", 32).encoder)
        ratio = g.flops_ratio({n: 0.5 for n in g.prunable_names})
        assert 0.2 < ratio < 0.4

    @given(st.floats(0.05, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_ratio_bounded(self, keep):
        g = build_graph(_model().encoder)
        r = g.flops_ratio({n: keep for n in g.prunable_names})
        assert 0.0 < r <= 1.0 + 1e-9

    def test_params_ratio_also_works(self):
        g = build_graph(_model().encoder)
        r = g.params_ratio({n: 0.5 for n in g.prunable_names})
        assert 0.3 < r < 0.9

    def test_missing_layers_default_to_kept(self):
        g = build_graph(_model().encoder)
        assert g.flops_ratio({}) == pytest.approx(1.0)


class TestFeatures:
    def test_feature_matrix_shape_and_range(self):
        g = build_graph(_model().encoder)
        x = node_feature_matrix(g)
        assert x.shape == (g.n_nodes, FEATURE_DIM)
        assert np.isfinite(x).all()
        # one-hot kind: exactly one of the first 4 columns set
        np.testing.assert_array_equal(x[:, :4].sum(axis=1),
                                      np.ones(g.n_nodes))

    def test_keep_column_reflects_state(self):
        g = build_graph(_model().encoder)
        layer = g.prunable_names[0]
        x = node_feature_matrix(g, keep={layer: 0.25})
        idx = g.prunable_indices()[0]
        assert x[idx, 11] == pytest.approx(0.25)
        # other prunable nodes stay 1.0
        assert x[g.prunable_indices()[1], 11] == pytest.approx(1.0)

    def test_flops_share_sums_to_one(self):
        g = build_graph(_model().encoder)
        x = node_feature_matrix(g)
        np.testing.assert_allclose(x[:, 8].sum(), 1.0, atol=1e-5)

    def test_adjacency_symmetric_normalized(self):
        g = build_graph(_model().encoder)
        a = normalized_adjacency(g)
        np.testing.assert_allclose(a, a.T, atol=1e-6)
        eigs = np.linalg.eigvalsh(a)
        assert eigs.max() <= 1.0 + 1e-5  # GCN propagation spectral bound


class TestGNN:
    def test_gcn_shapes(self):
        layer = GCNLayer(6, 4, rng=R)
        h = Tensor(R.normal(size=(5, 6)).astype(np.float32))
        a = np.eye(5, dtype=np.float32)
        assert layer(h, a).shape == (5, 4)

    def test_gcn_bad_activation(self):
        with pytest.raises(ValueError):
            GCNLayer(3, 3, activation="gelu")

    def test_encoder_pools(self):
        enc = GraphEncoder(FEATURE_DIM, hidden_dim=8, rng=R)
        g = build_graph(_model().encoder)
        node_emb, graph_emb = enc(node_feature_matrix(g),
                                  normalized_adjacency(g))
        assert node_emb.shape == (g.n_nodes, 8)
        assert graph_emb.shape == (8,)

    def test_gradients_reach_all_gcn_params(self):
        enc = GraphEncoder(FEATURE_DIM, hidden_dim=8, rng=R)
        g = build_graph(_model().encoder)
        _, emb = enc(node_feature_matrix(g), normalized_adjacency(g))
        (emb * emb).sum().backward()
        assert all(p.grad is not None for p in enc.parameters())

    def test_message_passing_uses_topology(self):
        # same features, different adjacency -> different embeddings
        enc = GraphEncoder(FEATURE_DIM, hidden_dim=8, rng=R)
        g = build_graph(_model().encoder)
        x = node_feature_matrix(g)
        _, e1 = enc(x, normalized_adjacency(g))
        _, e2 = enc(x, np.eye(g.n_nodes, dtype=np.float32))
        assert not np.allclose(e1.data, e2.data)

    def test_requires_at_least_one_layer(self):
        with pytest.raises(ValueError):
            GraphEncoder(4, n_layers=0)
