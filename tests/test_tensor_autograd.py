"""Unit tests: the backward machinery itself (graph, accumulation, modes)."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad


def _t(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True,
                  dtype=np.float64)


class TestBackwardBasics:
    def test_scalar_backward_default_seed(self):
        x = _t(3.0)
        (x * x).backward()
        np.testing.assert_allclose(x.grad, 6.0)

    def test_nonscalar_requires_seed(self):
        x = _t([1.0, 2.0])
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_seed_shape_checked(self):
        x = _t([1.0, 2.0])
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(3))

    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x: grad must be 4x, requiring accumulation through
        # the shared node.
        x = _t(2.0)
        a = x * x
        (a + a).backward()
        np.testing.assert_allclose(x.grad, 8.0)

    def test_reused_leaf_accumulates(self):
        x = _t([1.0, 2.0])
        (x.sum() + (x * 3).sum()).backward()
        np.testing.assert_allclose(x.grad, [4.0, 4.0])

    def test_grad_accumulates_across_backwards(self):
        x = _t(1.0)
        (x * 2).backward()
        (x * 3).backward()
        np.testing.assert_allclose(x.grad, 5.0)

    def test_zero_grad(self):
        x = _t(1.0)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self):
        x = _t(1.0)
        y = x
        for _ in range(3000):
            y = y * 1.0001
        y.backward()
        assert x.grad is not None and np.isfinite(x.grad)

    def test_intermediate_grads_released(self):
        x = _t([1.0, 2.0])
        mid = x * 2
        mid.sum().backward()
        # non-leaf grads are freed after use (PyTorch-like behaviour)
        assert mid.grad is None
        assert x.grad is not None


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = _t([1.0])
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_nested_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_requires_grad_suppressed_inside_no_grad(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad

    def test_detach_cuts_graph(self):
        x = _t([2.0])
        y = (x * 3).detach() * 2
        assert not y.requires_grad


class TestDtypes:
    def test_default_float32(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32

    def test_float64_preserved_when_requested(self):
        assert Tensor([1.0], dtype=np.float64).dtype == np.float64

    def test_int_array_allowed(self):
        t = Tensor(np.arange(3))
        assert t.dtype.kind in "iu"

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.asarray(["a", "b"], dtype=object))

    def test_astype(self):
        t = Tensor([1.0], dtype=np.float32).astype(np.float64)
        assert t.dtype == np.float64
