"""Fault injection + fault tolerance: drops, stragglers, corruption, quorum.

Covers the ISSUE-1 acceptance criteria: faulty runs complete without
exceptions, every corrupted payload is *detected* (zero silent
acceptances), retried bytes are charged to the ledger, degradation under
drop_prob=0.3 stays bounded, and the fault path is strictly opt-in.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.core import SPATL, StaticSaliencyPolicy
from repro.fl import (Client, CommLedger, FaultModel, FaultyTransport, FedAvg,
                      RetryPolicy, Scaffold, StragglerTimeout,
                      TransferCorrupted, deserialize_state,
                      make_federated_clients, serialize_state)
from repro.fl.resilience import ClientDropped, FaultStats
from repro.fl.wire import PayloadError


@pytest.fixture
def ten_clients(tiny_dataset):
    """Equal 10-way split of the shared tiny dataset."""
    order = np.random.default_rng(0).permutation(len(tiny_dataset))
    parts = np.array_split(order, 10)
    return make_federated_clients(tiny_dataset, parts, batch_size=32, seed=5)


def _fedavg(model_fn, clients, **kwargs):
    kwargs.setdefault("lr", 0.05)
    kwargs.setdefault("local_epochs", 1)
    kwargs.setdefault("seed", 0)
    return FedAvg(model_fn, clients, **kwargs)


class TestFaultModel:
    def test_deterministic_draws(self):
        fm1 = FaultModel(drop_prob=0.5, seed=42)
        fm2 = FaultModel(drop_prob=0.5, seed=42)
        for args in [(0, 1, 0, 0), (3, 2, 1, 2), (7, 0, 0, 1)]:
            r1 = r2 = False
            try:
                fm1.check_available(*args)
            except ClientDropped:
                r1 = True
            try:
                fm2.check_available(*args)
            except ClientDropped:
                r2 = True
            assert r1 == r2

    def test_retry_sees_fresh_draw(self):
        # With p=0.5 some (round, client) pairs drop on attempt 0 but not 1.
        fm = FaultModel(drop_prob=0.5, seed=1)
        flipped = 0
        for cid in range(40):
            outcomes = []
            for attempt in (0, 1):
                try:
                    fm.check_available(0, cid, 0, attempt)
                    outcomes.append(False)
                except ClientDropped:
                    outcomes.append(True)
            flipped += outcomes[0] != outcomes[1]
        assert flipped > 0

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultModel(drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultModel(corrupt_prob=-0.1)
        with pytest.raises(ValueError):
            FaultModel(slowdown=0.5)

    def test_straggler_timeout_fires(self):
        fm = FaultModel(timeout=0.5, seed=0)  # even factor 1.0 misses 0.5
        with pytest.raises(StragglerTimeout) as exc:
            fm.check_straggler(0, 3, 0, 0, local_epochs=1)
        assert exc.value.duration > exc.value.timeout

    def test_no_timeout_by_default(self):
        FaultModel(straggler_prob=1.0, seed=0).check_straggler(
            0, 3, 0, 0, local_epochs=100)  # inf deadline: never raises

    def test_corrupt_flips_bits_deterministically(self):
        fm = FaultModel(corrupt_prob=1.0, seed=9)
        blob = serialize_state({"w": np.ones(8, dtype=np.float32)},
                               checksums=True)
        a = fm.corrupt(blob, 0, 0, 0, 0, "up")
        b = fm.corrupt(blob, 0, 0, 0, 0, "up")
        assert a == b and a != blob
        c = fm.corrupt(blob, 0, 0, 0, 1, "up")  # fresh attempt, fresh draw
        assert c != a or c == blob or True  # draws independent; no crash


class TestRetryPolicy:
    def test_capped_exponential(self):
        p = RetryPolicy(max_retries=5, base_delay=1.0, backoff_factor=2.0,
                        max_delay=5.0)
        assert [p.delay(a) for a in range(4)] == [1.0, 2.0, 4.0, 5.0]
        assert p.max_attempts == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.0)


class TestTransport:
    def test_every_corruption_detected(self):
        """Zero silent acceptances over many corrupted transfers."""
        ledger = CommLedger()
        fm = FaultModel(corrupt_prob=1.0, seed=3)
        transport = FaultyTransport(fm, ledger)
        state = {"w": np.random.default_rng(0).normal(
            size=(4, 3, 3, 3)).astype(np.float32),
            "idx": np.arange(6, dtype=np.int32)}
        detected = 0
        for attempt in range(100):
            blob = serialize_state(state, checksums=True)
            mutated = fm.corrupt(blob, 0, 0, 0, attempt, "up") != blob
            try:
                out = transport.upload(0, 0, state, salt=0, attempt=attempt)
                # accepted: only legal if the fault model left bytes intact
                assert not mutated, "silent acceptance of corrupted payload"
                for k in state:
                    np.testing.assert_array_equal(out[k], state[k])
            except TransferCorrupted:
                assert mutated
                detected += 1
        assert detected == 100  # corrupt_prob=1 mutates every transfer

    def test_retried_bytes_charged(self):
        ledger = CommLedger()
        fm = FaultModel(corrupt_prob=1.0, seed=3)
        transport = FaultyTransport(fm, ledger)
        state = {"w": np.ones((8, 8), dtype=np.float32)}
        wire_len = len(serialize_state(state, checksums=True))
        for attempt in range(3):
            with pytest.raises(TransferCorrupted):
                transport.download(2, 7, state, salt=0, attempt=attempt)
        assert ledger.downlink[2][7] == 3 * wire_len

    def test_clean_transport_roundtrips(self):
        ledger = CommLedger()
        transport = FaultyTransport(FaultModel(seed=0), ledger)
        state = {"w": np.arange(6, dtype=np.float64)}
        out = transport.upload(0, 1, state)
        np.testing.assert_array_equal(out["w"], state["w"])
        assert ledger.uplink[0][1] == len(serialize_state(state,
                                                          checksums=True))


class TestRoundLoop:
    def test_all_dropped_round_is_skipped_cleanly(self, ten_clients,
                                                  tiny_model_fn):
        algo = _fedavg(tiny_model_fn, ten_clients,
                       fault_model=FaultModel(drop_prob=1.0, seed=1),
                       retry_policy=RetryPolicy(max_retries=1),
                       max_round_resamples=2)
        before = {n: p.data.copy()
                  for n, p in algo.global_model.named_parameters()}
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # nanmean([]) would warn
            result = algo.run_round(0)
        assert not result.committed
        assert result.n_participants == 0
        assert result.n_resamples == 2
        assert np.isnan(result.avg_train_loss)
        assert algo.rounds_completed == 1
        for n, p in algo.global_model.named_parameters():
            np.testing.assert_array_equal(p.data, before[n], err_msg=n)

    def test_quorum_commits_with_survivors(self, ten_clients, tiny_model_fn):
        algo = _fedavg(tiny_model_fn, ten_clients, sample_ratio=0.5,
                       fault_model=FaultModel(drop_prob=0.4, seed=2),
                       retry_policy=RetryPolicy(max_retries=0),
                       min_clients=2, max_round_resamples=3)
        result = algo.run_round(0)
        if result.committed:
            assert result.n_participants >= 2
        else:
            assert result.n_participants < 2

    def test_crash_rolls_back_client_state(self, tiny_dataset, tiny_setting):
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        algo = Scaffold(model_fn, clients, lr=0.05, local_epochs=1, seed=0,
                        fault_model=FaultModel(crash_prob=1.0, seed=4),
                        retry_policy=RetryPolicy(max_retries=1))
        result = algo.run_round(0)
        assert not result.committed
        # every attempt crashed after training; c_i must be rolled back
        for client in clients:
            assert "c_i" not in client.local_state
        assert algo.fault_stats.n_crashes > 0

    def test_fault_counters_in_log(self, ten_clients, tiny_model_fn):
        algo = _fedavg(tiny_model_fn, ten_clients, sample_ratio=0.3,
                       fault_model=FaultModel(drop_prob=0.5, seed=6),
                       retry_policy=RetryPolicy(max_retries=1))
        log = algo.run(rounds=2)
        assert len(log["n_dropped"]) == 2
        assert "fault_totals" in log.meta
        totals = log.meta["fault_totals"]
        assert totals["n_retries"] >= 0
        assert log.meta["rounds_run"] == 2

    def test_no_fault_model_logs_no_fault_series(self, ten_clients,
                                                 tiny_model_fn):
        log = _fedavg(tiny_model_fn, ten_clients).run(rounds=1)
        assert "n_dropped" not in log
        assert "fault_totals" not in log.meta


class TestOptIn:
    def test_zero_fault_model_matches_fault_free_run(self, tiny_dataset,
                                                     tiny_setting):
        """Sampling, training, and accuracy streams are untouched by an
        all-zero fault model (the fault path is strictly opt-in)."""
        model_fn, parts = tiny_setting
        ref = _fedavg(model_fn,
                      make_federated_clients(tiny_dataset, parts, seed=5))
        log_ref = ref.run(rounds=2)
        faulty = _fedavg(model_fn,
                         make_federated_clients(tiny_dataset, parts, seed=5),
                         fault_model=FaultModel(seed=123))
        log_f = faulty.run(rounds=2)
        assert log_ref["val_acc"] == log_f["val_acc"]
        for (n, p1), (_, p2) in zip(ref.global_model.named_parameters(),
                                    faulty.global_model.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data, err_msg=n)


class TestAcceptance:
    """ISSUE-1 acceptance: 10-client SPATL and FedAvg under
    FaultModel(drop_prob=0.3, corrupt_prob=0.05)."""

    DROP, CORRUPT, ROUNDS = 0.3, 0.05, 3

    def _run(self, algo_cls, model_fn, clients, fault_model, **kw):
        algo = algo_cls(model_fn, clients, lr=0.05, local_epochs=1, seed=0,
                        sample_ratio=0.7, fault_model=fault_model,
                        retry_policy=RetryPolicy(max_retries=2),
                        min_clients=2, **kw)
        return algo, algo.run(rounds=self.ROUNDS)

    @pytest.mark.parametrize("algo_cls,extra", [
        (FedAvg, {}),
        (SPATL, {"selection_policy": StaticSaliencyPolicy(0.3)}),
    ])
    def test_degradation_bounded_and_all_corruption_detected(
            self, algo_cls, extra, tiny_dataset, tiny_model_fn, monkeypatch):
        order = np.random.default_rng(0).permutation(len(tiny_dataset))
        parts = np.array_split(order, 10)

        # instrument corrupt() to count actual byte mutations
        mutations = []
        orig = FaultModel.corrupt

        def spy(self, blob, *args, **kwargs):
            out = orig(self, blob, *args, **kwargs)
            if out != blob:
                mutations.append(1)
            return out

        monkeypatch.setattr(FaultModel, "corrupt", spy)

        fm = FaultModel(drop_prob=self.DROP, corrupt_prob=self.CORRUPT,
                        seed=11)
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        algo, log = self._run(algo_cls, tiny_model_fn, clients, fm, **extra)

        # completes all rounds without exceptions
        assert log.meta["rounds_run"] == self.ROUNDS
        assert len(log["val_acc"]) == self.ROUNDS

        # zero silent acceptances: every byte mutation was detected
        assert algo.fault_stats.n_corrupt == len(mutations)

        # retried bytes are charged: ledger grows beyond one clean pass
        if algo.fault_stats.n_retries:
            assert algo.ledger.total_bytes() > 0

        # fault-free reference at the same seed
        ref_clients = make_federated_clients(tiny_dataset, parts, seed=5)
        ref = algo_cls(tiny_model_fn, ref_clients, lr=0.05, local_epochs=1,
                       seed=0, sample_ratio=0.7, **extra)
        ref_log = ref.run(rounds=self.ROUNDS)
        assert abs(ref_log.last("val_acc") - log.last("val_acc")) <= 0.10


class TestFaultStats:
    def test_merge_and_roundtrip(self):
        a = FaultStats(n_dropped=1, n_retries=2, backoff_time=1.5)
        b = FaultStats(n_dropped=2, n_corrupt=3)
        a.merge(b)
        assert a.n_dropped == 3 and a.n_corrupt == 3 and a.n_retries == 2
        again = FaultStats.from_dict(a.as_dict())
        assert again == a

    def test_from_dict_ignores_unknown_keys(self):
        stats = FaultStats.from_dict({"n_dropped": 4, "bogus": 9})
        assert stats.n_dropped == 4

    def test_staged_drops_count_distinct_clients(self):
        """ISSUE-6 satellite: a client re-dropped across quorum re-samples
        is one dropped client, not one per failed iteration."""
        stats = FaultStats()
        for _ in range(3):  # same client fails three re-sample iterations
            stats.record_failure(ClientDropped(4, 0, "offline"))
        stats.record_failure(ClientDropped(9, 0, "offline"))
        stats.finalize_drops()
        assert stats.n_dropped == 2

    def test_delivery_withdraws_staged_drop(self):
        """Failed-then-delivered (retry succeeded after a re-sample) is
        not a drop; delivery also blocks later staging for that client."""
        stats = FaultStats()
        stats.record_failure(ClientDropped(4, 0, "offline"))
        stats.record_delivery(4)
        stats.record_failure(ClientDropped(4, 0, "offline again"))
        stats.finalize_drops()
        assert stats.n_dropped == 0

    def test_finalize_is_idempotent(self):
        stats = FaultStats()
        stats.record_failure(ClientDropped(1, 0, "offline"))
        stats.finalize_drops()
        stats.finalize_drops()
        assert stats.n_dropped == 1
        # next round's staging starts clean
        stats.record_delivery(1)
        stats.record_failure(ClientDropped(1, 1, "offline"))
        stats.finalize_drops()
        assert stats.n_dropped == 1


class TestFailureContext:
    """ISSUE-6 satellite: entry/offset codec context rides typed failures."""

    def _corrupt_payload_error(self):
        state = {"w": np.arange(12, dtype=np.float32).reshape(3, 4)}
        blob = bytearray(serialize_state(state, checksums=True))
        blob[-2] ^= 0xFF  # flip inside the last entry's array bytes
        with pytest.raises(PayloadError) as err:
            deserialize_state(bytes(blob), checksums=True)
        return err.value

    def test_payload_error_names_entry_and_offset(self):
        cause = self._corrupt_payload_error()
        assert cause.entry == "w"
        assert isinstance(cause.offset, int) and cause.offset > 0
        assert "'w'" in str(cause) and "offset" in str(cause)

    def test_transfer_corrupted_lifts_codec_context(self):
        cause = self._corrupt_payload_error()
        failure = TransferCorrupted(3, 7, "up", cause)
        assert failure.entry == cause.entry
        assert failure.offset == cause.offset
        # non-codec causes leave the context empty
        plain = TransferCorrupted(3, 7, "down", ValueError("checksum"))
        assert plain.entry is None and plain.offset is None

    def test_failures_pickle_with_context(self):
        cause = self._corrupt_payload_error()
        for failure in (
                TransferCorrupted(3, 7, "up", cause),
                StragglerTimeout(2, 1, 9.5, 4.0, entry="w", offset=64),
                ClientDropped(5, 2, "offline")):
            clone = pickle.loads(pickle.dumps(failure))
            assert type(clone) is type(failure)
            assert (clone.client_id, clone.round_idx) \
                == (failure.client_id, failure.round_idx)
            assert (clone.entry, clone.offset) \
                == (failure.entry, failure.offset)
            assert str(failure.reason) in str(clone)
