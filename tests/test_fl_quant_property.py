"""Property-based tests of the low-bit quant codec (DESIGN.md §16).

Hypothesis drives the codec across arbitrary shapes, dtypes, bit widths,
block sizes, and value ranges (including zeros, denormals, and large
magnitudes).  Whatever the draw:

- sizing is *exact* — ``quant_payload_nbytes`` equals the serialized
  length of the encoded payload, byte for byte, checksummed or not;
- the round trip is bounded — every dequantized value sits within one
  scale step of its input (stochastic rounding may land on either
  neighbouring grid point, so the bound is ``scale``, not the
  ``scale / 2`` a deterministic nearest-round would give);
- the codec is a pure function of the RNG stream — the same seed
  reproduces the identical wire bytes, sender-side decode, and residual;
- rounding is unbiased — the mean dequantized value over many
  independent draws converges on the input.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.fl.comm import payload_nbytes, serialize_state  # noqa: E402
from repro.fl.quant import (QuantConfig, dequantize_values,  # noqa: E402
                            quant_payload_nbytes, quantize_payload,
                            stochastic_quantize)

BITS = st.sampled_from([16, 8, 4])
BLOCKS = st.sampled_from([0, 1, 7, 32, 256])
SHAPES = st.sampled_from([(1,), (5,), (64,), (3, 7), (4, 4, 4), (1, 130)])
FLOATS = st.sampled_from([np.float32, np.float64])


def _payload(shape, dtype, seed, scale_pow):
    rng = np.random.default_rng(seed)
    arr = (rng.normal(size=shape) * 10.0 ** scale_pow).astype(dtype)
    return {
        "w": arr,
        "idx": rng.integers(0, 99, size=11).astype(np.int32),
        "step": np.asarray(3, dtype=np.int64),
    }


@given(bits=BITS, block=BLOCKS, shape=SHAPES, dtype=FLOATS,
       seed=st.integers(0, 2 ** 16), scale_pow=st.integers(-6, 3),
       checksums=st.booleans())
@settings(max_examples=80, deadline=None)
def test_sizing_is_exact_for_any_draw(bits, block, shape, dtype, seed,
                                      scale_pow, checksums):
    payload = _payload(shape, dtype, seed, scale_pow)
    config = QuantConfig(bits=bits, block=block)
    wire_dict, _ = quantize_payload(payload, config,
                                    np.random.default_rng(seed + 1))
    predicted = quant_payload_nbytes(payload, config, checksums=checksums)
    assert predicted == payload_nbytes(wire_dict, checksums=checksums)
    assert predicted == len(serialize_state(wire_dict, checksums=checksums))


@given(bits=st.sampled_from([8, 4]), block=BLOCKS, shape=SHAPES,
       seed=st.integers(0, 2 ** 16), scale_pow=st.integers(-6, 3))
@settings(max_examples=80, deadline=None)
def test_roundtrip_error_is_within_one_scale_step(bits, block, shape, seed,
                                                  scale_pow):
    rng = np.random.default_rng(seed)
    x = (rng.normal(size=shape) * 10.0 ** scale_pow).ravel()
    codes, scales = stochastic_quantize(x, bits, block,
                                        np.random.default_rng(seed + 1))
    deq = dequantize_values(codes, scales, bits, block)
    width = x.size if block == 0 else block
    for b in range(scales.size):
        seg = slice(b * width, (b + 1) * width)
        bound = float(scales[b]) * (1 + 1e-5) + 1e-12
        assert np.abs(x[seg] - deq[seg].astype(np.float64)).max() <= bound


@given(bits=BITS, block=BLOCKS, shape=SHAPES, dtype=FLOATS,
       seed=st.integers(0, 2 ** 16))
@settings(max_examples=60, deadline=None)
def test_same_seed_reproduces_wire_bytes_and_residuals(bits, block, shape,
                                                       dtype, seed):
    payload = _payload(shape, dtype, seed, 0)
    config = QuantConfig(bits=bits, block=block)
    outs = []
    for _ in range(2):
        residuals = {}
        wire_dict, decoded = quantize_payload(
            payload, config, np.random.default_rng(seed + 7), residuals)
        outs.append((serialize_state(wire_dict),
                     {k: v.tobytes() for k, v in decoded.items()},
                     {k: v.tobytes() for k, v in residuals.items()}))
    assert outs[0] == outs[1]


@given(block=st.sampled_from([0, 16]), seed=st.integers(0, 2 ** 10),
       scale_pow=st.integers(-3, 2))
@settings(max_examples=15, deadline=None)
def test_rounding_is_unbiased_over_many_draws(block, seed, scale_pow):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=32) * 10.0 ** scale_pow
    draws = 1500
    acc = np.zeros_like(x)
    draw_rng = np.random.default_rng(seed + 1)
    for _ in range(draws):
        codes, scales = stochastic_quantize(x, 4, block, draw_rng)
        acc += dequantize_values(codes, scales, 4, block).astype(np.float64)
    # per-block scale bounds the per-draw error; the mean of `draws`
    # draws has std <= scale / (2 sqrt(draws)), so 0.15 * scale is a
    # many-sigma acceptance band for the pinned seed range.
    width = x.size if block == 0 else block
    for b in range(scales.size):
        seg = slice(b * width, (b + 1) * width)
        tol = 0.15 * max(float(scales[b]), 1e-30)
        np.testing.assert_allclose(acc[seg] / draws, x[seg], atol=tol)
