"""Unit tests: RNG trees, metrics, logging."""

import io
import time

import numpy as np
import pytest

from repro.utils import (EarlyStopper, ExperimentLog, RunningAverage,
                         best_smoothed, render_table, rounds_to_target,
                         seed_tree, spawn_rng)


class TestRngTree:
    def test_same_path_same_stream(self):
        a = spawn_rng(42, "client", 3).random(5)
        b = spawn_rng(42, "client", 3).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_paths_differ(self):
        a = spawn_rng(42, "client", 3).random(5)
        b = spawn_rng(42, "client", 4).random(5)
        c = spawn_rng(43, "client", 3).random(5)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_string_labels_hash_stably(self):
        a = spawn_rng(0, "dropout").random(3)
        b = spawn_rng(0, "dropout").random(3)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, spawn_rng(0, "sampling").random(3))

    def test_seed_tree_returns_seed_sequence(self):
        ss = seed_tree(1, "x")
        assert isinstance(ss, np.random.SeedSequence)


class TestRunningAverage:
    def test_weighted(self):
        avg = RunningAverage()
        avg.update(1.0, weight=1)
        avg.update(4.0, weight=3)
        assert avg.value == pytest.approx(3.25)

    def test_empty_is_nan(self):
        assert np.isnan(RunningAverage().value)

    def test_reset(self):
        avg = RunningAverage()
        avg.update(5.0)
        avg.reset()
        assert np.isnan(avg.value)


class TestEarlyStopper:
    def test_stops_after_patience(self):
        es = EarlyStopper(patience=3, min_delta=0.0)
        assert not es.update(0.5)
        assert not es.update(0.4)
        assert not es.update(0.4)
        assert es.update(0.4)
        assert es.converged

    def test_improvement_resets(self):
        es = EarlyStopper(patience=2, min_delta=0.01)
        es.update(0.5)
        es.update(0.4)
        es.update(0.6)  # improvement
        assert es.num_bad == 0
        assert es.best == pytest.approx(0.6)

    def test_min_mode(self):
        es = EarlyStopper(patience=2, mode="min")
        es.update(1.0)
        es.update(0.5)
        assert es.best == pytest.approx(0.5)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            EarlyStopper(mode="sideways")


class TestSeriesMetrics:
    def test_best_smoothed(self):
        series = [0.1, 0.9, 0.1, 0.1, 0.1]  # single spike smooths away
        assert best_smoothed(series, window=3) < 0.9
        assert best_smoothed([], window=3) != best_smoothed([1.0])

    def test_best_smoothed_short_series(self):
        assert best_smoothed([0.2, 0.4], window=5) == pytest.approx(0.3)

    def test_rounds_to_target(self):
        assert rounds_to_target([0.1, 0.3, 0.7], 0.5) == 3
        assert rounds_to_target([0.1, 0.2], 0.5) is None
        assert rounds_to_target([0.9], 0.5) == 1


class TestExperimentLog:
    def test_series_accumulate(self):
        log = ExperimentLog("t")
        log.log(acc=0.5, loss=1.0)
        log.log(acc=0.6)
        assert log["acc"] == [0.5, 0.6]
        assert log.last("loss") == 1.0
        assert "acc" in log

    def test_last_default(self):
        assert np.isnan(ExperimentLog().last("nothing"))

    def test_json_roundtrip(self):
        log = ExperimentLog("t")
        log.meta["x"] = 3
        log.log(acc=0.5)
        back = ExperimentLog.from_json(log.to_json())
        assert back.name == "t"
        assert back.meta["x"] == 3
        assert back["acc"] == [0.5]


class TestRenderTable:
    def test_renders_aligned(self):
        out = render_table(["a", "bb"], [[1, 2.53219], ["xx", "y"]],
                           title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "2.532" in out
        # all rows same width
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1


class TestFromJsonRestoration:
    def test_from_json_resets_wall_time_origin(self):
        # A deserialised log must measure "+Xs" from the restoration
        # moment, not inherit a perf_counter origin from a past process
        # (raw perf_counter values are meaningless across restarts).
        log = ExperimentLog("t")
        log.log(acc=0.5)
        log._t0 = time.perf_counter() - 3600.0   # simulate a stale origin
        back = ExperimentLog.from_json(log.to_json())
        assert time.perf_counter() - back._t0 < 60.0

    def test_from_json_restores_verbose_stream(self):
        log = ExperimentLog("t")
        log.log(acc=0.5)
        out = io.StringIO()
        back = ExperimentLog.from_json(log.to_json(), stream=out,
                                       verbose=True)
        back.log(acc=0.75)
        printed = out.getvalue()
        assert "[t +0." in printed            # fresh origin: fractions of a s
        assert "acc=0.75" in printed
