"""Unit tests: model zoo, encoder/predictor split, channel masks."""

import numpy as np
import pytest

from repro.models import (build_model, make_resnet20, make_two_layer_cnn,
                          make_vgg11, paper_model_size_mb, MODEL_REGISTRY)
from repro.tensor import Tensor


def _x(model, n=2):
    enc = model.encoder
    return Tensor(np.random.default_rng(0).normal(
        size=(n, enc.in_channels, enc.input_size, enc.input_size)
    ).astype(np.float32))


class TestForwardShapes:
    @pytest.mark.parametrize("name,size,classes", [
        ("resnet20", 16, 10), ("resnet32", 16, 10), ("resnet56", 16, 10),
        ("resnet18", 16, 10), ("vgg11", 32, 10), ("cnn2", 28, 62)])
    def test_logits_shape(self, name, size, classes):
        m = build_model(name, num_classes=classes, input_size=size,
                        width_mult=0.25, seed=0)
        out = m(_x(m))
        assert out.shape == (2, classes)

    def test_embed_matches_output_dim(self):
        m = build_model("resnet20", input_size=16, width_mult=0.25, seed=0)
        z = m.embed(_x(m))
        assert z.shape == (2, m.encoder.output_dim())

    def test_vgg_too_small_input_rejected(self):
        with pytest.raises(ValueError):
            make_vgg11(input_size=16)


class TestSplit:
    def test_state_partition_disjoint_and_complete(self):
        m = build_model("resnet20", input_size=16, width_mult=0.25, seed=0)
        enc = set(m.encoder_state())
        pred = set(m.predictor_state())
        # separate namespaces; together they cover all parameters
        n_enc = sum(np.asarray(v).size for k, v in m.encoder_state().items())
        n_pred = sum(np.asarray(v).size for k, v in m.predictor_state().items())
        n_all = m.num_parameters() + sum(
            b.size for _, b in m.encoder.named_buffers())
        assert n_enc + n_pred == n_all
        assert enc and pred

    def test_load_encoder_only_leaves_predictor(self):
        m1 = build_model("resnet20", input_size=16, width_mult=0.25, seed=0)
        m2 = build_model("resnet20", input_size=16, width_mult=0.25, seed=99)
        pred_before = {k: v.copy() for k, v in m2.predictor_state().items()}
        m2.load_encoder_state(m1.encoder_state())
        for k, v in m2.predictor_state().items():
            np.testing.assert_array_equal(v, pred_before[k])
        for k, v in m2.encoder_state().items():
            np.testing.assert_array_equal(v, m1.encoder_state()[k])

    def test_param_counts(self):
        m = build_model("resnet20", input_size=16, width_mult=0.25, seed=0)
        assert m.num_encoder_parameters() > m.num_predictor_parameters()
        assert (m.num_encoder_parameters() + m.num_predictor_parameters()
                == m.num_parameters())


class TestDeterminism:
    def test_same_seed_same_weights(self):
        a = build_model("vgg11", width_mult=0.125, seed=7)
        b = build_model("vgg11", width_mult=0.125, seed=7)
        for (n1, p1), (_, p2) in zip(a.named_parameters(),
                                     b.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data, err_msg=n1)

    def test_different_seed_differs(self):
        a = build_model("resnet20", width_mult=0.25, input_size=16, seed=1)
        b = build_model("resnet20", width_mult=0.25, input_size=16, seed=2)
        same = all(np.array_equal(p1.data, p2.data)
                   for (_, p1), (_, p2) in zip(a.named_parameters(),
                                               b.named_parameters()))
        assert not same


class TestChannelMasks:
    @pytest.mark.parametrize("name,size", [("resnet20", 16), ("vgg11", 32),
                                           ("cnn2", 28)])
    def test_zero_mask_silences_channels(self, name, size):
        m = build_model(name, input_size=size, width_mult=0.25, seed=0)
        enc = m.encoder
        layers = enc.prunable_layers()
        specs = {s.name: s for s in enc.conv_specs()}
        masks = {n: np.ones(specs[n].out_channels, dtype=np.float32)
                 for n in layers}
        out_dense = m(_x(m)).data
        m.encoder.set_channel_masks(masks)
        out_masked_same = m(_x(m)).data
        np.testing.assert_allclose(out_dense, out_masked_same, atol=1e-5)
        # now actually zero something — output must change
        masks[layers[0]][:] = 0
        enc.set_channel_masks(masks)
        out_zero = m(_x(m)).data
        assert not np.allclose(out_dense, out_zero)
        enc.clear_channel_masks()
        np.testing.assert_allclose(m(_x(m)).data, out_dense, atol=1e-5)

    def test_unknown_mask_layer_rejected(self):
        m = build_model("resnet20", input_size=16, width_mult=0.25, seed=0)
        with pytest.raises(KeyError):
            m.encoder.set_channel_masks({"ghost": np.ones(4)})

    def test_prunable_layers_exist_as_params(self):
        for name, size in [("resnet20", 16), ("vgg11", 32), ("cnn2", 28)]:
            m = build_model(name, input_size=size, width_mult=0.25, seed=0)
            params = dict(m.encoder.named_parameters())
            for layer in m.encoder.prunable_layers():
                assert layer + ".weight" in params


class TestRegistry:
    def test_unknown_model_raises_with_known_list(self):
        with pytest.raises(KeyError, match="resnet20"):
            build_model("alexnet")

    def test_registry_complete(self):
        assert set(MODEL_REGISTRY) == {"resnet20", "resnet32", "resnet56",
                                       "resnet18", "vgg11", "cnn2"}

    def test_paper_sizes_sane(self):
        # full-size encoder payloads: ResNet-20 ~1MB, VGG-11 tens of MB
        assert 0.5 < paper_model_size_mb("resnet20") < 2.0
        assert paper_model_size_mb("resnet32") > paper_model_size_mb("resnet20")
        assert paper_model_size_mb("vgg11") > 20


class TestResNetSpecifics:
    def test_depths(self):
        # 3 stages x n blocks, one prunable conv per block
        assert len(make_resnet20(width_mult=0.25, input_size=16, seed=0)
                   .encoder.prunable_layers()) == 9
        assert len(build_model("resnet32", width_mult=0.25, input_size=16,
                               seed=0).encoder.prunable_layers()) == 15
        assert len(build_model("resnet56", width_mult=0.25, input_size=16,
                               seed=0).encoder.prunable_layers()) == 27

    def test_option_a_shortcut_shapes(self):
        m = make_resnet20(width_mult=0.25, input_size=16, seed=0)
        out = m(_x(m))  # crossing two stride-2 stage boundaries
        assert out.shape == (2, 10)

    def test_gradients_flow_to_all_params(self):
        m = make_resnet20(width_mult=0.25, input_size=16, seed=0)
        out = m(_x(m))
        out.sum().backward(None) if out.size == 1 else out.sum().backward()
        missing = [n for n, p in m.named_parameters() if p.grad is None]
        assert missing == []


def test_cnn2_femnist_shape():
    m = make_two_layer_cnn(num_classes=62, input_size=28, width_mult=0.5,
                           seed=0)
    x = Tensor(np.zeros((3, 1, 28, 28), dtype=np.float32))
    assert m(x).shape == (3, 62)
