"""End-to-end integration tests crossing all subsystem boundaries."""

import numpy as np
import pytest

from repro.core import SPATL, RLSelectionPolicy
from repro.data import SyntheticFEMNIST, by_writer_partition
from repro.experiments import config_for, make_algorithm, make_setting
from repro.fl import make_federated_clients
from repro.fl.comm import deserialize_state, serialize_state
from repro.models import build_model
from repro.rl import SalientParameterAgent


class TestSPATLWithRLAgent:
    """The full paper pipeline: pre-trained agent inside the FL loop."""

    def test_rl_policy_round(self, tiny_dataset, tiny_setting):
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        agent = SalientParameterAgent(seed=0)
        policy = RLSelectionPolicy(agent, flops_target=0.8,
                                   finetune_rounds=1, finetune_updates=1,
                                   episodes_per_update=2, probe_size=64)
        algo = SPATL(model_fn, clients, selection_policy=policy,
                     lr=0.05, local_epochs=1, sample_ratio=0.5, seed=0)
        result = algo.run_round(0)
        assert np.isfinite(result.avg_val_acc)
        # the RL policy actually selected sparse subsets
        assert algo.last_selection
        for sel in algo.last_selection.values():
            assert sel.mean_keep() < 1.0
        # each participating client got its own fine-tuned agent clone
        assert len(policy._client_agents) == result.n_participants

    def test_rl_policy_selection_respects_flops_target(self, tiny_dataset,
                                                       tiny_setting):
        from repro.graph import build_graph
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        agent = SalientParameterAgent(seed=0)
        policy = RLSelectionPolicy(agent, flops_target=0.7,
                                   finetune_rounds=0, probe_size=64)
        algo = SPATL(model_fn, clients, selection_policy=policy,
                     lr=0.05, local_epochs=1, sample_ratio=0.5, seed=0)
        algo.run_round(0)
        graph = build_graph(algo.global_model.encoder)
        for sel in algo.last_selection.values():
            assert graph.flops_ratio(sel.keep) <= 0.7 + 1e-6


class TestFEMNISTPipeline:
    def test_writer_partitioned_fl(self):
        ds = SyntheticFEMNIST(n_writers=12, samples_per_writer=30, size=16,
                              seed=3, num_classes=10)
        parts = by_writer_partition(ds.writer_ids, 4, seed=0)
        clients = make_federated_clients(ds, parts, batch_size=32, seed=0)

        def model_fn():
            return build_model("cnn2", num_classes=10, input_size=16,
                               width_mult=0.25, seed=1)

        algo = SPATL(model_fn, clients, lr=0.05, local_epochs=1,
                     sample_ratio=1.0, seed=0)
        log = algo.run(rounds=3)
        assert len(log["val_acc"]) == 3
        assert log["val_acc"][-1] > 0.05


class TestDeterminism:
    def test_same_seed_same_curve(self):
        cfg = config_for("tiny", n_clients=3, n_samples=400, local_epochs=1,
                         seed=9)
        curves = []
        for _ in range(2):
            model_fn, clients = make_setting(cfg)
            algo = make_algorithm("spatl", cfg, model_fn, clients)
            log = algo.run(rounds=2)
            curves.append(log["val_acc"])
        np.testing.assert_allclose(curves[0], curves[1], atol=1e-12)

    def test_different_seed_different_curve(self):
        logs = []
        for seed in (1, 2):
            cfg = config_for("tiny", n_clients=3, n_samples=400,
                             local_epochs=1, seed=seed)
            model_fn, clients = make_setting(cfg)
            algo = make_algorithm("fedavg", cfg, model_fn, clients)
            logs.append(algo.run(rounds=2)["val_acc"])
        assert logs[0] != logs[1]


class TestWireLevelRoundtrip:
    """Payloads survive real serialisation: what the ledger counts is what
    a network would carry."""

    def test_spatl_upload_serializes(self, tiny_dataset, tiny_setting):
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        algo = SPATL(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        update = algo.local_update(clients[0], 0)
        payload = algo.upload_payload(update)
        wire = serialize_state(payload)
        back = deserialize_state(wire)
        assert set(back) == set(payload)
        for k in payload:
            np.testing.assert_array_equal(back[k], payload[k], err_msg=k)

    def test_download_serializes(self, tiny_dataset, tiny_setting):
        model_fn, parts = tiny_setting
        clients = make_federated_clients(tiny_dataset, parts, seed=5)
        algo = SPATL(model_fn, clients, lr=0.05, local_epochs=1, seed=0)
        payload = algo.download_payload(clients[0])
        back = deserialize_state(serialize_state(payload))
        assert set(back) == set(payload)
