"""Regression gate of ``benchmarks/bench_parallel.py --check``.

The bench's :func:`check_rows` is the CI tripwire for executor
performance regressions: it must flag a byte-identity break, a process
pool slower than serial beyond the documented fan-out tolerance, and a
vectorized run that fails to beat serial — and stay silent on the
measured-good sweep shape.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_BENCH = Path(__file__).resolve().parent.parent / "benchmarks" \
    / "bench_parallel.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_parallel", _BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _row(executor, speedup, identical=True):
    return {"executor": executor, "speedup_vs_serial": speedup,
            "byte_identical_to_serial": identical}


def test_good_sweep_passes(bench):
    rows = [_row("serial", 1.0), _row("process:2", 0.88),
            _row("process:2+shm", 0.85), _row("vectorized", 1.13)]
    assert bench.check_rows(rows) == []


def test_identity_break_fails(bench):
    rows = [_row("serial", 1.0), _row("vectorized", 1.2, identical=False)]
    errors = bench.check_rows(rows)
    assert len(errors) == 1 and "diverged" in errors[0]


def test_slow_process_pool_fails(bench):
    """workers>1 slower than serial beyond the fan-out tolerance trips."""
    rows = [_row("serial", 1.0), _row("process:2", 0.4)]
    errors = bench.check_rows(rows)
    assert len(errors) == 1
    assert "process:2" in errors[0] and "below" in errors[0]


def test_vectorized_must_beat_serial(bench):
    rows = [_row("serial", 1.0), _row("vectorized", 0.97)]
    errors = bench.check_rows(rows)
    assert len(errors) == 1 and "vectorized" in errors[0]


def test_custom_floors_override_defaults(bench):
    rows = [_row("process:4", 0.5)]
    assert bench.check_rows(rows, floors={"process": 0.4}) == []
    assert bench.check_rows(rows, floors={"process": 0.6}) != []


def test_spec_parsing(bench):
    assert bench.parse_spec("process:4+shm") == {
        "spec": "process:4+shm", "kind": "process", "workers": 4,
        "shm": True}
    assert bench.parse_spec("vectorized")["kind"] == "vectorized"
    with pytest.raises(ValueError):
        bench.parse_spec("process")          # missing width
    with pytest.raises(ValueError):
        bench.parse_spec("serial+shm")       # shm needs a process pool
    with pytest.raises(ValueError):
        bench.parse_spec("threads:2")
