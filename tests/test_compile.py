"""Trace-and-replay step compiler (DESIGN.md §15).

The compiler's whole contract is "free speed": a compiled step must be
byte-for-byte identical to the eager step it replaces, fall back to
eager for anything it cannot express, and never leak state between
steps.  These tests pin that contract at both the single-step level
(unit) and across full federated runs (golden), including faults and
every round executor.
"""

import numpy as np
import pytest

from repro.experiments.configs import config_for, make_algorithm, make_setting
from repro.fl.comm import serialize_state
from repro.models import build_model
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.optim.sgd import SGD
from repro.tensor import Tensor, functional as F
from repro.tensor.compile import FALLBACK, StepCompiler


def _make_model(name="resnet20", size=16, **kw):
    model = build_model(name, num_classes=10, input_size=size,
                        width_mult=0.25, seed=11, **kw)
    model.train()
    return model


def _batches(n_steps, bs=8, size=16, chans=3, seed=3):
    rng = np.random.default_rng(seed)
    return [(rng.standard_normal((bs, chans, size, size)).astype(np.float32),
             rng.integers(0, 10, size=bs)) for _ in range(n_steps)]


def _eager_step(model, xb, yb):
    logits = model(Tensor(xb))
    loss = F.cross_entropy(logits, yb)
    model.zero_grad()
    loss.backward()
    return loss.item()


def _train(model, batches, compiler=None):
    opt = SGD(model.named_parameters(), lr=0.05, momentum=0.9,
              weight_decay=5e-4)
    losses = []
    for xb, yb in batches:
        lv = compiler.try_step(model, xb, yb) if compiler is not None else None
        if lv is None:
            lv = _eager_step(model, xb, yb)
        opt.step()
        losses.append(lv)
    return losses


def _states_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(a[k], b[k]) and a[k].dtype == b[k].dtype for k in a)


@pytest.fixture
def fresh_registry():
    prev = get_registry()
    reg = MetricsRegistry()
    set_registry(reg)
    yield reg
    set_registry(prev)


class TestCompiledStep:
    def test_byte_identical_to_eager(self, fresh_registry):
        batches = _batches(5)
        m_eager = _make_model()
        l_eager = _train(m_eager, batches)
        m_comp = _make_model()
        comp = StepCompiler()
        l_comp = _train(m_comp, batches, comp)
        assert l_eager == l_comp
        assert _states_equal(m_eager.state_dict(), m_comp.state_dict())
        counters = fresh_registry.snapshot()["counters"]
        assert counters["compile.captures"] == 1
        assert counters["compile.replays"] == 4

    def test_partial_batch_gets_own_plan(self, fresh_registry):
        batches = _batches(3, bs=8) + _batches(3, bs=5, seed=4)
        m_eager = _make_model()
        _train(m_eager, batches)
        m_comp = _make_model()
        comp = StepCompiler()
        _train(m_comp, batches, comp)
        assert _states_equal(m_eager.state_dict(), m_comp.state_dict())
        counters = fresh_registry.snapshot()["counters"]
        assert counters["compile.captures"] == 2
        assert counters["compile.replays"] == 4
        assert len(comp.plan_for(m_comp)) == 2

    def test_extra_loss_forces_eager(self):
        model = _make_model()
        comp = StepCompiler()
        (xb, yb), = _batches(1)
        assert comp.try_step(model, xb, yb,
                             extra_loss=lambda m: 0.0) is None

    def test_eval_mode_forces_eager(self):
        model = _make_model()
        comp = StepCompiler()
        (xb, yb), = _batches(1)
        model.eval()
        assert comp.try_step(model, xb, yb) is None
        model.train()
        assert comp.try_step(model, xb, yb) is not None

    def test_channel_masks_force_eager_until_cleared(self):
        model = _make_model()
        comp = StepCompiler()
        (xb, yb), = _batches(1)
        enc = model.encoder
        layer = enc.prunable_layers()[0]
        width = dict(enc.named_modules())[layer].out_channels
        enc.set_channel_masks({layer: np.ones(width, dtype=np.float32)})
        assert comp.try_step(model, xb, yb) is None
        enc.clear_channel_masks()
        assert comp.try_step(model, xb, yb) is not None

    def test_unsupported_graph_falls_back_per_signature(self, fresh_registry):
        from repro.nn import Linear, Module

        class Odd(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(12, 10)

            def forward(self, x):
                return self.lin(x) / 2.0   # div has no emitter

        model = Odd()
        model.train()
        rng = np.random.default_rng(0)
        xb = rng.standard_normal((4, 12)).astype(np.float32)
        yb = rng.integers(0, 10, size=4)
        comp = StepCompiler()
        # The capture step is itself a full eager step, so the first call
        # still returns the loss; the signature is then marked fallback.
        assert comp.try_step(model, xb, yb) is not None
        assert comp.try_step(model, xb, yb) is None
        sig = (xb.shape, str(xb.dtype), yb.shape, str(yb.dtype))
        assert comp.plan_for(model, sig) is FALLBACK
        counters = fresh_registry.snapshot()["counters"]
        assert counters["compile.fallbacks{reason=op: truediv}"] >= 1

    def test_plan_reuses_arena_memory_and_fuses(self):
        model = _make_model()
        comp = StepCompiler()
        batches = _batches(2)
        _train(model, batches, comp)
        (plan,) = comp.plan_for(model).values()
        stats = plan.stats
        # Lifetime-based reuse must beat one-buffer-per-intermediate by a
        # wide margin on a 20-layer model, and the residual/bias add→ReLU
        # chains must have fused.
        assert stats["arena_bytes"] < stats["raw_bytes"] / 4
        assert stats["fused_forward"] > 0
        assert stats["instructions"] > 0

    def test_zero_arena_misses_after_warmup(self):
        from repro.tensor.workspace import stats_snapshot
        model = _make_model()
        comp = StepCompiler()
        opt = SGD(model.named_parameters(), lr=0.05, momentum=0.9)
        batches = _batches(6)

        def run(some):
            for xb, yb in some:
                assert comp.try_step(model, xb, yb) is not None
                opt.step()

        run(batches[:3])                          # capture + warm replays
        before = stats_snapshot()
        run(batches[3:])                          # steady-state replays
        after = stats_snapshot()
        for tag, (_, misses, _, _) in after.items():
            miss_before = before[tag][1] if tag in before else 0
            assert misses == miss_before, (
                f"arena miss in steady state for tag {tag!r}")

    def test_stale_grads_cleared_on_replay(self):
        # A parameter gradient left over from an eager step on a different
        # signature must not survive into a compiled step's output.
        model = _make_model()
        comp = StepCompiler()
        (b1,) = _batches(1, bs=8)
        (b2,) = _batches(1, bs=6, seed=9)
        comp.try_step(model, *b1)
        _eager_step(model, *b2)                   # leaves eager grads behind
        comp.try_step(model, *b1)                 # replay
        m_ref = _make_model()
        comp_ref = StepCompiler()
        comp_ref.try_step(m_ref, *b1)
        _eager_step(m_ref, *b2)
        _eager_step(m_ref, *b1)
        for (n, p), (_, q) in zip(model.named_parameters(),
                                  m_ref.named_parameters()):
            assert np.array_equal(p.grad, q.grad), n

    def test_compiler_pickles_empty(self):
        import pickle
        model = _make_model()
        comp = StepCompiler()
        (xb, yb), = _batches(1)
        comp.try_step(model, xb, yb)
        clone = pickle.loads(pickle.dumps(comp))
        assert clone.plan_for(model) is None      # plans never cross pickles


# --------------------------------------------------------------------- #
# end-to-end golden identity                                            #
# --------------------------------------------------------------------- #

def _final_state(algo_name, *, compiled, rounds=2, **overrides) -> bytes:
    cfg = config_for("tiny", n_clients=3, n_samples=300, rounds=rounds,
                     seed=0, compile=compiled, **overrides)
    model_fn, clients = make_setting(cfg)
    algo = make_algorithm(algo_name, cfg, model_fn, clients)
    try:
        for r in range(rounds):
            algo.run_round(r)
        return serialize_state(dict(algo.global_model.state_dict()))
    finally:
        algo.close()


@pytest.mark.parametrize("algo_name", ["fedavg", "spatl"])
class TestCompiledGolden:
    def test_serial(self, algo_name):
        assert _final_state(algo_name, compiled=False) == \
            _final_state(algo_name, compiled=True)

    def test_under_faults(self, algo_name):
        kw = dict(fault_drop_prob=0.3, fault_corrupt_prob=0.1,
                  fault_retries=1)
        assert _final_state(algo_name, compiled=False, **kw) == \
            _final_state(algo_name, compiled=True, **kw)


def test_process_executor_compiled_matches_eager_serial():
    assert _final_state("fedavg", compiled=False) == \
        _final_state("fedavg", compiled=True, workers=2)


def test_vectorized_executor_unaffected_by_compile_flag():
    assert _final_state("fedavg", compiled=False, executor="vectorized") == \
        _final_state("fedavg", compiled=True, executor="vectorized")
