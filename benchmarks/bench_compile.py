"""Step-compiler benchmark: trace-and-replay vs the eager training loop.

Times the compiled step executor (DESIGN.md §15) against the eager
autodiff loop it replaces, at two granularities:

- **micro** — single training steps (forward + backward + ``opt.step``)
  on a fixed batch, interleaved compiled/eager min-of-N so machine noise
  hits both sides equally.  The small-model/small-batch rows are
  dispatch-bound and isolate the per-op overhead the compiler removes;
  the larger rows show the kernel-bound limit.  The resnet20 micro case
  also verifies the *zero-allocation* claim: after warmup, steady-state
  replays must add no workspace-arena misses.
- **e2e** — the local-training phase of serial FedAvg rounds (sampling +
  ``local_update`` over the cohort; evaluation excluded since the
  compiler only touches training) for ``resnet20`` and ``vgg11``, with a
  warm-up round first and a byte-identity check of the final global
  model state between the two paths.  The resnet20 row uses batch 4 —
  the tiny-scale geometry where step dispatch is a large fraction of
  step time and the compiler's win is biggest; the micro bs16/bs32 rows
  show the win shrinking as conv kernels start to dominate.

Writes the whole record to ``BENCH_compile.json`` at the repo root
(single document, overwritten — the committed copy is the regression
baseline)::

    python benchmarks/bench_compile.py                  # full run
    python benchmarks/bench_compile.py --smoke          # CI-sized
    python benchmarks/bench_compile.py --smoke --check  # + regression gate

``--check`` fails on: a non-byte-identical e2e run, any steady-state
arena miss, a compiled micro time regressing more than ``--check-factor``
vs the committed baseline (beyond a 0.15ms absolute noise floor), or —
on full runs and on the committed baseline rows — a resnet20 e2e speedup
below ``--min-speedup`` (smoke runs skip the live floor: one timed round
on a shared CI core jitters past any honest threshold).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import time
from pathlib import Path

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_compile.json"


# --------------------------------------------------------------------- #
# micro: single-step latency                                            #
# --------------------------------------------------------------------- #
def _build(model_name, size, chans, seed):
    import numpy as np
    from repro.models import build_model
    from repro.optim.sgd import SGD

    model = build_model(model_name, num_classes=10, input_size=size,
                        width_mult=0.25, seed=seed)
    model.train()
    opt = SGD(model.named_parameters(), lr=0.05, momentum=0.9)
    return model, opt


def _eager_step(model, opt, xb, yb):
    from repro.tensor import Tensor, functional as F
    logits = model(Tensor(xb))
    loss = F.cross_entropy(logits, yb)
    model.zero_grad()
    loss.backward()
    opt.step()
    return loss.item()


def micro_case(model_name, size, chans, bs, repeats, seed=0,
               check_arena=False):
    """Interleaved compiled/eager step timing for one configuration."""
    import numpy as np
    from repro.tensor.compile import StepCompiler
    from repro.tensor.workspace import stats_snapshot

    rng = np.random.default_rng(seed)
    xb = rng.standard_normal((bs, chans, size, size)).astype(np.float32)
    yb = rng.integers(0, 10, size=bs)

    m_eager, opt_eager = _build(model_name, size, chans, seed + 1)
    m_comp, opt_comp = _build(model_name, size, chans, seed + 1)
    comp = StepCompiler()

    def compiled_step():
        lv = comp.try_step(m_comp, xb, yb)
        if lv is None:                      # pragma: no cover - bench guard
            raise RuntimeError(f"{model_name}: compile fell back")
        opt_comp.step()
        return lv

    for _ in range(3):                      # warmup: capture + arenas
        _eager_step(m_eager, opt_eager, xb, yb)
        compiled_step()

    arena_before = stats_snapshot() if check_arena else None

    t_eager = t_comp = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _eager_step(m_eager, opt_eager, xb, yb)
        t_eager = min(t_eager, time.perf_counter() - t0)
        t0 = time.perf_counter()
        compiled_step()
        t_comp = min(t_comp, time.perf_counter() - t0)

    arena_misses = None
    if check_arena:
        after = stats_snapshot()
        arena_misses = sum(
            st[1] - (arena_before[tag][1] if tag in arena_before else 0)
            for tag, st in after.items())

    (plan,) = comp.plan_for(m_comp).values()
    row = {
        "name": f"{model_name}.bs{bs}",
        "eager_ms": round(t_eager * 1e3, 4),
        "compiled_ms": round(t_comp * 1e3, 4),
        "speedup": round(t_eager / t_comp, 4),
        "plan": plan.stats,
    }
    if arena_misses is not None:
        row["arena_misses_steady"] = int(arena_misses)
    return row


# --------------------------------------------------------------------- #
# e2e: FedAvg local-training phase                                      #
# --------------------------------------------------------------------- #
def e2e_case(model_name, rounds, clients, samples, seed):
    """Serial FedAvg local-training phase, compiled vs eager.

    Both sides run a warm-up round, then each subsequent round's
    cohort-training phase is timed individually (min over rounds),
    alternating compiled/eager.  Final global states must be
    byte-identical.
    """
    from repro.experiments.configs import (config_for, make_algorithm,
                                           make_setting)
    from repro.fl.base import sample_clients
    from repro.fl.comm import serialize_state

    overrides = {}
    if model_name.startswith("vgg"):
        overrides["input_size"] = 32        # five maxpools need 32x32
    else:
        overrides["batch_size"] = 4         # see module docstring
    algos = {}
    for compiled in (False, True):
        cfg = config_for("tiny", model=model_name, n_clients=clients,
                         n_samples=samples, sample_ratio=1.0, seed=seed,
                         compile=compiled, **overrides)
        model_fn, cl = make_setting(cfg)
        algos[compiled] = make_algorithm("fedavg", cfg, model_fn, cl)

    def train_phase(algo, r):
        selected = sample_clients(algo.clients, algo.sample_ratio,
                                  algo.seed, r)
        t0 = time.perf_counter()
        updates = [algo.local_update(c, r) for c in selected]
        dt = time.perf_counter() - t0
        algo.aggregate(updates, r)
        return dt

    for algo in algos.values():             # warm-up: arenas, plans
        train_phase(algo, 0)

    t_eager = t_comp = float("inf")
    for r in range(1, rounds + 1):
        t_eager = min(t_eager, train_phase(algos[False], r))
        t_comp = min(t_comp, train_phase(algos[True], r))

    states = {c: serialize_state(dict(a.global_model.state_dict()))
              for c, a in algos.items()}
    for algo in algos.values():
        algo.close()
    return {
        "model": model_name,
        "rounds_timed": rounds,
        "eager_round_s": round(t_eager, 4),
        "compiled_round_s": round(t_comp, 4),
        "speedup": round(t_eager / t_comp, 4),
        "byte_identical": states[False] == states[True],
    }


# --------------------------------------------------------------------- #
# regression gate                                                        #
# --------------------------------------------------------------------- #
def check_regressions(record, baseline_doc, factor, min_speedup):
    """Failures of the current record against the committed baseline
    (passed as the baseline file's *pre-run* text, since the run may
    have overwritten it)."""
    failures = []
    for row in record["e2e"]:
        if not row["byte_identical"]:
            failures.append(f"e2e {row['model']}: state not byte-identical")
    for m in record["micro"]:
        if m.get("arena_misses_steady"):
            failures.append(
                f"micro {m['name']}: {m['arena_misses_steady']} arena "
                f"misses in steady-state replay (expected 0)")

    def floor_failures(e2e_rows, which):
        for row in e2e_rows:
            if row["model"] == "resnet20" and row["speedup"] < min_speedup:
                yield (f"e2e resnet20: {which} speedup "
                       f"{row['speedup']:.2f}x below the {min_speedup}x "
                       f"floor")

    if not record.get("smoke"):
        failures.extend(floor_failures(record["e2e"], "live"))
    if baseline_doc is None:
        return failures + ["no committed baseline to check against"]
    try:
        baseline = json.loads(baseline_doc)
    except json.JSONDecodeError as exc:
        return failures + [f"unreadable baseline: {exc}"]
    failures.extend(floor_failures(baseline.get("e2e", []), "baseline"))
    base_micro = {m["name"]: m for m in baseline.get("micro", [])}
    for m in record["micro"]:
        base = base_micro.get(m["name"])
        if base is None:
            continue
        # Same 0.15ms absolute slack as bench_kernels: the committed
        # baseline is a quiet-box min-of-many; smoke runs jitter.
        if m["compiled_ms"] > factor * base["compiled_ms"] + 0.15:
            failures.append(
                f"micro {m['name']}: compiled {m['compiled_ms']:.3f}ms vs "
                f"baseline {base['compiled_ms']:.3f}ms (> {factor}x)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: few repeats, one timed round")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the committed baseline")
    parser.add_argument("--check-factor", type=float, default=1.5,
                        help="allowed compiled-time slowdown for --check")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="--check floor for the resnet20 e2e speedup "
                             "(full runs and committed baseline rows; the "
                             "quiet-box target is >= 1.3x)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="micro repeats (default 40, smoke 10)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timed e2e rounds (default 2, smoke 1)")
    parser.add_argument("--models", nargs="+", default=["resnet20", "vgg11"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=str(OUT_PATH))
    parser.add_argument("--baseline", default=str(OUT_PATH),
                        help="baseline JSON for --check (default: --out)")
    args = parser.parse_args(argv)

    repeats = args.repeats or (10 if args.smoke else 40)
    rounds = args.rounds or (1 if args.smoke else 2)
    clients = 3 if args.smoke else 6
    samples = 400 if args.smoke else 1200

    baseline_path = Path(args.baseline)
    baseline_doc = baseline_path.read_text() if baseline_path.exists() else None

    micro_specs = [
        # (model, size, chans, bs, check_arena) — cnn2.bs4 is the
        # dispatch-overhead probe, resnet20.bs4 the headline config,
        # bs16/bs32 the progressively kernel-bound limit.
        ("cnn2", 16, 1, 4, False),
        ("resnet20", 16, 3, 4, True),
        ("resnet20", 16, 3, 16, False),
        ("resnet20", 16, 3, 32, False),
        ("vgg11", 32, 3, 8, False),
    ]
    micro = []
    for model_name, size, chans, bs, check_arena in micro_specs:
        row = micro_case(model_name, size, chans, bs, repeats,
                         seed=args.seed, check_arena=check_arena)
        micro.append(row)
        extra = ""
        if "arena_misses_steady" in row:
            extra = f" arena_misses={row['arena_misses_steady']}"
        print(f"{row['name']:16s} eager={row['eager_ms']:8.3f}ms "
              f"compiled={row['compiled_ms']:8.3f}ms "
              f"speedup={row['speedup']:5.2f}x{extra}")

    e2e = []
    for model_name in args.models:
        row = e2e_case(model_name, rounds, clients, samples, args.seed)
        e2e.append(row)
        status = "OK" if row["byte_identical"] else "STATE MISMATCH"
        print(f"e2e {model_name:10s} eager={row['eager_round_s']:7.2f}s "
              f"compiled={row['compiled_round_s']:7.2f}s "
              f"speedup={row['speedup']:5.2f}x [{status}]")

    from repro.obs.metrics import blas_env, get_registry, observe_peak_rss
    counters = get_registry().snapshot()["counters"]
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "smoke": args.smoke,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": __import__("numpy").__version__,
        "peak_rss_bytes": observe_peak_rss(),
        "env": blas_env(),
        "compile_counters": {k: v for k, v in sorted(counters.items())
                             if k.startswith("compile.")},
        "micro": micro,
        "e2e": e2e,
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"written to {out}")

    if args.check:
        failures = check_regressions(record, baseline_doc, args.check_factor,
                                     args.min_speedup)
        for f in failures:
            print(f"REGRESSION: {f}")
        return 1 if failures else 0
    return 0 if all(r["byte_identical"] for r in e2e) else 1


if __name__ == "__main__":
    raise SystemExit(main())
