"""Serial-vs-parallel round wall-time benchmark (DESIGN.md §9).

Runs the same FedAvg workload under the serial executor and under
process pools of increasing width, verifies every run is byte-identical
to serial, and appends one record per invocation to
``BENCH_parallel.json`` at the repo root::

    python benchmarks/bench_parallel.py                    # defaults
    python benchmarks/bench_parallel.py --clients 8 --rounds 3 \
        --workers 1 2 4 --scale tiny

Speedup is reported relative to the serial run.  On a single-core
container expect speedup < 1 — the measurement is still the point: it
quantifies the fan-out overhead (fork + state sync + update decode) that
DESIGN.md §9's serial-vs-process guidance is based on.  This script is
deliberately *not* a pytest-benchmark test: one invocation produces the
whole curve, and the tier-1 suite already asserts the byte-identity the
curve depends on.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import time
from pathlib import Path

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def run_once(cfg, workers: int) -> tuple[float, bytes, list]:
    """One full run at the given worker count; returns (wall_s, state, accs)."""
    from repro.experiments.configs import make_algorithm, make_setting
    from repro.fl.comm import serialize_state
    from repro.fl.parallel import make_executor

    model_fn, clients = make_setting(cfg)
    algo = make_algorithm("fedavg", cfg, model_fn, clients,
                          executor=make_executor(workers))
    try:
        t0 = time.perf_counter()
        results = [algo.run_round(r) for r in range(cfg.rounds)]
        wall = time.perf_counter() - t0
        state = serialize_state(algo.global_model.state_dict())
    finally:
        algo.close()
    return wall, state, [r.avg_val_acc for r in results]


def main(argv=None) -> int:
    """Run the curve, verify byte-identity, append to BENCH_parallel.json."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=os.environ.get(
        "REPRO_BENCH_SCALE", "tiny"), choices=["tiny", "small", "paper"])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--local-epochs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                        help="worker counts to sweep (1 = serial baseline)")
    parser.add_argument("--out", default=str(OUT_PATH),
                        help="JSON history file to append to")
    args = parser.parse_args(argv)

    from repro.experiments.configs import config_for
    cfg = config_for(args.scale, n_clients=args.clients, sample_ratio=1.0,
                     rounds=args.rounds, local_epochs=args.local_epochs,
                     seed=args.seed)

    sweep = sorted(set([1] + list(args.workers)))
    rows, baseline_wall, baseline_state = [], None, None
    for workers in sweep:
        wall, state, accs = run_once(cfg, workers)
        if workers == 1:
            baseline_wall, baseline_state = wall, state
        identical = state == baseline_state
        rows.append({
            "workers": workers,
            "wall_s": round(wall, 4),
            "wall_s_per_round": round(wall / cfg.rounds, 4),
            "speedup_vs_serial": round(baseline_wall / wall, 4),
            "byte_identical_to_serial": identical,
            "final_acc": round(accs[-1], 4),
        })
        status = "OK" if identical else "STATE MISMATCH"
        print(f"workers={workers:2d}  wall={wall:8.2f}s  "
              f"speedup={baseline_wall / wall:5.2f}x  [{status}]")

    from repro.obs.metrics import observe_peak_rss
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "scale": args.scale,
        "config": {"clients": args.clients, "rounds": args.rounds,
                   "local_epochs": args.local_epochs, "seed": args.seed,
                   "model": cfg.model},
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "peak_rss_bytes": observe_peak_rss(),
        "results": rows,
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []                        # corrupt file: restart history
    history.append(record)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended to {out}")
    return 0 if all(r["byte_identical_to_serial"] for r in rows) else 1


if __name__ == "__main__":
    raise SystemExit(main())
