"""Round wall-time benchmark across execution engines (DESIGN.md §9/§14).

Runs the same FedAvg workload under every requested executor — the
in-process serial loop, process pools of increasing width (optionally
with the shared-memory broadcast transport), and the vectorized cohort
executor — verifies every run is byte-identical to serial, and appends
one record per invocation to ``BENCH_parallel.json`` at the repo root::

    python benchmarks/bench_parallel.py                    # default sweep
    python benchmarks/bench_parallel.py --executors serial process:4 \
        process:4+shm vectorized --clients 8 --rounds 3 --scale tiny
    python benchmarks/bench_parallel.py --smoke --check    # CI gate

Executor specs: ``serial``, ``vectorized``, ``process:N`` (pool of N
workers), ``process:N+shm`` (same, broadcast state through shared
memory).  Speedup is reported relative to the serial run.  On a
single-core container expect ``process`` speedup < 1 — the measurement
quantifies the fan-out overhead DESIGN.md §9's guidance is based on —
while ``vectorized`` should beat serial there: batching the cohort's
local training into stacked GEMMs removes per-client Python/autodiff
overhead without adding processes (DESIGN.md §14).

``--check`` turns measured floors into an exit code (see
:func:`check_rows`); ``--smoke`` shrinks the workload for CI.  This
script is deliberately *not* a pytest-benchmark test: one invocation
produces the whole curve, and the tier-1 suite already asserts the
byte-identity the curve depends on.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import time
from pathlib import Path

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

#: Default ``--check`` floors on ``speedup_vs_serial`` per engine kind.
#: ``vectorized`` must actually win (that is its reason to exist);
#: ``process`` on a 1-CPU box loses to fan-out overhead by design, so
#: its floor only catches pathological regressions (~0.88x measured).
DEFAULT_FLOORS = {"vectorized": 1.0, "process": 0.70}


def parse_spec(spec: str) -> dict:
    """``serial`` | ``vectorized`` | ``process:N`` | ``process:N+shm``."""
    shm = spec.endswith("+shm")
    base = spec[:-4] if shm else spec
    kind, _, n = base.partition(":")
    if kind not in ("serial", "process", "vectorized"):
        raise ValueError(f"unknown executor spec {spec!r}")
    if kind == "process" and not n:
        raise ValueError(f"process spec needs a width, e.g. process:2 "
                         f"(got {spec!r})")
    if shm and kind != "process":
        raise ValueError(f"+shm only applies to process specs (got {spec!r})")
    return {"spec": spec, "kind": kind, "workers": int(n) if n else 1,
            "shm": shm}


def make_spec_executor(spec: dict):
    """Build the executor a parsed spec describes."""
    from repro.fl.parallel import make_executor
    return make_executor(spec["workers"], kind=spec["kind"], shm=spec["shm"])


def run_once(cfg, spec: dict) -> tuple[float, bytes, list]:
    """One full run under one executor; returns (wall_s, state, accs)."""
    from repro.experiments.configs import make_algorithm, make_setting
    from repro.fl.comm import serialize_state

    model_fn, clients = make_setting(cfg)
    algo = make_algorithm("fedavg", cfg, model_fn, clients,
                          executor=make_spec_executor(spec))
    try:
        t0 = time.perf_counter()
        results = [algo.run_round(r) for r in range(cfg.rounds)]
        wall = time.perf_counter() - t0
        state = serialize_state(algo.global_model.state_dict())
    finally:
        algo.close()
    return wall, state, [r.avg_val_acc for r in results]


def check_rows(rows: list[dict], floors: dict | None = None) -> list[str]:
    """Regression gate over one sweep's rows; returns human-readable errors.

    Every row must be byte-identical to serial, and each engine kind with
    a floor in ``floors`` (defaults: :data:`DEFAULT_FLOORS`) must reach
    that ``speedup_vs_serial``.  Pure function so tests can feed it
    synthetic rows.
    """
    floors = {**DEFAULT_FLOORS, **(floors or {})}
    errors = []
    for row in rows:
        spec = row["executor"]
        if not row.get("byte_identical_to_serial", False):
            errors.append(f"{spec}: final state diverged from serial")
            continue
        kind = spec.split("+")[0].split(":")[0]
        floor = floors.get(kind)
        if floor is not None and row["speedup_vs_serial"] < floor:
            errors.append(f"{spec}: speedup {row['speedup_vs_serial']:.3f}x "
                          f"below the {floor:.2f}x floor")
    return errors


def main(argv=None) -> int:
    """Run the sweep, verify byte-identity, append to BENCH_parallel.json."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=os.environ.get(
        "REPRO_BENCH_SCALE", "tiny"), choices=["tiny", "small", "paper"])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--local-epochs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--executors", nargs="+",
                        default=["serial", "process:2", "process:2+shm",
                                 "vectorized"],
                        help="executor specs to sweep (serial is always "
                             "run first as the baseline)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast workload for CI (overrides "
                             "--clients/--rounds/--local-epochs)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless every row passes "
                             "check_rows() (byte-identity + speedup floors)")
    parser.add_argument("--out", default=str(OUT_PATH),
                        help="JSON history file to append to")
    args = parser.parse_args(argv)

    if args.smoke:
        # 3 rounds, not 2: the vectorized engine pays its cohort setup
        # (trainer construction + parameter stacking) in round 0, and at
        # 2 rounds the amortized speedup sits right on the 1.0x --check
        # floor; the third round gives the CI gate real margin.
        args.clients, args.rounds, args.local_epochs = 8, 3, 1

    from repro.experiments.configs import config_for
    cfg = config_for(args.scale, n_clients=args.clients, sample_ratio=1.0,
                     rounds=args.rounds, local_epochs=args.local_epochs,
                     seed=args.seed)

    specs = [parse_spec(s) for s in args.executors]
    if not any(s["kind"] == "serial" for s in specs):
        specs.insert(0, parse_spec("serial"))
    specs.sort(key=lambda s: s["kind"] != "serial")   # baseline first

    rows, baseline_wall, baseline_state = [], None, None
    for spec in specs:
        wall, state, accs = run_once(cfg, spec)
        if baseline_state is None:
            baseline_wall, baseline_state = wall, state
        identical = state == baseline_state
        rows.append({
            "executor": spec["spec"],
            "workers": spec["workers"],
            "wall_s": round(wall, 4),
            "wall_s_per_round": round(wall / cfg.rounds, 4),
            "speedup_vs_serial": round(baseline_wall / wall, 4),
            "byte_identical_to_serial": identical,
            "final_acc": round(accs[-1], 4),
        })
        status = "OK" if identical else "STATE MISMATCH"
        print(f"{spec['spec']:16s}  wall={wall:8.2f}s  "
              f"speedup={baseline_wall / wall:5.2f}x  [{status}]")

    from repro.obs.metrics import blas_env, observe_peak_rss
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "scale": args.scale,
        "config": {"clients": args.clients, "rounds": args.rounds,
                   "local_epochs": args.local_epochs, "seed": args.seed,
                   "model": cfg.model},
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "peak_rss_bytes": observe_peak_rss(),
        "env": blas_env(),
        "results": rows,
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []                        # corrupt file: restart history
    history.append(record)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended to {out}")

    if args.check:
        errors = check_rows(rows)
        for err in errors:
            print(f"CHECK FAILED: {err}")
        return 1 if errors else 0
    return 0 if all(r["byte_identical_to_serial"] for r in rows) else 1


if __name__ == "__main__":
    raise SystemExit(main())
