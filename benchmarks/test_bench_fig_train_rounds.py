"""Train-rounds figure: rounds each method needs to hit target accuracies
(§V-C, Fig. "train_rounds").

Shape check: SPATL needs no more rounds than the slowest baselines at each
reachable target (the paper shows SPATL fewest-or-near-fewest everywhere).
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import rounds_to_target_figure

METHODS = ("fedavg", "fedprox", "scaffold", "spatl")


def test_rounds_to_targets(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=6, sample_ratio=0.7,
                       rounds=12)
    table = once(rounds_to_target_figure, cfg, (0.4, 0.5, 0.6), METHODS, 12)
    print("\n=== rounds to target ===")
    for method, hits in table.items():
        print(f"{method:9s}", {t: hits[t] for t in sorted(hits)})
    benchmark.extra_info["rounds_to_target"] = json.dumps(
        {m: {str(t): v for t, v in hits.items()} for m, hits in table.items()})

    for target in (0.4, 0.5):
        spatl = table["spatl"][target]
        others = [v for m, v in ((m, table[m][target]) for m in METHODS
                                 if m != "spatl") if v is not None]
        if spatl is not None and others:
            assert spatl <= max(others) + 2
