"""Per-client accuracy figure (§V-B, fig:local_acc).

SPATL vs SCAFFOLD on ResNet-20: SPATL's private predictors give uniform
per-client accuracy; the shared-model baseline shows higher variance and a
worse worst-client.
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import local_accuracy_figure


def test_local_accuracy_spread(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=8, sample_ratio=1.0,
                       beta=0.3, rounds=10)
    stats = once(local_accuracy_figure, cfg, ("spatl", "scaffold"), 10)
    print("\n=== per-client accuracy (resnet20) ===")
    for method, s in stats.items():
        pc = [round(a, 3) for a in s["per_client"]]
        print(f"{method:9s} {pc} mean={s['mean']:.3f} std={s['std']:.3f} "
              f"min={s['min']:.3f}")
    benchmark.extra_info["stats"] = json.dumps(
        {m: {k: v for k, v in s.items() if k != "per_client"}
         for m, s in stats.items()})

    # Paper shape: SPATL's clients cluster (better mean and not more
    # spread out than the shared-model baseline).
    assert stats["spatl"]["mean"] >= stats["scaffold"]["mean"] - 0.02
    assert stats["spatl"]["min"] >= stats["scaffold"]["min"] - 0.05
