"""Transferability table (Table III, §V-E).

FL-train on one split, fine-tune on a held-out split.  Paper shape:
SPATL's encoder (trained without ever sharing a predictor) transfers
comparably to fully-shared baselines.
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import transferability_table


def test_transferability(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=6, sample_ratio=1.0,
                       rounds=8)
    results = once(transferability_table, cfg,
                   ("fedavg", "scaffold", "spatl"), 0.25, 3, 8)
    print("\n=== Table III: transfer to held-out data ===")
    for m, r in results.items():
        print(f"{m:9s} fl_acc={r['fl_acc']:.3f} zero_shot={r['zero_shot_acc']:.3f} "
              f"transfer={r['transfer_acc']:.3f}")
    benchmark.extra_info["results"] = json.dumps(
        {m: {k: round(v, 4) for k, v in r.items()}
         for m, r in results.items()})

    # transfer fine-tuning must actually help over zero-shot
    for m, r in results.items():
        assert r["transfer_acc"] >= r["zero_shot_acc"] - 0.05, m
    # parity: SPATL within a few points of the best baseline
    best_baseline = max(r["transfer_acc"] for m, r in results.items()
                        if m != "spatl")
    assert results["spatl"]["transfer_acc"] >= best_baseline - 0.15
