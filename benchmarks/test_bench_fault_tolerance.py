"""Fault tolerance: accuracy degradation vs injected failure rate.

The paper's setting is unreliable edge clients, so this benchmark runs
the full federated loop under a seeded fault model (client drops +
payload corruption through the checksummed codec) and records how much
accuracy each method family loses relative to its own fault-free run.
Shape checks (generous margins):

- every run completes all rounds without an exception, even at a 30%
  per-attempt drop rate;
- the fault-free column reports zero fault events;
- at 30% drops the fault counters are nonzero (injection actually fired)
  and retried payloads are visible as extra communicated bytes;
- degradation stays bounded: within 20 accuracy points of fault-free at
  this scale (the acceptance bar in tests is 10 points at a fixed seed;
  the benchmark margin is looser because the scale knob varies).
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments.fault_tolerance import (fault_degradation_curve,
                                               render_fault_table)

RATES = (0.0, 0.3)
METHODS = ("fedavg", "spatl")


def test_fault_degradation(once, benchmark):
    cfg = bench_config(n_clients=8, sample_ratio=0.75, rounds=6,
                       min_clients=2)
    results = once(fault_degradation_curve, cfg, RATES, METHODS,
                   0.05, cfg.rounds)
    print("\n" + render_fault_table(results))

    benchmark.extra_info["rows"] = json.dumps(
        {m: {str(p): [round(r["final_acc"], 4), r["n_dropped"],
                      r["n_retries"], r["n_corrupt"], r["n_resamples"],
                      round(r["total_gb"], 6)]
             for p, r in per_rate.items()} for m, per_rate in results.items()})

    for method in METHODS:
        clean = results[method][0.0]
        faulty = results[method][0.3]
        # all rounds completed under both regimes
        assert clean["rounds_run"] == cfg.rounds
        assert faulty["rounds_run"] == cfg.rounds
        # fault-free column is genuinely fault-free
        assert clean["n_dropped"] == 0 and clean["n_corrupt"] == 0
        assert clean["n_retries"] == 0
        # injection fired at 30% and corrupted payloads were detected
        assert faulty["n_dropped"] > 0
        assert faulty["n_corrupt"] > 0 or faulty["n_retries"] > 0
        # bounded degradation (generous: 20 points at variable scale)
        assert clean["final_acc"] - faulty["final_acc"] <= 0.20
