"""Model sweep rows of Tables I/II: ResNet-32 and VGG-11.

The per-architecture rows of the communication tables: same protocol
comparison on the deeper ResNet-32 and the much wider VGG-11 (where the
salient upload matters most — VGG's prunable convs are ~97% of its encoder
bytes, vs ~40% for ResNet's block-internal convs).
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import make_algorithm, make_setting
from repro.models import paper_model_size_mb


def _one_round_costs(cfg, methods):
    out = {}
    for method in methods:
        model_fn, clients = make_setting(cfg)
        algo = make_algorithm(method, cfg, model_fn, clients)
        result = algo.run_round(0)
        out[method] = {
            "mb_per_client": algo.ledger.per_round_per_client_mb(),
            "acc_after_1": result.avg_val_acc,
        }
    return out


def test_resnet32_and_vgg11_costs(once, benchmark):
    methods = ("fedavg", "scaffold", "spatl")

    def run_all():
        res32 = bench_config(model="resnet32", n_clients=4, sample_ratio=1.0,
                             n_samples=1000, local_epochs=1)
        vgg = bench_config(model="vgg11", n_clients=4, sample_ratio=1.0,
                           n_samples=1000, local_epochs=1, input_size=32,
                           width_mult=0.125)
        return {"resnet32": _one_round_costs(res32, methods),
                "vgg11": _one_round_costs(vgg, methods)}

    results = once(run_all)
    print("\n=== per-round/client MB by architecture (scaled) ===")
    for model, rows in results.items():
        full = paper_model_size_mb(model)
        print(f"{model} (full-size encoder {full:.2f} MB):")
        for m, r in rows.items():
            print(f"  {m:9s} {r['mb_per_client']:.3f} MB  "
                  f"acc@1round={r['acc_after_1']:.3f}")
    benchmark.extra_info["results"] = json.dumps(
        {mdl: {m: round(r["mb_per_client"], 4) for m, r in rows.items()}
         for mdl, rows in results.items()})

    for model, rows in results.items():
        # SCAFFOLD ~2x FedAvg on every architecture
        assert rows["scaffold"]["mb_per_client"] > \
            1.6 * rows["fedavg"]["mb_per_client"], model
        # SPATL under SCAFFOLD everywhere
        assert rows["spatl"]["mb_per_client"] < \
            rows["scaffold"]["mb_per_client"], model
    # VGG's salient upload saves relatively more than ResNet's
    rel = {m: results[m]["spatl"]["mb_per_client"]
           / results[m]["scaffold"]["mb_per_client"]
           for m in ("resnet32", "vgg11")}
    print("spatl/scaffold cost ratio:", {k: round(v, 3)
                                         for k, v in rel.items()})
    assert rel["vgg11"] <= rel["resnet32"] + 0.05
