"""Fig. 3 + the vgg_cifar curve grid: learning efficiency (§V-B).

Regenerates accuracy-vs-round series for SPATL and the four baselines and
checks the paper's shape: SPATL reaches competitive-or-better converged
accuracy with a visibly more stable trajectory than FedAvg.
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import learning_efficiency_curves
from repro.experiments.ablation import stability
from repro.experiments.learning_efficiency import converge_accuracy_summary

METHODS = ("fedavg", "fedprox", "fednova", "scaffold", "spatl")


def test_learning_efficiency_resnet20(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=6, sample_ratio=0.7)
    results = once(learning_efficiency_curves, cfg, METHODS)

    curves = {m: [round(a, 4) for a in log["val_acc"]]
              for m, log in results.items()}
    summary = converge_accuracy_summary(results)
    benchmark.extra_info["curves"] = json.dumps(curves)
    benchmark.extra_info["converge_acc"] = json.dumps(
        {k: round(v, 4) for k, v in summary.items()})

    print("\n=== Fig. 3 / learning efficiency (resnet20, "
          f"{cfg.n_clients} clients, ratio {cfg.sample_ratio}) ===")
    for m, series in curves.items():
        print(f"{m:9s} {series}  converge={summary[m]:.3f} "
              f"stability={stability(series):.3f}")

    # Paper shape: SPATL competitive-or-better converged accuracy vs the
    # mean baseline, and smoother than FedAvg.
    baselines = [v for k, v in summary.items() if k != "spatl"]
    assert summary["spatl"] >= min(baselines) - 0.05
    assert stability(curves["spatl"]) <= stability(curves["fedavg"]) + 0.05
