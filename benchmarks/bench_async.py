"""Async runtime benchmark: determinism, sync equivalence, speedup, parity.

Exercises the event-driven asynchronous runtime (DESIGN.md §12) along the
four axes its acceptance rests on:

- **determinism** — the same seed twice, under a hostile profile
  (stragglers + churn + crashes + duplicate deliveries), must produce the
  byte-identical final global state, identical counters, and identical
  virtual end time;
- **sync_equiv** — with ``buffer_k == cohort``, ``max_inflight >=
  cohort``, uniform durations, and no churn, the async runtime must
  reproduce the synchronous round loop **bitwise** (state and ledger) for
  both FedAvg and SPATL;
- **speedup** — under a straggler-heavy profile, async must reach the
  sync run's final training loss in less *virtual* wall-time
  (``repro.experiments.async_convergence``, deterministic — the gate is
  stable across machines);
- **ledger_exact** — a traced async run's serialize/deserialize span
  byte totals must equal each other and the ledger's total exactly;
- **loop** — pure event-loop overhead (stub algorithm, no neural net):
  wall time per processed event, the only *timed* metric and the only
  one compared against the committed baseline with slack.

Writes the record to ``BENCH_async.json`` at the repo root (the
committed copy is the regression baseline)::

    python benchmarks/bench_async.py               # full run
    python benchmarks/bench_async.py --smoke       # CI-sized
    python benchmarks/bench_async.py --smoke --check  # + regression gate

``--check`` fails on any broken invariant (those never depend on the
baseline), on counter drift vs the committed baseline (event counts are
seed-deterministic and machine-independent), and on event-loop overhead
beyond ``--check-factor`` of the baseline plus an absolute noise floor.
Model-state fingerprints are recorded for *same-machine* comparison (the
CI golden-determinism job runs the bench twice and diffs) but are never
checked against the committed baseline — BLAS differences make training
floats machine-specific.
"""

from __future__ import annotations

import argparse
import datetime
import json
import math
import os
import platform
import time
from pathlib import Path

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_async.json"

HOSTILE = dict(jitter=0.3, straggler_prob=0.4, slowdown=6.0,
               arrival_spread=1.0, churn_prob=0.15, crash_prob=0.05,
               duplicate_prob=0.2)


def _final_crc(algo) -> int:
    from repro.fl import state_fingerprint
    return state_fingerprint(dict(algo.global_model.state_dict()))


def determinism_case(steps: int, clients: int, samples: int,
                     seed: int) -> dict:
    """Same seed twice under the hostile profile: everything must match."""
    from repro.experiments.configs import config_for, make_algorithm, \
        make_setting
    from repro.fl import AsyncConfig, AsyncFederatedRunner, AsyncProfile

    cfg = config_for("tiny", n_clients=clients, n_samples=samples,
                     local_epochs=1, sample_ratio=1.0, seed=seed)
    profile = AsyncProfile(seed=seed, **HOSTILE)
    acfg = AsyncConfig(buffer_k=2, staleness_alpha=0.5,
                       max_inflight=max(2, clients // 2),
                       max_queue=clients, commit_deadline=8.0)

    def one_run():
        model_fn, cl = make_setting(cfg)
        algo = make_algorithm("fedavg", cfg, model_fn, cl)
        runner = AsyncFederatedRunner(algo, profile, acfg)
        runner.run(steps=steps)
        return (_final_crc(algo), dict(runner.counters),
                runner.clock.now, algo.ledger.total_bytes())

    crc_a, counters_a, t_a, bytes_a = one_run()
    crc_b, counters_b, t_b, bytes_b = one_run()
    return {
        "name": "determinism",
        "steps": steps,
        "identical": (crc_a == crc_b and counters_a == counters_b
                      and t_a == t_b and bytes_a == bytes_b),
        "state_crc": crc_a,            # same-machine comparison only
        "counters": counters_a,
        "virtual_time": t_a,
        "ledger_bytes": bytes_a,
    }


def sync_equiv_case(algo_name: str, rounds: int, clients: int,
                    samples: int, seed: int) -> dict:
    """buffer_k == cohort + uniform durations must reproduce sync bitwise."""
    from repro.experiments.configs import config_for, make_algorithm, \
        make_setting
    from repro.fl import AsyncConfig, AsyncFederatedRunner, AsyncProfile
    from repro.fl.comm import serialize_state

    cfg = config_for("tiny", n_clients=clients, n_samples=samples,
                     local_epochs=1, sample_ratio=1.0, seed=seed)
    model_fn, cl = make_setting(cfg)
    sync_algo = make_algorithm(algo_name, cfg, model_fn, cl)
    sync_algo.run(rounds)
    model_fn, cl = make_setting(cfg)
    async_algo = make_algorithm(algo_name, cfg, model_fn, cl)
    runner = AsyncFederatedRunner(
        async_algo, AsyncProfile(seed=seed),
        AsyncConfig(buffer_k=clients, max_inflight=clients))
    results = runner.run(steps=rounds)
    return {
        "name": f"sync_equiv.{algo_name}",
        "rounds": rounds,
        "byte_identical": (
            serialize_state(dict(sync_algo.global_model.state_dict()))
            == serialize_state(dict(async_algo.global_model.state_dict()))),
        "ledger_equal": (sync_algo.ledger.total_bytes()
                         == async_algo.ledger.total_bytes()),
        "zero_staleness": all(r.max_staleness == 0 for r in results),
    }


def speedup_case(rounds: int, clients: int, samples: int, seed: int) -> dict:
    """Straggler-heavy profile: async time-to-target < sync (virtual)."""
    from repro.experiments.async_convergence import async_convergence
    from repro.experiments.configs import config_for

    cfg = config_for("tiny", n_clients=clients, n_samples=samples,
                     local_epochs=1, sample_ratio=1.0, seed=seed,
                     rounds=rounds)
    result = async_convergence(cfg, "fedavg")
    return {
        "name": "straggler_speedup",
        "rounds": rounds,
        "speedup": round(result["speedup"], 4),
        "sync_time_to_target": round(result["sync"]["time_to_target"], 4),
        "async_time_to_target": round(result["async"]["time_to_target"], 4),
        "target_reached": math.isfinite(result["async"]["time_to_target"]),
    }


def ledger_exact_case(steps: int, clients: int, samples: int,
                      seed: int) -> dict:
    """Traced run: codec span byte totals == ledger total, exactly."""
    from repro.experiments.configs import config_for, make_algorithm, \
        make_setting
    from repro.fl import AsyncConfig, AsyncFederatedRunner, AsyncProfile
    from repro.obs import Tracer, codec_byte_totals, set_tracer

    cfg = config_for("tiny", n_clients=clients, n_samples=samples,
                     local_epochs=1, sample_ratio=1.0, seed=seed)
    model_fn, cl = make_setting(cfg)
    algo = make_algorithm("fedavg", cfg, model_fn, cl)
    runner = AsyncFederatedRunner(
        algo, AsyncProfile(seed=seed, **HOSTILE),
        AsyncConfig(buffer_k=2, max_inflight=clients))
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        runner.run(steps=steps)
    finally:
        set_tracer(previous)
    codec = codec_byte_totals(tracer)
    ledger = algo.ledger.total_bytes()
    return {
        "name": "ledger_exact",
        "steps": steps,
        "serialize_bytes": int(codec["serialize"]),
        "deserialize_bytes": int(codec["deserialize"]),
        "ledger_bytes": ledger,
        "exact": (int(codec["serialize"]) == ledger
                  and int(codec["deserialize"]) == ledger),
    }


def loop_overhead_case(steps: int, repeats: int, seed: int) -> dict:
    """Event-loop overhead with the stub algorithm (no neural net)."""
    from repro.fl import AsyncConfig, AsyncFederatedRunner, AsyncProfile
    from repro.fl.stub import make_stub

    profile = AsyncProfile(seed=seed, **HOSTILE)
    acfg = AsyncConfig(buffer_k=4, max_inflight=8, max_queue=8)
    best, events = float("inf"), 0
    for _ in range(repeats):
        runner = AsyncFederatedRunner(make_stub(n_clients=16, seed=seed),
                                      profile, acfg)
        t0 = time.perf_counter()
        runner.run(steps=steps)
        dt = time.perf_counter() - t0
        events = sum(runner.counters[k] for k in
                     ("dispatched", "accepted", "crashed", "deduped",
                      "rejected"))
        best = min(best, dt)
    return {
        "name": "loop_overhead",
        "steps": steps,
        "events": events,
        "us_per_event": round(best / events * 1e6, 3),
        "total_s": round(best, 4),
    }


def check_regressions(record: dict, baseline_doc: str | None,
                      factor: float) -> list[str]:
    """Failures of the current record (baseline passed as pre-run text)."""
    failures = []
    cases = {c["name"]: c for c in record["cases"]}
    if not cases["determinism"]["identical"]:
        failures.append("determinism: same seed produced different runs")
    for name, case in cases.items():
        if name.startswith("sync_equiv."):
            if not case["byte_identical"]:
                failures.append(f"{name}: final state not byte-identical "
                                "to the synchronous loop")
            if not case["ledger_equal"]:
                failures.append(f"{name}: ledger totals differ from sync")
            if not case["zero_staleness"]:
                failures.append(f"{name}: staleness observed in the "
                                "equivalence regime")
    if not cases["ledger_exact"]["exact"]:
        failures.append("ledger_exact: traced codec bytes != ledger total")
    spd = cases["straggler_speedup"]
    if not spd["target_reached"]:
        failures.append("straggler_speedup: async never reached the "
                        "sync target loss")
    elif spd["speedup"] < 1.05:
        failures.append(f"straggler_speedup: {spd['speedup']}x < 1.05x")
    if baseline_doc is None:
        return failures + ["no committed baseline to check against"]
    try:
        baseline = json.loads(baseline_doc)
    except json.JSONDecodeError as exc:
        return failures + [f"unreadable baseline: {exc}"]
    base_cases = {c["name"]: c for c in baseline.get("cases", [])}
    base_det = base_cases.get("determinism")
    # Event counts are pure functions of the seeds (no training floats in
    # the schedule), so they must match the committed baseline everywhere.
    if base_det and base_det.get("steps") == cases["determinism"]["steps"] \
            and base_det["counters"] != cases["determinism"]["counters"]:
        failures.append(
            f"determinism: counters drifted from baseline "
            f"({cases['determinism']['counters']} != {base_det['counters']})")
    base_loop = base_cases.get("loop_overhead")
    if base_loop and base_loop.get("steps") == cases["loop_overhead"]["steps"]:
        cur = cases["loop_overhead"]["us_per_event"]
        # 3us absolute slack: sub-10us medians jitter hard on shared CI.
        if cur > factor * base_loop["us_per_event"] + 3.0:
            failures.append(
                f"loop_overhead: {cur}us/event vs baseline "
                f"{base_loop['us_per_event']}us (> {factor}x)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: fewer steps/rounds/clients")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the committed baseline")
    parser.add_argument("--check-factor", type=float, default=1.5,
                        help="allowed slowdown factor for --check")
    parser.add_argument("--repeats", type=int, default=None,
                        help="loop-overhead repeats (default 5, smoke 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=str(OUT_PATH))
    parser.add_argument("--baseline", default=str(OUT_PATH),
                        help="baseline JSON for --check (default: --out)")
    args = parser.parse_args(argv)

    repeats = args.repeats or (3 if args.smoke else 5)
    clients = 4 if args.smoke else 8
    samples = 64 if args.smoke else 160
    steps = 4 if args.smoke else 10
    rounds = 2 if args.smoke else 4
    loop_steps = 200 if args.smoke else 1000

    baseline_path = Path(args.baseline)
    baseline_doc = baseline_path.read_text() if baseline_path.exists() \
        else None

    cases = [determinism_case(steps, clients, samples, args.seed)]
    print(f"determinism        identical={cases[-1]['identical']} "
          f"counters={cases[-1]['counters']}")
    for algo_name in ("fedavg", "spatl"):
        cases.append(sync_equiv_case(algo_name, rounds, clients, samples,
                                     args.seed))
        c = cases[-1]
        print(f"sync_equiv {algo_name:7s} byte_identical="
              f"{c['byte_identical']} ledger_equal={c['ledger_equal']} "
              f"zero_staleness={c['zero_staleness']}")
    cases.append(speedup_case(rounds, clients, samples, args.seed))
    print(f"straggler_speedup  {cases[-1]['speedup']}x "
          f"(sync {cases[-1]['sync_time_to_target']} -> async "
          f"{cases[-1]['async_time_to_target']} virtual)")
    cases.append(ledger_exact_case(steps, clients, samples, args.seed))
    c = cases[-1]
    print(f"ledger_exact       serialize={c['serialize_bytes']} "
          f"deserialize={c['deserialize_bytes']} ledger={c['ledger_bytes']} "
          f"exact={c['exact']}")
    cases.append(loop_overhead_case(loop_steps, repeats, args.seed))
    print(f"loop_overhead      {cases[-1]['us_per_event']}us/event "
          f"({cases[-1]['events']} events in {cases[-1]['total_s']}s)")

    from repro.obs.metrics import blas_env, observe_peak_rss
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": __import__("numpy").__version__,
        "peak_rss_bytes": observe_peak_rss(),
        "env": blas_env(),
        "cases": cases,
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"written to {out}")

    if args.check:
        failures = check_regressions(record, baseline_doc, args.check_factor)
        for f in failures:
            print(f"REGRESSION: {f}")
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
