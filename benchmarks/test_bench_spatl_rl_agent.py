"""SPATL with the full RL pipeline in the loop (§IV-B inside Fig. 1).

The other benches drive SPATL with the static-saliency policy for CPU
economy; this one runs the complete paper pipeline — pre-train the PPO
agent on a pruning task, clone per client, fine-tune the MLP heads online
during the first rounds, one-shot selection afterwards — and checks it
trains while honouring the FLOPs budget.
"""

import json

import numpy as np

from benchmarks.conftest import bench_config
from repro.core import RLSelectionPolicy, SPATL
from repro.data.datasets import train_val_split
from repro.experiments.configs import make_dataset, make_setting
from repro.graph import build_graph
from repro.pruning.baselines import finetune
from repro.rl import pretrain_agent


def test_spatl_with_rl_agent(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=4, sample_ratio=1.0,
                       rounds=5, n_samples=1200, flops_target=0.8)

    def run():
        # pre-train the agent on a centrally trained model (paper: ResNet-56
        # pruning task; here the same scaled family for CPU economy)
        ds = make_dataset(cfg.scaled(seed=cfg.seed + 100))
        pt_train, pt_val = train_val_split(ds, 0.25, seed=0)
        from repro.models import build_model
        pretrain_model = build_model("resnet20", input_size=cfg.input_size,
                                     width_mult=cfg.width_mult, seed=9)
        finetune(pretrain_model, pt_train, epochs=3, lr=cfg.lr, seed=0)
        agent, pre_hist = pretrain_agent(pretrain_model, pt_train, pt_val,
                                         updates=4, episodes_per_update=3,
                                         flops_target=cfg.flops_target,
                                         seed=cfg.seed)
        model_fn, clients = make_setting(cfg)
        policy = RLSelectionPolicy(agent, flops_target=cfg.flops_target,
                                   finetune_rounds=1, finetune_updates=1,
                                   episodes_per_update=2, probe_size=96)
        algo = SPATL(model_fn, clients, selection_policy=policy,
                     lr=cfg.lr, local_epochs=cfg.local_epochs,
                     sample_ratio=cfg.sample_ratio, seed=cfg.seed)
        log = algo.run(cfg.rounds)
        return algo, log, pre_hist

    algo, log, pre_hist = once(run)
    accs = [round(a, 3) for a in log["val_acc"]]
    print("\n=== SPATL + RL agent in the loop ===")
    print("pretrain rewards:", [round(r, 3) for r in pre_hist])
    print("accs:", accs)
    report = algo.inference_report()
    ratios = [r["flops_ratio"] for r in report.values()]
    print("final per-client FLOPs ratios:", [round(r, 3) for r in ratios])
    benchmark.extra_info["accs"] = json.dumps(accs)
    benchmark.extra_info["flops_ratios"] = json.dumps(
        [round(r, 4) for r in ratios])

    assert log["val_acc"][-1] > log["val_acc"][0]
    graph = build_graph(algo.global_model.encoder)
    for sel in algo.last_selection.values():
        assert graph.flops_ratio(sel.keep) <= cfg.flops_target + 1e-6
