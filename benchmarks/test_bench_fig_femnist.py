"""FEMNIST leg of the learning-efficiency figure (§V-B).

The paper's *negative* result: on the under-parameterised 2-layer CNN with
LEAF's writer-partitioned FEMNIST, SPATL's over-parameterisation assumption
breaks and it converges no faster than (sometimes slightly behind) the
baselines.  We reproduce the setting and check SPATL remains within a
modest gap — not that it wins.
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import learning_efficiency_curves
from repro.experiments.learning_efficiency import converge_accuracy_summary


def test_femnist_cnn_negative_result(once, benchmark):
    cfg = bench_config(model="cnn2", dataset="femnist", num_classes=10,
                       input_size=16, n_clients=6, sample_ratio=1.0,
                       rounds=8, n_samples=1800)
    results = once(learning_efficiency_curves, cfg,
                   ("fedavg", "fedprox", "spatl"), 8)
    summary = converge_accuracy_summary(results)
    print("\n=== FEMNIST 2-layer CNN (paper's negative case) ===")
    for m, log in results.items():
        print(f"{m:9s} accs={[round(a, 3) for a in log['val_acc']]}")
    benchmark.extra_info["summary"] = json.dumps(
        {k: round(v, 4) for k, v in summary.items()})

    # everything must train on the writer-partitioned data
    assert all(v > 0.2 for v in summary.values())
    # SPATL allowed to trail slightly (paper: "slightly lower accuracy
    # than SoTAs" here) but not collapse
    baseline_best = max(v for k, v in summary.items() if k != "spatl")
    assert summary["spatl"] >= baseline_best - 0.25
