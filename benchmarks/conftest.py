"""Benchmark-suite configuration.

Every file regenerates one table or figure of the paper (DESIGN.md §3 maps
them).  Runs use the ``tiny``/``small`` CPU scales; the paper-shape
assertions (who wins, by what factor) are checked with generous margins,
and full raw numbers are recorded in ``benchmark.extra_info`` and printed.

Environment knobs:

- ``REPRO_BENCH_SCALE``  — ``tiny`` (default) or ``small``.
- ``REPRO_BENCH_SEED``   — experiment seed (default 0).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import config_for

SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


def bench_config(**overrides):
    overrides.setdefault("seed", SEED)
    return config_for(SCALE, **overrides)


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once (FL rounds are minutes, not
    microseconds) and attach its result to the benchmark record."""

    def runner(fn, *args, **kwargs):
        holder = {}

        def wrapped():
            holder["result"] = fn(*args, **kwargs)

        benchmark.pedantic(wrapped, rounds=1, iterations=1, warmup_rounds=0)
        return holder["result"]

    return runner
