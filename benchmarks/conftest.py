"""Benchmark-suite configuration.

Every file regenerates one table or figure of the paper (DESIGN.md §3 maps
them).  Runs use the ``tiny``/``small`` CPU scales; the paper-shape
assertions (who wins, by what factor) are checked with generous margins,
and full raw numbers are recorded in ``benchmark.extra_info`` and printed.

Besides pytest-benchmark's own output, every session appends one record of
per-test wall times to ``BENCH_obs.json`` at the repo root — a
machine-readable perf trajectory that accumulates across sessions, so
regressions show up as history instead of anecdotes.

Environment knobs:

- ``REPRO_BENCH_SCALE``  — ``tiny`` (default) or ``small``.
- ``REPRO_BENCH_SEED``   — experiment seed (default 0).
- ``REPRO_BENCH_OBS``    — set to ``0`` to skip writing ``BENCH_obs.json``.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.experiments import config_for

SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

_BENCH_OBS_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
_WALL_TIMES: dict[str, float] = {}


def bench_config(**overrides):
    overrides.setdefault("seed", SEED)
    return config_for(SCALE, **overrides)


@pytest.fixture
def once(benchmark, request):
    """Run the measured callable exactly once (FL rounds are minutes, not
    microseconds), attach its result to the benchmark record, and log the
    wall time into the session's ``BENCH_obs.json`` entry."""

    def runner(fn, *args, **kwargs):
        holder = {}

        def wrapped():
            holder["result"] = fn(*args, **kwargs)

        t0 = time.perf_counter()
        benchmark.pedantic(wrapped, rounds=1, iterations=1, warmup_rounds=0)
        _WALL_TIMES[request.node.nodeid] = round(time.perf_counter() - t0, 6)
        return holder["result"]

    return runner


def pytest_sessionfinish(session, exitstatus):
    """Append this session's wall times to the cumulative BENCH_obs.json."""
    if not _WALL_TIMES or os.environ.get("REPRO_BENCH_OBS", "1") == "0":
        return
    history = []
    if _BENCH_OBS_PATH.exists():
        try:
            history = json.loads(_BENCH_OBS_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []                     # corrupt file: restart history
    history.append({
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "scale": SCALE,
        "seed": SEED,
        "python": platform.python_version(),
        "exit_status": int(exitstatus),
        "wall_s": dict(sorted(_WALL_TIMES.items())),
    })
    _BENCH_OBS_PATH.write_text(json.dumps(history, indent=2) + "\n")
