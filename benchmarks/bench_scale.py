"""Population-scale benchmark: peak RSS + round wall time (DESIGN.md §13).

Two families of cases, written to ``BENCH_scale.json`` at the repo root:

* **identity** — the tiny real setting (resnet20 on synthetic CIFAR)
  run through ``ScaleRunner`` with a virtual-client pool, at 1 and 2
  edge aggregators, for FedAvg and SPATL; each case records whether the
  final global state and comm ledger are byte-identical to the
  materialized ``run_round`` baseline.
* **sweep** — stub populations of 1k/10k/100k clients (smoke: 300/1.5k)
  in ``materialized`` / ``streaming`` / ``hier2`` modes.  Each case runs
  in a *fresh subprocess* because peak RSS (``VmHWM``, see
  ``repro.obs.metrics.peak_rss_bytes``) is a process-lifetime high-water
  mark: measuring three modes in one process would report the max of all
  three.  ``VmHWM`` does reset on ``exec``, so each spawned child
  reports its own peak rather than the parent's.  The gate checks that the three modes agree on the
  final-state CRC at every population and that streaming peak RSS stays
  flat (within 2x) from the smallest to the largest population — the
  materialized cohort is the thing that grows.

Usage::

    python benchmarks/bench_scale.py                 # full sweep
    python benchmarks/bench_scale.py --smoke --check # CI gate
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
# Self-contained path guard: --child subprocesses re-exec this file and
# must find repro without relying on the caller's PYTHONPATH.
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

OUT_PATH = REPO / "BENCH_scale.json"


# ------------------------------------------------------------- identity

def _tiny_setting(n_clients: int, n_samples: int):
    from repro.data import SyntheticCIFAR10, dirichlet_partition
    from repro.models import build_model
    ds = SyntheticCIFAR10(n_samples=n_samples, size=12, seed=99)
    parts = dirichlet_partition(ds.y, n_clients, beta=0.5, seed=3)

    def model_fn():
        return build_model("resnet20", width_mult=0.2, input_size=12,
                           seed=11)

    return ds, parts, model_fn


def identity_case(algo_name: str, edges: int, smoke: bool) -> dict:
    """Streaming/hierarchical virtual-pool run vs materialized baseline."""
    from repro.core import SPATL, StaticSaliencyPolicy
    from repro.fl import (ClientStateStore, FedAvg, ScaleRunner,
                          ShardedClientFactory, VirtualClientPool,
                          make_federated_clients, serialize_state)

    rounds = 1 if smoke else 2
    ds, parts, model_fn = _tiny_setting(4, 400 if smoke else 800)

    def build(clients):
        kw = dict(lr=0.05, local_epochs=1, seed=0, sample_ratio=0.7)
        if algo_name == "spatl":
            return SPATL(model_fn, clients,
                         selection_policy=StaticSaliencyPolicy(0.3), **kw)
        return FedAvg(model_fn, clients, **kw)

    base = build(make_federated_clients(ds, parts, batch_size=32, seed=5))
    for r in range(rounds):
        base.run_round(r)
    base_state = serialize_state(base.global_model.state_dict())

    with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as tmp:
        store = ClientStateStore(Path(tmp) / "store")
        factory = ShardedClientFactory(dataset=ds, parts=parts,
                                       batch_size=32, seed=5)
        pool = VirtualClientPool(factory, len(parts), store)
        algo = build(pool.clients())
        runner = ScaleRunner(algo, pool=pool, edges=edges,
                             spill_dir=Path(tmp) / "spills")
        t0 = time.perf_counter()
        for r in range(rounds):
            runner.run_round(r)
        wall = time.perf_counter() - t0
        state = serialize_state(algo.global_model.state_dict())

    return {"kind": "identity",
            "name": f"identity/{algo_name}/edges{edges}",
            "algorithm": algo_name, "edges": edges, "rounds": rounds,
            "byte_identical": state == base_state,
            "ledger_equal":
                algo.ledger.total_bytes() == base.ledger.total_bytes(),
            "wall_s": round(wall, 4)}


# ---------------------------------------------------------------- sweep

def run_child(spec: dict) -> int:
    """One sweep case, isolated in its own process for a clean peak RSS."""
    from repro.fl import (ClientStateStore, ScaleRunner, StubClientFactory,
                          VirtualClientPool, state_fingerprint)
    from repro.fl.stub import DictModel, StubAvg, StubClient
    from repro.obs.metrics import peak_rss_bytes

    mode, population = spec["mode"], spec["population"]
    rounds, seed, dim = spec["rounds"], spec["seed"], spec["dim"]

    def model_fn():
        return DictModel(dim=dim, seed=seed)

    with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as tmp:
        if mode == "materialized":
            clients = [StubClient(cid) for cid in range(population)]
            algo = StubAvg(model_fn, clients, seed=seed, local_epochs=1,
                           sample_ratio=spec["sample_ratio"])
            t0 = time.perf_counter()
            for r in range(rounds):
                algo.run_round(r)
            wall = time.perf_counter() - t0
        else:
            store = ClientStateStore(Path(tmp) / "store")
            pool = VirtualClientPool(StubClientFactory(), population, store,
                                     resident_limit=64)
            algo = StubAvg(model_fn, pool.clients(), seed=seed,
                           local_epochs=1,
                           sample_ratio=spec["sample_ratio"])
            runner = ScaleRunner(algo, pool=pool,
                                 edges=2 if mode == "hier2" else 1,
                                 eval_mode="none", wave=256,
                                 spill_dir=Path(tmp) / "spills")
            t0 = time.perf_counter()
            for r in range(rounds):
                runner.run_round(r)
            wall = time.perf_counter() - t0
        crc = state_fingerprint(algo.global_model.state_dict())

    print(json.dumps({"peak_rss_bytes": peak_rss_bytes(),
                      "round_seconds": round(wall / rounds, 4),
                      "state_crc": crc}))
    return 0


def sweep_case(mode: str, population: int, args) -> dict:
    spec = {"mode": mode, "population": population, "dim": args.dim,
            "sample_ratio": args.sample_ratio, "rounds": args.rounds,
            "seed": args.seed}
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--child", json.dumps(spec)],
        capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(f"sweep child {mode}/{population} failed:\n"
                           f"{proc.stdout}\n{proc.stderr}")
    child = json.loads(proc.stdout.strip().splitlines()[-1])
    return {"kind": "sweep", "name": f"sweep/{mode}/{population}",
            "mode": mode, "population": population, **child}


# ----------------------------------------------------------------- gate

def check_gate(record: dict) -> list[str]:
    """Failures of the current record (self-contained, no baseline file)."""
    failures = []
    for c in record["cases"]:
        if c["kind"] == "identity" and not (c["byte_identical"]
                                            and c["ledger_equal"]):
            failures.append(f"{c['name']}: streaming != materialized")
    sweep = [c for c in record["cases"] if c["kind"] == "sweep"]
    by_pop: dict[int, dict] = {}
    for c in sweep:
        by_pop.setdefault(c["population"], {})[c["mode"]] = c["state_crc"]
    for pop, crcs in sorted(by_pop.items()):
        if len(set(crcs.values())) > 1:
            failures.append(f"population {pop}: state CRCs diverge {crcs}")
    rss = {c["population"]: c["peak_rss_bytes"] for c in sweep
           if c["mode"] == "streaming"}
    if rss:
        lo, hi = min(rss), max(rss)
        if rss[hi] > 2.0 * rss[lo]:
            failures.append(
                f"streaming peak RSS grew {rss[hi] / rss[lo]:.2f}x from "
                f"population {lo} to {hi} (budget 2.0x)")
    return failures


# ----------------------------------------------------------------- main

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 300/1500 populations, 1 round")
    parser.add_argument("--check", action="store_true",
                        help="fail on identity/CRC/RSS-growth violations")
    parser.add_argument("--populations", type=int, nargs="+", default=None,
                        help="override the population sweep")
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--dim", type=int, default=2048,
                        help="stub model dimension for the sweep")
    parser.add_argument("--sample-ratio", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=str(OUT_PATH))
    parser.add_argument("--child", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child is not None:
        return run_child(json.loads(args.child))

    populations = args.populations or (
        [300, 1500] if args.smoke else [1000, 10000, 100000])

    cases = []
    for algo_name in ("fedavg", "spatl"):
        for edges in (1, 2):
            case = identity_case(algo_name, edges, args.smoke)
            cases.append(case)
            status = "OK" if case["byte_identical"] else "STATE MISMATCH"
            print(f"{case['name']:<28} wall={case['wall_s']:7.2f}s "
                  f"[{status}]")

    for population in populations:
        for mode in ("materialized", "streaming", "hier2"):
            case = sweep_case(mode, population, args)
            cases.append(case)
            print(f"{case['name']:<28} "
                  f"rss={case['peak_rss_bytes'] / 2**20:8.1f}MiB  "
                  f"round={case['round_seconds']:7.2f}s  "
                  f"crc={case['state_crc']:#010x}")

    from repro.obs.metrics import blas_env, observe_peak_rss
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "smoke": bool(args.smoke),
        "config": {"populations": populations, "rounds": args.rounds,
                   "dim": args.dim, "sample_ratio": args.sample_ratio,
                   "seed": args.seed},
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "peak_rss_bytes": observe_peak_rss(),
        "env": blas_env(),
        "cases": cases,
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")

    if args.check:
        failures = check_gate(record)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}")
            return 1
        print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
