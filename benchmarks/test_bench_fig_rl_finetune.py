"""Fig. 6: RL agent pre-train on ResNet-56 → fine-tune on ResNet-18 (§V-F4).

Paper shape: the transferred agent (MLP-heads-only fine-tuning) reaches
rewards comparable to the source-task agent within a few dozen updates,
and the agent itself is tiny (paper: ~26 KB, one-shot inference).
"""

import json

import numpy as np

from benchmarks.conftest import bench_config
from repro.experiments import rl_finetune_figure


def test_rl_agent_transfer(once, benchmark):
    cfg = bench_config(model="resnet56", n_samples=1200, flops_target=0.75)
    result = once(rl_finetune_figure, cfg, "resnet56", "resnet18",
                  8, 8, 4, 3, 0.1)
    pre = result["pretrain_rewards"]
    fin = result["finetune_rewards"]
    print("\n=== Fig. 6: agent reward per update round ===")
    print("pretrain (resnet56):", [round(r, 3) for r in pre])
    print("finetune (resnet18):", [round(r, 3) for r in fin])
    print("agent memory:", result["agent_memory_bytes"], "bytes")
    benchmark.extra_info["pretrain"] = json.dumps([round(r, 4) for r in pre])
    benchmark.extra_info["finetune"] = json.dumps([round(r, 4) for r in fin])
    benchmark.extra_info["agent_bytes"] = result["agent_memory_bytes"]

    assert all(np.isfinite(pre)) and all(np.isfinite(fin))
    # transferred agent achieves rewards in the same range as the source
    assert np.mean(fin[-3:]) >= np.mean(pre[-3:]) - 0.25
    # tiny-agent claim: same order as the paper's 26 KB
    assert result["agent_memory_bytes"] < 100_000
