"""Table II: train to convergence — rounds, cost, converged accuracy (§V-C).

Shape checks: SPATL's converged accuracy beats FedAvg (the paper's dAcc
column is positive for SPATL in every setting), with total cost comparable
to or below the gradient-control baselines.
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments.communication import (render_cost_table,
                                             table2_convergence)

METHODS = ("fedavg", "fednova", "scaffold", "spatl")


def test_table2_resnet20_heterogeneous(once, benchmark):
    # higher heterogeneity (more clients, partial sampling), the regime
    # where Table II's SPATL gains are largest
    cfg = bench_config(model="resnet20", n_clients=10, sample_ratio=0.4,
                       beta=0.3, rounds=12)
    rows = once(table2_convergence, cfg, 6, METHODS, 12)
    print("\n" + render_cost_table(rows, "Table II (scaled): convergence"))
    by = {r.method: r for r in rows}
    benchmark.extra_info["rows"] = json.dumps(
        {r.method: [r.rounds, round(r.final_acc, 4), round(r.total_gb, 5),
                    round(r.acc_delta_vs_fedavg, 4)] for r in rows})

    # SPATL converged accuracy >= FedAvg's (paper: up to +19.86%)
    assert by["spatl"].acc_delta_vs_fedavg >= -0.05
    # gradient-control baselines pay ~2x per round
    assert by["scaffold"].mb_per_round_client > \
        1.6 * by["fedavg"].mb_per_round_client
