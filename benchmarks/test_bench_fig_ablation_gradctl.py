"""Fig. 5(b) ablation: gradient control vs none (§V-F3).

Both arms run identical optimizer settings (vanilla local SGD), isolating
the control variates.  Paper shape: gradient control yields a more stable
trajectory (and no worse convergence) under heterogeneity.
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import ablation_gradient_control
from repro.experiments.ablation import stability
from repro.experiments.learning_efficiency import converge_accuracy_summary


def test_ablation_gradient_control(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=8, sample_ratio=0.5,
                       beta=0.3, rounds=12)
    results = once(ablation_gradient_control, cfg, 12)
    summary = converge_accuracy_summary(results)
    print("\n=== Fig. 5(b): gradient-control ablation ===")
    for k, log in results.items():
        series = log["val_acc"]
        print(f"{k:26s} accs={[round(a, 3) for a in series]} "
              f"stability={stability(series):.4f}")
    benchmark.extra_info["summary"] = json.dumps(
        {k: round(v, 4) for k, v in summary.items()})
    benchmark.extra_info["stability"] = json.dumps(
        {k: round(stability(log["val_acc"]), 5)
         for k, log in results.items()})

    with_gc = results["with_gradient_control"]["val_acc"]
    without = results["without_gradient_control"]["val_acc"]
    # control must help at least one of: final accuracy or smoothness
    better_acc = summary["with_gradient_control"] >= \
        summary["without_gradient_control"] - 0.02
    smoother = stability(with_gc) <= stability(without) + 0.01
    assert better_acc or smoother
