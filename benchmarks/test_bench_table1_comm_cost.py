"""Table I: communication cost to reach a target accuracy (§V-C, Eq. 13).

Measured at CPU scale, plus the full-size per-round payload each protocol
implies (the paper's "Cost Round/Client" column).  Shape checks:

- SCAFFOLD and FedNova per-round cost ~2x FedAvg;
- SPATL per-round cost strictly below SCAFFOLD's;
- SPATL total cost to target is the lowest (the headline claim).
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments.communication import (paper_scale_mb_per_round,
                                             render_cost_table,
                                             table1_target_cost)

METHODS = ("fedavg", "fedprox", "fednova", "scaffold", "spatl")


def test_table1_resnet20(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=6, sample_ratio=1.0,
                       rounds=14)
    rows = once(table1_target_cost, cfg, 0.6, METHODS, 14)
    print("\n" + render_cost_table(rows, "Table I (scaled): cost to 60% acc"))

    by = {r.method: r for r in rows}
    benchmark.extra_info["rows"] = json.dumps(
        {r.method: [r.rounds, r.reached_target, round(r.mb_per_round_client, 3),
                    round(r.total_gb, 5)] for r in rows})

    # Full-size implied per-round payloads (paper column).
    spatl_ratio = (by["spatl"].mb_per_round_client
                   / by["fedavg"].mb_per_round_client * 2.0)
    full = {m: paper_scale_mb_per_round(
        m, "resnet20", measured_ratio=spatl_ratio) for m in METHODS}
    print("full-size MB/round/client:",
          {k: round(v, 2) for k, v in full.items()})
    benchmark.extra_info["full_size_mb"] = json.dumps(
        {k: round(v, 3) for k, v in full.items()})

    # Shape assertions (generous margins).
    fa = by["fedavg"].mb_per_round_client
    assert 1.6 < by["scaffold"].mb_per_round_client / fa < 2.4
    assert 1.6 < by["fednova"].mb_per_round_client / fa < 2.4
    assert by["spatl"].mb_per_round_client < by["scaffold"].mb_per_round_client
    # SPATL must be among the cheapest to target overall.
    reached = [r for r in rows if r.reached_target]
    if by["spatl"].reached_target and len(reached) > 1:
        cheapest = min(reached, key=lambda r: r.total_gb)
        assert by["spatl"].total_gb <= cheapest.total_gb * 1.6
