"""Kernel benchmark: workspace/in-place hot path vs the pre-PR kernels.

Times the rewritten training kernels (DESIGN.md §10) against the
verbatim pre-optimization implementations preserved in
:mod:`repro.nn.reference`, at two granularities:

- **micro** — per-op forward/backward wall time (conv2d, max/avg pool,
  batch norm, matmul/linear, SGD step), interleaved optimized/reference
  min-of-N so machine noise hits both sides equally;
- **e2e** — wall time of a full serial FedAvg round at the tiny scale
  for ``resnet20`` and ``vgg11``, with a warm-up round first and a
  byte-identity check of the final global model state between the two
  code paths.

Writes the whole record to ``BENCH_kernels.json`` at the repo root
(single document, overwritten — the committed copy is the regression
baseline)::

    python benchmarks/bench_kernels.py                # full run
    python benchmarks/bench_kernels.py --smoke        # CI-sized
    python benchmarks/bench_kernels.py --smoke --check  # + regression gate

``--check`` compares each microbench's optimized time against the
committed baseline *before* overwriting it and exits non-zero if any op
regressed more than ``--check-factor`` (default 1.5x) beyond a 0.15ms
absolute noise floor (sub-ms ops at low repeat counts jitter more than
50% on a busy CI core), or if an e2e run was not byte-identical.

It also enforces a speedup *floor* (``--min-speedup``, default 0.97):
every optimized kernel must at least match its reference implementation.
The floor always applies to the committed baseline's rows — so a "fix"
that quietly makes a kernel slower than the code it replaced cannot be
committed — and to live rows on full runs; smoke runs skip the live
floor since single-digit-repeat timings on a shared core jitter past
any honest threshold.  The committed baseline reflects the §10 kernels
plus the avg-pool-backward and SGD-step micro fixes that brought those
two rows back above parity.
"""

from __future__ import annotations

import argparse
import contextlib
import datetime
import json
import os
import platform
import time
from pathlib import Path

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


# --------------------------------------------------------------------- #
# timing harness                                                         #
# --------------------------------------------------------------------- #
@contextlib.contextmanager
def no_donation():
    """Run with gradient donation disabled — the pre-PR ``_accumulate``
    semantics (defensive copy on first accumulation) for ops that have no
    separate reference implementation (matmul, elementwise backwards)."""
    from repro.tensor.tensor import Tensor
    orig = Tensor._accumulate

    def copying(self, grad, donate=None):
        return orig(self, grad)

    Tensor._accumulate = copying
    try:
        yield
    finally:
        Tensor._accumulate = orig


def interleaved(fn_opt, fn_ref, repeats: int) -> tuple[float, float]:
    """Min-of-``repeats`` seconds for each side, alternating opt/ref each
    iteration so drift and frequency noise land on both."""
    t_opt = t_ref = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_opt()
        t_opt = min(t_opt, time.perf_counter() - t0)
        with no_donation():
            t0 = time.perf_counter()
            fn_ref()
            t_ref = min(t_ref, time.perf_counter() - t0)
    return t_opt, t_ref


def _clear_grads(*tensors) -> None:
    for t in tensors:
        t.grad = None


# --------------------------------------------------------------------- #
# micro cases                                                            #
# --------------------------------------------------------------------- #
def micro_cases(repeats: int):
    """Yield ``(name, opt_ms, ref_ms)`` per kernel, fwd and bwd."""
    import numpy as np
    import repro.nn.reference as R
    from repro.nn.conv import Conv2d
    from repro.nn.linear import Linear
    from repro.nn.norm import BatchNorm2d
    from repro.nn.pooling import AvgPool2d, MaxPool2d
    from repro.optim.sgd import SGD
    from repro.tensor.tensor import Tensor

    rng = np.random.default_rng(0)

    def x4(n=32, c=8, h=16, w=16):
        t = Tensor(rng.standard_normal((n, c, h, w)).astype(np.float32))
        t.requires_grad = True
        return t

    def fwd_bwd(name, x, fwd_opt, fwd_ref, params=()):
        """Time forward and backward of one autograd op, both sides."""
        results = {}
        for phase in ("forward", "backward"):
            def one(step, _phase=phase):
                _clear_grads(x, *params)
                if _phase == "forward":
                    t0 = time.perf_counter()
                    out = step(x)
                    dt = time.perf_counter() - t0
                else:
                    out = step(x)
                    g = np.ones(out.shape, dtype=np.float32)
                    t0 = time.perf_counter()
                    out.backward(g)
                    dt = time.perf_counter() - t0
                return dt

            t_opt = t_ref = float("inf")
            for _ in range(repeats):
                t_opt = min(t_opt, one(fwd_opt))
                with no_donation():
                    t_ref = min(t_ref, one(fwd_ref))
            results[phase] = (t_opt, t_ref)
        for phase, (t_opt, t_ref) in results.items():
            yield f"{name}.{phase}", t_opt * 1e3, t_ref * 1e3

    # conv2d: the dominant op (im2col gather + GEMMs + col2im scatter).
    conv = Conv2d(8, 16, 3, stride=1, padding=1, rng=np.random.default_rng(1))
    xc = x4()
    yield from fwd_bwd("conv2d", xc, conv,
                       lambda t: R.reference_conv2d(t, conv.weight, conv.bias,
                                                    1, 1),
                       params=(conv.weight, conv.bias))

    # max pool: vectorized scatter vs np.add.at.
    mp = MaxPool2d(2, 2)
    xm = x4(c=16)
    yield from fwd_bwd("max_pool2d", xm, mp,
                       lambda t: R.reference_max_pool2d(t, 2, 2))

    # avg pool: strided-view broadcast vs python kxk loop.
    ap = AvgPool2d(2, 2)
    xa = x4(c=16)
    yield from fwd_bwd("avg_pool2d", xa, ap,
                       lambda t: R.reference_avg_pool2d(t, 2, 2))

    # batch norm: fused in-place chain vs allocating forward/backward.
    bn = BatchNorm2d(8)
    xb = x4()
    yield from fwd_bwd("batchnorm", xb, bn,
                       lambda t: R.reference_batchnorm_forward(bn, t),
                       params=(bn.weight, bn.bias))

    # linear / matmul: same kernel both sides, isolates gradient donation.
    lin = Linear(256, 128, rng=np.random.default_rng(2))
    xl = Tensor(rng.standard_normal((64, 256)).astype(np.float32))
    xl.requires_grad = True
    yield from fwd_bwd("linear", xl, lin, lin,
                       params=(lin.weight, lin.bias))

    # SGD step: fully in-place update vs allocating update, over the
    # parameter set a tiny-scale resnet20 actually steps.
    from repro.models import build_model
    model = build_model("resnet20", num_classes=10, input_size=16,
                        width_mult=0.25, seed=3)
    named = list(model.named_parameters())
    opt_new = SGD(named, lr=0.01, momentum=0.9, weight_decay=5e-4)
    opt_old = SGD(named, lr=0.01, momentum=0.9, weight_decay=5e-4)

    def seed_grads():
        for _, p in named:
            p.grad = np.ones_like(p.data)

    def step_opt():
        seed_grads()
        t0 = time.perf_counter()
        opt_new.step()
        return time.perf_counter() - t0

    def step_ref():
        seed_grads()
        t0 = time.perf_counter()
        R.reference_sgd_step(opt_old)
        return time.perf_counter() - t0

    t_opt = t_ref = float("inf")
    for _ in range(repeats):
        t_opt = min(t_opt, step_opt())
        t_ref = min(t_ref, step_ref())
    yield "sgd.step", t_opt * 1e3, t_ref * 1e3


# --------------------------------------------------------------------- #
# end-to-end rounds                                                      #
# --------------------------------------------------------------------- #
def e2e_case(model_name: str, rounds: int, clients: int, samples: int,
             seed: int) -> dict:
    """Serial FedAvg rounds for one model, optimized vs reference.

    Both sides run a warm-up round, then each subsequent round is timed
    individually (min over rounds), alternating opt/ref.  Final global
    states must be byte-identical.
    """
    from repro.experiments.configs import config_for, make_algorithm, make_setting
    from repro.fl.comm import serialize_state
    from repro.nn.reference import reference_kernels

    overrides = {}
    if model_name.startswith("vgg"):
        overrides["input_size"] = 32        # five maxpools need 32x32
    cfg = config_for("tiny", model=model_name, n_clients=clients,
                     n_samples=samples, sample_ratio=1.0, seed=seed,
                     **overrides)

    model_fn, clients_opt = make_setting(cfg)
    algo_opt = make_algorithm("fedavg", cfg, model_fn, clients_opt)
    model_fn, clients_ref = make_setting(cfg)
    algo_ref = make_algorithm("fedavg", cfg, model_fn, clients_ref)

    algo_opt.run_round(0)                       # warm-up: arenas, caches
    with reference_kernels():
        algo_ref.run_round(0)

    t_opt = t_ref = float("inf")
    for r in range(1, rounds + 1):
        t0 = time.perf_counter()
        algo_opt.run_round(r)
        t_opt = min(t_opt, time.perf_counter() - t0)
        with reference_kernels():
            t0 = time.perf_counter()
            algo_ref.run_round(r)
            t_ref = min(t_ref, time.perf_counter() - t0)

    state_opt = serialize_state(dict(algo_opt.global_model.state_dict()))
    state_ref = serialize_state(dict(algo_ref.global_model.state_dict()))
    return {
        "model": model_name,
        "rounds_timed": rounds,
        "opt_round_s": round(t_opt, 4),
        "ref_round_s": round(t_ref, 4),
        "speedup": round(t_ref / t_opt, 4),
        "byte_identical": state_opt == state_ref,
    }


# --------------------------------------------------------------------- #
# regression gate                                                        #
# --------------------------------------------------------------------- #
def check_regressions(record: dict, baseline_doc: str | None,
                      factor: float, min_speedup: float = 0.97) -> list[str]:
    """Failures of the current record against the committed baseline
    (passed as the baseline file's *pre-run* text, since the run may have
    overwritten it).

    Besides the live-vs-baseline slowdown ratio, the gate enforces a
    speedup *floor*: no micro row may sit below ``min_speedup`` vs the
    reference kernels.  The floor is checked on the committed baseline
    rows always (they were measured min-of-50 on a quiet box, so a
    below-1.0x row there is a real regression, not jitter) and on the
    live rows for full runs; smoke runs skip the live floor because
    min-of-15 on a shared CI core jitters past any honest threshold.
    """
    failures = []
    for row in record["e2e"]:
        if not row["byte_identical"]:
            failures.append(f"e2e {row['model']}: state not byte-identical")

    def floor_failures(micro_rows, which: str):
        for m in micro_rows:
            if m["speedup"] < min_speedup:
                yield (f"micro {m['name']}: {which} speedup "
                       f"{m['speedup']:.2f}x below the {min_speedup}x floor")

    if not record.get("smoke"):
        failures.extend(floor_failures(record["micro"], "live"))
    if baseline_doc is None:
        return failures + ["no committed baseline to check against"]
    try:
        baseline = json.loads(baseline_doc)
    except json.JSONDecodeError as exc:
        return failures + [f"unreadable baseline: {exc}"]
    failures.extend(floor_failures(baseline.get("micro", []), "baseline"))
    base_micro = {m["name"]: m for m in baseline.get("micro", [])}
    for m in record["micro"]:
        base = base_micro.get(m["name"])
        if base is None:
            continue
        # 0.15ms absolute slack: the committed baseline is a min-of-50
        # on a quiet box; smoke runs are min-of-N at low N on shared CI
        # cores, where sub-ms ops jitter well past any ratio threshold.
        if m["opt_ms"] > factor * base["opt_ms"] + 0.15:
            failures.append(
                f"micro {m['name']}: {m['opt_ms']:.3f}ms vs baseline "
                f"{base['opt_ms']:.3f}ms (> {factor}x)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: few repeats, one timed round")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the committed baseline")
    parser.add_argument("--check-factor", type=float, default=1.5,
                        help="allowed slowdown factor for --check")
    parser.add_argument("--min-speedup", type=float, default=0.97,
                        help="--check floor: micro rows below this speedup "
                             "vs the reference kernels fail the gate")
    parser.add_argument("--repeats", type=int, default=None,
                        help="micro repeats (default 50, smoke 15)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timed e2e rounds (default 2, smoke 1)")
    parser.add_argument("--models", nargs="+",
                        default=["resnet20", "vgg11"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=str(OUT_PATH))
    parser.add_argument("--baseline", default=str(OUT_PATH),
                        help="baseline JSON for --check (default: --out)")
    args = parser.parse_args(argv)

    repeats = args.repeats or (15 if args.smoke else 50)
    rounds = args.rounds or (1 if args.smoke else 2)
    clients = 3 if args.smoke else 10
    samples = 400 if args.smoke else 1500

    baseline_path = Path(args.baseline)
    baseline_doc = baseline_path.read_text() if baseline_path.exists() else None

    micro = []
    for name, opt_ms, ref_ms in micro_cases(repeats):
        micro.append({"name": name, "opt_ms": round(opt_ms, 4),
                      "ref_ms": round(ref_ms, 4),
                      "speedup": round(ref_ms / opt_ms, 4)})
        print(f"{name:22s} opt={opt_ms:8.3f}ms ref={ref_ms:8.3f}ms "
              f"speedup={ref_ms / opt_ms:5.2f}x")

    e2e = []
    for model_name in args.models:
        row = e2e_case(model_name, rounds, clients, samples, args.seed)
        e2e.append(row)
        status = "OK" if row["byte_identical"] else "STATE MISMATCH"
        print(f"e2e {model_name:10s} opt={row['opt_round_s']:7.2f}s/round "
              f"ref={row['ref_round_s']:7.2f}s/round "
              f"speedup={row['speedup']:5.2f}x [{status}]")

    from repro.obs.metrics import blas_env, observe_peak_rss
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "smoke": args.smoke,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": __import__("numpy").__version__,
        "peak_rss_bytes": observe_peak_rss(),
        "env": blas_env(),
        "micro": micro,
        "e2e": e2e,
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"written to {out}")

    if args.check:
        failures = check_regressions(record, baseline_doc, args.check_factor,
                                     min_speedup=args.min_speedup)
        for f in failures:
            print(f"REGRESSION: {f}")
        return 1 if failures else 0
    return 0 if all(r["byte_identical"] for r in e2e) else 1


if __name__ == "__main__":
    raise SystemExit(main())
