"""DESIGN.md §6 ablations beyond the paper's own: selection-policy source
and Eq. 12 aggregation step size.

- Policy source: RL agent vs static L2 saliency vs random selection at a
  matched sparsity — isolates how much the *policy* matters versus merely
  uploading fewer parameters.
- Aggregation step eta: Eq. 12 with eta in {0.5, 1.0} — the paper fixes
  eta implicitly; this shows the FedAvg-consistent eta=1 is the right
  default.
"""

import json

from benchmarks.conftest import bench_config
from repro.core import RandomSelectionPolicy, StaticSaliencyPolicy
from repro.experiments import make_algorithm, make_setting
from repro.utils.metrics import best_smoothed


def _run_spatl(cfg, rounds, **overrides):
    model_fn, clients = make_setting(cfg)
    algo = make_algorithm("spatl", cfg, model_fn, clients, **overrides)
    return algo.run(rounds)


def test_selection_policy_source(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=6, sample_ratio=1.0,
                       rounds=8)

    def run_all():
        return {
            "saliency": _run_spatl(cfg, 8,
                                   selection_policy=StaticSaliencyPolicy(0.3)),
            "random": _run_spatl(cfg, 8,
                                 selection_policy=RandomSelectionPolicy(
                                     0.3, seed=cfg.seed)),
        }

    results = once(run_all)
    summary = {k: best_smoothed(log["val_acc"], 3)
               for k, log in results.items()}
    print("\n=== selection-policy source ablation ===")
    for k, log in results.items():
        print(f"{k:9s} accs={[round(a, 3) for a in log['val_acc']]} "
              f"best={summary[k]:.3f}")
    benchmark.extra_info["summary"] = json.dumps(
        {k: round(v, 4) for k, v in summary.items()})

    # informed selection should not lose to random by much; random still
    # trains (Eq. 12 covers most filters across clients/rounds)
    assert summary["saliency"] >= summary["random"] - 0.12
    assert summary["random"] > 0.2


def test_aggregation_step_size(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=6, sample_ratio=1.0,
                       rounds=8)

    def run_all():
        return {eta: _run_spatl(cfg, 8, aggregation_step=eta)
                for eta in (0.5, 1.0)}

    results = once(run_all)
    summary = {eta: best_smoothed(log["val_acc"], 3)
               for eta, log in results.items()}
    print("\n=== Eq. 12 step-size ablation ===")
    for eta, log in results.items():
        print(f"eta={eta} accs={[round(a, 3) for a in log['val_acc']]}")
    benchmark.extra_info["summary"] = json.dumps(
        {str(k): round(v, 4) for k, v in summary.items()})

    # both must train; eta=1 (FedAvg-consistent) should not lose badly
    assert summary[1.0] >= summary[0.5] - 0.1
    assert min(summary.values()) > 0.2
