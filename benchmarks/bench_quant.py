"""Quantized-transport benchmark: codec throughput and wire-byte ratios.

Measures the low-bit uplink codec (DESIGN.md §16) at three levels:

- **micro** — vectorized int4 nibble pack/unpack vs a per-element
  reference (bitwise-checked each repeat), and stochastic int8/int4
  quantize/encode/decode passes over a resnet20-sized tensor set;
- **ratios** — real FedAvg rounds on a full-width resnet20 with
  ``--quant-bits 32/8/4``: uplink bytes as charged by the
  :class:`~repro.fl.comm.CommLedger`, checked exactly against the
  codec's own :func:`~repro.fl.quant.quant_payload_nbytes` sizing, plus
  the int8/int4 byte-reduction factors vs fp32;
- **accuracy** — the smoke experiment (tiny-scale FedAvg) at fp32 vs
  int8+error-feedback vs int4, recording final accuracies and the
  fp32-vs-int8 gap;
- **golden** — a ``quant_bits=32`` run must be byte-identical to the
  unquantized wire path (same final model bytes, same ledger totals).

Writes the whole record to ``BENCH_quant.json`` at the repo root
(single document, overwritten — the committed copy is the regression
baseline)::

    python benchmarks/bench_quant.py                 # full run
    python benchmarks/bench_quant.py --smoke         # CI-sized
    python benchmarks/bench_quant.py --smoke --check   # + regression gate

``--check`` fails (non-zero exit) when a micro case regressed more than
``--check-factor`` vs the committed baseline beyond a 0.15ms noise
floor, when pack/unpack fall under 10x vs the per-element reference,
when the int8/int4 ratios fall under 3.9x/7.5x, when ledger and codec
byte counts disagree, or when the bits=32 golden breaks byte identity.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import time
from pathlib import Path

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_quant.json"


def interleaved(fn_opt, fn_ref, repeats: int) -> tuple[float, float]:
    """Min-of-``repeats`` seconds per side, alternating opt/ref each
    iteration so drift and frequency noise land on both."""
    t_opt = t_ref = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_opt()
        t_opt = min(t_opt, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_ref()
        t_ref = min(t_ref, time.perf_counter() - t0)
    return t_opt, t_ref


# --------------------------------------------------------------------- #
# micro cases                                                            #
# --------------------------------------------------------------------- #
def codec_cases(repeats: int, n: int):
    """Yield ``(name, opt_ms, ref_ms)`` codec micro cases over ``n``
    values (a full-width resnet20 carries ~271k parameters)."""
    import numpy as np
    from repro.fl.quant import (QuantConfig, encode_record, decode_record,
                                naive_pack_nibbles, naive_unpack_nibbles,
                                pack_nibbles, stochastic_quantize,
                                unpack_nibbles)
    from repro.utils.rng import spawn_rng

    rng = np.random.default_rng(0)
    codes = rng.integers(0, 16, size=n).astype(np.uint8)
    packed = pack_nibbles(codes)
    assert np.array_equal(packed, naive_pack_nibbles(codes)), \
        "nibble packer drifted from the per-element reference"
    assert np.array_equal(unpack_nibbles(packed, n),
                          naive_unpack_nibbles(packed, n)), \
        "nibble unpacker drifted from the per-element reference"

    # the acceptance cases: vectorized nibble kernels vs Python loops
    yield ("pack.int4",
           *interleaved(lambda: pack_nibbles(codes),
                        lambda: naive_pack_nibbles(codes), repeats))
    yield ("unpack.int4",
           *interleaved(lambda: unpack_nibbles(packed, n),
                        lambda: naive_unpack_nibbles(packed, n), repeats))

    # stochastic quantize + full record encode/decode throughput (both
    # sides optimized — the ref side is the int8 path, so the per-case
    # ratio reads as "int4 cost relative to int8", and --check tracks
    # opt_ms regressions against the committed baseline)
    values = rng.normal(size=n).astype(np.float32)
    yield ("quantize.int8.per_tensor",
           *interleaved(
               lambda: stochastic_quantize(values, 8, 0, spawn_rng(0, "b8")),
               lambda: stochastic_quantize(values, 8, 0, spawn_rng(0, "b8")),
               repeats))
    yield ("quantize.int4.block256",
           *interleaved(
               lambda: stochastic_quantize(values, 4, 256,
                                           spawn_rng(0, "b4")),
               lambda: stochastic_quantize(values, 4, 256,
                                           spawn_rng(0, "b4")), repeats))
    rec8, _ = encode_record(values, QuantConfig(bits=8), spawn_rng(0, "r8"))
    rec4, _ = encode_record(values, QuantConfig(bits=4), spawn_rng(0, "r4"))
    yield ("encode_record.int4_vs_int8",
           *interleaved(
               lambda: encode_record(values, QuantConfig(bits=4),
                                     spawn_rng(0, "r4")),
               lambda: encode_record(values, QuantConfig(bits=8),
                                     spawn_rng(0, "r8")), repeats))
    yield ("decode_record.int4_vs_int8",
           *interleaved(lambda: decode_record(rec4),
                        lambda: decode_record(rec8), repeats))


# --------------------------------------------------------------------- #
# wire-byte ratios on real rounds                                        #
# --------------------------------------------------------------------- #
def ratio_cases(clients: int, samples: int, width: float, input_size: int,
                seed: int) -> list[dict]:
    """FedAvg rounds on resnet20 at each bit width; ledger-charged uplink
    bytes, checked exactly against the codec's sizing."""
    from repro.experiments.configs import (config_for, make_algorithm,
                                           make_setting)
    from repro.fl.quant import QuantConfig, quant_payload_nbytes
    from repro.fl.wire import payload_nbytes

    rows = []
    fp32_up = None
    for bits in (32, 8, 4):
        cfg = config_for("tiny", model="resnet20", width_mult=width,
                         input_size=input_size, n_clients=clients,
                         n_samples=samples, local_epochs=1, sample_ratio=1.0,
                         seed=seed, quant_bits=bits)
        model_fn, cl = make_setting(cfg)
        algo = make_algorithm("fedavg", cfg, model_fn, cl)
        t0 = time.perf_counter()
        algo.run_round(0)
        round_s = time.perf_counter() - t0
        up = sum(algo.ledger.uplink[0].values())
        # FedAvg uplinks the full state dict, whose entry dtypes/shapes
        # are client-invariant — so the codec's exact sizing of one
        # template state, times the cohort, must equal the ledger to the
        # byte.
        template = algo.global_model.state_dict()
        if bits == 32:
            per_client = payload_nbytes(template)
        else:
            per_client = quant_payload_nbytes(template, QuantConfig(bits=bits))
        expected = per_client * clients
        if fp32_up is None:
            fp32_up = up
        rows.append({
            "bits": bits,
            "model": "resnet20",
            "width_mult": width,
            "clients": clients,
            "uplink_bytes": up,
            "codec_bytes": expected,
            "ledger_equals_codec": up == expected,
            "reduction_vs_fp32": round(fp32_up / up, 4),
            "round_s": round(round_s, 3),
        })
        algo.close()
    return rows


# --------------------------------------------------------------------- #
# smoke-experiment accuracy + bits=32 golden                             #
# --------------------------------------------------------------------- #
def accuracy_case(rounds: int, clients: int, samples: int,
                  seed: int) -> dict:
    """Tiny-scale FedAvg at fp32 / int8+EF / int8 no-EF / int4+EF."""
    from repro.experiments.configs import (config_for, make_algorithm,
                                           make_setting)

    def final_acc(bits: int, ef: bool = True) -> tuple[float, int]:
        cfg = config_for("tiny", n_clients=clients, n_samples=samples,
                         rounds=rounds, seed=seed, quant_bits=bits,
                         quant_ef=ef)
        model_fn, cl = make_setting(cfg)
        algo = make_algorithm("fedavg", cfg, model_fn, cl)
        acc = 0.0
        for r in range(rounds):
            acc = algo.run_round(r).avg_val_acc
        total_up = sum(sum(per.values())
                       for per in algo.ledger.uplink.values())
        algo.close()
        return acc, total_up

    acc32, up32 = final_acc(32)
    acc8, up8 = final_acc(8)
    acc8_noef, _ = final_acc(8, ef=False)
    acc4, up4 = final_acc(4)
    return {
        "rounds": rounds,
        "acc_fp32": round(acc32, 4),
        "acc_int8_ef": round(acc8, 4),
        "acc_int8_noef": round(acc8_noef, 4),
        "acc_int4_ef": round(acc4, 4),
        "int8_within_1pt": abs(acc32 - acc8) <= 0.01 + 1e-9,
        "uplink_bytes_fp32": up32,
        "uplink_bytes_int8": up8,
        "uplink_bytes_int4": up4,
    }


def golden_case(clients: int, samples: int, seed: int) -> dict:
    """``quant_bits=32`` must be byte-identical to the unquantized path."""
    from repro.experiments.configs import (config_for, make_algorithm,
                                           make_setting)
    from repro.fl.comm import serialize_state

    def run(**overrides):
        cfg = config_for("tiny", n_clients=clients, n_samples=samples,
                         rounds=2, seed=seed, **overrides)
        model_fn, cl = make_setting(cfg)
        algo = make_algorithm("fedavg", cfg, model_fn, cl)
        for r in range(2):
            algo.run_round(r)
        state = serialize_state(dict(algo.global_model.state_dict()))
        total = algo.ledger.total_bytes()
        algo.close()
        return state, total

    state_plain, bytes_plain = run()
    state_q32, bytes_q32 = run(quant_bits=32)
    return {
        "bits32_state_identical": state_plain == state_q32,
        "bits32_ledger_equal": bytes_plain == bytes_q32,
        "total_bytes": bytes_plain,
    }


# --------------------------------------------------------------------- #
# regression gate                                                        #
# --------------------------------------------------------------------- #
def check_regressions(record: dict, baseline_doc: str | None,
                      factor: float) -> list[str]:
    """Failures of the current record against the acceptance floors and
    the committed baseline (passed as the baseline file's *pre-run*
    text, since the run may have overwritten it)."""
    failures = []
    micro = {m["name"]: m for m in record["micro"]}
    for name in ("pack.int4", "unpack.int4"):
        if micro[name]["speedup"] < 10.0:
            failures.append(f"micro {name}: {micro[name]['speedup']:.1f}x "
                            "< 10x vs per-element reference")
    for row in record["ratios"]:
        if not row["ledger_equals_codec"]:
            failures.append(f"ratios bits={row['bits']}: ledger "
                            f"{row['uplink_bytes']} != codec "
                            f"{row['codec_bytes']}")
        floor = {8: 3.9, 4: 7.5}.get(row["bits"])
        if floor and row["reduction_vs_fp32"] < floor:
            failures.append(f"ratios bits={row['bits']}: "
                            f"{row['reduction_vs_fp32']}x < {floor}x")
    if not record["accuracy"]["int8_within_1pt"] and not record["smoke"]:
        # Enforced on the full (converged, 10-round) run only: a smoke
        # run's 3 rounds sit on the steep early part of the curve, where
        # seeded training noise alone moves accuracy several points.
        failures.append("accuracy: int8+EF more than 1 point from fp32")
    if not record["golden"]["bits32_state_identical"]:
        failures.append("golden: bits=32 final state not byte-identical")
    if not record["golden"]["bits32_ledger_equal"]:
        failures.append("golden: bits=32 ledger totals differ")
    if baseline_doc is None:
        return failures + ["no committed baseline to check against"]
    try:
        baseline = json.loads(baseline_doc)
    except json.JSONDecodeError as exc:
        return failures + [f"unreadable baseline: {exc}"]
    base_micro = {m["name"]: m for m in baseline.get("micro", [])}
    for m in record["micro"]:
        base = base_micro.get(m["name"])
        if base is None:
            continue
        # 0.15ms absolute slack: the committed baseline is a min-of-N on
        # a quiet box; smoke runs jitter well past any ratio threshold
        # for sub-ms cases on shared CI cores.
        if m["opt_ms"] > factor * base["opt_ms"] + 0.15:
            failures.append(
                f"micro {m['name']}: {m['opt_ms']:.3f}ms vs baseline "
                f"{base['opt_ms']:.3f}ms (> {factor}x)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: few repeats, short experiments")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs floors and the "
                             "committed baseline")
    parser.add_argument("--check-factor", type=float, default=1.5,
                        help="allowed slowdown factor for --check")
    parser.add_argument("--repeats", type=int, default=None,
                        help="micro repeats (default 30, smoke 8)")
    parser.add_argument("--acc-rounds", type=int, default=None,
                        help="accuracy-experiment rounds (default 10, "
                             "smoke 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=str(OUT_PATH))
    parser.add_argument("--baseline", default=str(OUT_PATH),
                        help="baseline JSON for --check (default: --out)")
    args = parser.parse_args(argv)

    repeats = args.repeats or (8 if args.smoke else 30)
    acc_rounds = args.acc_rounds or (3 if args.smoke else 10)
    micro_n = 60_000 if args.smoke else 271_117
    ratio_clients = 2 if args.smoke else 4
    ratio_samples = 48 if args.smoke else 96

    baseline_path = Path(args.baseline)
    baseline_doc = baseline_path.read_text() if baseline_path.exists() \
        else None

    micro = []
    for name, t_opt, t_ref in codec_cases(repeats, micro_n):
        opt_ms, ref_ms = t_opt * 1e3, t_ref * 1e3
        micro.append({"name": name, "opt_ms": round(opt_ms, 4),
                      "ref_ms": round(ref_ms, 4),
                      "speedup": round(ref_ms / opt_ms, 4)})
        print(f"{name:28s} opt={opt_ms:9.3f}ms ref={ref_ms:9.3f}ms "
              f"speedup={ref_ms / opt_ms:6.2f}x")

    ratios = ratio_cases(ratio_clients, ratio_samples, width=1.0,
                         input_size=32, seed=args.seed)
    for row in ratios:
        status = "OK" if row["ledger_equals_codec"] else "MISMATCH"
        print(f"ratio bits={row['bits']:2d} uplink={row['uplink_bytes']:9d}B "
              f"reduction={row['reduction_vs_fp32']:6.2f}x "
              f"ledger==codec [{status}]")

    accuracy = accuracy_case(acc_rounds, clients=4,
                             samples=600 if args.smoke else 1500,
                             seed=args.seed)
    print(f"accuracy fp32={accuracy['acc_fp32']:.3f} "
          f"int8+ef={accuracy['acc_int8_ef']:.3f} "
          f"int8-ef={accuracy['acc_int8_noef']:.3f} "
          f"int4+ef={accuracy['acc_int4_ef']:.3f}")

    golden = golden_case(clients=3, samples=300, seed=args.seed)
    print(f"golden bits=32 identical={golden['bits32_state_identical']} "
          f"ledger_equal={golden['bits32_ledger_equal']}")

    from repro.obs.metrics import blas_env, observe_peak_rss
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "smoke": args.smoke,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": __import__("numpy").__version__,
        "peak_rss_bytes": observe_peak_rss(),
        "env": blas_env(),
        "micro": micro,
        "ratios": ratios,
        "accuracy": accuracy,
        "golden": golden,
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"written to {out}")

    if args.check:
        failures = check_regressions(record, baseline_doc, args.check_factor)
        for f in failures:
            print(f"REGRESSION: {f}")
        return 1 if failures else 0
    return 0 if (golden["bits32_state_identical"]
                 and all(r["ledger_equals_codec"] for r in ratios)) else 1


if __name__ == "__main__":
    raise SystemExit(main())
