"""Inference-acceleration table (§V-D): FLOPs reduction of the per-client
salient sub-networks after SPATL training.

Paper shape: meaningful average FLOPs reduction across clients (tens of
percent at full scale; our scaled models are less over-parameterised, so
the selection policy targets a gentler budget) with training still
converging.
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import inference_acceleration_table
from repro.experiments.inference import render_inference_table


def test_inference_acceleration(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=6, sample_ratio=1.0,
                       rounds=8, selection_sparsity=0.3)
    result = once(inference_acceleration_table, cfg, 8)
    print("\n" + render_inference_table([result]))
    benchmark.extra_info["result"] = json.dumps(
        {k: v for k, v in result.items() if k != "per_client"})

    assert result["avg_flops_reduction"] > 0.10
    assert result["max_flops_reduction"] >= result["avg_flops_reduction"]
    assert result["avg_keep_ratio"] < 1.0
    assert result["final_acc"] > 0.3  # selection did not break training
