"""Fig. 5(a) ablation: knowledge transfer vs shared predictor (§V-F2).

Paper shape: disabling the heterogeneous local predictor ("no transfer
learning") clearly degrades accuracy on non-IID clients.
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import ablation_transfer
from repro.experiments.learning_efficiency import converge_accuracy_summary


def test_ablation_transfer(once, benchmark):
    # strong label skew makes the private-head advantage visible
    cfg = bench_config(model="resnet20", n_clients=8, sample_ratio=1.0,
                       beta=0.2, rounds=10)
    results = once(ablation_transfer, cfg, 10)
    summary = converge_accuracy_summary(results)
    print("\n=== Fig. 5(a): transfer ablation ===")
    for k, log in results.items():
        print(f"{k:18s} accs={[round(a, 3) for a in log['val_acc']]}")
    benchmark.extra_info["summary"] = json.dumps(
        {k: round(v, 4) for k, v in summary.items()})

    assert summary["with_transfer"] > summary["without_transfer"] - 0.02
