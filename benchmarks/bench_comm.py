"""Comm benchmark: fast transport layer vs the pre-PR pipeline.

Times the zero-copy wire codec, the per-round broadcast cache, and the
vectorized salient aggregation (DESIGN.md §11) against the verbatim
pre-optimization implementations, at two granularities:

- **micro** — codec passes over a full VGG-11 state dict (the paper's
  largest model): single-buffer serialize vs the original join-based
  encoder, zero-copy vs copying deserialize, the
  serialize→deserialize round trip, broadcast-cache hits, and Eq. 12
  aggregation vs :mod:`repro.fl.reference_agg` (bitwise-checked every
  repeat) — interleaved optimized/reference min-of-N so machine noise
  hits both sides equally;
- **e2e** — per-round wall time of ``--workers 2`` FedAvg and SPATL
  runs at the tiny scale with broadcast caching on vs off (off
  re-frames the sync state into every task, the pre-PR behaviour),
  with a byte-identity check of the final global model state and a
  ledger-total equality check between the two code paths.

Writes the whole record to ``BENCH_comm.json`` at the repo root (single
document, overwritten — the committed copy is the regression
baseline)::

    python benchmarks/bench_comm.py                # full run
    python benchmarks/bench_comm.py --smoke        # CI-sized
    python benchmarks/bench_comm.py --smoke --check  # + regression gate

``--check`` compares each microbench's optimized time against the
committed baseline *before* overwriting it and exits non-zero if any
case regressed more than ``--check-factor`` (default 1.5x) beyond a
0.15ms absolute noise floor, or if an e2e run broke byte identity or
ledger equality.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import struct
import time
import zlib
from pathlib import Path

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_comm.json"


# --------------------------------------------------------------------- #
# the pre-PR encoder, verbatim (the codec reference side)                #
# --------------------------------------------------------------------- #
def legacy_serialize(state, checksums=False):
    """The original join-based encoder the wire format is defined by."""
    import numpy as np
    from repro.fl import wire

    parts = [struct.pack("<I", len(state))]
    for name, value in state.items():
        arr = np.ascontiguousarray(value)
        if np.ndim(value) == 0:
            arr = arr.reshape(())
        raw_name = name.encode("utf-8")
        record = [struct.pack("<H", len(raw_name)), raw_name,
                  struct.pack("<BB", wire._DTYPE_CODE[arr.dtype], arr.ndim),
                  struct.pack(f"<{arr.ndim}I", *arr.shape), arr.tobytes()]
        if checksums:
            record.append(struct.pack("<I", zlib.crc32(b"".join(record))))
        parts.extend(record)
    return b"".join(parts)


def interleaved(fn_opt, fn_ref, repeats: int) -> tuple[float, float]:
    """Min-of-``repeats`` seconds per side, alternating opt/ref each
    iteration so drift and frequency noise land on both."""
    t_opt = t_ref = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_opt()
        t_opt = min(t_opt, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_ref()
        t_ref = min(t_ref, time.perf_counter() - t0)
    return t_opt, t_ref


# --------------------------------------------------------------------- #
# micro cases                                                            #
# --------------------------------------------------------------------- #
def codec_cases(repeats: int):
    """Yield ``(name, opt_ms, ref_ms)`` for codec passes over a full
    VGG-11 state dict."""
    from repro.fl import wire
    from repro.models import build_model

    state = dict(build_model("vgg11", num_classes=10, input_size=32,
                             seed=0).state_dict())
    blob = wire.serialize(state)
    assert blob == legacy_serialize(state), "wire format drifted"

    # serialize to immutable bytes: single-buffer writer vs joins
    yield ("serialize.vgg11",
           *interleaved(lambda: wire.serialize(state),
                        lambda: legacy_serialize(state), repeats))
    yield ("serialize.vgg11.checksums",
           *interleaved(lambda: wire.serialize(state, checksums=True),
                        lambda: legacy_serialize(state, checksums=True),
                        repeats))
    # serialize into reusable arena scratch (the traced-path encode)
    yield ("serialize.vgg11.scratch",
           *interleaved(lambda: wire.serialize_scratch(state),
                        lambda: legacy_serialize(state), repeats))
    # deserialize: read-only views vs per-entry copies
    yield ("deserialize.vgg11.zero_copy",
           *interleaved(lambda: wire.deserialize(blob, copy=False),
                        lambda: wire.deserialize(blob, copy=True), repeats))

    # the acceptance case: one full serialize+deserialize round trip,
    # fast path (scratch encode + zero-copy decode) vs pre-PR path
    # (join encode + copying decode)
    def rt_opt():
        wire.deserialize(wire.serialize_scratch(state), copy=False)

    def rt_ref():
        wire.deserialize(legacy_serialize(state), copy=True)

    yield ("roundtrip.vgg11", *interleaved(rt_opt, rt_ref, repeats))

    # broadcast cache: a token hit vs re-encoding for every client
    cache = wire.BroadcastCache()
    cache.encode(state, token=1)
    yield ("broadcast.hit.vgg11",
           *interleaved(lambda: cache.encode(state, token=1),
                        lambda: wire.serialize(state), repeats))


def aggregation_cases(repeats: int):
    """Eq. 12 vectorized vs reference scatter, bitwise-checked."""
    import numpy as np
    from repro.core.aggregation import salient_aggregate
    from repro.fl.reference_agg import reference_salient_aggregate

    rng = np.random.default_rng(0)
    for label, shape in (("conv", (256, 256, 3, 3)), ("fc", (512, 512)),
                         ("bias", (512,))):
        g = rng.normal(size=shape).astype(np.float32)
        uploads = []
        for _ in range(5):                       # 5 clients, ~50% selection
            k = shape[0] // 2
            idx = np.sort(rng.choice(shape[0], size=k, replace=False))
            uploads.append((idx, rng.normal(
                size=(k,) + shape[1:]).astype(np.float32)))

        def opt():
            return salient_aggregate(g, uploads)

        def ref():
            return reference_salient_aggregate(g, uploads)

        assert opt().tobytes() == ref().tobytes(), \
            f"aggregation drifted from the oracle ({label})"
        yield f"aggregate.{label}", *interleaved(opt, ref, repeats)


# --------------------------------------------------------------------- #
# end-to-end rounds                                                      #
# --------------------------------------------------------------------- #
def e2e_case(algo_name: str, rounds: int, clients: int, samples: int,
             width: float, seed: int) -> dict:
    """``--workers 2`` rounds with broadcast caching on vs off.

    The workload is deliberately communication-heavy — full-width VGG-11
    (tens of MB per sync blob) with one local epoch over a small sample —
    so the per-task sync framing the cache removes is a measurable share
    of the round rather than being drowned in local-training noise;
    ``broadcast=False`` re-frames the sync state into every task, the
    pre-cache behaviour.
    Both sides run a warm-up round (pool fork, arenas), then each
    subsequent round is timed individually (min over rounds, alternating
    sides).  Final global states must be byte-identical and ledger
    totals equal.
    """
    from repro.experiments.configs import config_for, make_algorithm, \
        make_setting
    from repro.fl.comm import serialize_state
    from repro.fl.parallel import ProcessPoolRoundExecutor

    cfg = config_for("tiny", model="vgg11", input_size=32, width_mult=width,
                     n_clients=clients, n_samples=samples, local_epochs=1,
                     sample_ratio=1.0, seed=seed)

    def build(broadcast):
        model_fn, cl = make_setting(cfg)
        return make_algorithm(algo_name, cfg, model_fn, cl,
                              executor=ProcessPoolRoundExecutor(
                                  2, broadcast=broadcast))

    algo_on, algo_off = build(True), build(False)
    try:
        algo_on.run_round(0)                     # warm-up
        algo_off.run_round(0)
        t_on = t_off = float("inf")
        for r in range(1, rounds + 1):
            t0 = time.perf_counter()
            algo_on.run_round(r)
            t_on = min(t_on, time.perf_counter() - t0)
            t0 = time.perf_counter()
            algo_off.run_round(r)
            t_off = min(t_off, time.perf_counter() - t0)
        state_on = serialize_state(dict(algo_on.global_model.state_dict()))
        state_off = serialize_state(dict(algo_off.global_model.state_dict()))
        return {
            "algorithm": algo_name,
            "model": cfg.model,
            "width_mult": width,
            "workers": 2,
            "rounds_timed": rounds,
            "broadcast_round_s": round(t_on, 4),
            "no_broadcast_round_s": round(t_off, 4),
            "speedup": round(t_off / t_on, 4),
            "byte_identical": state_on == state_off,
            "ledger_equal": (algo_on.ledger.total_bytes()
                             == algo_off.ledger.total_bytes()),
            "total_bytes": algo_on.ledger.total_bytes(),
        }
    finally:
        algo_on.close()
        algo_off.close()


# --------------------------------------------------------------------- #
# regression gate                                                        #
# --------------------------------------------------------------------- #
def check_regressions(record: dict, baseline_doc: str | None,
                      factor: float) -> list[str]:
    """Failures of the current record against the committed baseline
    (passed as the baseline file's *pre-run* text, since the run may
    have overwritten it)."""
    failures = []
    for row in record["e2e"]:
        if not row["byte_identical"]:
            failures.append(
                f"e2e {row['algorithm']}: state not byte-identical")
        if not row["ledger_equal"]:
            failures.append(f"e2e {row['algorithm']}: ledger totals differ")
    if baseline_doc is None:
        return failures + ["no committed baseline to check against"]
    try:
        baseline = json.loads(baseline_doc)
    except json.JSONDecodeError as exc:
        return failures + [f"unreadable baseline: {exc}"]
    base_micro = {m["name"]: m for m in baseline.get("micro", [])}
    for m in record["micro"]:
        base = base_micro.get(m["name"])
        if base is None:
            continue
        # 0.15ms absolute slack: the committed baseline is a min-of-N on
        # a quiet box; smoke runs jitter well past any ratio threshold
        # for sub-ms cases on shared CI cores.
        if m["opt_ms"] > factor * base["opt_ms"] + 0.15:
            failures.append(
                f"micro {m['name']}: {m['opt_ms']:.3f}ms vs baseline "
                f"{base['opt_ms']:.3f}ms (> {factor}x)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: few repeats, one timed round")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the committed baseline")
    parser.add_argument("--check-factor", type=float, default=1.5,
                        help="allowed slowdown factor for --check")
    parser.add_argument("--repeats", type=int, default=None,
                        help="micro repeats (default 30, smoke 8)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timed e2e rounds (default 5, smoke 1)")
    parser.add_argument("--algos", nargs="+", default=["fedavg", "spatl"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=str(OUT_PATH))
    parser.add_argument("--baseline", default=str(OUT_PATH),
                        help="baseline JSON for --check (default: --out)")
    args = parser.parse_args(argv)

    repeats = args.repeats or (8 if args.smoke else 30)
    rounds = args.rounds or (1 if args.smoke else 5)
    clients = 4 if args.smoke else 8
    samples = 64 if args.smoke else 48
    width = 0.5 if args.smoke else 1.0

    baseline_path = Path(args.baseline)
    baseline_doc = baseline_path.read_text() if baseline_path.exists() \
        else None

    micro = []
    for case in (codec_cases(repeats), aggregation_cases(repeats)):
        for name, t_opt, t_ref in case:
            opt_ms, ref_ms = t_opt * 1e3, t_ref * 1e3
            micro.append({"name": name, "opt_ms": round(opt_ms, 4),
                          "ref_ms": round(ref_ms, 4),
                          "speedup": round(ref_ms / opt_ms, 4)})
            print(f"{name:28s} opt={opt_ms:9.3f}ms ref={ref_ms:9.3f}ms "
                  f"speedup={ref_ms / opt_ms:6.2f}x")

    e2e = []
    for algo_name in args.algos:
        row = e2e_case(algo_name, rounds, clients, samples, width,
                       args.seed)
        e2e.append(row)
        ok = row["byte_identical"] and row["ledger_equal"]
        status = "OK" if ok else "MISMATCH"
        print(f"e2e {algo_name:8s} workers=2 "
              f"broadcast={row['broadcast_round_s']:7.2f}s/round "
              f"off={row['no_broadcast_round_s']:7.2f}s/round "
              f"speedup={row['speedup']:5.2f}x [{status}]")

    from repro.obs.metrics import blas_env, observe_peak_rss
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "smoke": args.smoke,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": __import__("numpy").__version__,
        "peak_rss_bytes": observe_peak_rss(),
        "env": blas_env(),
        "micro": micro,
        "e2e": e2e,
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"written to {out}")

    if args.check:
        failures = check_regressions(record, baseline_doc, args.check_factor)
        for f in failures:
            print(f"REGRESSION: {f}")
        return 1 if failures else 0
    return 0 if all(r["byte_identical"] and r["ledger_equal"]
                    for r in e2e) else 1


if __name__ == "__main__":
    raise SystemExit(main())
