"""Pruning-method comparison (Table IV, §V-F1).

RL agent vs SFP / FPGM / DSA / magnitude / random on the plain pruning
task.  Paper shape: the agent is competitive with the classical criteria
(small accuracy drop at comparable FLOPs reduction) and clearly better
than random selection.
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import pruning_comparison_table
from repro.experiments.pruning_compare import render_pruning_table


def test_pruning_comparison(once, benchmark):
    cfg = bench_config(model="resnet20", flops_target=0.75,
                       n_samples=1600)
    results = once(pruning_comparison_table, cfg, 0.25, 5, 1, 6)
    print("\n" + render_pruning_table(results))
    by = {r.method: r for r in results}
    benchmark.extra_info["rows"] = json.dumps(
        {r.method: [round(r.acc_dense, 4), round(r.acc_pruned, 4),
                    round(r.flops_reduction, 4)] for r in results})

    agent = by["rl-agent (SPATL)"]
    assert agent.flops_reduction > 0.1
    # competitive: within a margin of the best classical criterion
    classical = [by[m] for m in ("magnitude-l2", "sfp", "fpgm", "dsa")]
    best = max(r.acc_pruned for r in classical)
    assert agent.acc_pruned >= best - 0.25
    # informed selection should beat random at matched budgets (allow noise)
    assert agent.acc_pruned >= by["random"].acc_pruned - 0.15
