"""Fig. 4 ablation: salient parameter selection vs no selection (§V-F1).

Paper shape: properly pruning unimportant weights does not harm training —
curves with selection track (sometimes beat) the dense-upload variant,
while uploading strictly fewer bytes.
"""

import json

from benchmarks.conftest import bench_config
from repro.experiments import ablation_selection
from repro.experiments.learning_efficiency import converge_accuracy_summary


def test_ablation_selection(once, benchmark):
    cfg = bench_config(model="resnet20", n_clients=6, sample_ratio=1.0,
                       rounds=10)
    results = once(ablation_selection, cfg, 10)
    summary = converge_accuracy_summary(
        {k: v for k, v in results.items()})
    print("\n=== Fig. 4: selection ablation ===")
    for k, log in results.items():
        print(f"{k:20s} accs={[round(a, 3) for a in log['val_acc']]} "
              f"MB/rd={log.meta['per_round_per_client_mb']:.3f}")
    benchmark.extra_info["summary"] = json.dumps(
        {k: round(v, 4) for k, v in summary.items()})

    with_sel = results["with_selection"]
    without = results["without_selection"]
    # selection must not collapse accuracy...
    assert summary["with_selection"] >= summary["without_selection"] - 0.1
    # ...and must communicate strictly less
    assert (with_sel.meta["per_round_per_client_mb"]
            < without.meta["per_round_per_client_mb"])
