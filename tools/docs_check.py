"""CI docs-check: keep user-facing docs in sync with the code.

Three invariants, all cheap and mechanical so they can gate CI:

1. **CLI coverage** — every option flag exposed by ``repro.cli`` must be
   mentioned in README.md.  PRs 1-2 added whole flag groups without
   README coverage; this check makes that class of drift a CI failure.
2. **Flag existence** — the reverse direction: every ``--flag`` README
   mentions must be defined somewhere — the ``repro.cli`` parser, an
   ``add_argument`` in a benchmark/tool/example script, or the short
   allowlist of external-tool flags (``pytest --benchmark-only``).
   Renaming or deleting a flag without sweeping README is a CI failure.
3. **DESIGN section references** — every ``DESIGN.md §N`` reference in
   the source tree and docs must point at an existing ``## N.`` heading,
   so refactoring DESIGN.md cannot silently strand pointers.

Run from the repo root (CI does)::

    PYTHONPATH=src python tools/docs_check.py

Exits non-zero listing every violation.  The checking functions are pure
(text in, violations out) so the test suite can assert both directions:
the current tree passes, and removing ``--workers`` from README fails.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Docs/sources scanned for DESIGN.md section references.
_REF_GLOBS = ("src/**/*.py", "benchmarks/**/*.py", "tests/**/*.py",
              "examples/**/*.py", "README.md", "EXPERIMENTS.md")
_SECTION_REF = re.compile(r"DESIGN(?:\.md)?`?\s*§(\d+)")
_SECTION_HEADING = re.compile(r"^## (\d+)\.", re.MULTILINE)

# Scripts (outside ``repro.cli``) whose argparse flags README may
# legitimately mention, scraped from source rather than imported so a
# script with heavyweight imports never has to run to be checked.
_SCRIPT_GLOBS = ("benchmarks/*.py", "tools/*.py", "examples/*.py")
_ADD_ARGUMENT = re.compile(r"add_argument\(\s*\"(--[A-Za-z][\w-]*)\"")
_FLAG_MENTION = re.compile(r"--[A-Za-z][\w-]*")

#: Flags owned by external tools that README documents invoking.
_EXTERNAL_FLAGS = frozenset({"--benchmark-only"})  # pytest-benchmark


def undocumented_flags(readme_text: str, parser=None) -> list[str]:
    """CLI option strings (``--foo``) that README.md never mentions."""
    if parser is None:
        from repro.cli import build_parser
        parser = build_parser()
    missing = []
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--") and option not in readme_text:
                missing.append(option)
    return sorted(set(missing))


def known_flags(root: Path = REPO_ROOT, parser=None) -> set[str]:
    """Every ``--flag`` README is allowed to mention: the ``repro.cli``
    parser's option strings, ``add_argument`` flags scraped from the
    benchmark/tool/example scripts, and the external-tool allowlist."""
    if parser is None:
        from repro.cli import build_parser
        parser = build_parser()
    flags = {option for action in parser._actions
             for option in action.option_strings if option.startswith("--")}
    for pattern in _SCRIPT_GLOBS:
        for path in sorted(root.glob(pattern)):
            try:
                flags.update(_ADD_ARGUMENT.findall(path.read_text()))
            except (OSError, UnicodeDecodeError):
                continue
    return flags | _EXTERNAL_FLAGS


def unknown_readme_flags(readme_text: str, known: set[str]) -> list[str]:
    """Flags README mentions that no parser or script defines."""
    return sorted({flag for flag in _FLAG_MENTION.findall(readme_text)
                   if flag not in known})


def referenced_design_sections(root: Path = REPO_ROOT) -> dict[str, set[str]]:
    """Map of DESIGN section number -> files that reference it."""
    refs: dict[str, set[str]] = {}
    for pattern in _REF_GLOBS:
        for path in sorted(root.glob(pattern)):
            try:
                text = path.read_text()
            except (OSError, UnicodeDecodeError):
                continue
            for match in _SECTION_REF.finditer(text):
                refs.setdefault(match.group(1), set()).add(
                    str(path.relative_to(root)))
    return refs


def missing_design_sections(design_text: str,
                            refs: dict[str, set[str]]) -> dict[str, set[str]]:
    """References to DESIGN sections with no matching ``## N.`` heading."""
    present = set(_SECTION_HEADING.findall(design_text))
    return {section: files for section, files in refs.items()
            if section not in present}


def main() -> int:
    """Run both checks against the working tree; print violations."""
    failures = 0

    readme = (REPO_ROOT / "README.md").read_text()
    for flag in undocumented_flags(readme):
        print(f"docs-check: CLI flag {flag} is not documented in README.md")
        failures += 1

    for flag in unknown_readme_flags(readme, known_flags()):
        print(f"docs-check: README.md mentions {flag} but no parser or "
              f"script defines it")
        failures += 1

    design = (REPO_ROOT / "DESIGN.md").read_text()
    for section, files in sorted(
            missing_design_sections(design,
                                    referenced_design_sections()).items()):
        where = ", ".join(sorted(files))
        print(f"docs-check: DESIGN.md §{section} referenced by {where} "
              f"but DESIGN.md has no '## {section}.' heading")
        failures += 1

    if failures:
        print(f"docs-check: {failures} violation(s)")
        return 1
    print("docs-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
