"""Graph neural network components (GCN layers + graph encoder).

The salient-parameter agent's policy network embeds the encoder's
computational graph with this GNN (Eq. 5: ``g = GraphEncoder(s)``) before
the MLP head projects node embeddings to per-layer sparsity ratios
(Eq. 6).
"""

from repro.gnn.layers import GCNLayer
from repro.gnn.encoder import GraphEncoder

__all__ = ["GCNLayer", "GraphEncoder"]
