"""Multi-layer GNN producing node and graph embeddings."""

from __future__ import annotations

import numpy as np

from repro.gnn.layers import GCNLayer
from repro.nn.module import Module, ModuleList
from repro.tensor.tensor import Tensor


class GraphEncoder(Module):
    """Stack of GCN layers; returns (node embeddings, mean-pooled graph embedding).

    This is the topology-embedding component the paper's agent shares
    across architectures: when the agent transfers from ResNet-56 to
    ResNet-18 (Fig. 6), these weights are *frozen* and only the MLP heads
    fine-tune.
    """

    def __init__(self, in_dim: int, hidden_dim: int = 32, n_layers: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if n_layers < 1:
            raise ValueError("need at least one GCN layer")
        layers = []
        d = in_dim
        for _ in range(n_layers):
            layers.append(GCNLayer(d, hidden_dim, activation="tanh", rng=rng))
            d = hidden_dim
        self.layers = ModuleList(layers)
        self.out_dim = hidden_dim

    def forward(self, x: np.ndarray, a_hat: np.ndarray) -> tuple[Tensor, Tensor]:
        h = Tensor(np.asarray(x, dtype=np.float32))
        for layer in self.layers:
            h = layer(h, a_hat)
        graph_emb = h.mean(axis=0)
        return h, graph_emb
