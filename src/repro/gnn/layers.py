"""Graph convolution layers on the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.nn import Linear
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class GCNLayer(Module):
    """Kipf-Welling graph convolution: ``H' = act(Â H W)``.

    The propagation matrix ``Â`` is a constant per forward call (the graph
    topology is data, not a parameter), so it enters the autodiff graph as
    a plain constant tensor.
    """

    def __init__(self, in_dim: int, out_dim: int, activation: str = "tanh",
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.lin = Linear(in_dim, out_dim, rng=rng)
        if activation not in ("tanh", "relu", "none"):
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, h: Tensor, a_hat: np.ndarray) -> Tensor:
        out = Tensor(np.asarray(a_hat, dtype=np.float32)) @ self.lin(h)
        if self.activation == "tanh":
            return out.tanh()
        if self.activation == "relu":
            return out.relu()
        return out

    def __repr__(self) -> str:
        return f"GCNLayer({self.lin.in_features}->{self.lin.out_features}, {self.activation})"
