"""Transferability of the learned model (Table III, §V-E).

Protocol: split the dataset into an FL portion and a held-out portion;
federate on the first with each method; then transfer the trained network
to the held-out data ("in a regular manner", i.e. fine-tuning) and compare
test accuracy.  The paper's claim is *parity*: SPATL's encoder — trained
without ever sharing a predictor — transfers as well as fully-shared
baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.transfer import transfer_accuracy
from repro.data import dirichlet_partition
from repro.data.datasets import ArrayDataset, train_val_split
from repro.fl import make_federated_clients
from repro.experiments.configs import ExperimentConfig, make_algorithm, \
    make_dataset
from repro.utils.rng import spawn_rng


def transferability_table(cfg: ExperimentConfig,
                          methods=("fedavg", "fednova", "scaffold", "spatl"),
                          holdout_fraction: float = 0.2,
                          transfer_epochs: int = 3,
                          rounds: int | None = None) -> dict[str, dict]:
    """FL-train on one split, transfer-finetune on the held-out split."""
    rounds = rounds or cfg.rounds
    full = make_dataset(cfg)
    rng = spawn_rng(cfg.seed, "transfer_split")
    order = rng.permutation(len(full))
    n_hold = int(round(holdout_fraction * len(full)))
    holdout = full.subset(order[:n_hold])
    fl_data = full.subset(order[n_hold:])
    transfer_train, transfer_test = train_val_split(holdout, 0.3,
                                                    seed=cfg.seed + 5)
    parts = dirichlet_partition(fl_data.y, cfg.n_clients, beta=cfg.beta,
                                seed=cfg.seed)
    results: dict[str, dict] = {}
    for method in methods:
        clients = make_federated_clients(fl_data, parts,
                                         batch_size=cfg.batch_size,
                                         seed=cfg.seed)

        def model_fn():
            from repro.models import build_model
            return build_model(cfg.model, num_classes=cfg.num_classes,
                               input_size=cfg.input_size,
                               width_mult=cfg.width_mult, seed=cfg.seed + 1)

        algo = make_algorithm(method, cfg, model_fn, clients)
        try:
            log = algo.run(rounds)
        finally:
            algo.close()   # release executor pools / shm segments
        model = algo.global_model
        acc_before = _plain_accuracy(model, transfer_test)
        acc_after = transfer_accuracy(model, transfer_train, transfer_test,
                                      epochs=transfer_epochs, lr=cfg.lr / 2,
                                      seed=cfg.seed)
        results[method] = {
            "fl_acc": log.meta.get("final_acc", log.last("val_acc")),
            "transfer_acc": acc_after,
            "zero_shot_acc": acc_before,
        }
    return results


def _plain_accuracy(model, data: ArrayDataset) -> float:
    from repro.pruning.baselines import evaluate
    return evaluate(model, data)
