"""Sync vs async convergence against virtual wall-time (DESIGN.md §12).

The synchronous loop pays the straggler tax every round: the round ends
when the *slowest* sampled client finishes, so one slow device stretches
every round it appears in.  The asynchronous runtime commits from
whichever ``buffer_k`` clients respond first and discounts stale updates,
trading per-update freshness for wall-time progress.

This experiment makes that trade measurable on equal terms.  Both modes
run the same algorithm, the same clients, and the *same* seeded
:class:`~repro.fl.faults.AsyncProfile` of per-client latencies:

- **sync** — the ordinary :meth:`~repro.fl.base.FederatedAlgorithm.run`
  loop; its virtual time per round is the max of the cohort's drawn
  durations (lock-step barrier), accumulated across rounds.
- **async** — :class:`~repro.fl.async_runtime.AsyncFederatedRunner` on
  the event heap; its virtual time is simply the clock at each commit.

The headline number is the **speedup**: virtual time for sync to reach
its own final training loss divided by the async time to first reach the
same loss.  Under a straggler-heavy profile the async runtime should win
(the gate in ``benchmarks/bench_async.py`` asserts it does).
"""

from __future__ import annotations

import math

from repro.experiments.configs import (ExperimentConfig, make_algorithm,
                                       make_setting)
from repro.fl.async_runtime import AsyncConfig, AsyncFederatedRunner
from repro.fl.base import sample_clients
from repro.fl.faults import AsyncProfile
from repro.utils.logging import render_table

#: Straggler-heavy default: ~1 in 3 jobs runs up to 6x slow, mild churn.
STRAGGLER_PROFILE = dict(jitter=0.2, straggler_prob=0.3, slowdown=6.0,
                         churn_prob=0.05, arrival_spread=0.5)


def _time_to_target(times: list[float], losses: list[float],
                    target: float) -> float:
    """First time the running-min loss reaches ``target`` (inf if never)."""
    best = math.inf
    for t, loss in zip(times, losses):
        if math.isfinite(loss):
            best = min(best, loss)
        if best <= target:
            return t
    return math.inf


def _sync_round_times(algo, profile: AsyncProfile, rounds: int) -> list[float]:
    """Cumulative virtual time of each sync round under ``profile``.

    A sync round is a barrier: it takes as long as the slowest sampled
    client's drawn duration (job id = round, matching the async runtime's
    one-job-per-step numbering in the equivalence regime).
    """
    out, now = [], 0.0
    for r in range(rounds):
        cohort = sample_clients(algo.clients, algo.sample_ratio, algo.seed, r)
        now += max(profile.duration(c.client_id, r,
                                    algo.epochs_for(c, r))
                   for c in cohort)
        out.append(now)
    return out


def async_convergence(cfg: ExperimentConfig, algorithm: str = "fedavg",
                      rounds: int | None = None,
                      profile: AsyncProfile | None = None,
                      async_config: AsyncConfig | None = None,
                      max_steps: int | None = None) -> dict:
    """Run sync and async under one latency profile; report time-to-target.

    Returns a dict with per-mode loss/time series, the sync-loss target,
    both times-to-target, and their ratio (``speedup`` > 1 means async
    reached the sync run's final training loss in less virtual time).
    """
    rounds = rounds if rounds is not None else cfg.rounds
    profile = profile or AsyncProfile(seed=cfg.seed, **STRAGGLER_PROFILE)

    # --- synchronous reference ------------------------------------------
    model_fn, clients = make_setting(cfg)
    sync_algo = make_algorithm(algorithm, cfg, model_fn, clients)
    try:
        sync_log = sync_algo.run(rounds)
    finally:
        sync_algo.close()   # release executor pools / shm segments
    sync_times = _sync_round_times(sync_algo, profile, rounds)
    sync_losses = list(sync_log["train_loss"])
    target = min(loss for loss in sync_losses if math.isfinite(loss))

    # --- asynchronous run ------------------------------------------------
    model_fn, clients = make_setting(cfg)
    async_algo = make_algorithm(algorithm, cfg, model_fn, clients)
    n = len(clients)
    acfg = async_config or AsyncConfig(
        buffer_k=max(2, math.ceil(n / 4)), staleness_alpha=0.5,
        max_inflight=n, max_queue=n)
    runner = AsyncFederatedRunner(async_algo, profile, acfg)
    # Commit budget: same number of *updates* as the sync run folded, so
    # neither mode sees more training work than the other.
    steps = max_steps if max_steps is not None else math.ceil(
        rounds * n * sync_algo.sample_ratio / acfg.buffer_k)
    results = runner.run(steps=steps)
    runner.finalize()
    async_algo.close()
    async_times = [r.time for r in results]
    async_losses = [r.train_loss for r in results]

    sync_t = _time_to_target(sync_times, sync_losses, target)
    async_t = _time_to_target(async_times, async_losses, target)
    return {
        "algorithm": algorithm,
        "target_loss": target,
        "sync": {"rounds": rounds, "times": sync_times,
                 "losses": sync_losses, "time_to_target": sync_t,
                 "total_gb": sync_algo.ledger.total_gb()},
        "async": {"steps": runner.server_step, "times": async_times,
                  "losses": async_losses, "time_to_target": async_t,
                  "total_gb": async_algo.ledger.total_gb(),
                  "summary": runner.summary()},
        "speedup": (sync_t / async_t
                    if math.isfinite(async_t) and async_t > 0
                    else float("nan")),
    }


def render_async_table(result: dict, title: str | None = None) -> str:
    """Render an ``async_convergence`` result as an aligned table."""
    headers = ["mode", "commits", "final loss", "virtual time",
               "time to target", "total GB"]
    sync, asy = result["sync"], result["async"]
    rows = [
        ["sync", sync["rounds"], min(sync["losses"]), sync["times"][-1],
         sync["time_to_target"], sync["total_gb"]],
        ["async", asy["steps"],
         min(loss for loss in asy["losses"] if math.isfinite(loss)),
         asy["times"][-1] if asy["times"] else float("nan"),
         asy["time_to_target"], asy["total_gb"]],
    ]
    return render_table(
        headers, rows,
        title or (f"Async convergence ({result['algorithm']}): "
                  f"speedup {result['speedup']:.2f}x to loss "
                  f"{result['target_loss']:.4f}"))
