"""Ablation studies (§V-F: Fig. 4, Fig. 5a, Fig. 5b).

Each ablation runs SPATL with one mechanism toggled and returns both
accuracy series for comparison:

- Fig. 4  — salient parameter selection vs none (selection should not hurt,
  and can help);
- Fig. 5a — heterogeneous transfer (private predictor) vs shared predictor
  (without transfer SPATL degrades sharply on non-IID data);
- Fig. 5b — gradient control vs none (control stabilises training).

For Fig. 5b both arms run with identical optimizer settings (vanilla SGD)
so the comparison isolates the control variates rather than a momentum
confound.
"""

from __future__ import annotations

from repro.experiments.configs import ExperimentConfig, make_algorithm, \
    make_setting
from repro.utils.logging import ExperimentLog


def _run_spatl(cfg: ExperimentConfig, rounds: int | None = None,
               **spatl_kwargs) -> ExperimentLog:
    model_fn, clients = make_setting(cfg)
    algo = make_algorithm("spatl", cfg, model_fn, clients, **spatl_kwargs)
    try:
        log = algo.run(rounds or cfg.rounds)
    finally:
        algo.close()   # release executor pools / shm segments
    log.meta["final_acc"] = log.last("val_acc")
    return log


def ablation_selection(cfg: ExperimentConfig,
                       rounds: int | None = None) -> dict[str, ExperimentLog]:
    """Fig. 4: SPATL with vs without salient parameter selection."""
    return {
        "with_selection": _run_spatl(cfg, rounds),
        "without_selection": _run_spatl(cfg, rounds, use_selection=False),
    }


def ablation_transfer(cfg: ExperimentConfig,
                      rounds: int | None = None) -> dict[str, ExperimentLog]:
    """Fig. 5a: private predictor (transfer) vs shared predictor."""
    return {
        "with_transfer": _run_spatl(cfg, rounds),
        "without_transfer": _run_spatl(cfg, rounds, use_transfer=False),
    }


def ablation_gradient_control(cfg: ExperimentConfig,
                              rounds: int | None = None
                              ) -> dict[str, ExperimentLog]:
    """Fig. 5b: control variates vs none, optimizer settings held equal."""
    return {
        "with_gradient_control": _run_spatl(cfg, rounds, momentum=0.0),
        "without_gradient_control": _run_spatl(cfg, rounds, momentum=0.0,
                                               use_gradient_control=False),
    }


def stability(series) -> float:
    """Mean absolute round-to-round accuracy change (lower = smoother).

    The quantitative readout for the paper's "substantially more stable
    training process" claims.
    """
    import numpy as np
    s = np.asarray(series, dtype=np.float64)
    if len(s) < 2:
        return 0.0
    return float(np.abs(np.diff(s)).mean())
