"""Run multiple algorithms on a shared setting and compare the results."""

from __future__ import annotations

import time
from typing import Sequence

from repro.experiments.configs import ExperimentConfig, make_algorithm, \
    make_setting
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.utils.logging import ExperimentLog, render_table
from repro.utils.metrics import best_smoothed, rounds_to_target


def run_algorithms(cfg: ExperimentConfig, algorithms: Sequence[str],
                   rounds: int | None = None,
                   target_accuracy: float | None = None,
                   patience: int | None = None,
                   verbose: bool = False) -> dict[str, ExperimentLog]:
    """Run each named algorithm on a *fresh* copy of the same setting.

    Clients are rebuilt per algorithm so persistent client state (control
    variates, private predictors) never leaks across methods.
    """
    rounds = rounds if rounds is not None else cfg.rounds
    results: dict[str, ExperimentLog] = {}
    tracer = get_tracer()
    for name in algorithms:
        model_fn, clients = make_setting(cfg)
        algo = make_algorithm(name, cfg, model_fn, clients)
        t0 = time.perf_counter()
        try:
            with tracer.span("algorithm", algorithm=name, rounds=rounds):
                log = algo.run(rounds, target_accuracy=target_accuracy,
                               patience=patience, verbose=verbose)
        finally:
            algo.close()   # release worker pools when --workers > 1
        wall = time.perf_counter() - t0
        log.meta["wall_time_s"] = wall
        get_registry().gauge("harness.wall_time_s", algorithm=name).set(wall)
        log.meta["algorithm"] = name
        log.meta["final_acc"] = log.last("val_acc")
        log.meta["best_acc"] = best_smoothed(log["val_acc"], window=3)
        results[name] = log
        # Per-client diagnostics for the local-accuracy figure.
        log.meta["per_client_acc"] = algo.per_client_accuracy()
        if hasattr(algo, "inference_report"):
            log.meta["inference"] = algo.inference_report()
    return results


def compare_table(results: dict[str, ExperimentLog],
                  target_accuracy: float | None = None) -> str:
    """Render a comparison table over a ``run_algorithms`` result."""
    headers = ["method", "rounds", "final acc", "best acc", "MB/round/client",
               "total GB"]
    if target_accuracy is not None:
        headers.insert(1, f"rounds->{target_accuracy:.0%}")
    rows = []
    for name, log in results.items():
        row = [name, len(log["val_acc"]), log.meta["final_acc"],
               log.meta["best_acc"], log.meta["per_round_per_client_mb"],
               log.meta["total_gb"]]
        if target_accuracy is not None:
            hit = rounds_to_target(log["val_acc"], target_accuracy)
            row.insert(1, hit if hit is not None else "-")
        rows.append(row)
    return render_table(headers, rows)
