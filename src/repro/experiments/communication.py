"""Communication-cost experiments (Table I, Table II, train-rounds figure).

Table I: train every method to a *target accuracy*, report rounds,
per-round/per-client payload, total cost, and speed-up relative to FedAvg
(Eq. 13 defines cost as the sum of per-round payloads).

Table II: train to *convergence* (no improvement for ``patience`` rounds),
report converge rounds, cost, and converged accuracy deltas vs FedAvg.

Absolute payload sizes depend on model scale, so alongside the measured
scaled-run costs we report the **full-size per-round payload** each
protocol implies (``paper_mb_per_round``), computed from the real
architectures through the same codec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.configs import ExperimentConfig, make_algorithm, \
    make_setting
from repro.models import paper_model_size_mb
from repro.utils.logging import ExperimentLog, render_table
from repro.utils.metrics import best_smoothed, rounds_to_target


@dataclass
class CostRow:
    """One row of Table I / Table II."""

    method: str
    model: str
    n_clients: int
    rounds: int
    reached_target: bool
    mb_per_round_client: float
    total_gb: float
    speedup_vs_fedavg: float
    final_acc: float
    acc_delta_vs_fedavg: float


# Full-size per-round protocol factors: how many model-equivalents cross
# the wire per client per round (down + up), per protocol.  Used to scale
# the full-size architecture payloads for the "paper-scale" cost column.
PROTOCOL_FACTORS = {
    "fedavg": 2.0,            # model down + model up
    "fedprox": 2.0,
    "fednova": 4.0,           # + server momentum down, local momentum up
    "scaffold": 4.0,          # + c down, delta-c up
    "spatl": None,            # measured: depends on selection sparsity
}


def paper_scale_mb_per_round(method: str, model: str,
                             measured_ratio: float | None = None) -> float:
    """Full-size per-round/client MB implied by each protocol."""
    base = paper_model_size_mb(model)
    factor = PROTOCOL_FACTORS.get(method)
    if factor is None:
        factor = measured_ratio if measured_ratio is not None else 2.5
    return base * factor


def _run_to_target(cfg: ExperimentConfig, method: str, target: float,
                   max_rounds: int) -> ExperimentLog:
    model_fn, clients = make_setting(cfg)
    algo = make_algorithm(method, cfg, model_fn, clients)
    try:
        return algo.run(max_rounds, target_accuracy=target)
    finally:
        algo.close()   # release executor pools / shm segments


def table1_target_cost(cfg: ExperimentConfig, target: float = 0.6,
                       methods=("fedavg", "fedprox", "fednova", "scaffold",
                                "spatl"),
                       max_rounds: int | None = None) -> list[CostRow]:
    """Table I: cost to reach ``target`` average accuracy."""
    max_rounds = max_rounds or cfg.rounds
    logs = {m: _run_to_target(cfg, m, target, max_rounds) for m in methods}
    return _rows_from_logs(cfg, logs, target=target)


def table2_convergence(cfg: ExperimentConfig, patience: int = 5,
                       methods=("fedavg", "fedprox", "fednova", "scaffold",
                                "spatl"),
                       max_rounds: int | None = None) -> list[CostRow]:
    """Table II: cost and accuracy when trained to convergence."""
    max_rounds = max_rounds or cfg.rounds
    logs = {}
    for m in methods:
        model_fn, clients = make_setting(cfg)
        algo = make_algorithm(m, cfg, model_fn, clients)
        try:
            logs[m] = algo.run(max_rounds, patience=patience)
        finally:
            algo.close()
    return _rows_from_logs(cfg, logs, target=None)


def _rows_from_logs(cfg: ExperimentConfig, logs: dict[str, ExperimentLog],
                    target: float | None) -> list[CostRow]:
    fedavg_log = logs.get("fedavg")
    fedavg_gb = fedavg_log.meta["total_gb"] if fedavg_log else None
    fedavg_acc = (best_smoothed(fedavg_log["val_acc"], 3)
                  if fedavg_log else float("nan"))
    rows = []
    for method, log in logs.items():
        accs = log["val_acc"]
        if target is not None:
            hit = rounds_to_target(accs, target)
            rounds = hit if hit is not None else len(accs)
            reached = hit is not None
            total_gb = log.meta["total_gb"] if hit is None else \
                _gb_up_to(log, hit)
        else:
            rounds = len(accs)
            reached = True
            total_gb = log.meta["total_gb"]
        best = best_smoothed(accs, 3)
        rows.append(CostRow(
            method=method, model=cfg.model, n_clients=cfg.n_clients,
            rounds=rounds, reached_target=reached,
            mb_per_round_client=log.meta["per_round_per_client_mb"],
            total_gb=total_gb,
            speedup_vs_fedavg=(fedavg_gb / total_gb
                               if fedavg_gb and total_gb else float("nan")),
            final_acc=best, acc_delta_vs_fedavg=best - fedavg_acc))
    return rows


def _gb_up_to(log: ExperimentLog, rounds: int) -> float:
    series = log["round_gb"]
    return float(np.sum(series[:rounds]))


def rounds_to_target_figure(cfg: ExperimentConfig, targets=(0.5, 0.6, 0.7),
                            methods=("fedavg", "fedprox", "fednova",
                                     "scaffold", "spatl"),
                            max_rounds: int | None = None) -> dict:
    """The train-rounds figure: rounds each method needs per target level."""
    max_rounds = max_rounds or cfg.rounds
    out: dict[str, dict[float, int | None]] = {}
    for method in methods:
        model_fn, clients = make_setting(cfg)
        algo = make_algorithm(method, cfg, model_fn, clients)
        try:
            log = algo.run(max_rounds)
        finally:
            algo.close()
        out[method] = {t: rounds_to_target(log["val_acc"], t) for t in targets}
    return out


def render_cost_table(rows: list[CostRow], title: str) -> str:
    """Render Table-I/II rows as an aligned text table."""
    headers = ["method", "model", "clients", "rounds", "hit", "MB/rd/cl",
               "total GB", "speedup", "acc", "dAcc"]
    table_rows = [[r.method, r.model, r.n_clients, r.rounds,
                   "yes" if r.reached_target else "no",
                   r.mb_per_round_client, r.total_gb, r.speedup_vs_fedavg,
                   r.final_acc, r.acc_delta_vs_fedavg] for r in rows]
    return render_table(headers, table_rows, title=title)
