"""Learning efficiency (Fig. 3 and the vgg_cifar curve grid, §V-B).

Average top-1 accuracy over heterogeneous clients versus communication
round, for SPATL against the four baselines, across client-count settings
(the paper sweeps 10 / 30 / 50 / 100 clients with sample ratios 1.0 / 0.4 /
0.7 / 0.4).
"""

from __future__ import annotations

from repro.experiments.configs import ExperimentConfig, config_for
from repro.experiments.harness import run_algorithms
from repro.utils.logging import ExperimentLog

DEFAULT_METHODS = ("fedavg", "fedprox", "fednova", "scaffold", "spatl")

# The paper's (clients, sample ratio) grid.
PAPER_SETTINGS = ((10, 1.0), (30, 0.4), (50, 0.7), (100, 0.4))


def learning_efficiency_curves(cfg: ExperimentConfig,
                               methods=DEFAULT_METHODS,
                               rounds: int | None = None
                               ) -> dict[str, ExperimentLog]:
    """Accuracy-vs-round series for each method on one setting."""
    return run_algorithms(cfg, methods, rounds=rounds)


def converge_accuracy_summary(results: dict[str, ExperimentLog]) -> dict[str, float]:
    """Fig. 3's bar values: converged (best smoothed) accuracy per method."""
    from repro.utils.metrics import best_smoothed
    return {name: best_smoothed(log["val_acc"], window=3)
            for name, log in results.items()}


def multi_setting_curves(scale: str = "tiny", model: str = "resnet20",
                         settings=((6, 1.0), (10, 0.4)),
                         methods=DEFAULT_METHODS,
                         seed: int = 0) -> dict[tuple, dict[str, ExperimentLog]]:
    """The curve grid across (clients, sample-ratio) settings."""
    out = {}
    for n_clients, ratio in settings:
        cfg = config_for(scale, model=model, n_clients=n_clients,
                         sample_ratio=ratio, seed=seed)
        out[(n_clients, ratio)] = learning_efficiency_curves(cfg, methods)
    return out
