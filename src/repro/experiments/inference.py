"""Inference acceleration (§V-D, the FLOPs table).

After federated training completes, each client's final salient selection
defines a pruned sub-network.  The paper reports, per model, the average
and maximum FLOPs reduction across the 10 clients and the sparsity ratio
(fraction of salient parameters kept).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.configs import ExperimentConfig, make_algorithm, \
    make_setting
from repro.utils.logging import render_table


def inference_acceleration_table(cfg: ExperimentConfig,
                                 rounds: int | None = None) -> dict:
    """Run SPATL, return FLOPs-reduction stats of final client selections."""
    rounds = rounds or cfg.rounds
    model_fn, clients = make_setting(cfg)
    algo = make_algorithm("spatl", cfg, model_fn, clients)
    try:
        log = algo.run(rounds)
    finally:
        algo.close()   # release executor pools / shm segments
    report = algo.inference_report()
    if not report:
        raise RuntimeError("no client selections were recorded")
    flops_red = np.asarray([1.0 - r["flops_ratio"] for r in report.values()])
    params_kept = np.asarray([r["sparsity_ratio"] for r in report.values()])
    return {
        "model": cfg.model,
        "n_clients_with_selection": len(report),
        "avg_flops_reduction": float(flops_red.mean()),
        "max_flops_reduction": float(flops_red.max()),
        "min_flops_reduction": float(flops_red.min()),
        "avg_keep_ratio": float(params_kept.mean()),
        "final_acc": log.meta.get("final_acc", log.last("val_acc")),
        "per_client": report,
    }


def render_inference_table(results: list[dict]) -> str:
    """Render the FLOPs table rows as text."""
    headers = ["model", "avg FLOPs drop", "max FLOPs drop", "keep ratio",
               "final acc"]
    rows = [[r["model"], f"{r['avg_flops_reduction']:.1%}",
             f"{r['max_flops_reduction']:.1%}", f"{r['avg_keep_ratio']:.2f}",
             f"{r['final_acc']:.3f}"] for r in results]
    return render_table(headers, rows, title="Inference acceleration (SPATL)")
