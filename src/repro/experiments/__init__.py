"""Experiment harness: one module per paper table/figure (see DESIGN.md §3).

Every experiment takes an :class:`~repro.experiments.configs.ExperimentConfig`
(scaled for CPU by default, ``scale="paper"`` for full-size settings) and
returns plain data structures that the benchmark suite renders as the
paper's rows/series.
"""

from repro.experiments.configs import (ExperimentConfig, SCALES, config_for,
                                       make_setting, make_algorithm,
                                       make_fault_model)
from repro.experiments.fault_tolerance import (fault_degradation_curve,
                                               render_fault_table)
from repro.experiments.async_convergence import (async_convergence,
                                                 render_async_table)
from repro.experiments.harness import run_algorithms, compare_table
from repro.experiments.learning_efficiency import learning_efficiency_curves
from repro.experiments.communication import (table1_target_cost,
                                             table2_convergence,
                                             rounds_to_target_figure)
from repro.experiments.local_accuracy import local_accuracy_figure
from repro.experiments.inference import inference_acceleration_table
from repro.experiments.transfer import transferability_table
from repro.experiments.pruning_compare import pruning_comparison_table
from repro.experiments.ablation import (ablation_selection, ablation_transfer,
                                        ablation_gradient_control)
from repro.experiments.rl_finetune import rl_finetune_figure

__all__ = [
    "ExperimentConfig", "SCALES", "config_for", "make_setting", "make_algorithm",
    "make_fault_model", "fault_degradation_curve", "render_fault_table",
    "async_convergence", "render_async_table",
    "run_algorithms", "compare_table",
    "learning_efficiency_curves",
    "table1_target_cost", "table2_convergence", "rounds_to_target_figure",
    "local_accuracy_figure", "inference_acceleration_table",
    "transferability_table", "pruning_comparison_table",
    "ablation_selection", "ablation_transfer", "ablation_gradient_control",
    "rl_finetune_figure",
]
