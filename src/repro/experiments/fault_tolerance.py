"""Degradation under injected faults: accuracy vs failure rate.

The paper's premise is unreliable heterogeneous edge clients, so this
experiment measures what the method families actually *lose* when the
deployment misbehaves: for each failure rate we run the full federated
loop under a seeded :class:`~repro.fl.faults.FaultModel` (client drops +
payload corruption) and record final accuracy, communicated bytes, and
the fault counters (drops / retries / detected corruptions / skipped
rounds).  SPATL vs FedAvg is the headline comparison: sparse salient
uploads mean a retransmission costs far less than a full-model one, and
gradient control is exercised under genuine partial participation.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.configs import (ExperimentConfig, make_algorithm,
                                       make_setting)
from repro.utils.logging import render_table

DEFAULT_RATES = (0.0, 0.1, 0.3)


def fault_degradation_curve(cfg: ExperimentConfig,
                            drop_probs: Sequence[float] = DEFAULT_RATES,
                            algorithms: Sequence[str] = ("fedavg", "spatl"),
                            corrupt_prob: float = 0.02,
                            rounds: int | None = None) -> dict:
    """accuracy/cost/fault counters per (algorithm, drop probability).

    ``drop_probs == 0.0`` runs with fault injection fully disabled (the
    byte-identical baseline path), so the first column is the fault-free
    reference every degradation is measured against.
    """
    rounds = rounds if rounds is not None else cfg.rounds
    results: dict[str, dict[float, dict]] = {}
    for name in algorithms:
        per_rate: dict[float, dict] = {}
        for p in drop_probs:
            fcfg = cfg.scaled(
                fault_drop_prob=p,
                fault_corrupt_prob=corrupt_prob if p > 0 else 0.0)
            model_fn, clients = make_setting(fcfg)
            algo = make_algorithm(name, fcfg, model_fn, clients)
            try:
                log = algo.run(rounds)
            finally:
                algo.close()   # release executor pools / shm segments
            per_rate[p] = {
                "final_acc": log.last("val_acc"),
                "total_gb": algo.ledger.total_gb(),
                "rounds_run": log.meta["rounds_run"],
                **algo.fault_stats.as_dict(),
            }
        results[name] = per_rate
    return results


def render_fault_table(results: dict, title: str | None = None) -> str:
    """Render a ``fault_degradation_curve`` result as an aligned table."""
    headers = ["method", "drop p", "final acc", "total GB", "dropped",
               "retries", "corrupt", "resamples"]
    rows = []
    for name, per_rate in results.items():
        for p, row in per_rate.items():
            rows.append([name, p, row["final_acc"], row["total_gb"],
                         row["n_dropped"], row["n_retries"],
                         row["n_corrupt"], row["n_resamples"]])
    return render_table(headers, rows,
                        title or "Fault tolerance: accuracy vs failure rate")
