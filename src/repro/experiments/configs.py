"""Experiment configuration: datasets, partitions, models, algorithms.

The paper's settings (§V-A) are preserved structurally — Dirichlet(0.5)
CIFAR-10 splits, LEAF-style FEMNIST, 10-100 clients, sample ratios 0.4-1.0,
10 local epochs — while three *scales* control how much compute a run
costs:

- ``tiny``   — CI-friendly: 16x16 inputs, width 0.25, ~1-2k samples.
- ``small``  — bench default: 16x16, width 0.25-0.5, more data/rounds.
- ``paper``  — full-size 32x32 width-1.0 models and paper round counts
  (provided for completeness; hours-to-days on one CPU).

All experiment modules accept an :class:`ExperimentConfig` so the same
code produces every scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.core import SPATL, RLSelectionPolicy, StaticSaliencyPolicy
from repro.data import (SyntheticCIFAR10, SyntheticFEMNIST, by_writer_partition,
                        dirichlet_partition)
from repro.fl import (ALGORITHMS, Client, FaultModel, RetryPolicy,
                      make_executor, make_federated_clients,
                      make_quant_config)
from repro.models import build_model
from repro.rl import SalientParameterAgent


@dataclass(frozen=True)
class ExperimentConfig:
    """One FL experiment setting."""

    model: str = "resnet20"
    dataset: str = "cifar10"
    n_clients: int = 10
    sample_ratio: float = 1.0
    beta: float = 0.5              # Dirichlet concentration (paper: 0.5)
    n_samples: int = 2000
    input_size: int = 16
    width_mult: float = 0.25
    num_classes: int = 10
    local_epochs: int = 3          # paper: 10
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    rounds: int = 20
    seed: int = 0
    # SPATL knobs
    selection_sparsity: float = 0.3
    flops_target: float = 0.75
    use_rl_policy: bool = False    # RL agent (True) vs static saliency policy
    # Fault-injection knobs (all zero => fault path disabled entirely, so
    # default runs stay byte-identical to the fault-free protocol).
    fault_drop_prob: float = 0.0
    fault_corrupt_prob: float = 0.0
    fault_straggler_prob: float = 0.0
    fault_slowdown: float = 4.0
    fault_timeout: float | None = None   # server deadline in epoch-units
    fault_crash_prob: float = 0.0
    fault_retries: int = 2
    fault_seed: int | None = None        # defaults to `seed` when faults on
    min_clients: int = 1                 # round-commit quorum
    # Round-execution engine (DESIGN.md §9/§14): 1 = in-process serial
    # executor, N>1 fans per-client exchanges over N worker processes.
    # ``executor`` picks the engine explicitly ("auto" | "serial" |
    # "process" | "vectorized"); ``shm=True`` routes the process pool's
    # per-round broadcast state through shared memory.  Results are
    # byte-identical across all engines.
    workers: int = 1
    executor: str = "auto"
    shm: bool = False
    # Trace-and-replay step compiler (DESIGN.md §15): capture each local
    # training step once per (model, batch-signature) and replay it with
    # static memory planning.  Byte-identical to eager execution; off by
    # default so baseline runs keep the untouched eager loop.
    compile: bool = False
    # Low-bit quantized uplink transport (DESIGN.md §16): stochastic
    # int8/int4 codec with per-client error feedback.  ``quant_bits=32``
    # keeps the dense fp32 wire byte-identical to the unquantized path;
    # 16 casts through fp16 records; 8/4 run the stochastic codec.
    # ``quant_block=0`` means one scale per tensor, else values/scale.
    quant_bits: int = 32
    quant_block: int = 0
    quant_ef: bool = True
    # Kept fraction per tensor for the sparse-at-init algorithms
    # (salientgrads / ssfl).
    mask_density: float = 0.3

    def scaled(self, **overrides) -> "ExperimentConfig":
        return replace(self, **overrides)

    @property
    def faults_enabled(self) -> bool:
        return (self.fault_drop_prob > 0 or self.fault_corrupt_prob > 0
                or self.fault_crash_prob > 0 or self.fault_timeout is not None)


SCALES: dict[str, dict] = {
    "tiny": dict(n_samples=1500, input_size=16, width_mult=0.25,
                 local_epochs=2, rounds=10),
    "small": dict(n_samples=3000, input_size=16, width_mult=0.25,
                  local_epochs=3, rounds=25),
    "paper": dict(n_samples=50_000, input_size=32, width_mult=1.0,
                  local_epochs=10, rounds=400),
}


def config_for(scale: str = "tiny", **overrides) -> ExperimentConfig:
    """Config at a named scale with per-experiment overrides."""
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; known: {sorted(SCALES)}")
    return ExperimentConfig(**{**SCALES[scale], **overrides})


def make_dataset(cfg: ExperimentConfig):
    """Instantiate the config's dataset (synthetic CIFAR-10 or FEMNIST)."""
    if cfg.dataset == "cifar10":
        return SyntheticCIFAR10(n_samples=cfg.n_samples, size=cfg.input_size,
                                seed=cfg.seed, num_classes=cfg.num_classes)
    if cfg.dataset == "femnist":
        per_writer = max(20, cfg.n_samples // max(cfg.n_clients * 5, 1))
        return SyntheticFEMNIST(n_writers=cfg.n_clients * 5,
                                samples_per_writer=per_writer,
                                size=cfg.input_size, seed=cfg.seed,
                                num_classes=cfg.num_classes)
    raise KeyError(f"unknown dataset {cfg.dataset!r}")


def make_setting(cfg: ExperimentConfig) -> tuple[Callable, list[Client]]:
    """(model_fn, clients) for a config — the inputs every algorithm takes."""
    ds = make_dataset(cfg)
    if cfg.dataset == "femnist":
        parts = by_writer_partition(ds.writer_ids, cfg.n_clients, seed=cfg.seed)
    else:
        parts = dirichlet_partition(ds.y, cfg.n_clients, beta=cfg.beta,
                                    seed=cfg.seed)
    clients = make_federated_clients(ds, parts, batch_size=cfg.batch_size,
                                     seed=cfg.seed)
    in_size = cfg.input_size

    def model_fn():
        return build_model(cfg.model, num_classes=cfg.num_classes,
                           input_size=in_size, width_mult=cfg.width_mult,
                           seed=cfg.seed + 1)

    return model_fn, clients


def make_fault_model(cfg: ExperimentConfig) -> FaultModel | None:
    """Config's fault model, or ``None`` when fault injection is off."""
    if not cfg.faults_enabled:
        return None
    return FaultModel(
        drop_prob=cfg.fault_drop_prob,
        straggler_prob=cfg.fault_straggler_prob,
        slowdown=cfg.fault_slowdown,
        timeout=math.inf if cfg.fault_timeout is None else cfg.fault_timeout,
        corrupt_prob=cfg.fault_corrupt_prob,
        crash_prob=cfg.fault_crash_prob,
        seed=cfg.seed if cfg.fault_seed is None else cfg.fault_seed,
    )


def make_spatl_policy(cfg: ExperimentConfig,
                      pretrained: SalientParameterAgent | None = None):
    """SPATL's selection policy per config: RL agent or static saliency."""
    if cfg.use_rl_policy:
        agent = pretrained or SalientParameterAgent(seed=cfg.seed)
        return RLSelectionPolicy(agent, flops_target=cfg.flops_target,
                                 finetune_rounds=2, finetune_updates=1)
    return StaticSaliencyPolicy(cfg.selection_sparsity)


def make_algorithm(name: str, cfg: ExperimentConfig, model_fn, clients,
                   pretrained_agent: SalientParameterAgent | None = None,
                   **overrides):
    """Instantiate any algorithm (baseline or SPATL) for a setting.

    All methods share the config's lr / local epochs / sampling so the
    comparison isolates the algorithm, as in the Non-IID benchmark.
    """
    common = dict(lr=cfg.lr, local_epochs=cfg.local_epochs,
                  sample_ratio=cfg.sample_ratio, momentum=cfg.momentum,
                  seed=cfg.seed)
    quant = make_quant_config(cfg.quant_bits, cfg.quant_block, cfg.quant_ef)
    if quant is not None:
        common["quant"] = quant
    if cfg.workers > 1 or cfg.executor != "auto" or cfg.shm:
        common["executor"] = make_executor(cfg.workers, kind=cfg.executor,
                                           shm=cfg.shm)
    if cfg.compile:
        common["compile_steps"] = True
    fault_model = make_fault_model(cfg)
    if fault_model is not None:
        common.update(fault_model=fault_model,
                      retry_policy=RetryPolicy(max_retries=cfg.fault_retries),
                      min_clients=cfg.min_clients)
    common.update(overrides)
    if name == "spatl":
        policy = common.pop("selection_policy", None) or \
            make_spatl_policy(cfg, pretrained_agent)
        return SPATL(model_fn, clients, selection_policy=policy, **common)
    if name in ALGORITHMS:
        if name == "scaffold":
            common.pop("momentum", None)  # scaffold manages its own default
        if name in ("salientgrads", "ssfl"):
            common.setdefault("density", cfg.mask_density)
        return ALGORITHMS[name](model_fn, clients, **common)
    raise KeyError(f"unknown algorithm {name!r}")
