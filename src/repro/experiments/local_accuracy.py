"""Per-client accuracy figure (§V-B, "fig:local_acc").

The paper trains ResNet-20 on 10 clients with SPATL and SCAFFOLD and plots
each client's final accuracy: SPATL's heterogeneous predictors give every
client similar accuracy, while the shared-model baseline shows high
variance across clients.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.configs import ExperimentConfig, make_algorithm, \
    make_setting


def local_accuracy_figure(cfg: ExperimentConfig,
                          methods=("spatl", "scaffold"),
                          rounds: int | None = None) -> dict[str, dict]:
    """Per-client accuracies plus mean/std per method."""
    rounds = rounds or cfg.rounds
    out = {}
    for method in methods:
        model_fn, clients = make_setting(cfg)
        algo = make_algorithm(method, cfg, model_fn, clients)
        try:
            algo.run(rounds)
        finally:
            algo.close()   # release executor pools / shm segments
        accs = np.asarray(algo.per_client_accuracy())
        out[method] = {
            "per_client": accs.tolist(),
            "mean": float(accs.mean()),
            "std": float(accs.std()),
            "min": float(accs.min()),
            "max": float(accs.max()),
        }
    return out
