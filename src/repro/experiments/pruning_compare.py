"""Pruning-method comparison (Table IV, §V-F1).

Compares the RL salient-parameter agent against SFP / FPGM / DSA-style /
magnitude / random selection on the plain network-pruning task: train a
model centrally, prune with each method to a comparable budget, report
accuracy drop and FLOPs reduction.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import train_val_split
from repro.experiments.configs import ExperimentConfig, make_dataset
from repro.models import build_model
from repro.pruning import (PruneResult, prune_dsa, prune_fpgm, prune_magnitude,
                           prune_random, prune_sfp)
from repro.pruning.baselines import evaluate, finetune
from repro.rl import pretrain_agent
from repro.utils.logging import render_table


def _fresh_model(cfg: ExperimentConfig):
    return build_model(cfg.model, num_classes=cfg.num_classes,
                       input_size=cfg.input_size, width_mult=cfg.width_mult,
                       seed=cfg.seed + 1)


def pruning_comparison_table(cfg: ExperimentConfig, sparsity: float = 0.25,
                             train_epochs: int = 5, finetune_epochs: int = 1,
                             agent_updates: int = 8,
                             flops_target: float | None = None
                             ) -> list[PruneResult]:
    """Run every pruning method from the same dense checkpoint."""
    ds = make_dataset(cfg)
    train, val = train_val_split(ds, 0.25, seed=cfg.seed)
    dense = _fresh_model(cfg)
    finetune(dense, train, epochs=train_epochs, lr=cfg.lr, seed=cfg.seed)
    dense_state = dense.state_dict()
    flops_target = flops_target or cfg.flops_target

    def checkpoint():
        model = _fresh_model(cfg)
        model.load_state_dict(dense_state)
        return model

    results: list[PruneResult] = []
    results.append(prune_magnitude(checkpoint(), train, val, sparsity,
                                   finetune_epochs=finetune_epochs,
                                   seed=cfg.seed))
    results.append(prune_random(checkpoint(), train, val, sparsity,
                                finetune_epochs=finetune_epochs,
                                seed=cfg.seed))
    results.append(prune_sfp(checkpoint(), train, val, sparsity,
                             epochs=max(finetune_epochs, 2), lr=cfg.lr / 2,
                             finetune_epochs=finetune_epochs, seed=cfg.seed))
    results.append(prune_fpgm(checkpoint(), train, val, sparsity,
                              finetune_epochs=finetune_epochs, seed=cfg.seed))
    results.append(prune_dsa(checkpoint(), train, val,
                             flops_target=flops_target,
                             finetune_epochs=finetune_epochs, seed=cfg.seed))

    # The paper's agent: PPO pruning on the same checkpoint.
    model = checkpoint()
    agent, _ = pretrain_agent(model, train, val, updates=agent_updates,
                              episodes_per_update=4,
                              flops_target=flops_target, seed=cfg.seed)
    selection, info = agent.propose(model, val, flops_target=flops_target)
    acc_dense = evaluate(model, val)
    selection.apply_to(model.encoder)
    finetune(model, train, epochs=finetune_epochs, seed=cfg.seed)
    acc_pruned = evaluate(model, val)
    model.encoder.clear_channel_masks()
    results.append(PruneResult("rl-agent (SPATL)", acc_dense, acc_pruned,
                               info["flops_ratio"],
                               selection.mean_sparsity(), selection))
    return results


def render_pruning_table(results: list[PruneResult]) -> str:
    """Render Table-IV rows as text."""
    headers = ["method", "dense acc", "pruned acc", "acc drop",
               "FLOPs reduction", "mean sparsity"]
    rows = [[r.method, r.acc_dense, r.acc_pruned, r.acc_drop,
             f"{r.flops_reduction:.1%}", f"{r.mean_sparsity:.2f}"]
            for r in results]
    return render_table(headers, rows, title="Pruning comparison (Table IV)")
