"""RL agent pre-train → fine-tune transfer (Fig. 6, §V-F4).

Pre-train the agent on pruning one architecture (paper: ResNet-56), then
transfer it to a different architecture (ResNet-18) fine-tuning only the
MLP heads, and record the average reward per policy-update round for both
phases.  The claim: the fine-tuned agent recovers comparable reward within
a few dozen updates — transfer works.
"""

from __future__ import annotations

from repro.data.datasets import train_val_split
from repro.experiments.configs import ExperimentConfig, make_dataset
from repro.models import build_model
from repro.pruning.baselines import finetune as model_finetune
from repro.rl import pretrain_agent


def rl_finetune_figure(cfg: ExperimentConfig,
                       source_model: str = "resnet56",
                       target_model: str = "resnet18",
                       pretrain_updates: int = 10,
                       finetune_updates: int = 10,
                       episodes_per_update: int = 4,
                       train_epochs: int = 3,
                       target_width_mult: float | None = None) -> dict:
    """Returns reward histories for pre-training and fine-tuning phases."""
    ds = make_dataset(cfg)
    train, val = train_val_split(ds, 0.25, seed=cfg.seed)

    source = build_model(source_model, num_classes=cfg.num_classes,
                         input_size=cfg.input_size, width_mult=cfg.width_mult,
                         seed=cfg.seed + 1)
    model_finetune(source, train, epochs=train_epochs, lr=cfg.lr, seed=cfg.seed)
    agent, pretrain_history = pretrain_agent(
        source, train, val, updates=pretrain_updates,
        episodes_per_update=episodes_per_update,
        flops_target=cfg.flops_target, seed=cfg.seed)

    wm = target_width_mult if target_width_mult is not None else cfg.width_mult
    target = build_model(target_model, num_classes=cfg.num_classes,
                         input_size=cfg.input_size, width_mult=wm,
                         seed=cfg.seed + 2)
    model_finetune(target, train, epochs=train_epochs, lr=cfg.lr, seed=cfg.seed)
    finetune_history = agent.finetune(target, val, updates=finetune_updates,
                                      episodes_per_update=episodes_per_update,
                                      flops_target=cfg.flops_target)
    return {
        "source_model": source_model,
        "target_model": target_model,
        "pretrain_rewards": pretrain_history,
        "finetune_rewards": finetune_history,
        "agent_memory_bytes": agent.policy.memory_bytes(),
    }
