"""Pluggable salient-selection policies for the SPATL client (step 3 of
Fig. 1: "the salient parameter selection agent evaluates the training
results of the current model").

``RLSelectionPolicy`` is the paper's agent; the others exist for the
ablation of Fig. 4 (no selection) and for the DESIGN.md ablation benches
(static saliency, random) that isolate how much the *learned* policy
matters versus merely uploading fewer parameters.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.models.split import SplitModel
from repro.pruning.selector import (SalientSelection, dense_selection,
                                    selection_from_sparsity)
from repro.rl.agent import SalientParameterAgent
from repro.utils.rng import spawn_rng


class SelectionPolicy:
    """Interface: produce a selection for a client's freshly trained model."""

    def select(self, model: SplitModel, val_data: ArrayDataset,
               client_id: int, round_idx: int) -> SalientSelection:
        raise NotImplementedError

    def communicates_sparse(self) -> bool:
        """False for the no-selection ablation (dense uploads)."""
        return True

    def client_state(self, client_id: int):
        """Per-client policy state to ship to a worker process.

        Policies are either stateless (return None, the default) or keep
        strictly per-client state (the RL policy's fine-tuned agents) —
        that structure is what lets the parallel executor run clients in
        any order while staying byte-identical to serial execution.
        """
        return None

    def load_client_state(self, client_id: int, state) -> None:
        """Install :meth:`client_state` output (no-op for stateless)."""


class NoSelectionPolicy(SelectionPolicy):
    """Fig. 4 ablation: upload every parameter (SPATL w/o selection)."""

    def select(self, model, val_data, client_id, round_idx):
        return dense_selection(model.encoder)

    def communicates_sparse(self) -> bool:
        return False


class StaticSaliencyPolicy(SelectionPolicy):
    """Uniform sparsity with a norm criterion — selection without the agent."""

    def __init__(self, sparsity: float = 0.3, criterion: str = "l2"):
        if not 0.0 <= sparsity < 1.0:
            raise ValueError("sparsity must be in [0, 1)")
        self.sparsity = sparsity
        self.criterion = criterion

    def select(self, model, val_data, client_id, round_idx):
        uniform = {n: self.sparsity for n in model.encoder.prunable_layers()}
        return selection_from_sparsity(model.encoder, uniform, self.criterion)


class RandomSelectionPolicy(SelectionPolicy):
    """Random filters at fixed sparsity — the lower bound for selection."""

    def __init__(self, sparsity: float = 0.3, seed: int = 0):
        self.sparsity = sparsity
        self.seed = seed

    def select(self, model, val_data, client_id, round_idx):
        rng = spawn_rng(self.seed, "random_sel", client_id, round_idx)
        keep, masks, indices = {}, {}, {}
        params = dict(model.encoder.named_parameters())
        for name in model.encoder.prunable_layers():
            out_c = params[name + ".weight"].data.shape[0]
            k = max(1, int(round((1 - self.sparsity) * out_c)))
            kept = np.sort(rng.choice(out_c, size=k, replace=False)).astype(np.int32)
            mask = np.zeros(out_c, dtype=np.float32)
            mask[kept] = 1.0
            keep[name], masks[name], indices[name] = k / out_c, mask, kept
        return SalientSelection(keep, masks, indices)


class RLSelectionPolicy(SelectionPolicy):
    """The paper's agent: pre-trained PPO policy, fine-tuned online per client.

    Each client receives a *clone* of the pre-trained agent; for the first
    ``finetune_rounds`` rounds of that client's participation the clone's
    MLP heads are fine-tuned by online PPO on the client's own model and
    validation data (§V-A: fine-tune "in the first 10 communication rounds",
    updating only the MLP).  Afterwards selection is one-shot deterministic
    inference.
    """

    def __init__(self, pretrained: SalientParameterAgent,
                 flops_target: float = 0.7, finetune_rounds: int = 3,
                 finetune_updates: int = 1, episodes_per_update: int = 4,
                 s_max: float = 0.8, probe_size: int = 128):
        self.pretrained = pretrained
        self.flops_target = flops_target
        self.finetune_rounds = finetune_rounds
        self.finetune_updates = finetune_updates
        self.episodes_per_update = episodes_per_update
        self.s_max = s_max
        self.probe_size = probe_size
        self._client_agents: dict[int, SalientParameterAgent] = {}
        self._client_participations: dict[int, int] = {}

    def agent_for(self, client_id: int) -> SalientParameterAgent:
        if client_id not in self._client_agents:
            clone = self.pretrained.clone()
            clone.seed = self.pretrained.seed * 9973 + client_id
            self._client_agents[client_id] = clone
        return self._client_agents[client_id]

    def client_state(self, client_id: int):
        """The client's fine-tuned agent clone and participation count."""
        if client_id not in self._client_agents:
            return None
        return {"agent": self._client_agents[client_id],
                "participations": self._client_participations.get(client_id, 0)}

    def load_client_state(self, client_id: int, state) -> None:
        """Install a shipped agent clone + participation count."""
        if state is None:
            return
        self._client_agents[client_id] = state["agent"]
        self._client_participations[client_id] = state["participations"]

    def select(self, model, val_data, client_id, round_idx):
        agent = self.agent_for(client_id)
        seen = self._client_participations.get(client_id, 0)
        if seen < self.finetune_rounds:
            agent.finetune(model, val_data, updates=self.finetune_updates,
                           episodes_per_update=self.episodes_per_update,
                           flops_target=self.flops_target, s_max=self.s_max,
                           probe_size=self.probe_size)
        self._client_participations[client_id] = seen + 1
        selection, _ = agent.propose(model, val_data,
                                     flops_target=self.flops_target,
                                     s_max=self.s_max,
                                     probe_size=self.probe_size)
        return selection
