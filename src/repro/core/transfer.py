"""Knowledge transfer of the shared encoder to a client (§IV-A).

Two cases from the paper:

- participating clients jointly optimise encoder + predictor (Eq. 3) —
  that path lives in :class:`repro.core.spatl.SPATL`;
- clients *never selected* for communication download the trained encoder
  and update **only their local predictor** (Eq. 4) before using the
  model.  :func:`transfer_to_client` implements that path; it is also the
  primitive behind the transferability experiment (Table III), which
  transfers a federated encoder to an entirely held-out dataset.
"""

from __future__ import annotations

from repro.data.datasets import ArrayDataset
from repro.fl.local import train_local
from repro.fl.client import Client
from repro.models.split import SplitModel


def transfer_to_client(model: SplitModel, client: Client, epochs: int = 3,
                       lr: float = 0.01, momentum: float = 0.9,
                       freeze_encoder: bool = True) -> float:
    """Eq. 4: adapt the predictor to the client's data, encoder frozen.

    Returns the mean local training loss.  With ``freeze_encoder=False``
    this becomes full fine-tuning (used as the transfer-learning protocol
    of Table III, "conducted in a regular manner").
    """
    if freeze_encoder:
        keep = lambda name: name.startswith(SplitModel.PREDICTOR_PREFIX)
    else:
        keep = None
    loss, _, _ = train_local(model, client, round_idx=0, epochs=epochs, lr=lr,
                             momentum=momentum, param_filter=keep)
    return loss


def transfer_accuracy(model: SplitModel, train_data: ArrayDataset,
                      test_data: ArrayDataset, epochs: int = 3,
                      lr: float = 0.01, batch_size: int = 64, seed: int = 0,
                      freeze_encoder: bool = False) -> float:
    """Table-III protocol: fine-tune on new data, report test accuracy."""
    client = Client(client_id=-1, train_data=train_data, val_data=test_data,
                    batch_size=batch_size, seed=seed)
    transfer_to_client(model, client, epochs=epochs, lr=lr,
                       freeze_encoder=freeze_encoder)
    acc, _ = client.evaluate(model, test_data)
    return acc
