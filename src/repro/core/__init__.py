"""SPATL — the paper's primary contribution (§IV).

Combines the three mechanisms on top of the FL substrate:

- encoder/predictor knowledge transfer (:mod:`repro.core.transfer`, §IV-A);
- salient parameter selection and index-wise sparse aggregation
  (:mod:`repro.core.selection_policies`, :mod:`repro.core.aggregation`,
  §IV-B, §IV-C1, Eq. 12);
- generic-parameter (encoder-only) gradient control
  (:mod:`repro.core.gradient_control`, §IV-C, Eq. 9-11).

:class:`repro.core.spatl.SPATL` is the trainer; its ``use_selection``,
``use_transfer`` and ``use_gradient_control`` switches drive the paper's
three ablations (Fig. 4 / Fig. 5a / Fig. 5b).
"""

from repro.core.gradient_control import ControlVariate
from repro.core.aggregation import salient_aggregate
from repro.core.selection_policies import (SelectionPolicy, RLSelectionPolicy,
                                           StaticSaliencyPolicy,
                                           RandomSelectionPolicy,
                                           NoSelectionPolicy)
from repro.core.transfer import transfer_to_client
from repro.core.spatl import SPATL

__all__ = [
    "ControlVariate", "salient_aggregate",
    "SelectionPolicy", "RLSelectionPolicy", "StaticSaliencyPolicy",
    "RandomSelectionPolicy", "NoSelectionPolicy",
    "transfer_to_client", "SPATL",
]
