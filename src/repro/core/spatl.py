"""The SPATL trainer (§IV, Fig. 1).

Protocol per round, per selected client:

1. **Download** — dense global encoder, plus the server control variate
   ``c`` when gradient control is on.
2. **Local update** (Eq. 3) — the client composes the downloaded encoder
   with its *private* predictor and trains both; encoder gradients are
   corrected by ``(c - c_i)`` (Eq. 9).  The predictor never leaves the
   client (knowledge transfer, §IV-A).
3. **Variate refresh** (Eq. 10) — the client refreshes its ``c_i`` from
   the encoder's net movement.
4. **Selection** — the salient-parameter policy (RL agent by default)
   picks the filters worth uploading; non-prunable encoder tensors travel
   dense.
5. **Upload** — selected filter rows + int32 indices + dense remainder.
6. **Aggregate** (Eq. 12) — index-wise averaging of covered filters;
   dense tensors average FedAvg-style.  The server reconstructs each
   client's variate delta from the upload itself (see
   :func:`repro.core.gradient_control.server_variate_delta`) and applies
   Eq. 11 — control information therefore costs no uplink bytes.

Ablation switches: ``use_selection`` (Fig. 4), ``use_transfer`` (Fig. 5a,
predictor becomes shared/aggregated), ``use_gradient_control`` (Fig. 5b).
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import salient_aggregate
from repro.core.gradient_control import (ControlVariate, make_correction_hook,
                                         refresh_client_variate)
from repro.core.selection_policies import (NoSelectionPolicy, SelectionPolicy,
                                           StaticSaliencyPolicy)
from repro.fl.base import FederatedAlgorithm
from repro.fl.client import Client
from repro.fl.local import train_local, weighted_average_states
from repro.graph import build_graph
from repro.models.split import SplitModel
from repro.pruning.selector import SalientSelection, select_salient


class SPATL(FederatedAlgorithm):
    """Salient Parameter Aggregation and Transfer Learning trainer.

    See the module docstring for the per-round protocol; constructor
    switches ``use_selection`` / ``use_transfer`` / ``use_gradient_control``
    drive the paper's ablations.
    """
    name = "spatl"

    def __init__(self, model_fn, clients, selection_policy: SelectionPolicy | None = None,
                 use_selection: bool = True, use_transfer: bool = True,
                 use_gradient_control: bool = True,
                 aggregation_step: float = 1.0, **kwargs):
        super().__init__(model_fn, clients, **kwargs)
        self._work: SplitModel = model_fn()
        self._eval: SplitModel = model_fn()
        if not use_selection:
            self.selection_policy: SelectionPolicy = NoSelectionPolicy()
        else:
            self.selection_policy = selection_policy or StaticSaliencyPolicy(0.3)
        self.use_transfer = use_transfer
        self.use_gradient_control = use_gradient_control
        self.aggregation_step = aggregation_step
        self.prunable: list[str] = self.global_model.encoder.prunable_layers()
        self._prunable_weight_keys = {name + ".weight" for name in self.prunable}
        self.c_global = ControlVariate.zeros_like_params(
            self.global_model.encoder.named_parameters())
        self._template_predictor = self.global_model.predictor_state()
        self.last_selection: dict[int, SalientSelection] = {}

    # ------------------------------------------------------------ state
    def _effective_steps(self, tau: int) -> float:
        """Momentum-corrected step count for the variate refresh.

        SCAFFOLD's Eq. 10 denominator ``K * eta`` assumes vanilla SGD; with
        heavy-ball momentum ``rho`` the encoder's net movement per unit
        gradient is amplified, and the matching denominator uses FedNova's
        effective-step formula.  This keeps Eq. 10's variate estimate
        consistent, letting SPATL retain momentum (unlike SCAFFOLD, whose
        reference implementation must drop it).
        """
        rho = self.momentum
        tau = max(tau, 1)
        if rho == 0.0:
            return float(tau)
        return (tau - rho * (1 - rho ** tau) / (1 - rho)) / (1 - rho)

    def _client_predictor(self, client: Client) -> dict[str, np.ndarray]:
        if "predictor" not in client.local_state:
            client.local_state["predictor"] = \
                {k: v.copy() for k, v in self._template_predictor.items()}
        return client.local_state["predictor"]

    def _client_variate(self, client: Client) -> ControlVariate:
        if "c_i" not in client.local_state:
            client.local_state["c_i"] = ControlVariate.zeros_like_params(
                self.global_model.encoder.named_parameters())
        return client.local_state["c_i"]

    # ------------------------------------------------------------ hooks
    def download_payload(self, client: Client) -> dict[str, np.ndarray]:
        payload = {f"enc.{k}": v for k, v in self.global_model.encoder_state().items()}
        if self.use_gradient_control:
            payload.update(self.c_global.as_state("c."))
        if not self.use_transfer:
            # shared-predictor ablation: the head travels too
            payload.update({f"pred.{k}": v
                            for k, v in self.global_model.predictor_state().items()})
        return payload

    def local_update(self, client: Client, round_idx: int) -> dict:
        self._work.load_encoder_state(self.global_model.encoder_state())
        if self.use_transfer:
            self._work.load_predictor_state(self._client_predictor(client))
        else:
            self._work.load_predictor_state(self.global_model.predictor_state())

        before = {n: p.data.copy()
                  for n, p in self._work.encoder.named_parameters()}
        hook = None
        if self.use_gradient_control:
            c_i = self._client_variate(client)
            prefix = SplitModel.ENCODER_PREFIX

            def name_map(name: str) -> str | None:
                return name[len(prefix):] if name.startswith(prefix) else None

            hook = make_correction_hook(self.c_global, c_i, name_map)

        loss, steps, _ = train_local(self._work, client, round_idx,
                                     epochs=self.epochs_for(client, round_idx), lr=self.lr,
                                     momentum=self.momentum,
                                     weight_decay=self.weight_decay,
                                     max_grad_norm=self.max_grad_norm,
                                     correction_hook=hook,
                                     compiler=self.step_compiler)
        after = {n: p.data.copy()
                 for n, p in self._work.encoder.named_parameters()}

        eff_steps = self._effective_steps(steps)
        if self.use_gradient_control:
            client.local_state["c_i"] = refresh_client_variate(
                self._client_variate(client), self.c_global, before, after,
                eff_steps, self.lr)

        if self.use_transfer:
            client.local_state["predictor"] = self._work.predictor_state()
        predictor_state = None if self.use_transfer else self._work.predictor_state()

        selection = self.selection_policy.select(self._work, client.val_data,
                                                 client.client_id, round_idx)
        self.last_selection[client.client_id] = selection
        salient = select_salient(self._work.encoder, selection)
        dense = {k: v for k, v in self._work.encoder.state_dict().items()
                 if k not in self._prunable_weight_keys}
        return {"salient": salient, "dense": dense, "n": client.num_train,
                "train_loss": loss, "steps": steps, "eff_steps": eff_steps,
                "before": before, "predictor_state": predictor_state}

    def upload_payload(self, update: dict) -> dict[str, np.ndarray]:
        payload: dict[str, np.ndarray] = {}
        for name, (idx, rows) in update["salient"].items():
            payload[f"{name}.idx"] = np.asarray(idx, dtype=np.int32)
            payload[f"{name}.val"] = rows
        payload.update(update["dense"])
        if update["predictor_state"] is not None:
            payload.update({f"pred.{k}": v
                            for k, v in update["predictor_state"].items()})
        return payload

    def apply_upload_payload(self, update: dict,
                             payload: dict[str, np.ndarray]) -> None:
        # Only what the uplink carries is replaced; client-side context the
        # server already holds (``"before"``) stays exact by construction.
        update["salient"] = {name: (payload[f"{name}.idx"],
                                    payload[f"{name}.val"])
                             for name in update["salient"]}
        update["dense"] = {k: payload[k] for k in update["dense"]}
        if update["predictor_state"] is not None:
            update["predictor_state"] = {k: payload[f"pred.{k}"]
                                         for k in update["predictor_state"]}

    def aggregate(self, updates: list[dict], round_idx: int) -> None:
        # Survivor correctness under dropout: Eq. 11 below already sums
        # variate deltas over the updates it receives (survivors only) and
        # normalises by n_all — precisely (|S|/N)*mean with |S| = survivors
        # — so a dropped client leaves c_global untouched for its share.
        if not updates:
            raise ValueError("aggregate() needs >= 1 surviving update; "
                             "skipped rounds must not reach aggregation")
        encoder_params = dict(self.global_model.encoder.named_parameters())
        n_all = len(self.clients)

        # --- Eq. 12: index-wise salient aggregation of prunable weights ---
        for layer in self.prunable:
            key = layer + ".weight"
            param = encoder_params[key]
            uploads = [u["salient"][layer] for u in updates]
            param.data[...] = salient_aggregate(param.data, uploads,
                                                self.aggregation_step)

        # --- dense tensors: FedAvg-style weighted average -----------------
        dense_states = [u["dense"] for u in updates]
        weights = [u["n"] for u in updates]
        avg = weighted_average_states(dense_states, weights)
        dense_param_keys = [k for k in avg if k in encoder_params]
        for key in dense_param_keys:
            encoder_params[key].data[...] = avg[key]
        owners = self.global_model.encoder._buffer_owners()
        for key, (owner, local) in owners.items():
            if key in avg:
                owner.set_buffer(local, avg[key])

        # --- shared-predictor ablation ------------------------------------
        if not self.use_transfer:
            pred_avg = weighted_average_states(
                [u["predictor_state"] for u in updates], weights)
            self.global_model.load_predictor_state(pred_avg)

        # --- Eq. 11 via server-side variate reconstruction ----------------
        if self.use_gradient_control:
            for name, c_val in self.c_global.values.items():
                acc = np.zeros_like(c_val, dtype=np.float64)
                layer = name[:-len(".weight")] if name.endswith(".weight") else None
                for u in updates:
                    before = u["before"][name]
                    if layer in u["salient"]:
                        idx, rows = u["salient"][layer]
                        idx = np.asarray(idx, dtype=np.int64)
                        acc[idx] += -c_val[idx] + (before[idx] - rows) / (
                            u["eff_steps"] * self.lr)
                    elif name in u["dense"]:
                        acc += -c_val + (before - u["dense"][name]) / (
                            u["eff_steps"] * self.lr)
                # Eq. 11: c += (|S|/N) * mean(delta c_i)  ==  sum/N
                self.c_global.values[name] = (c_val + acc / n_all).astype(c_val.dtype)

    def aggregate_weighted(self, updates: list[dict], weights, round_idx: int) -> None:
        """Staleness-weighted SPATL aggregation (async runtime, DESIGN.md §12).

        The weighted variant of :meth:`aggregate`: Eq. 12 becomes a
        weighted index-wise mean (exact under the sparse salient format —
        the vectorized reduction takes the weights directly), dense
        tensors and the shared-predictor ablation scale their example
        counts, and each update's Eq. 11 variate-delta contribution is
        discounted by its weight.  All-1.0 weights delegate to
        :meth:`aggregate`, keeping that path bitwise-identical to the
        synchronous loop; the weighted path is deliberately a separate
        body so the golden-tested unweighted numerics stay untouched.
        """
        if len(updates) != len(weights):
            raise ValueError("updates/weights length mismatch")
        weights = [float(w) for w in weights]
        if any(w <= 0.0 for w in weights):
            raise ValueError("aggregation weights must be > 0")
        if all(w == 1.0 for w in weights):
            self.aggregate(updates, round_idx)
            return
        if not updates:
            raise ValueError("aggregate_weighted() needs >= 1 update")
        encoder_params = dict(self.global_model.encoder.named_parameters())
        n_all = len(self.clients)

        # --- Eq. 12, staleness-weighted index-wise mean -------------------
        for layer in self.prunable:
            key = layer + ".weight"
            param = encoder_params[key]
            uploads = [u["salient"][layer] for u in updates]
            param.data[...] = salient_aggregate(param.data, uploads,
                                                self.aggregation_step,
                                                weights=weights)

        # --- dense tensors: example counts scaled by the discounts --------
        dense_states = [u["dense"] for u in updates]
        dense_weights = [u["n"] * w for u, w in zip(updates, weights)]
        avg = weighted_average_states(dense_states, dense_weights)
        dense_param_keys = [k for k in avg if k in encoder_params]
        for key in dense_param_keys:
            encoder_params[key].data[...] = avg[key]
        owners = self.global_model.encoder._buffer_owners()
        for key, (owner, local) in owners.items():
            if key in avg:
                owner.set_buffer(local, avg[key])

        # --- shared-predictor ablation ------------------------------------
        if not self.use_transfer:
            pred_avg = weighted_average_states(
                [u["predictor_state"] for u in updates], dense_weights)
            self.global_model.load_predictor_state(pred_avg)

        # --- Eq. 11, per-update delta discounted by its weight ------------
        if self.use_gradient_control:
            for name, c_val in self.c_global.values.items():
                acc = np.zeros_like(c_val, dtype=np.float64)
                layer = name[:-len(".weight")] if name.endswith(".weight") else None
                for u, w in zip(updates, weights):
                    before = u["before"][name]
                    if layer in u["salient"]:
                        idx, rows = u["salient"][layer]
                        idx = np.asarray(idx, dtype=np.int64)
                        acc[idx] += w * (-c_val[idx] + (before[idx] - rows) / (
                            u["eff_steps"] * self.lr))
                    elif name in u["dense"]:
                        acc += w * (-c_val + (before - u["dense"][name]) / (
                            u["eff_steps"] * self.lr))
                self.c_global.values[name] = (c_val + acc / n_all).astype(c_val.dtype)

    def make_fold(self, spill, weighted: bool = False):
        """Streaming Eq. 12/11 fold (bitwise-equal to the batch path)."""
        from repro.fl.scale.fold import SPATLFold
        return SPATLFold(self, spill, weighted=weighted)

    # ------------------------------------------ parallel-execution hooks
    def worker_sync_state(self) -> dict[str, np.ndarray]:
        """Global model plus the server control variate (``cv.*``)."""
        state = super().worker_sync_state()
        if self.use_gradient_control:
            state.update(self.c_global.as_state("cv."))
        return state

    def load_worker_sync_state(self, state: dict[str, np.ndarray]) -> None:
        """Install model + server control variate on a worker replica."""
        super().load_worker_sync_state(state)
        if self.use_gradient_control:
            for key, value in state.items():
                if key.startswith("cv."):
                    self.c_global.values[key[len("cv."):]] = value

    def client_context(self, client: Client):
        """Ship the client's selection-policy state (RL agent clone)."""
        return self.selection_policy.client_state(client.client_id)

    def apply_client_context(self, client: Client, context) -> None:
        """Install shipped selection-policy state on a worker replica."""
        self.selection_policy.load_client_state(client.client_id, context)

    def client_result_context(self, client: Client):
        """Hand back policy state and the round's selection for reports."""
        return {"policy": self.selection_policy.client_state(client.client_id),
                "selection": self.last_selection.get(client.client_id)}

    def commit_client_result_context(self, client: Client, context) -> None:
        """Fold a worker's policy state + selection into the parent."""
        self.selection_policy.load_client_state(client.client_id,
                                                context["policy"])
        if context["selection"] is not None:
            self.last_selection[client.client_id] = context["selection"]

    # ------------------------------------------------------------ eval
    def client_eval_model(self, client: Client):
        self._eval.load_encoder_state(self.global_model.encoder_state())
        if self.use_transfer:
            self._eval.load_predictor_state(self._client_predictor(client))
        else:
            self._eval.load_predictor_state(self.global_model.predictor_state())
        return self._eval

    # ------------------------------------------------------------ reports
    def inference_report(self) -> dict[int, dict[str, float]]:
        """Per-client FLOPs ratio / sparsity of the final selection (§V-D)."""
        graph = build_graph(self.global_model.encoder)
        report = {}
        for cid, selection in self.last_selection.items():
            report[cid] = {
                "flops_ratio": graph.flops_ratio(selection.keep),
                "params_ratio": graph.params_ratio(selection.keep),
                "sparsity_ratio": selection.mean_keep(),
            }
        return report
