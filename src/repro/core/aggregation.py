"""Index-wise aggregation of salient parameters (§IV-C1, Eq. 12).

Clients upload filter subsets of different sizes; aggregating them naively
would mismatch shapes.  Following Eq. 12, the server updates each global
coordinate only from the clients that *covered* it:

    W_global[idx] += eta * mean_{i : idx in I_i} (W_i[idx] - W_global[idx])

implemented as a sum/count scatter per filter row.
"""

from __future__ import annotations

import numpy as np


def salient_aggregate(global_weight: np.ndarray,
                      uploads: list[tuple[np.ndarray, np.ndarray]],
                      step_size: float = 1.0) -> np.ndarray:
    """Eq. 12 for one layer.

    Parameters
    ----------
    global_weight:
        Dense (out_c, ...) global tensor; not modified in place.
    uploads:
        Per-client ``(indices, rows)`` pairs, where ``rows`` has shape
        ``(len(indices),) + global_weight.shape[1:]``.
    step_size:
        The update step ``eta`` of Eq. 12 (1.0 = move fully to the mean of
        covering clients, the FedAvg-consistent choice).

    Returns the updated dense tensor.  Rows no client selected are
    untouched.
    """
    out = np.array(global_weight, dtype=np.float64)
    acc = np.zeros_like(out)
    counts = np.zeros(out.shape[0], dtype=np.int64)
    for indices, rows in uploads:
        indices = np.asarray(indices, dtype=np.int64)
        rows = np.asarray(rows)
        if rows.shape[0] != len(indices):
            raise ValueError("upload rows/indices mismatch")
        if len(indices) and (indices.min() < 0 or indices.max() >= out.shape[0]):
            raise IndexError("salient index out of range")
        np.add.at(acc, indices, rows.astype(np.float64) - out[indices])
        np.add.at(counts, indices, 1)
    covered = counts > 0
    denom = counts[covered].reshape((-1,) + (1,) * (out.ndim - 1))
    out[covered] += step_size * acc[covered] / denom
    return out.astype(global_weight.dtype)


def coverage_fraction(n_filters: int,
                      uploads: list[tuple[np.ndarray, np.ndarray]]) -> float:
    """Fraction of global filters covered by at least one client."""
    covered = np.zeros(n_filters, dtype=bool)
    for indices, _ in uploads:
        covered[np.asarray(indices, dtype=np.int64)] = True
    return float(covered.mean()) if n_filters else 1.0
