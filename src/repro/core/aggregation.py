"""Index-wise aggregation of salient parameters (§IV-C1, Eq. 12).

Clients upload filter subsets of different sizes; aggregating them naively
would mismatch shapes.  Following Eq. 12, the server updates each global
coordinate only from the clients that *covered* it:

    W_global[idx] += eta * mean_{i : idx in I_i} (W_i[idx] - W_global[idx])

implemented as a vectorized sum/count reduction (DESIGN.md §11):
coverage counts via one ``np.bincount`` over the concatenated indices,
row sums via unique-index fancy adds (``acc[indices] += diff``) — the
buffered ``np.add.at`` inner loop is several times slower than the
plain gather-add-scatter it replaces, and client selections are sets of
filters, so indices within one upload are unique and the fancy add sums
exactly the same terms in exactly the same order.  Uploads that *do*
repeat an index (allowed by the API, never produced by the selection
policy) fall back to ``np.add.at`` for that upload.  The
pre-vectorization implementation is preserved verbatim as the oracle in
:mod:`repro.fl.reference_agg`; golden tests assert the two agree
**bitwise**.  That bit-for-bit requirement is also why the reduction is
not ``np.add.reduceat`` over argsorted indices: reduceat's pairwise
summation changes low-order bits and would break the golden-state byte
identity the repo's acceptance gates enforce.
"""

from __future__ import annotations

import numpy as np


def salient_aggregate(global_weight: np.ndarray,
                      uploads: list[tuple[np.ndarray, np.ndarray]],
                      step_size: float = 1.0,
                      weights: list[float] | None = None) -> np.ndarray:
    """Eq. 12 for one layer.

    Parameters
    ----------
    global_weight:
        Dense (out_c, ...) global tensor; not modified in place.
    uploads:
        Per-client ``(indices, rows)`` pairs, where ``rows`` has shape
        ``(len(indices),) + global_weight.shape[1:]``.
    step_size:
        The update step ``eta`` of Eq. 12 (1.0 = move fully to the mean of
        covering clients, the FedAvg-consistent choice).
    weights:
        Optional per-upload multiplicative weights (the async runtime's
        staleness discounts, DESIGN.md §12).  The covered-coordinate mean
        becomes a weighted mean: each covering client contributes
        ``w_i * (W_i[idx] - W_global[idx])`` and the denominator is the
        sum of covering weights.  ``None`` keeps the exact unweighted
        reduction (equal weights give the same *math* but travel a
        separate code path; only ``weights=None`` is guaranteed bitwise
        against the oracle).

    Returns the updated dense tensor.  Rows no client selected are
    untouched.  With ``weights=None``, bitwise-identical to
    :func:`repro.fl.reference_agg.reference_salient_aggregate`.
    """
    if weights is not None and len(weights) != len(uploads):
        raise ValueError("uploads/weights length mismatch")
    out = np.array(global_weight, dtype=np.float64)
    n_filters = out.shape[0]
    acc = np.zeros_like(out)
    # The fancy-add fast path pays a fixed uniqueness check per upload;
    # for near-scalar rows (biases, BN stats) the buffered scatter is
    # already cheaper than that check, so only wide rows take it.
    row_width = 1
    for dim in out.shape[1:]:
        row_width *= int(dim)
    idx_parts: list[np.ndarray] = []
    w_parts: list[np.ndarray] = []
    for upload_i, (indices, rows) in enumerate(uploads):
        indices = np.asarray(indices, dtype=np.int64)
        rows = np.asarray(rows)
        if rows.shape[0] != len(indices):
            raise ValueError("upload rows/indices mismatch")
        if len(indices) and (indices.min() < 0 or indices.max() >= n_filters):
            raise IndexError("salient index out of range")
        idx_parts.append(indices.ravel())
        diff = rows.astype(np.float64) - out[indices]
        if weights is not None:
            w = float(weights[upload_i])
            diff = w * diff
            w_parts.append(np.full(indices.size, w, dtype=np.float64))
        if row_width >= 8 and indices.size == np.unique(indices).size:
            # Unique indices: the fancy add sums the identical terms in
            # the identical order as np.add.at, minus its buffered
            # element-wise inner loop.
            acc[indices] += diff
        else:
            np.add.at(acc, indices, diff)
    if not idx_parts:
        return out.astype(global_weight.dtype)

    concat_idx = np.concatenate(idx_parts)
    if weights is None:
        counts = np.bincount(concat_idx, minlength=n_filters)
    else:
        counts = np.bincount(concat_idx, weights=np.concatenate(w_parts),
                             minlength=n_filters)
    covered = counts > 0
    denom = counts[covered].reshape((-1,) + (1,) * (out.ndim - 1))
    out[covered] += step_size * acc[covered] / denom
    return out.astype(global_weight.dtype)


def coverage_fraction(n_filters: int,
                      uploads: list[tuple[np.ndarray, np.ndarray]]) -> float:
    """Fraction of global filters covered by at least one client."""
    covered = np.zeros(n_filters, dtype=bool)
    for indices, _ in uploads:
        covered[np.asarray(indices, dtype=np.int64)] = True
    return float(covered.mean()) if n_filters else 1.0
