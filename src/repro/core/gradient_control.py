"""Encoder-only control variates (§IV-C, Eq. 9-11).

SPATL's twist on SCAFFOLD: only the *generic* (encoder) parameters have
their gradients corrected; the heterogeneous predictor stays uncorrected so
each client can keep fitting its own non-IID data.  ``ControlVariate``
holds one such variate (server ``c`` or client ``c_i``) keyed by encoder
parameter name.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class ControlVariate:
    """A named collection of gradient-direction estimates."""

    def __init__(self, template: dict[str, np.ndarray]):
        self.values: dict[str, np.ndarray] = {
            name: np.zeros_like(arr) for name, arr in template.items()}

    @classmethod
    def zeros_like_params(cls, named_params) -> "ControlVariate":
        return cls({name: p.data for name, p in named_params})

    def __getitem__(self, name: str) -> np.ndarray:
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def names(self) -> list[str]:
        return list(self.values)

    def copy(self) -> "ControlVariate":
        fresh = ControlVariate({})
        fresh.values = {k: v.copy() for k, v in self.values.items()}
        return fresh

    def as_state(self, prefix: str = "c.") -> dict[str, np.ndarray]:
        """Flat dict view for the communication codec."""
        return {prefix + name: value for name, value in self.values.items()}

    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.values.values())


def make_correction_hook(c_global: ControlVariate, c_local: ControlVariate,
                         name_map: Callable[[str], str | None] = None):
    """Eq. 9 hook: ``grad + (c - c_i)`` for encoder parameters only.

    ``name_map`` translates optimizer parameter names (e.g.
    ``encoder.conv1.weight``) to variate keys (``conv1.weight``); returning
    ``None`` marks the parameter as non-generic (predictor) and leaves its
    gradient untouched.
    """
    def hook(name: str, grad: np.ndarray) -> np.ndarray:
        key = name_map(name) if name_map else name
        if key is None or key not in c_global:
            return grad
        return grad + c_global[key] - c_local[key]

    return hook


def refresh_client_variate(c_local: ControlVariate, c_global: ControlVariate,
                           before: dict[str, np.ndarray],
                           after: dict[str, np.ndarray],
                           steps: float, lr: float) -> ControlVariate:
    """Eq. 10: ``c_i+ = c_i - c + (x - y_i) / (K * eta_l)`` (encoder only).

    ``before``/``after`` are the encoder parameters at round start (x) and
    after local training (y_i).  Returns the refreshed variate (the caller
    swaps it into the client's persistent state).
    """
    k_eta = max(steps, 1) * lr
    fresh = c_local.copy()
    for name in fresh.names():
        fresh.values[name] = (c_local[name] - c_global[name]
                              + (before[name] - after[name]) / k_eta)
    return fresh


def server_variate_delta(c_global: ControlVariate,
                         before: dict[str, np.ndarray],
                         after_salient: dict[str, np.ndarray],
                         steps: float, lr: float) -> dict[str, np.ndarray]:
    """Server-side reconstruction of one client's ``delta c_i``.

    Because Eq. 10 gives ``delta c_i = -c + (x - y_i)/(K*eta)`` and the
    server already knows ``c``, ``x``, ``K`` and ``eta``, the uploaded
    parameters ``y_i`` are *sufficient* for the server to recompute the
    variate delta itself — SPATL therefore never uploads control-variate
    tensors, which is what keeps its per-round cost near FedAvg despite
    using gradient control (§V-C).  Coordinates the client did not upload
    contribute zero (no information).
    """
    k_eta = max(steps, 1) * lr
    delta: dict[str, np.ndarray] = {}
    for name, y in after_salient.items():
        if name not in c_global:
            continue
        delta[name] = -c_global[name] + (before[name] - y) / k_eta
    return delta
