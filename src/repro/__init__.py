"""SPATL reproduction — Salient Parameter Aggregation and Transfer Learning
for Heterogeneous Federated Learning (SC 2022).

A complete, dependency-light (NumPy/SciPy/networkx) implementation of the
paper's method and every substrate it needs: an autograd engine, a neural-
network library and model zoo, non-IID federated data pipelines, the four
baseline FL algorithms, a GNN+PPO salient-parameter agent, and an
experiment harness regenerating each table and figure of the paper's
evaluation.

Quickstart::

    from repro import config_for, run_algorithms, compare_table
    cfg = config_for("tiny", model="resnet20", n_clients=8, sample_ratio=0.5)
    results = run_algorithms(cfg, ["fedavg", "scaffold", "spatl"])
    print(compare_table(results, target_accuracy=0.6))

See README.md for the architecture overview and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.core import SPATL
from repro.experiments import (compare_table, config_for, run_algorithms,
                               ExperimentConfig)
from repro.fl import FedAvg, FedNova, FedProx, Scaffold
from repro.models import build_model

__version__ = "1.0.0"

__all__ = [
    "SPATL", "FedAvg", "FedProx", "FedNova", "Scaffold",
    "build_model", "config_for", "run_algorithms", "compare_table",
    "ExperimentConfig", "__version__",
]
