"""Model zoo: the architectures the paper evaluates, encoder/predictor split.

Every model is a :class:`~repro.models.split.SplitModel` whose ``encoder``
is the federated (shared) part and whose ``predictor`` is the private local
head (§IV-A).  ``build_model`` is the registry entry point; ``width_mult``
and ``input_size`` let CPU-scaled experiment configs shrink compute while
preserving architecture shape.
"""

from repro.models.split import SplitModel, EncoderBase
from repro.models.vgg import VGGEncoder, make_vgg11, make_vgg
from repro.models.resnet import ResNetEncoder, make_resnet20, make_resnet32, \
    make_resnet56, make_resnet18
from repro.models.cnn import make_two_layer_cnn
from repro.models.registry import build_model, MODEL_REGISTRY, paper_model_size_mb

__all__ = [
    "SplitModel", "EncoderBase",
    "VGGEncoder", "make_vgg11", "make_vgg",
    "ResNetEncoder", "make_resnet20", "make_resnet32", "make_resnet56",
    "make_resnet18", "make_two_layer_cnn",
    "build_model", "MODEL_REGISTRY", "paper_model_size_mb",
]
