"""Encoder/predictor split — the knowledge-transfer structure of SPATL (§IV-A).

The paper formulates every model as ``y = predictor(encoder(x))`` where the
encoder's parameters ``W_e`` are shared through federated aggregation and the
predictor's ``W_p`` stay private per client.  :class:`SplitModel` realises
the split; encoders additionally expose the *prunable layer* metadata the
salient-parameter machinery needs:

- ``prunable_layers()`` — ordered names of conv layers whose output filters
  the RL agent can sparsify (the action space dimension ``N`` of Eq. 5/6);
- ``conv_specs(input_hw)`` — static per-layer geometry used by the
  computational-graph extraction and the analytic pruned-FLOPs model;
- per-layer ``channel masks`` applied in forward, so a selection policy
  can be *executed* (masked inference) and not just accounted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor


@dataclass(frozen=True)
class ConvSpec:
    """Static geometry of one prunable conv layer."""

    name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    in_hw: tuple[int, int]
    out_hw: tuple[int, int]

    @property
    def weight_numel(self) -> int:
        return self.out_channels * self.in_channels * self.kernel_size ** 2

    @property
    def flops(self) -> int:
        ho, wo = self.out_hw
        return 2 * self.out_channels * ho * wo * self.in_channels * self.kernel_size ** 2


class EncoderBase(Module):
    """Base class for shareable encoders with channel-mask support.

    Masks are plain float arrays (1.0 = keep); ``set_channel_masks`` installs
    a mask per prunable layer and ``clear_channel_masks`` restores dense
    execution.  Masked forward multiplies the corresponding conv *outputs*
    channel-wise, which is mathematically equivalent to zeroing the selected
    filters — the execution model of the paper's salient sub-network reward
    (Eq. 7 evaluates "the selected sub-network").
    """

    def __init__(self):
        super().__init__()
        object.__setattr__(self, "_channel_masks", {})

    # -- prunable-layer protocol ------------------------------------- #
    def prunable_layers(self) -> list[str]:
        """Ordered names (dotted paths) of prunable conv layers."""
        raise NotImplementedError

    def conv_specs(self, input_hw: tuple[int, int]) -> list[ConvSpec]:
        """Static geometry of each prunable layer for ``input_hw`` inputs."""
        raise NotImplementedError

    def output_dim(self) -> int:
        """Dimensionality of the embedding fed to the predictor."""
        raise NotImplementedError

    # -- channel masks ------------------------------------------------ #
    def set_channel_masks(self, masks: dict[str, np.ndarray]) -> None:
        unknown = set(masks) - set(self.prunable_layers())
        if unknown:
            raise KeyError(f"masks for unknown layers: {sorted(unknown)}")
        self._channel_masks.clear()
        for name, m in masks.items():
            self._channel_masks[name] = np.asarray(m, dtype=np.float32)

    def clear_channel_masks(self) -> None:
        self._channel_masks.clear()

    def _apply_mask(self, name: str, x: Tensor) -> Tensor:
        mask = self._channel_masks.get(name)
        if mask is None:
            return x
        return x * Tensor(mask.reshape(1, -1, 1, 1))


class SplitModel(Module):
    """``predictor(encoder(x))`` with prefix-based parameter partitioning.

    ``encoder_state`` / ``load_encoder_state`` give the FL layer exactly the
    shared portion; predictor parameters never appear in those dicts, which
    is what makes the predictor private (paper Fig. 1, steps 1 and 4 move
    encoder state only).
    """

    ENCODER_PREFIX = "encoder."
    PREDICTOR_PREFIX = "predictor."

    def __init__(self, encoder: EncoderBase, predictor: Module, name: str = "model"):
        super().__init__()
        self.encoder = encoder
        self.predictor = predictor
        self.model_name = name

    def forward(self, x: Tensor) -> Tensor:
        return self.predictor(self.encoder(x))

    def embed(self, x: Tensor) -> Tensor:
        """Encoder output only (Eq. 1: z = f_e(x; W_e))."""
        return self.encoder(x)

    # -- state partitioning ------------------------------------------ #
    def encoder_state(self) -> dict[str, np.ndarray]:
        """Copy of shared (encoder) parameters + buffers, names unprefixed."""
        return self.encoder.state_dict()

    def load_encoder_state(self, state: dict) -> None:
        self.encoder.load_state_dict(state)

    def predictor_state(self) -> dict[str, np.ndarray]:
        return self.predictor.state_dict()

    def load_predictor_state(self, state: dict) -> None:
        self.predictor.load_state_dict(state)

    def encoder_parameter_names(self) -> list[str]:
        return [n for n, _ in self.encoder.named_parameters()]

    def num_encoder_parameters(self) -> int:
        return sum(p.size for p in self.encoder.parameters())

    def num_predictor_parameters(self) -> int:
        return sum(p.size for p in self.predictor.parameters())
