"""Model registry + paper-scale communication-size reference.

``build_model`` is the single entry point experiment configs use.
``paper_model_size_mb`` reports the *full-size* per-round encoder payload of
each architecture under our codec — the "Cost Round/Client" column of
Tables I and II is derived from it, independent of how much the training
runs themselves are scaled down.
"""

from __future__ import annotations

from typing import Callable

from repro.models.cnn import make_two_layer_cnn
from repro.models.resnet import (make_resnet18, make_resnet20, make_resnet32,
                                 make_resnet56)
from repro.models.split import SplitModel
from repro.models.vgg import make_vgg11

MODEL_REGISTRY: dict[str, Callable[..., SplitModel]] = {
    "resnet20": make_resnet20,
    "resnet32": make_resnet32,
    "resnet56": make_resnet56,
    "resnet18": make_resnet18,
    "vgg11": make_vgg11,
    "cnn2": make_two_layer_cnn,
}


def build_model(name: str, num_classes: int = 10, input_size: int = 32,
                width_mult: float = 1.0, seed: int | None = None) -> SplitModel:
    """Instantiate a registered architecture.

    Raises ``KeyError`` with the known names when ``name`` is unknown.
    """
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)}") from None
    return factory(num_classes=num_classes, input_size=input_size,
                   width_mult=width_mult, seed=seed)


def paper_model_size_mb(name: str, num_classes: int = 10) -> float:
    """Encoder payload (MB, float32) of the full-size architecture.

    This is what one client uploads per round under plain FedAvg-style
    communication of the shared part.
    """
    model = build_model(name, num_classes=num_classes, input_size=32,
                        width_mult=1.0, seed=0)
    n_params = model.num_encoder_parameters()
    n_buffers = sum(b.size for _, b in model.encoder.named_buffers())
    return 4.0 * (n_params + n_buffers) / 2 ** 20
