"""CIFAR-style ResNets (He et al.): ResNet-20/32/56 and a ResNet-18 variant.

Architecture follows the original CIFAR formulation: a 3x3 stem conv, three
stages of ``n`` basic blocks with widths (16, 32, 64) and stride-2
transitions, global average pooling, then the classifier.  ResNet-20/32/56
use ``n`` = 3/5/9.  Shortcuts use the parameter-free "option A" (stride-2
subsample + zero channel padding), as in the reference implementations the
Non-IID benchmark builds on.

The *first* conv of each basic block is prunable (its width is internal to
the block), which is the standard channel-pruning granularity for residual
networks and what the GNN-RL pruning line of work the paper's agent builds
on uses.  The stem and second convs keep full width so residual adds stay
shape-consistent.
"""

from __future__ import annotations

import numpy as np

from repro.models.split import ConvSpec, EncoderBase, SplitModel
from repro.nn import BatchNorm2d, Conv2d, Linear, Sequential
from repro.nn.module import Module, ModuleList
from repro.tensor.tensor import Tensor
from repro.tensor.tensor import concatenate


class BasicBlock(Module):
    """Two 3x3 convs with an identity (option-A) shortcut."""

    def __init__(self, in_planes: int, planes: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.in_planes = in_planes
        self.planes = planes
        self.stride = stride
        self.conv1 = Conv2d(in_planes, planes, 3, stride=stride, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2d(planes)
        self.conv2 = Conv2d(planes, planes, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2d(planes)
        self.needs_projection = stride != 1 or in_planes != planes

    def _shortcut(self, x: Tensor) -> Tensor:
        if not self.needs_projection:
            return x
        # Option A: spatial subsample + zero-pad the new channels.
        out = x[:, :, ::self.stride, ::self.stride] if self.stride != 1 else x
        pad_c = self.planes - self.in_planes
        if pad_c > 0:
            n, _, h, w = out.shape
            zeros = Tensor(np.zeros((n, pad_c, h, w), dtype=out.dtype))
            out = concatenate([out, zeros], axis=1)
        return out

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        h = self.bn1(self.conv1(x)).relu()
        if mask is not None:
            h = h * Tensor(mask.reshape(1, -1, 1, 1))
        h = self.bn2(self.conv2(h))
        return (h + self._shortcut(x)).relu()


class ResNetEncoder(EncoderBase):
    """Stem + three residual stages + global average pooling."""

    def __init__(self, num_blocks: tuple[int, int, int],
                 widths: tuple[int, int, int] = (16, 32, 64),
                 in_channels: int = 3, input_size: int = 32,
                 width_mult: float = 1.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.in_channels = in_channels
        w = [max(1, int(round(x * width_mult))) for x in widths]
        self.widths = tuple(w)
        self.conv1 = Conv2d(in_channels, w[0], 3, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(w[0])
        blocks: list[BasicBlock] = []
        self._prunable: list[str] = []
        self._specs_template: list[dict] = []
        in_planes = w[0]
        size = input_size
        i = 0
        for stage, (n_blocks, planes) in enumerate(zip(num_blocks, w)):
            for b in range(n_blocks):
                stride = 2 if (stage > 0 and b == 0) else 1
                block = BasicBlock(in_planes, planes, stride, rng)
                blocks.append(block)
                out_size = size // stride
                self._prunable.append(f"blocks.{i}.conv1")
                self._specs_template.append(dict(
                    name=f"blocks.{i}.conv1", in_channels=in_planes,
                    out_channels=planes, kernel_size=3, stride=stride,
                    padding=1, in_size=size, out_size=out_size))
                in_planes = planes
                size = out_size
                i += 1
        self.blocks = ModuleList(blocks)
        self.final_channels = in_planes
        self.final_size = size

    def forward(self, x: Tensor) -> Tensor:
        h = self.bn1(self.conv1(x)).relu()
        for i, block in enumerate(self.blocks):
            mask = self._channel_masks.get(f"blocks.{i}.conv1")
            h = block(h, mask=mask)
        return h.mean(axis=(2, 3))

    def prunable_layers(self) -> list[str]:
        return list(self._prunable)

    def conv_specs(self, input_hw: tuple[int, int] | None = None) -> list[ConvSpec]:
        h, _ = input_hw or (self.input_size, self.input_size)
        scale = h / self.input_size
        specs = []
        for t in self._specs_template:
            si = max(1, int(t["in_size"] * scale))
            so = max(1, int(t["out_size"] * scale))
            specs.append(ConvSpec(
                name=t["name"], in_channels=t["in_channels"],
                out_channels=t["out_channels"], kernel_size=t["kernel_size"],
                stride=t["stride"], padding=t["padding"],
                in_hw=(si, si), out_hw=(so, so)))
        return specs

    def output_dim(self) -> int:
        return self.final_channels


def _make_resnet(num_blocks: tuple[int, int, int], name: str, num_classes: int,
                 widths: tuple[int, int, int], input_size: int,
                 width_mult: float, seed: int | None) -> SplitModel:
    rng = np.random.default_rng(seed)
    encoder = ResNetEncoder(num_blocks, widths=widths, input_size=input_size,
                            width_mult=width_mult, rng=rng)
    predictor = Sequential(Linear(encoder.output_dim(), num_classes, rng=rng))
    return SplitModel(encoder, predictor, name=name)


def make_resnet20(num_classes: int = 10, input_size: int = 32,
                  width_mult: float = 1.0, seed: int | None = None) -> SplitModel:
    """ResNet-20 (0.27M params full-size; 2.1 MB/round in the paper)."""
    return _make_resnet((3, 3, 3), "resnet20", num_classes, (16, 32, 64),
                        input_size, width_mult, seed)


def make_resnet32(num_classes: int = 10, input_size: int = 32,
                  width_mult: float = 1.0, seed: int | None = None) -> SplitModel:
    """ResNet-32 (0.46M params full-size)."""
    return _make_resnet((5, 5, 5), "resnet32", num_classes, (16, 32, 64),
                        input_size, width_mult, seed)


def make_resnet56(num_classes: int = 10, input_size: int = 32,
                  width_mult: float = 1.0, seed: int | None = None) -> SplitModel:
    """ResNet-56 — the network the RL agent is pre-trained on (§V-A)."""
    return _make_resnet((9, 9, 9), "resnet56", num_classes, (16, 32, 64),
                        input_size, width_mult, seed)


def make_resnet18(num_classes: int = 10, input_size: int = 32,
                  width_mult: float = 1.0, seed: int | None = None) -> SplitModel:
    """CIFAR-adapted ResNet-18: three stages of 3 wide blocks.

    Used by the agent-transfer ablation (Fig. 6): pre-train on ResNet-56,
    fine-tune on ResNet-18.  We keep the 3-stage CIFAR topology (the paper's
    agent consumes the computational-graph topology, which is what changes
    between the two networks).
    """
    return _make_resnet((3, 3, 3), "resnet18", num_classes, (64, 128, 256),
                        input_size, width_mult, seed)
