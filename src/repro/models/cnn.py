"""The 2-layer CNN used on FEMNIST (LEAF benchmark model).

This is the deliberately *under*-parameterised model of the paper's
learning-efficiency study: SPATL's over-parameterisation assumption breaks
here and the paper reports it slightly losing to the baselines — a negative
result our reproduction preserves.
"""

from __future__ import annotations

import numpy as np

from repro.models.split import ConvSpec, EncoderBase, SplitModel
from repro.nn import Conv2d, Linear, MaxPool2d, ReLU, Sequential
from repro.tensor.tensor import Tensor


class TwoLayerCNNEncoder(EncoderBase):
    """conv(32) -> pool -> conv(64) -> pool, flattened."""

    def __init__(self, in_channels: int = 1, input_size: int = 28,
                 width_mult: float = 1.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.in_channels = in_channels
        c1 = max(1, int(round(32 * width_mult)))
        c2 = max(1, int(round(64 * width_mult)))
        self.conv1 = Conv2d(in_channels, c1, 5, padding=2, rng=rng)
        self.pool1 = MaxPool2d(2)
        self.conv2 = Conv2d(c1, c2, 5, padding=2, rng=rng)
        self.pool2 = MaxPool2d(2)
        self._c = (c1, c2)
        self.final_size = input_size // 4
        self.final_channels = c2

    def forward(self, x: Tensor) -> Tensor:
        h = self.pool1(self.conv1(x).relu())
        h = self._apply_mask("conv1", h)
        h = self.pool2(self.conv2(h).relu())
        h = self._apply_mask("conv2", h)
        return h.flatten_from(1)

    def prunable_layers(self) -> list[str]:
        return ["conv1", "conv2"]

    def conv_specs(self, input_hw: tuple[int, int] | None = None) -> list[ConvSpec]:
        h, w = input_hw or (self.input_size, self.input_size)
        c1, c2 = self._c
        return [
            ConvSpec("conv1", self.in_channels, c1, 5, 1, 2, (h, w), (h, w)),
            ConvSpec("conv2", c1, c2, 5, 1, 2, (h // 2, w // 2), (h // 2, w // 2)),
        ]

    def output_dim(self) -> int:
        return self.final_channels * self.final_size * self.final_size


def make_two_layer_cnn(num_classes: int = 62, input_size: int = 28,
                       width_mult: float = 1.0, seed: int | None = None) -> SplitModel:
    """LEAF's FEMNIST CNN: 2 conv layers + a 2-layer MLP head."""
    rng = np.random.default_rng(seed)
    encoder = TwoLayerCNNEncoder(input_size=input_size, width_mult=width_mult, rng=rng)
    hidden = max(8, int(round(128 * width_mult)))
    predictor = Sequential(
        Linear(encoder.output_dim(), hidden, rng=rng),
        ReLU(),
        Linear(hidden, num_classes, rng=rng),
    )
    return SplitModel(encoder, predictor, name="cnn2")
