"""VGG for CIFAR-scale inputs (Simonyan & Zisserman, paper's VGG-11).

The encoder is the convolutional feature stack (with batch norm, as in the
Non-IID benchmark's VGG implementation); the predictor is the MLP
classifier head.  ``width_mult`` scales every channel count so the same
architecture shape runs on CPU-scale experiment configs.
"""

from __future__ import annotations

import numpy as np

from repro.models.split import ConvSpec, EncoderBase, SplitModel
from repro.nn import (BatchNorm2d, Conv2d, Dropout, Linear, MaxPool2d, ReLU,
                      Sequential)
from repro.tensor.tensor import Tensor

# Channel plans: integers are conv output widths, "M" is a 2x2 max-pool.
VGG_PLANS: dict[str, list] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"],
}


class VGGEncoder(EncoderBase):
    """Conv feature extractor of a VGG network, flattening its output."""

    def __init__(self, plan: list, in_channels: int = 3, input_size: int = 32,
                 width_mult: float = 1.0, batch_norm: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.plan = list(plan)
        self.input_size = input_size
        self.in_channels = in_channels
        layers: list = []
        self._prunable: list[str] = []
        self._specs_template: list[dict] = []
        c_in = in_channels
        size = input_size
        idx = 0
        for item in plan:
            if item == "M":
                if size < 2:
                    raise ValueError(
                        f"input_size {input_size} too small for plan {plan}")
                layers.append(MaxPool2d(2))
                size //= 2
                idx += 1
                continue
            c_out = max(1, int(round(item * width_mult)))
            conv = Conv2d(c_in, c_out, 3, padding=1, bias=not batch_norm, rng=rng)
            layers.append(conv)
            conv_name = f"features.{idx}"
            self._prunable.append(conv_name)
            self._specs_template.append(dict(
                name=conv_name, in_channels=c_in, out_channels=c_out,
                kernel_size=3, stride=1, padding=1, size=size))
            idx += 1
            if batch_norm:
                layers.append(BatchNorm2d(c_out))
                idx += 1
            layers.append(ReLU())
            idx += 1
            c_in = c_out
        self.features = Sequential(*layers)
        self.final_size = size
        self.final_channels = c_in

    def forward(self, x: Tensor) -> Tensor:
        mask_for = {name.split(".", 1)[1]: name for name in self._prunable}
        for child_name, layer in self.features._modules.items():
            x = layer(x)
            full = mask_for.get(child_name)
            if full is not None:
                x = self._apply_mask(full, x)
        return x.flatten_from(1)

    def prunable_layers(self) -> list[str]:
        return list(self._prunable)

    def conv_specs(self, input_hw: tuple[int, int] | None = None) -> list[ConvSpec]:
        h, w = input_hw or (self.input_size, self.input_size)
        specs = []
        scale_h = h / self.input_size
        scale_w = w / self.input_size
        for t in self._specs_template:
            sh = max(1, int(t["size"] * scale_h))
            sw = max(1, int(t["size"] * scale_w))
            specs.append(ConvSpec(
                name=t["name"], in_channels=t["in_channels"],
                out_channels=t["out_channels"], kernel_size=t["kernel_size"],
                stride=t["stride"], padding=t["padding"],
                in_hw=(sh, sw), out_hw=(sh, sw)))
        return specs

    def output_dim(self) -> int:
        return self.final_channels * self.final_size * self.final_size


def make_vgg(plan_name: str, num_classes: int = 10, in_channels: int = 3,
             input_size: int = 32, width_mult: float = 1.0,
             head_width: int = 512, dropout: float = 0.0,
             seed: int | None = None) -> SplitModel:
    """Build a split VGG; the head MLP is the private predictor."""
    rng = np.random.default_rng(seed)
    encoder = VGGEncoder(VGG_PLANS[plan_name], in_channels=in_channels,
                         input_size=input_size, width_mult=width_mult, rng=rng)
    hw = max(8, int(round(head_width * width_mult)))
    head: list = [Linear(encoder.output_dim(), hw, rng=rng), ReLU()]
    if dropout > 0:
        head.append(Dropout(dropout, seed=seed))
    head.append(Linear(hw, num_classes, rng=rng))
    predictor = Sequential(*head)
    return SplitModel(encoder, predictor, name=plan_name)


def make_vgg11(num_classes: int = 10, input_size: int = 32,
               width_mult: float = 1.0, seed: int | None = None) -> SplitModel:
    """VGG-11, the largest model in the paper's evaluation (42 MB/round)."""
    return make_vgg("vgg11", num_classes=num_classes, input_size=input_size,
                    width_mult=width_mult, seed=seed)
