"""Sparsity ratios → concrete filter selections.

A :class:`SalientSelection` is the bridge between the three consumers of
the agent's action:

- **masked execution** (`masks`) — evaluate the selected sub-network
  (RL reward, Eq. 7; inference acceleration, §V-D);
- **sparse communication** (`indices`) — which filter rows of each
  prunable conv weight travel to the server (§IV-C1);
- **cost models** (`keep`) — analytic FLOPs / parameter ratios via
  :meth:`repro.graph.CompGraph.flops_ratio`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.split import EncoderBase
from repro.pruning.saliency import filter_saliency


@dataclass
class SalientSelection:
    """Selected filters per prunable layer."""

    keep: dict[str, float]            # actual kept fraction per layer
    masks: dict[str, np.ndarray]      # float32 {0,1} masks, len = out_channels
    indices: dict[str, np.ndarray]    # sorted kept filter indices (int32)

    def apply_to(self, encoder: EncoderBase) -> None:
        """Install channel masks for masked (sub-network) execution."""
        encoder.set_channel_masks(self.masks)

    def mean_keep(self) -> float:
        if not self.keep:
            return 1.0
        return float(np.mean(list(self.keep.values())))

    def mean_sparsity(self) -> float:
        """Fraction of filters dropped, averaged over layers."""
        return 1.0 - self.mean_keep()

    def n_selected(self) -> int:
        return int(sum(len(v) for v in self.indices.values()))


def _weight_param(encoder: EncoderBase, layer_name: str) -> np.ndarray:
    params = dict(encoder.named_parameters())
    key = layer_name + ".weight"
    if key not in params:
        raise KeyError(f"no conv weight named {key!r} in encoder")
    return params[key].data


def selection_from_sparsity(encoder: EncoderBase, sparsity,
                            criterion: str = "l2",
                            min_keep: int = 1) -> SalientSelection:
    """Select the top-(1-s) most salient filters of each prunable layer.

    ``sparsity`` is either a mapping ``{layer: ratio}`` or a sequence
    aligned with ``encoder.prunable_layers()``.  Ratios are clipped to
    ``[0, 1]``; at least ``min_keep`` filters survive per layer.
    """
    layers = encoder.prunable_layers()
    if not isinstance(sparsity, dict):
        sparsity = np.asarray(sparsity, dtype=np.float64).ravel()
        if len(sparsity) != len(layers):
            raise ValueError(f"sparsity length {len(sparsity)} != "
                             f"{len(layers)} prunable layers")
        sparsity = dict(zip(layers, sparsity))
    keep: dict[str, float] = {}
    masks: dict[str, np.ndarray] = {}
    indices: dict[str, np.ndarray] = {}
    for name in layers:
        weight = _weight_param(encoder, name)
        out_c = weight.shape[0]
        s = float(np.clip(sparsity.get(name, 0.0), 0.0, 1.0))
        k = max(min_keep, int(round((1.0 - s) * out_c)))
        scores = filter_saliency(weight, criterion)
        kept = np.sort(np.argsort(scores)[::-1][:k]).astype(np.int32)
        mask = np.zeros(out_c, dtype=np.float32)
        mask[kept] = 1.0
        keep[name] = k / out_c
        masks[name] = mask
        indices[name] = kept
    return SalientSelection(keep, masks, indices)


def dense_selection(encoder: EncoderBase) -> SalientSelection:
    """The trivial selection keeping every filter (no-selection ablation)."""
    return selection_from_sparsity(
        encoder, {name: 0.0 for name in encoder.prunable_layers()})


def select_salient(encoder: EncoderBase,
                   selection: SalientSelection) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Extract the sparse uplink payload: {layer: (indices, weight rows)}.

    Only prunable conv weights are row-sliced; every other encoder tensor
    travels dense (handled by the FL layer).
    """
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, idx in selection.indices.items():
        weight = _weight_param(encoder, name)
        out[name] = (idx.copy(), weight[idx].copy())
    return out
