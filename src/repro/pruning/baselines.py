"""Classical pruning baselines for the Table-IV comparison.

Each baseline takes a trained :class:`~repro.models.split.SplitModel`, a
train/validation dataset pair, and a target mean sparsity, and returns a
:class:`PruneResult` with accuracy before/after and the analytic FLOPs
ratio of the pruned sub-network.  All baselines share the same masked
execution and fine-tuning machinery, so the comparison isolates the
*selection policy* — exactly what Table IV compares (SFP / FPGM / DSA vs
the paper's RL agent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.data.dataloader import DataLoader
from repro.graph import build_graph
from repro.models.split import SplitModel
from repro.optim import SGD
from repro.pruning.selector import SalientSelection, selection_from_sparsity
from repro.tensor import Tensor, functional as F
from repro.utils.rng import spawn_rng


@dataclass
class PruneResult:
    """Outcome of one pruning run."""

    method: str
    acc_dense: float
    acc_pruned: float
    flops_ratio: float
    mean_sparsity: float
    selection: SalientSelection

    @property
    def acc_drop(self) -> float:
        return self.acc_dense - self.acc_pruned

    @property
    def flops_reduction(self) -> float:
        return 1.0 - self.flops_ratio


def evaluate(model: SplitModel, data: ArrayDataset, batch_size: int = 256) -> float:
    """Top-1 accuracy with whatever masks are currently installed."""
    model.eval()
    correct = 0
    for lo in range(0, len(data), batch_size):
        logits = model(Tensor(data.x[lo:lo + batch_size]))
        correct += int((logits.data.argmax(axis=1) == data.y[lo:lo + batch_size]).sum())
    model.train()
    return correct / len(data)


def finetune(model: SplitModel, train: ArrayDataset, epochs: int, lr: float = 0.01,
             batch_size: int = 64, seed: int = 0) -> None:
    """Brief masked fine-tuning (recovery phase all baselines share)."""
    if epochs <= 0:
        return
    opt = SGD(list(model.named_parameters()), lr=lr, momentum=0.9)
    loader = DataLoader(train, batch_size=batch_size, seed=seed)
    model.train()
    for _ in range(epochs):
        for xb, yb in loader:
            loss = F.cross_entropy(model(Tensor(xb)), yb)
            model.zero_grad()
            loss.backward()
            opt.step()


def _finish(method: str, model: SplitModel, train: ArrayDataset, val: ArrayDataset,
            selection: SalientSelection, acc_dense: float, finetune_epochs: int,
            seed: int) -> PruneResult:
    selection.apply_to(model.encoder)
    finetune(model, train, finetune_epochs, seed=seed)
    acc_pruned = evaluate(model, val)
    graph = build_graph(model.encoder)
    ratio = graph.flops_ratio(selection.keep)
    model.encoder.clear_channel_masks()
    return PruneResult(method, acc_dense, acc_pruned, ratio,
                       selection.mean_sparsity(), selection)


def prune_magnitude(model: SplitModel, train: ArrayDataset, val: ArrayDataset,
                    sparsity: float = 0.3, criterion: str = "l2",
                    finetune_epochs: int = 1, seed: int = 0) -> PruneResult:
    """One-shot uniform magnitude pruning (the simplest sane baseline)."""
    acc_dense = evaluate(model, val)
    uniform = {name: sparsity for name in model.encoder.prunable_layers()}
    selection = selection_from_sparsity(model.encoder, uniform, criterion)
    return _finish(f"magnitude-{criterion}", model, train, val, selection,
                   acc_dense, finetune_epochs, seed)


def prune_random(model: SplitModel, train: ArrayDataset, val: ArrayDataset,
                 sparsity: float = 0.3, finetune_epochs: int = 1,
                 seed: int = 0) -> PruneResult:
    """Uniform random filter selection — the sanity floor."""
    acc_dense = evaluate(model, val)
    rng = spawn_rng(seed, "prune_random")
    keep, masks, indices = {}, {}, {}
    for name in model.encoder.prunable_layers():
        weight = dict(model.encoder.named_parameters())[name + ".weight"].data
        out_c = weight.shape[0]
        k = max(1, int(round((1 - sparsity) * out_c)))
        kept = np.sort(rng.choice(out_c, size=k, replace=False)).astype(np.int32)
        mask = np.zeros(out_c, dtype=np.float32)
        mask[kept] = 1.0
        keep[name], masks[name], indices[name] = k / out_c, mask, kept
    selection = SalientSelection(keep, masks, indices)
    return _finish("random", model, train, val, selection, acc_dense,
                   finetune_epochs, seed)


def prune_sfp(model: SplitModel, train: ArrayDataset, val: ArrayDataset,
              sparsity: float = 0.3, epochs: int = 3, lr: float = 0.01,
              criterion: str = "l2", finetune_epochs: int = 1,
              seed: int = 0) -> PruneResult:
    """Soft Filter Pruning (He et al., IJCAI 2018).

    Each epoch, the lowest-norm filters of every prunable layer are set to
    zero *softly* — they keep receiving gradients and may grow back — and
    after the last epoch the selection is hardened into masks.
    """
    acc_dense = evaluate(model, val)
    params = dict(model.encoder.named_parameters())
    opt = SGD(list(model.named_parameters()), lr=lr, momentum=0.9)
    loader = DataLoader(train, batch_size=64, seed=seed)
    uniform = {name: sparsity for name in model.encoder.prunable_layers()}
    model.train()
    for _ in range(epochs):
        for xb, yb in loader:
            loss = F.cross_entropy(model(Tensor(xb)), yb)
            model.zero_grad()
            loss.backward()
            opt.step()
        # soft-zero the currently least salient filters
        selection = selection_from_sparsity(model.encoder, uniform, criterion)
        for name, mask in selection.masks.items():
            params[name + ".weight"].data *= mask.reshape(-1, 1, 1, 1)
    selection = selection_from_sparsity(model.encoder, uniform, criterion)
    return _finish("sfp", model, train, val, selection, acc_dense,
                   finetune_epochs, seed)


def prune_fpgm(model: SplitModel, train: ArrayDataset, val: ArrayDataset,
               sparsity: float = 0.3, finetune_epochs: int = 1,
               seed: int = 0) -> PruneResult:
    """Filter Pruning via Geometric Median (He et al., CVPR 2019)."""
    acc_dense = evaluate(model, val)
    uniform = {name: sparsity for name in model.encoder.prunable_layers()}
    selection = selection_from_sparsity(model.encoder, uniform,
                                        criterion="geometric_median")
    return _finish("fpgm", model, train, val, selection, acc_dense,
                   finetune_epochs, seed)


def prune_dsa(model: SplitModel, train: ArrayDataset, val: ArrayDataset,
              flops_target: float = 0.7, probe_sparsity: float = 0.5,
              criterion: str = "l2", finetune_epochs: int = 1,
              seed: int = 0, max_iters: int = 50) -> PruneResult:
    """DSA-style budgeted sparsity allocation (Ning et al., ECCV 2020).

    The original differentiates through a soft pruning process to allocate
    a global FLOPs budget across layers.  This implementation keeps the
    *allocation-under-budget* behaviour with a sensitivity proxy: each
    layer is probed at ``probe_sparsity`` and its validation-accuracy drop
    measured; sparsity is then allocated in proportion to insensitivity,
    scaled (by bisection on the shared multiplier) until the analytic
    FLOPs ratio meets ``flops_target``.
    """
    acc_dense = evaluate(model, val)
    encoder = model.encoder
    layers = encoder.prunable_layers()
    graph = build_graph(encoder)
    # Per-layer sensitivity probe.
    drops = {}
    probe = val.subset(np.arange(min(len(val), 256)))
    for name in layers:
        sel = selection_from_sparsity(
            encoder, {n: (probe_sparsity if n == name else 0.0) for n in layers},
            criterion)
        sel.apply_to(encoder)
        drops[name] = max(acc_dense - evaluate(model, probe), 0.0)
        encoder.clear_channel_masks()
    inv = np.asarray([1.0 / (1e-3 + drops[n]) for n in layers])
    base = inv / inv.max()

    def ratio_at(scale: float) -> tuple[float, dict[str, float]]:
        alloc = {n: float(np.clip(scale * b, 0.0, 0.9))
                 for n, b in zip(layers, base)}
        keep = {n: 1.0 - s for n, s in alloc.items()}
        return graph.flops_ratio(keep), alloc

    lo, hi = 0.0, 1.0
    alloc = {n: 0.0 for n in layers}
    for _ in range(max_iters):
        mid = 0.5 * (lo + hi)
        ratio, alloc = ratio_at(mid)
        if abs(ratio - flops_target) < 5e-3:
            break
        if ratio > flops_target:
            lo = mid
        else:
            hi = mid
    selection = selection_from_sparsity(encoder, alloc, criterion)
    return _finish("dsa", model, train, val, selection, acc_dense,
                   finetune_epochs, seed)
