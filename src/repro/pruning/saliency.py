"""Per-filter saliency criteria.

Given a conv weight ``(out_c, in_c, k, k)``, each criterion scores every
output filter; higher = more salient.  ``l1``/``l2`` are the norm criteria
of SFP; ``geometric_median`` is FPGM's redundancy criterion (filters close
to the geometric median of all filters are redundant).
"""

from __future__ import annotations

import numpy as np


def l1_saliency(weight: np.ndarray) -> np.ndarray:
    """Sum of absolute weights per output filter."""
    w = np.asarray(weight)
    return np.abs(w).reshape(w.shape[0], -1).sum(axis=1)


def l2_saliency(weight: np.ndarray) -> np.ndarray:
    """Euclidean norm per output filter."""
    w = np.asarray(weight)
    return np.sqrt((w.reshape(w.shape[0], -1) ** 2).sum(axis=1))


def geometric_median_saliency(weight: np.ndarray, iters: int = 20) -> np.ndarray:
    """Distance of each filter to the geometric median of all filters (FPGM).

    The median is computed with Weiszfeld's algorithm; filters *near* the
    median are the replaceable ones, so distance = saliency.
    """
    w = np.asarray(weight, dtype=np.float64).reshape(weight.shape[0], -1)
    median = w.mean(axis=0)
    for _ in range(iters):
        dist = np.linalg.norm(w - median, axis=1)
        inv = 1.0 / np.maximum(dist, 1e-8)
        new = (w * inv[:, None]).sum(axis=0) / inv.sum()
        if np.linalg.norm(new - median) < 1e-10:
            median = new
            break
        median = new
    return np.linalg.norm(w - median, axis=1)


_CRITERIA = {
    "l1": l1_saliency,
    "l2": l2_saliency,
    "geometric_median": geometric_median_saliency,
}


def filter_saliency(weight: np.ndarray, criterion: str = "l2") -> np.ndarray:
    """Dispatch on criterion name; raises on unknown criteria."""
    try:
        fn = _CRITERIA[criterion]
    except KeyError:
        raise KeyError(f"unknown saliency criterion {criterion!r}; "
                       f"known: {sorted(_CRITERIA)}") from None
    return fn(weight)
