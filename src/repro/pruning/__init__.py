"""Salient-parameter selection machinery and pruning baselines.

Maps per-layer sparsity ratios (the RL agent's action) to concrete filter
selections: boolean channel masks for masked execution, kept-filter index
sets for the sparse FL uplink, and the analytic FLOPs of the resulting
sub-network.  Also implements the classical pruning baselines the paper
compares its agent against in Table IV (SFP, FPGM, a DSA-style allocator,
magnitude and random selection).
"""

from repro.pruning.saliency import (filter_saliency, l1_saliency, l2_saliency,
                                    geometric_median_saliency)
from repro.pruning.selector import (SalientSelection, select_salient,
                                    selection_from_sparsity, dense_selection)
from repro.pruning.baselines import (prune_sfp, prune_fpgm, prune_magnitude,
                                     prune_random, prune_dsa, PruneResult)

__all__ = [
    "filter_saliency", "l1_saliency", "l2_saliency",
    "geometric_median_saliency",
    "SalientSelection", "select_salient", "selection_from_sparsity",
    "dense_selection",
    "prune_sfp", "prune_fpgm", "prune_magnitude", "prune_random", "prune_dsa",
    "PruneResult",
]
