"""Structured experiment logging.

``ExperimentLog`` collects per-round scalar series (accuracy, loss, bytes
communicated...) and renders aligned text tables — the same rows the
paper's tables report — without any plotting dependency.
"""

from __future__ import annotations

import json
import sys
import time
from collections import defaultdict
from typing import Any


class ExperimentLog:
    """Append-only per-round metric store with text rendering."""

    def __init__(self, name: str = "experiment", stream=None, verbose: bool = False):
        self.name = name
        self.series: dict[str, list[float]] = defaultdict(list)
        self.meta: dict[str, Any] = {}
        self.stream = stream if stream is not None else sys.stdout
        self.verbose = verbose
        self._t0 = time.perf_counter()

    def log(self, **scalars: float) -> None:
        """Record one round's scalars; series may advance at different rates."""
        for key, value in scalars.items():
            self.series[key].append(float(value))
        if self.verbose:
            parts = " ".join(f"{k}={v:.4g}" for k, v in scalars.items())
            print(f"[{self.name} +{time.perf_counter() - self._t0:.1f}s] {parts}",
                  file=self.stream)

    def last(self, key: str, default: float = float("nan")) -> float:
        s = self.series.get(key)
        return s[-1] if s else default

    def __getitem__(self, key: str) -> list[float]:
        return self.series[key]

    def __contains__(self, key: str) -> bool:
        return key in self.series

    def to_json(self) -> str:
        return json.dumps({"name": self.name, "meta": self.meta,
                           "series": dict(self.series)})

    @classmethod
    def from_json(cls, payload: str, stream=None,
                  verbose: bool = False) -> "ExperimentLog":
        """Rebuild a log from :meth:`to_json` output.

        ``stream``/``verbose`` configure the restored log's printing (they
        are runtime preferences, not persisted state).
        """
        data = json.loads(payload)
        log = cls(data["name"], stream=stream, verbose=verbose)
        log.meta = data["meta"]
        for key, vals in data["series"].items():
            log.series[key] = list(vals)
        # Reset the verbose wall-time origin to *now*: perf_counter values
        # do not survive serialisation or a process restart, so a resumed
        # run's "+Xs" prints must measure from the deserialisation moment
        # rather than whatever stale epoch the saving process had.
        log._t0 = time.perf_counter()
        return log


def render_table(headers: list[str], rows: list[list[Any]],
                 title: str | None = None) -> str:
    """Render an aligned monospaced table (paper-table style output)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
