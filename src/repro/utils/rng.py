"""Deterministic random-number-generator trees.

Federated experiments need *independent but reproducible* randomness per
client, per round, and per subsystem (data sampling, dropout, RL action
noise...).  ``seed_tree`` derives child generators from a root seed and a
path of labels using NumPy's ``SeedSequence`` spawning, so adding a new
consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _label_to_int(label) -> int:
    if isinstance(label, (int, np.integer)):
        return int(label)
    digest = hashlib.sha256(str(label).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def seed_tree(root_seed: int, *path) -> np.random.SeedSequence:
    """Derive a ``SeedSequence`` for a labelled path under ``root_seed``.

    Example: ``seed_tree(42, "client", 3, "round", 17)``.
    """
    keys = [_label_to_int(p) for p in path]
    return np.random.SeedSequence([int(root_seed)] + keys)


def spawn_rng(root_seed: int, *path) -> np.random.Generator:
    """Generator for a labelled path (see :func:`seed_tree`)."""
    return np.random.default_rng(seed_tree(root_seed, *path))
