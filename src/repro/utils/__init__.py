"""Shared utilities: seeded RNG trees, metrics, experiment logging."""

from repro.utils.rng import seed_tree, spawn_rng
from repro.utils.metrics import (RunningAverage, EarlyStopper, best_smoothed,
                                 rounds_to_target)
from repro.utils.logging import ExperimentLog, render_table

__all__ = ["seed_tree", "spawn_rng", "RunningAverage", "EarlyStopper",
           "best_smoothed", "rounds_to_target", "ExperimentLog", "render_table"]
