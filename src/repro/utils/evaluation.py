"""Classification evaluation beyond top-1: confusion matrix, per-class
accuracy, macro-F1, top-k.

The paper reports top-1 only, but per-class views are what reveal *why*
heterogeneous clients diverge (a client missing class k collapses on it),
so the local-accuracy analyses and several tests use these.
"""

from __future__ import annotations

import numpy as np


def confusion_matrix(pred: np.ndarray, labels: np.ndarray,
                     num_classes: int | None = None) -> np.ndarray:
    """(num_classes, num_classes) counts; rows = true, cols = predicted."""
    pred = np.asarray(pred, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if pred.shape != labels.shape:
        raise ValueError("pred/labels shape mismatch")
    k = num_classes or int(max(pred.max(initial=0), labels.max(initial=0))) + 1
    out = np.zeros((k, k), dtype=np.int64)
    np.add.at(out, (labels, pred), 1)
    return out


def per_class_accuracy(cm: np.ndarray) -> np.ndarray:
    """Recall per class from a confusion matrix (NaN for absent classes)."""
    cm = np.asarray(cm, dtype=np.float64)
    totals = cm.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(cm) / totals, np.nan)


def macro_f1(cm: np.ndarray) -> float:
    """Unweighted mean F1 over classes present in the labels."""
    cm = np.asarray(cm, dtype=np.float64)
    tp = np.diag(cm)
    fp = cm.sum(axis=0) - tp
    fn = cm.sum(axis=1) - tp
    present = cm.sum(axis=1) > 0
    with np.errstate(invalid="ignore", divide="ignore"):
        precision = np.where(tp + fp > 0, tp / (tp + fp), 0.0)
        recall = np.where(tp + fn > 0, tp / (tp + fn), 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return float(f1[present].mean()) if present.any() else float("nan")


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose label is among the k highest logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if k < 1 or k > logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}]")
    topk = np.argpartition(logits, -k, axis=1)[:, -k:]
    return float((topk == labels[:, None]).any(axis=1).mean())


def evaluate_per_class(model, data, batch_size: int = 256) -> dict:
    """Run ``model`` over ``data``; return cm, per-class acc, macro-F1."""
    from repro.tensor import Tensor
    model.eval()
    preds = []
    for lo in range(0, len(data), batch_size):
        logits = model(Tensor(data.x[lo:lo + batch_size]))
        preds.append(logits.data.argmax(axis=1))
    model.train()
    pred = np.concatenate(preds)
    cm = confusion_matrix(pred, data.y, num_classes=data.num_classes)
    return {
        "confusion": cm,
        "per_class_accuracy": per_class_accuracy(cm),
        "macro_f1": macro_f1(cm),
        "accuracy": float((pred == data.y).mean()),
    }
