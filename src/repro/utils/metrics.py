"""Training-metric helpers: running averages, convergence detection."""

from __future__ import annotations

import numpy as np


class RunningAverage:
    """Weighted streaming mean (batch-size weighted loss/accuracy)."""

    def __init__(self):
        self.total = 0.0
        self.weight = 0.0

    def update(self, value: float, weight: float = 1.0) -> None:
        self.total += float(value) * weight
        self.weight += weight

    @property
    def value(self) -> float:
        if self.weight == 0:
            return float("nan")
        return self.total / self.weight

    def reset(self) -> None:
        self.total = 0.0
        self.weight = 0.0


class EarlyStopper:
    """Convergence detector over a metric stream.

    Declares convergence when the best value seen has not improved by at
    least ``min_delta`` for ``patience`` consecutive updates — this is the
    "train to converge" criterion used for Table II's converge-round
    numbers.
    """

    def __init__(self, patience: int = 20, min_delta: float = 1e-3, mode: str = "max"):
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best = -np.inf if mode == "max" else np.inf
        self.best_step = -1
        self.num_bad = 0
        self.step_count = 0

    def update(self, value: float) -> bool:
        """Feed one value; returns True once converged/should stop."""
        improved = (value > self.best + self.min_delta if self.mode == "max"
                    else value < self.best - self.min_delta)
        if improved:
            self.best = value
            self.best_step = self.step_count
            self.num_bad = 0
        else:
            self.num_bad += 1
        self.step_count += 1
        return self.num_bad >= self.patience

    @property
    def converged(self) -> bool:
        return self.num_bad >= self.patience


def best_smoothed(series, window: int = 5) -> float:
    """Max of the moving average — robust "converged accuracy" readout."""
    series = np.asarray(series, dtype=np.float64)
    if series.size == 0:
        return float("nan")
    if series.size < window:
        return float(series.mean())
    kernel = np.ones(window) / window
    smooth = np.convolve(series, kernel, mode="valid")
    return float(smooth.max())


def rounds_to_target(series, target: float) -> int | None:
    """First 1-based index where the metric reaches ``target`` (Table I)."""
    for i, v in enumerate(series):
        if v >= target:
            return i + 1
    return None
