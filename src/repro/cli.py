"""Command-line entry point: run any paper experiment by name.

Usage::

    python -m repro.cli list
    python -m repro.cli learning-efficiency --scale tiny --model resnet20
    python -m repro.cli table1 --target 0.6 --clients 6
    python -m repro.cli ablation-gradctl --rounds 12
    python -m repro.cli all --scale tiny          # everything, sequentially

Each command prints the same rows/series its paper counterpart reports and
exits non-zero on failure, so the CLI doubles as a smoke harness.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import (ablation_gradient_control, ablation_selection,
                               ablation_transfer, async_convergence,
                               config_for, fault_degradation_curve,
                               inference_acceleration_table,
                               learning_efficiency_curves,
                               local_accuracy_figure,
                               pruning_comparison_table, render_fault_table,
                               rl_finetune_figure,
                               render_async_table, rounds_to_target_figure,
                               table1_target_cost, table2_convergence,
                               transferability_table)
from repro.fl import AsyncConfig, AsyncFederatedRunner, AsyncProfile
from repro.experiments.communication import render_cost_table
from repro.experiments.configs import (make_algorithm, make_dataset,
                                       make_setting)
from repro.experiments.inference import render_inference_table
from repro.experiments.learning_efficiency import converge_accuracy_summary
from repro.experiments.pruning_compare import render_pruning_table
from repro.obs import (OpProfiler, Tracer, codec_byte_totals, get_registry,
                       get_tracer, hotspot_table, round_timeline_table,
                       set_tracer)


def _cfg(args, **extra):
    overrides = dict(model=args.model, n_clients=args.clients,
                     sample_ratio=args.sample_ratio, seed=args.seed,
                     fault_drop_prob=args.fault_drop,
                     fault_corrupt_prob=args.fault_corrupt,
                     fault_straggler_prob=args.fault_straggler,
                     fault_slowdown=args.fault_slowdown,
                     fault_timeout=args.fault_timeout,
                     fault_crash_prob=args.fault_crash,
                     fault_retries=args.fault_retries,
                     fault_seed=args.fault_seed,
                     min_clients=args.min_clients,
                     workers=args.workers, executor=args.executor,
                     shm=args.shm, compile=args.compile,
                     quant_bits=args.quant_bits, quant_block=args.quant_block,
                     quant_ef=not args.no_quant_ef,
                     mask_density=args.mask_density)
    if args.rounds:
        overrides["rounds"] = args.rounds
    overrides.update(extra)
    return config_for(args.scale, **overrides)


def cmd_learning_efficiency(args) -> None:
    """Fig. 3: accuracy-vs-round curves for all methods."""
    cfg = _cfg(args)
    results = learning_efficiency_curves(cfg)
    print(json.dumps({m: [round(a, 4) for a in log["val_acc"]]
                      for m, log in results.items()}, indent=2))
    print("converged:", {k: round(v, 4) for k, v in
                         converge_accuracy_summary(results).items()})


def cmd_table1(args) -> None:
    """Table I: cost to reach a target accuracy."""
    cfg = _cfg(args)
    rows = table1_target_cost(cfg, target=args.target)
    print(render_cost_table(rows, f"Table I: cost to {args.target:.0%}"))


def cmd_table2(args) -> None:
    """Table II: train-to-convergence cost and accuracy."""
    cfg = _cfg(args)
    rows = table2_convergence(cfg, patience=args.patience)
    print(render_cost_table(rows, "Table II: train to convergence"))


def cmd_train_rounds(args) -> None:
    """Rounds-to-target figure."""
    cfg = _cfg(args)
    print(json.dumps({m: {str(t): v for t, v in hits.items()}
                      for m, hits in rounds_to_target_figure(cfg).items()},
                     indent=2))


def cmd_local_accuracy(args) -> None:
    """Per-client accuracy figure (SPATL vs SCAFFOLD)."""
    cfg = _cfg(args)
    print(json.dumps(local_accuracy_figure(cfg), indent=2))


def cmd_inference(args) -> None:
    """Inference-acceleration (FLOPs) table."""
    cfg = _cfg(args)
    result = inference_acceleration_table(cfg)
    print(render_inference_table([result]))


def cmd_transfer(args) -> None:
    """Table III: transferability to held-out data."""
    cfg = _cfg(args)
    print(json.dumps(transferability_table(cfg), indent=2))


def cmd_pruning(args) -> None:
    """Table IV: pruning-method comparison."""
    cfg = _cfg(args)
    print(render_pruning_table(pruning_comparison_table(cfg)))


def cmd_ablation_selection(args) -> None:
    """Fig. 4 ablation: selection on/off."""
    _print_ablation(ablation_selection(_cfg(args)))


def cmd_ablation_transfer(args) -> None:
    """Fig. 5(a) ablation: transfer on/off."""
    _print_ablation(ablation_transfer(_cfg(args, beta=0.2)))


def cmd_ablation_gradctl(args) -> None:
    """Fig. 5(b) ablation: gradient control on/off."""
    _print_ablation(ablation_gradient_control(_cfg(args, sample_ratio=0.5)))


def cmd_fault_tolerance(args) -> None:
    """Degradation experiment: accuracy vs injected failure rate."""
    cfg = _cfg(args)
    rates = tuple(args.fault_rates) if args.fault_rates else (0.0, 0.1, 0.3)
    results = fault_degradation_curve(cfg, drop_probs=rates,
                                      corrupt_prob=args.fault_corrupt or 0.02)
    print(render_fault_table(results))


def cmd_rl_finetune(args) -> None:
    """Fig. 6: agent pretrain/finetune rewards."""
    cfg = _cfg(args, model="resnet56")
    result = rl_finetune_figure(cfg)
    print("pretrain rewards:",
          [round(r, 3) for r in result["pretrain_rewards"]])
    print("finetune rewards:",
          [round(r, 3) for r in result["finetune_rewards"]])


def _async_profile(args) -> AsyncProfile:
    """Build the seeded latency/availability profile from CLI flags."""
    return AsyncProfile(
        mean_latency=args.async_latency, jitter=args.async_jitter,
        straggler_prob=args.async_straggler, slowdown=args.async_slowdown,
        arrival_spread=args.async_spread, churn_prob=args.async_churn,
        crash_prob=args.async_crash, duplicate_prob=args.async_duplicate,
        seed=args.async_seed if args.async_seed is not None else args.seed)


def _async_config(args, n_clients: int) -> AsyncConfig:
    """Build the async server config from CLI flags (cohort-sized caps)."""
    return AsyncConfig(
        buffer_k=(args.buffer_k if args.buffer_k is not None
                  else max(2, n_clients // 4)),
        staleness_alpha=args.staleness_alpha,
        max_inflight=(args.max_inflight if args.max_inflight is not None
                      else n_clients),
        max_queue=args.max_queue if args.max_queue is not None else n_clients,
        commit_deadline=args.commit_deadline)


def cmd_async_convergence(args) -> None:
    """Sync vs async convergence against virtual wall-time (DESIGN.md §12)."""
    cfg = _cfg(args)
    result = async_convergence(
        cfg, algorithm=args.algorithm, profile=_async_profile(args),
        async_config=_async_config(args, cfg.n_clients),
        max_steps=args.async_steps)
    print(render_async_table(result))
    print("async summary:",
          json.dumps(result["async"]["summary"], indent=2))


def cmd_scale(args) -> None:
    """Population-scale rounds: virtual clients over a spill-to-disk
    client-state store, streaming fold aggregation at the root, and an
    optional edge-aggregator hierarchy (DESIGN.md §13).  Byte-identical
    to the materialized baseline round loop."""
    import tempfile

    from repro.data import dirichlet_partition
    from repro.fl import (ClientStateStore, ScaleRunner,
                          ShardedClientFactory, VirtualClientPool)
    from repro.models import build_model
    from repro.obs import observe_peak_rss

    cfg = _cfg(args, n_clients=args.population)
    ds = make_dataset(cfg)
    parts = dirichlet_partition(ds.y, args.population, beta=cfg.beta,
                                seed=cfg.seed)
    store_dir = args.store_dir or tempfile.mkdtemp(prefix="repro-scale-")
    store = ClientStateStore(store_dir)
    pool = VirtualClientPool(
        ShardedClientFactory(dataset=ds, parts=parts,
                             batch_size=cfg.batch_size, seed=cfg.seed),
        args.population, store, resident_limit=args.resident)
    in_size = cfg.input_size

    def model_fn():
        return build_model(cfg.model, num_classes=cfg.num_classes,
                           input_size=in_size, width_mult=cfg.width_mult,
                           seed=cfg.seed + 1)

    algo = make_algorithm(args.algorithm, cfg, model_fn, pool.clients())
    # Full (per-client) evaluation is O(population) forward passes;
    # large populations report loss only.
    eval_mode = "full" if args.population <= 256 else "none"
    runner = ScaleRunner(algo, pool=pool, edges=args.edges,
                         eval_mode=eval_mode)
    try:
        for r in runner.run(cfg.rounds):
            print(f"round {r.round_idx:3d}  loss={r.avg_train_loss:.4f}  "
                  f"acc={r.avg_val_acc:.4f}  updates={r.n_participants}  "
                  f"bytes={r.round_bytes}")
    finally:
        algo.close()
    counters = get_registry().snapshot()["counters"]
    print(json.dumps({
        "population": args.population, "edges": args.edges,
        "store_dir": store.root, "store_entries": len(store),
        "store_bytes": store.nbytes, "resident_clients": pool.resident,
        "materializations": counters.get("scale.materializations", 0),
        "evictions": counters.get("scale.evictions", 0),
        "peak_rss_bytes": observe_peak_rss(),
    }, indent=2))


def cmd_profile(args) -> None:
    """Trace + profile a few rounds; print timeline and hotspot tables."""
    cfg = _cfg(args, rounds=args.rounds or 2)
    tracer = get_tracer()
    own_tracer = not tracer.enabled   # under `all --trace-out` reuse outer
    previous = None
    if own_tracer:
        tracer = Tracer()
        previous = set_tracer(tracer)
    profiler = OpProfiler().install()
    algo = None
    try:
        model_fn, clients = make_setting(cfg)
        algo = make_algorithm(args.algorithm, cfg, model_fn, clients)
        if args.use_async:
            runner = AsyncFederatedRunner(algo, _async_profile(args),
                                          _async_config(args, cfg.n_clients))
            runner.run(steps=args.async_steps or cfg.rounds)
            runner.finalize()
        else:
            algo.run(cfg.rounds)
    finally:
        if algo is not None:
            algo.close()
        profiler.uninstall()
        if own_tracer:
            set_tracer(previous)
    print(round_timeline_table(tracer))
    print()
    print(hotspot_table(profiler, n=12))
    codec = codec_byte_totals(tracer)
    print(f"codec bytes: serialize={int(codec['serialize'])} "
          f"deserialize={int(codec['deserialize'])} "
          f"ledger={algo.ledger.total_bytes()}")
    if own_tracer:
        if args.trace_out:
            _export_trace(tracer, args.trace_out)
        if args.metrics_out:
            _export_metrics(args.metrics_out)


def _export_trace(tracer, path: str) -> None:
    """Write a trace as Chrome trace-event JSON (or JSONL for ``.jsonl``)."""
    if str(path).endswith(".jsonl"):
        tracer.save_jsonl(path)
    else:
        tracer.save_chrome_trace(path)
    print(f"trace written to {path}", file=sys.stderr)


def _export_metrics(path: str) -> None:
    """Dump the global metrics registry snapshot as JSON.

    Folds the workspace-arena hit/miss/bytes-saved counters into the
    registry first, so exported metrics always carry the arena traffic
    of the run (DESIGN.md §10).
    """
    from repro.tensor import workspace
    workspace.publish_metrics(get_registry())
    with open(path, "w") as fh:
        fh.write(get_registry().to_json() + "\n")
    print(f"metrics written to {path}", file=sys.stderr)


def _print_ablation(results) -> None:
    for name, log in results.items():
        print(f"{name:26s} {[round(a, 3) for a in log['val_acc']]}")


COMMANDS = {
    "learning-efficiency": cmd_learning_efficiency,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "train-rounds": cmd_train_rounds,
    "local-accuracy": cmd_local_accuracy,
    "inference": cmd_inference,
    "transfer": cmd_transfer,
    "pruning": cmd_pruning,
    "ablation-selection": cmd_ablation_selection,
    "ablation-transfer": cmd_ablation_transfer,
    "ablation-gradctl": cmd_ablation_gradctl,
    "rl-finetune": cmd_rl_finetune,
    "fault-tolerance": cmd_fault_tolerance,
    "async-convergence": cmd_async_convergence,
    "scale": cmd_scale,
    "profile": cmd_profile,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (one subcommand per experiment)."""
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__.split("\n")[0])
    parser.add_argument("command", choices=list(COMMANDS) + ["list", "all"])
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "paper"])
    parser.add_argument("--model", default="resnet20")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--sample-ratio", type=float, default=0.7)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--target", type=float, default=0.6)
    parser.add_argument("--patience", type=int, default=5)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the per-client round loop "
                             "(1 = in-process serial executor; N>1 fans "
                             "clients over N processes, byte-identical "
                             "results — see DESIGN.md §9)")
    parser.add_argument("--executor", default="auto",
                        choices=["auto", "serial", "process", "vectorized"],
                        help="round-execution engine (DESIGN.md §14): auto "
                             "picks serial/process from --workers; "
                             "vectorized batches the cohort's local "
                             "training into stacked GEMMs on one core. "
                             "All engines are byte-identical.")
    parser.add_argument("--shm", action="store_true",
                        help="ship the process executor's per-round "
                             "broadcast state through a shared-memory "
                             "segment (workers deserialize it zero-copy) "
                             "instead of the task pickle stream; needs "
                             "--workers >= 2")
    parser.add_argument("--compile", action="store_true",
                        help="trace-and-replay step compiler (DESIGN.md "
                             "§15): capture each local training step once "
                             "per (model, batch-signature), then replay it "
                             "with static memory planning and fused "
                             "elementwise kernels.  Byte-identical to the "
                             "eager loop; unsupported steps fall back "
                             "automatically.")
    quant = parser.add_argument_group(
        "quantized transport",
        "Low-bit stochastic uplink codec with per-client error feedback "
        "(DESIGN.md §16); the default --quant-bits 32 keeps the dense "
        "fp32 wire byte-identical to the unquantized path.")
    quant.add_argument("--quant-bits", type=int, default=32,
                       choices=[32, 16, 8, 4],
                       help="uplink bits per value: 32 = off, 16 = fp16 "
                            "records, 8/4 = stochastic integer codec "
                            "(int4 nibble-packed two values per byte)")
    quant.add_argument("--quant-block", type=int, default=0,
                       help="values per quantization scale block "
                            "(0 = one float32 scale per tensor)")
    quant.add_argument("--no-quant-ef", action="store_true",
                       help="disable error feedback (per-client residuals "
                            "of the rounding error, folded into the next "
                            "round's upload)")
    quant.add_argument("--mask-density", type=float, default=0.3,
                       help="kept fraction per tensor for the "
                            "sparse-at-init algorithms (salientgrads, "
                            "ssfl)")
    faults = parser.add_argument_group(
        "fault injection",
        "Seeded failure simulation; all defaults leave the fault path off "
        "entirely (runs stay byte-identical to the fault-free protocol).")
    faults.add_argument("--fault-drop", type=float, default=0.0,
                        help="per-attempt client drop probability")
    faults.add_argument("--fault-corrupt", type=float, default=0.0,
                        help="per-transfer bit-corruption probability")
    faults.add_argument("--fault-straggler", type=float, default=0.0,
                        help="per-attempt straggler probability")
    faults.add_argument("--fault-slowdown", type=float, default=4.0,
                        help="max straggler slowdown factor")
    faults.add_argument("--fault-timeout", type=float, default=None,
                        help="server deadline in epoch-units (off by default)")
    faults.add_argument("--fault-crash", type=float, default=0.0,
                        help="mid-training crash probability")
    faults.add_argument("--fault-retries", type=int, default=2,
                        help="extra attempts per client before dropping it")
    faults.add_argument("--fault-seed", type=int, default=None,
                        help="fault RNG seed (defaults to --seed)")
    faults.add_argument("--min-clients", type=int, default=1,
                        help="quorum: min surviving updates to commit a round")
    faults.add_argument("--fault-rates", type=float, nargs="+", default=None,
                        help="drop rates swept by the fault-tolerance command")
    asyn = parser.add_argument_group(
        "asynchronous runtime",
        "Event-driven buffered-aggregation server on a deterministic "
        "virtual clock (DESIGN.md §12); used by the async-convergence "
        "command and by profile when --async is given.")
    asyn.add_argument("--async", dest="use_async", action="store_true",
                      help="profile the async runtime instead of the "
                           "synchronous round loop")
    asyn.add_argument("--buffer-k", type=int, default=None,
                      help="updates buffered before a commit (default "
                           "cohort/4; == cohort reproduces sync bitwise)")
    asyn.add_argument("--staleness-alpha", type=float, default=0.5,
                      help="staleness discount exponent in 1/(1+s)^alpha")
    asyn.add_argument("--max-inflight", type=int, default=None,
                      help="admission control: max concurrent client jobs "
                           "(default: cohort size)")
    asyn.add_argument("--max-queue", type=int, default=None,
                      help="arrivals parked beyond max-inflight before "
                           "rejection (default: cohort size)")
    asyn.add_argument("--commit-deadline", type=float, default=None,
                      help="virtual time from first buffered update to a "
                           "forced commit (off by default)")
    asyn.add_argument("--async-steps", type=int, default=None,
                      help="server commits to run (default: matches the "
                           "sync run's update count)")
    asyn.add_argument("--async-latency", type=float, default=1.0,
                      help="mean virtual seconds per local epoch")
    asyn.add_argument("--async-jitter", type=float, default=0.2,
                      help="+/- uniform fraction on each job duration")
    asyn.add_argument("--async-straggler", type=float, default=0.3,
                      help="per-job straggler probability")
    asyn.add_argument("--async-slowdown", type=float, default=6.0,
                      help="max straggler slowdown factor")
    asyn.add_argument("--async-spread", type=float, default=0.5,
                      help="first arrivals spread uniformly in [0, spread]")
    asyn.add_argument("--async-churn", type=float, default=0.0,
                      help="per-upload churn probability (client leaves)")
    asyn.add_argument("--async-crash", type=float, default=0.0,
                      help="per-job mid-flight crash probability")
    asyn.add_argument("--async-duplicate", type=float, default=0.0,
                      help="per-upload duplicate-delivery probability")
    asyn.add_argument("--async-seed", type=int, default=None,
                      help="async profile RNG seed (defaults to --seed)")
    scale = parser.add_argument_group(
        "population scale",
        "Virtual-client simulation over a spill-to-disk state store with "
        "streaming fold aggregation (DESIGN.md §13); used by the scale "
        "command.  Byte-identical to the materialized round loop.")
    scale.add_argument("--population", type=int, default=32,
                       help="virtual-client population size (clients are "
                            "materialized lazily per round, never all at "
                            "once)")
    scale.add_argument("--store-dir", default=None, metavar="DIR",
                       help="directory for the sharded client-state store "
                            "and spill files (default: a fresh temp dir)")
    scale.add_argument("--edges", type=int, default=1,
                       help="edge aggregators; 1 folds uploads straight at "
                            "the root, N>1 routes contiguous cohort slices "
                            "through edge partials")
    scale.add_argument("--resident", type=int, default=64,
                       help="max clients held in memory at once (LRU; "
                            "evicted state spills to the store)")
    obs = parser.add_argument_group(
        "observability",
        "Tracing/metrics capture (repro.obs); off by default — the no-op "
        "tracer keeps the untraced path numerically byte-identical.")
    obs.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write a trace of the run: Chrome trace-event "
                          "JSON, or JSONL when PATH ends in .jsonl")
    obs.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the run's metrics snapshot as JSON")
    obs.add_argument("--algorithm", default="fedavg",
                     help="algorithm the profile/scale commands run "
                          "(default fedavg; any registered name incl. "
                          "spatl)")
    return parser


def _run_commands(args) -> None:
    """Execute the selected command (or every command for ``all``)."""
    if args.command == "all":
        for name, fn in COMMANDS.items():
            print(f"\n===== {name} =====")
            fn(args)
    else:
        COMMANDS[args.command](args)


def main(argv=None) -> int:
    """Dispatch a CLI invocation; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("\n".join(COMMANDS))
        return 0
    # The profile command owns its tracer (and its exports); every other
    # command gets a run-scoped tracer only when an export was requested.
    wants_obs = (args.trace_out or args.metrics_out) \
        and args.command != "profile"
    if wants_obs:
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            _run_commands(args)
        finally:
            set_tracer(previous)
        if args.trace_out:
            _export_trace(tracer, args.trace_out)
        if args.metrics_out:
            _export_metrics(args.metrics_out)
    else:
        _run_commands(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
