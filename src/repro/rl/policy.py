"""GNN + MLP actor-critic policy over computational-graph states.

Actor (Eq. 5-6): GCN layers embed the graph; a node-wise MLP projects each
*prunable* node's embedding to the raw mean of a Gaussian over that layer's
sparsity ratio.  Because actions are emitted per prunable node, the same
policy transfers across architectures with different layer counts
(ResNet-56 → ResNet-18, Fig. 6).

Critic: an MLP on the mean-pooled graph embedding estimates the state
value.

Actions are raw Gaussians; the environment clips them into the valid
sparsity interval ``[0, s_max]`` (log-probabilities are computed on the raw
values, the standard practice for clipped continuous control).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gnn import GraphEncoder
from repro.nn import Linear, Sequential, Tanh
from repro.nn.module import Module, Parameter
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor

LOG_2PI = math.log(2.0 * math.pi)


@dataclass
class GraphState:
    """One RL state: node features, propagation matrix, prunable node ids."""

    x: np.ndarray           # (n_nodes, FEATURE_DIM)
    a_hat: np.ndarray       # (n_nodes, n_nodes)
    prunable_idx: np.ndarray  # (n_actions,) indices into nodes

    @property
    def n_actions(self) -> int:
        return len(self.prunable_idx)


class ActorCriticPolicy(Module):
    """See module docstring.  ``log_std`` is a learned, state-independent
    scalar (paper: "the standard deviation of actions is [fixed small]")."""

    def __init__(self, feature_dim: int, hidden_dim: int = 32,
                 init_std: float = 0.25, seed: int | None = None):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.gnn = GraphEncoder(feature_dim, hidden_dim, n_layers=2, rng=rng)
        self.actor_head = Sequential(
            Linear(hidden_dim, hidden_dim, rng=rng), Tanh(),
            Linear(hidden_dim, 1, rng=rng))
        self.critic_head = Sequential(
            Linear(hidden_dim, hidden_dim, rng=rng), Tanh(),
            Linear(hidden_dim, 1, rng=rng))
        self.log_std = Parameter(np.asarray([math.log(init_std)], dtype=np.float32))

    # ------------------------------------------------------------------ #
    def forward(self, state: GraphState) -> tuple[Tensor, Tensor]:
        """(raw action means over prunable nodes, state value)."""
        node_emb, graph_emb = self.gnn(state.x, state.a_hat)
        prunable = node_emb[np.asarray(state.prunable_idx)]
        mu = self.actor_head(prunable).reshape(-1)
        value = self.critic_head(graph_emb.reshape(1, -1)).reshape(())
        return mu, value

    def _log_prob(self, mu: Tensor, actions: np.ndarray) -> Tensor:
        """Sum of per-dimension Gaussian log-probs of raw ``actions``."""
        a = Tensor(np.asarray(actions, dtype=np.float32))
        std = self.log_std.exp()
        z = (a - mu) / std
        per_dim = -0.5 * (z * z) - self.log_std - 0.5 * LOG_2PI
        return per_dim.sum()

    def entropy(self) -> Tensor:
        """Differential entropy per action dimension."""
        return self.log_std + 0.5 * (1.0 + LOG_2PI)

    # ------------------------------------------------------------------ #
    def act(self, state: GraphState, rng: np.random.Generator,
            deterministic: bool = False) -> tuple[np.ndarray, float, float]:
        """Sample (raw action, log-prob, value) without building a graph."""
        with no_grad():
            mu, value = self.forward(state)
            std = float(np.exp(self.log_std.data[0]))
            mu_np = mu.data.astype(np.float64)
            if deterministic:
                action = mu_np
                logp = 0.0
            else:
                action = mu_np + std * rng.standard_normal(mu_np.shape)
                z = (action - mu_np) / std
                logp = float(np.sum(-0.5 * z * z - np.log(std) - 0.5 * LOG_2PI))
            return action, logp, float(value.data)

    def evaluate_actions(self, state: GraphState,
                         actions: np.ndarray) -> tuple[Tensor, Tensor, Tensor]:
        """Differentiable (log-prob, value, entropy) for a PPO update."""
        mu, value = self.forward(state)
        logp = self._log_prob(mu, actions)
        return logp, value, self.entropy()

    # ------------------------------------------------------------------ #
    def head_parameter_names(self) -> list[str]:
        """Names of MLP-head parameters — the only ones updated during
        online fine-tuning on clients (§V-A: "We only update the MLP's
        parameter when fine-tuning")."""
        return [n for n, _ in self.named_parameters()
                if n.startswith(("actor_head.", "critic_head.", "log_std"))]

    def memory_bytes(self) -> int:
        """Total parameter bytes — the paper quotes ~26 KB for its agent."""
        return sum(p.data.nbytes for p in self.parameters())
