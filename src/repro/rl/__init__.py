"""Reinforcement-learning stack for the salient parameter selection agent.

Implements §IV-B of the paper: a GNN+MLP actor-critic trained with PPO
(Eq. 8) on the network-pruning task, where states are computational graphs,
actions are per-layer sparsity ratios (Eq. 5-6), and the reward is the
selected sub-network's validation accuracy (Eq. 7).
"""

from repro.rl.policy import ActorCriticPolicy, GraphState
from repro.rl.buffer import RolloutBuffer, Transition
from repro.rl.ppo import PPOConfig, ppo_update
from repro.rl.env import PruningEnv
from repro.rl.agent import SalientParameterAgent, pretrain_agent

__all__ = ["ActorCriticPolicy", "GraphState", "RolloutBuffer", "Transition",
           "PPOConfig", "ppo_update", "PruningEnv", "SalientParameterAgent",
           "pretrain_agent"]
