"""Network-pruning RL environment (the agent's task, Algorithm 1 / §IV-B1).

State: the encoder's computational graph with the current keep fractions in
the feature matrix.  Action: per-prunable-layer sparsity increments (raw
Gaussian, clipped into ``[0, s_max]``).  Episode dynamics follow the
paper's search loop: while the selected sub-network is still larger than
the size constraint the agent keeps shrinking it (reward 0); once the
constraint is met the episode ends with reward = accuracy of the selected
sub-network on held-out data (Eq. 7); episodes that exhaust ``max_steps``
without meeting the constraint are penalised by the remaining gap.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.graph import build_graph, node_feature_matrix, normalized_adjacency
from repro.models.split import SplitModel
from repro.pruning.baselines import evaluate
from repro.pruning.selector import selection_from_sparsity
from repro.rl.policy import GraphState


class PruningEnv:
    """Single-model pruning environment.

    Parameters
    ----------
    model:
        Trained (or training) split model whose encoder gets pruned.
    val_data:
        Held-out data providing the reward signal; a bounded probe subset
        keeps reward evaluation cheap (``probe_size``).
    flops_target:
        Size constraint as a fraction of dense FLOPs (e.g. 0.6 means the
        sub-network must use at most 60% of dense FLOPs).
    s_max:
        Per-step, per-layer maximum sparsity increment.
    """

    def __init__(self, model: SplitModel, val_data: ArrayDataset,
                 flops_target: float = 0.6, s_max: float = 0.8,
                 max_steps: int = 4, probe_size: int = 256,
                 criterion: str = "l2", gap_penalty: float = 0.5):
        if not 0.0 < flops_target <= 1.0:
            raise ValueError("flops_target must be in (0, 1]")
        self.model = model
        self.encoder = model.encoder
        self.graph = build_graph(self.encoder)
        self.a_hat = normalized_adjacency(self.graph)
        self.prunable_idx = np.asarray(self.graph.prunable_indices())
        self.layers = self.encoder.prunable_layers()
        self.flops_target = flops_target
        self.s_max = s_max
        self.max_steps = max_steps
        self.criterion = criterion
        self.gap_penalty = gap_penalty
        self.probe = val_data.subset(np.arange(min(len(val_data), probe_size)))
        self._keep: dict[str, float] = {}
        self._step = 0

    @property
    def n_actions(self) -> int:
        return len(self.layers)

    def observe(self) -> GraphState:
        x = node_feature_matrix(self.graph, keep=self._keep)
        return GraphState(x=x, a_hat=self.a_hat, prunable_idx=self.prunable_idx)

    def reset(self) -> GraphState:
        self._keep = {name: 1.0 for name in self.layers}
        self._step = 0
        return self.observe()

    def action_to_sparsity(self, raw_action: np.ndarray) -> np.ndarray:
        """Squash raw Gaussian actions into the valid sparsity interval.

        ``s = s_max * sigmoid(raw)`` keeps the raw action space unbounded
        (Gaussian log-probs stay exact) while centring an untrained policy
        at a meaningful sparsity of ``s_max / 2`` instead of the degenerate
        zero a hard clip would produce.
        """
        raw = np.asarray(raw_action, dtype=np.float64)
        return self.s_max / (1.0 + np.exp(-raw))

    def current_flops_ratio(self) -> float:
        return self.graph.flops_ratio(self._keep)

    def evaluate_subnetwork(self) -> float:
        """Accuracy of the currently selected sub-network (Eq. 7 reward)."""
        selection = selection_from_sparsity(self.encoder,
                                            {n: 1.0 - k for n, k in self._keep.items()},
                                            self.criterion)
        selection.apply_to(self.encoder)
        acc = evaluate(self.model, self.probe)
        self.encoder.clear_channel_masks()
        return acc

    def step(self, raw_action: np.ndarray) -> tuple[GraphState, float, bool, dict]:
        """Apply a sparsity increment; see class docstring for dynamics."""
        sparsity = self.action_to_sparsity(raw_action)
        if len(sparsity) != self.n_actions:
            raise ValueError(f"action length {len(sparsity)} != {self.n_actions}")
        for name, s in zip(self.layers, sparsity):
            self._keep[name] = float(np.clip(self._keep[name] * (1.0 - s),
                                             1e-3, 1.0))
        self._step += 1
        ratio = self.current_flops_ratio()
        info = {"flops_ratio": ratio, "keep": dict(self._keep)}
        if ratio <= self.flops_target:
            reward = self.evaluate_subnetwork()
            info["accuracy"] = reward
            return self.observe(), reward, True, info
        if self._step >= self.max_steps:
            acc = self.evaluate_subnetwork()
            reward = acc - self.gap_penalty * (ratio - self.flops_target)
            info["accuracy"] = acc
            return self.observe(), reward, True, info
        return self.observe(), 0.0, False, info

    def final_selection(self, raw_action: np.ndarray | None = None):
        """Materialise the selection for the current (or given) policy."""
        keep = dict(self._keep)
        if raw_action is not None:
            sparsity = self.action_to_sparsity(raw_action)
            keep = {name: float(np.clip(1.0 - s, 1e-3, 1.0))
                    for name, s in zip(self.layers, sparsity)}
        return selection_from_sparsity(self.encoder,
                                       {n: 1.0 - k for n, k in keep.items()},
                                       self.criterion)
