"""Rollout storage with generalized advantage estimation (GAE)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rl.policy import GraphState


@dataclass
class Transition:
    """One environment step."""

    state: GraphState
    action: np.ndarray
    log_prob: float
    value: float
    reward: float
    done: bool


@dataclass
class RolloutBuffer:
    """Collects transitions across episodes, then computes GAE targets.

    Graph states are variable-sized, so transitions are stored as objects
    rather than stacked arrays; PPO evaluates them one graph at a time
    (graphs here are tiny — tens of nodes).
    """

    gamma: float = 0.99
    gae_lambda: float = 0.95
    transitions: list[Transition] = field(default_factory=list)
    advantages: np.ndarray | None = None
    returns: np.ndarray | None = None

    def add(self, transition: Transition) -> None:
        self.transitions.append(transition)

    def __len__(self) -> int:
        return len(self.transitions)

    def clear(self) -> None:
        self.transitions.clear()
        self.advantages = None
        self.returns = None

    def compute_gae(self, last_value: float = 0.0) -> None:
        """Backward GAE pass; episode boundaries reset the accumulator."""
        n = len(self.transitions)
        adv = np.zeros(n, dtype=np.float64)
        gae = 0.0
        next_value = last_value
        for t in reversed(range(n)):
            tr = self.transitions[t]
            nonterminal = 0.0 if tr.done else 1.0
            delta = tr.reward + self.gamma * next_value * nonterminal - tr.value
            gae = delta + self.gamma * self.gae_lambda * nonterminal * gae
            adv[t] = gae
            next_value = tr.value
        values = np.asarray([tr.value for tr in self.transitions])
        self.advantages = adv
        self.returns = adv + values

    def normalized_advantages(self) -> np.ndarray:
        if self.advantages is None:
            raise RuntimeError("call compute_gae first")
        a = self.advantages
        return (a - a.mean()) / (a.std() + 1e-8)

    def minibatch_indices(self, batch_size: int,
                          rng: np.random.Generator) -> list[np.ndarray]:
        order = rng.permutation(len(self.transitions))
        return [order[lo:lo + batch_size] for lo in range(0, len(order), batch_size)]
