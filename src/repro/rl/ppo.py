"""Proximal policy optimization update (Eq. 8 of the paper).

Clipped-surrogate objective with value loss and entropy bonus:

    L = E_t[ min(r_t A_t, clip(r_t, 1-eps, 1+eps) A_t) ]
        - c_v * (V(s_t) - R_t)^2 + c_e * H[pi]

with ``r_t = pi_theta(a_t|s_t) / pi_theta_old(a_t|s_t)``.  Hyper-parameter
defaults follow §V-A: clip 0.2, discount 0.99, Adam lr 1e-3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optim import Adam
from repro.rl.buffer import RolloutBuffer
from repro.rl.policy import ActorCriticPolicy


@dataclass
class PPOConfig:
    """PPO hyper-parameters (paper defaults, §V-A).

    ``value_clip_eps`` bounds the value-function update around the rollout
    estimate (PPO2-style); ``target_kl`` stops an update epoch early when
    the mean approximate KL to the behaviour policy exceeds it — both
    standard stabilisers for small-rollout regimes like per-client
    fine-tuning.  Either can be disabled by setting it to ``None``.
    """

    clip_eps: float = 0.2
    gamma: float = 0.99
    gae_lambda: float = 0.95
    lr: float = 1e-3
    update_epochs: int = 4
    minibatch_size: int = 16
    value_coef: float = 0.5
    entropy_coef: float = 1e-3
    max_updates_per_round: int = 1
    value_clip_eps: float | None = 0.2
    target_kl: float | None = 0.05


def ppo_update(policy: ActorCriticPolicy, buffer: RolloutBuffer,
               optimizer: Adam, config: PPOConfig,
               rng: np.random.Generator) -> dict[str, float]:
    """Run ``update_epochs`` of clipped-surrogate minibatch updates.

    Returns mean diagnostics (policy loss, value loss, approx KL).
    """
    if len(buffer) == 0:
        return {"policy_loss": 0.0, "value_loss": 0.0, "approx_kl": 0.0}
    buffer.compute_gae()
    adv = buffer.normalized_advantages()
    returns = buffer.returns
    diag = {"policy_loss": [], "value_loss": [], "approx_kl": []}
    stop = False
    for _ in range(config.update_epochs):
        if stop:
            break
        for idx in buffer.minibatch_indices(config.minibatch_size, rng):
            policy_terms = []
            value_terms = []
            kl_terms = []
            for i in idx:
                tr = buffer.transitions[i]
                logp, value, entropy = policy.evaluate_actions(tr.state, tr.action)
                ratio = (logp - tr.log_prob).exp()
                a_i = float(adv[i])
                unclipped = ratio * a_i
                clipped = ratio.clip(1.0 - config.clip_eps, 1.0 + config.clip_eps) * a_i
                # min() of the two branches: pick by value, backprop the pick
                surrogate = unclipped if unclipped.item() <= clipped.item() else clipped
                v_err = value - float(returns[i])
                if config.value_clip_eps is not None:
                    # PPO2 value clipping: bound the update around the
                    # rollout-time value estimate, take the worse loss
                    v_clipped = value.clip(tr.value - config.value_clip_eps,
                                           tr.value + config.value_clip_eps) \
                        - float(returns[i])
                    v_loss = (v_err * v_err
                              if (v_err * v_err).item()
                              >= (v_clipped * v_clipped).item()
                              else v_clipped * v_clipped)
                else:
                    v_loss = v_err * v_err
                policy_terms.append(-surrogate - config.entropy_coef * entropy.sum())
                value_terms.append(v_loss)
                kl_terms.append(tr.log_prob - logp.item())
            n = len(idx)
            loss = policy_terms[0]
            for term in policy_terms[1:]:
                loss = loss + term
            vloss = value_terms[0]
            for term in value_terms[1:]:
                vloss = vloss + term
            total = loss * (1.0 / n) + vloss * (config.value_coef / n)
            optimizer.zero_grad()
            total.backward()
            optimizer.step()
            diag["policy_loss"].append(loss.item() / n)
            diag["value_loss"].append(vloss.item() / n)
            batch_kl = float(np.mean(kl_terms))
            diag["approx_kl"].append(batch_kl)
            if config.target_kl is not None and batch_kl > config.target_kl:
                stop = True
                break
    return {k: float(np.mean(v)) for k, v in diag.items()}
