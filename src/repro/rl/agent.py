"""The salient parameter selection agent (§IV-B).

Lifecycle (matching §V-A):

1. :func:`pretrain_agent` — train the policy end-to-end with PPO on a
   network-pruning task (the paper uses ResNet-56).
2. :meth:`SalientParameterAgent.finetune` — transfer to a client's model by
   online PPO, updating **only the MLP heads** (the GNN topology embedding
   is frozen).
3. :meth:`SalientParameterAgent.propose` — one-shot deterministic inference
   of the per-layer sparsity ratios for the current encoder ("one-shot
   inference ... 0.36 ms" in the paper's ablation).
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.graph import FEATURE_DIM
from repro.models.split import SplitModel
from repro.optim import Adam
from repro.pruning.selector import SalientSelection
from repro.rl.buffer import RolloutBuffer, Transition
from repro.rl.env import PruningEnv
from repro.rl.policy import ActorCriticPolicy
from repro.rl.ppo import PPOConfig, ppo_update
from repro.utils.rng import spawn_rng


class SalientParameterAgent:
    """PPO-trained GNN agent emitting per-layer sparsity ratios."""

    def __init__(self, policy: ActorCriticPolicy | None = None,
                 config: PPOConfig | None = None, seed: int = 0,
                 hidden_dim: int = 32):
        self.policy = policy or ActorCriticPolicy(FEATURE_DIM, hidden_dim,
                                                  seed=seed)
        self.config = config or PPOConfig()
        self.seed = seed
        self._update_count = 0

    # ------------------------------------------------------------------ #
    def _collect(self, env: PruningEnv, episodes: int,
                 rng: np.random.Generator) -> tuple[RolloutBuffer, list[float]]:
        buffer = RolloutBuffer(gamma=self.config.gamma,
                               gae_lambda=self.config.gae_lambda)
        episode_rewards = []
        for _ in range(episodes):
            state = env.reset()
            done = False
            total = 0.0
            while not done:
                action, logp, value = self.policy.act(state, rng)
                next_state, reward, done, _ = env.step(action)
                buffer.add(Transition(state, action, logp, value, reward, done))
                state = next_state
                total += reward
            episode_rewards.append(total)
        return buffer, episode_rewards

    def train(self, env: PruningEnv, updates: int, episodes_per_update: int = 8,
              optimizer: Adam | None = None,
              freeze_gnn: bool = False) -> list[float]:
        """Run PPO for ``updates`` rounds; returns mean reward per round.

        ``freeze_gnn=True`` is the fine-tuning mode: only the actor/critic
        MLP heads (and the action std) receive updates.
        """
        opt = optimizer or Adam(list(self.policy.named_parameters()),
                                lr=self.config.lr)
        if freeze_gnn:
            opt.freeze(["gnn."])
        history = []
        for u in range(updates):
            rng = spawn_rng(self.seed, "rollout", self._update_count)
            buffer, rewards = self._collect(env, episodes_per_update, rng)
            ppo_update(self.policy, buffer, opt, self.config,
                       spawn_rng(self.seed, "ppo", self._update_count))
            self._update_count += 1
            history.append(float(np.mean(rewards)))
        return history

    def finetune(self, model: SplitModel, val_data: ArrayDataset,
                 updates: int = 2, episodes_per_update: int = 4,
                 flops_target: float = 0.6, optimizer: Adam | None = None,
                 **env_kwargs) -> list[float]:
        """Online fine-tuning on a client (GNN frozen, MLP heads only)."""
        env = PruningEnv(model, val_data, flops_target=flops_target,
                         **env_kwargs)
        return self.train(env, updates, episodes_per_update,
                          optimizer=optimizer, freeze_gnn=True)

    # ------------------------------------------------------------------ #
    def propose(self, model: SplitModel, val_data: ArrayDataset | None = None,
                flops_target: float = 0.6,
                **env_kwargs) -> tuple[SalientSelection, dict]:
        """Deterministic one-shot selection for the current encoder.

        Walks the environment with the policy mean action until the size
        constraint is met, then returns the materialised selection plus
        diagnostics (flops ratio, steps).
        """
        probe = val_data if val_data is not None else \
            ArrayDataset(np.zeros((1,) + _input_shape(model), dtype=np.float32),
                         np.zeros(1, dtype=np.int64))
        env = PruningEnv(model, probe, flops_target=flops_target, **env_kwargs)
        state = env.reset()
        rng = spawn_rng(self.seed, "propose")
        done = False
        info: dict = {}
        while not done:
            action, _, _ = self.policy.act(state, rng, deterministic=True)
            state, _, done, info = env.step(action)
        selection = selection_for_keep(env)
        info["mean_keep"] = selection.mean_keep()
        return selection, info

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        return self.policy.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.policy.load_state_dict(state)

    def clone(self) -> "SalientParameterAgent":
        """Independent copy (each FL client customises its own agent)."""
        fresh = SalientParameterAgent(config=self.config, seed=self.seed,
                                      hidden_dim=self.policy.gnn.out_dim)
        fresh.policy.load_state_dict(self.policy.state_dict())
        return fresh


def selection_for_keep(env: PruningEnv) -> SalientSelection:
    """Materialise the environment's current keep fractions."""
    from repro.pruning.selector import selection_from_sparsity
    return selection_from_sparsity(
        env.encoder, {n: 1.0 - k for n, k in env._keep.items()}, env.criterion)


def _input_shape(model: SplitModel) -> tuple[int, int, int]:
    enc = model.encoder
    return (enc.in_channels, enc.input_size, enc.input_size)


def pretrain_agent(model: SplitModel, train_data: ArrayDataset,
                   val_data: ArrayDataset, updates: int = 20,
                   episodes_per_update: int = 8, flops_target: float = 0.6,
                   seed: int = 0, config: PPOConfig | None = None,
                   **env_kwargs) -> tuple[SalientParameterAgent, list[float]]:
    """Pre-train a fresh agent on the pruning task (paper: ResNet-56).

    Returns the agent and the reward history (Fig. 6's x/y series).
    """
    agent = SalientParameterAgent(config=config, seed=seed)
    env = PruningEnv(model, val_data, flops_target=flops_target, **env_kwargs)
    history = agent.train(env, updates, episodes_per_update)
    return agent, history
