"""Differentiable functional operations built on :class:`repro.tensor.Tensor`.

These are the loss functions and nonlinearities used by the NN layers, the
PPO policy, and the FL training loops.  Numerically sensitive reductions
(softmax, log-sum-exp) are implemented with the usual max-subtraction
stabilisation.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """LeakyReLU: x for x>0, slope*x otherwise."""
    a = x
    mask = x.data > 0
    scale = np.where(mask, 1.0, negative_slope).astype(x.dtype)
    out_data = x.data * scale

    def backward(g):
        a._accumulate(g * scale, donate="fresh")

    return Tensor._make(out_data, (a,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    a = x
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(g):
        # dL/dx = s * (g - sum(g * s))
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        a._accumulate(out_data * (g - dot), donate="fresh")

    return Tensor._make(out_data, (a,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable log-softmax along ``axis``."""
    a = x
    m = x.data.max(axis=axis, keepdims=True)
    shifted = x.data - m
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    soft = np.exp(out_data)

    def backward(g):
        a._accumulate(g - soft * g.sum(axis=axis, keepdims=True),
                      donate="fresh")

    return Tensor._make(out_data, (a,), backward)


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float32) -> np.ndarray:
    """Dense one-hot encoding of integer ``labels``."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.size, num_classes), dtype=dtype)
    out[np.arange(labels.size), labels.ravel()] = 1.0
    return out.reshape(labels.shape + (num_classes,))


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between raw ``logits`` (N, C) and integer labels (N,).

    Fused log-softmax + NLL with a single backward closure; this is the loss
    used for every classification model in the reproduction (Eq. 3/4 of the
    paper instantiate it as the local objective ``l_i``).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"cross_entropy expects (N, C) logits, got {logits.shape}")
    n = logits.shape[0]
    a = logits
    m = logits.data.max(axis=1, keepdims=True)
    shifted = logits.data - m
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - lse
    loss = -logp[np.arange(n), labels].mean()
    soft = np.exp(logp)

    def backward(g):
        grad = soft.copy()
        grad[np.arange(n), labels] -= 1.0
        grad *= float(g) / n
        a._accumulate(grad, donate="fresh")

    return Tensor._make(np.asarray(loss, dtype=logits.dtype), (a,), backward)


def nll_loss(logp: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given log-probabilities (N, C)."""
    labels = np.asarray(labels, dtype=np.int64)
    n = logp.shape[0]
    picked = logp[np.arange(n), labels]
    return -(picked.mean())


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error; ``target`` may be a Tensor or array."""
    t = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=pred.dtype))
    diff = pred - t
    return (diff * diff).mean()


def smooth_l1_loss(pred: Tensor, target, beta: float = 1.0) -> Tensor:
    """Huber-style smooth L1 loss (used by the PPO value head)."""
    t = np.asarray(target.data if isinstance(target, Tensor) else target, dtype=pred.dtype)
    a = pred
    diff = pred.data - t
    absd = np.abs(diff)
    quad = absd < beta
    out_data = np.where(quad, 0.5 * diff * diff / beta, absd - 0.5 * beta)
    loss = out_data.mean()
    n = diff.size

    def backward(g):
        grad = np.where(quad, diff / beta, np.sign(diff)) * (float(g) / n)
        a._accumulate(grad.astype(pred.dtype, copy=False), donate="fresh")

    return Tensor._make(np.asarray(loss, dtype=pred.dtype), (a,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Stable log-sum-exp along ``axis``."""
    a = x
    m = x.data.max(axis=axis, keepdims=True)
    e = np.exp(x.data - m)
    s = e.sum(axis=axis, keepdims=True)
    out = np.log(s) + m
    soft = e / s
    if not keepdims:
        out = np.squeeze(out, axis=axis)

    def backward(g):
        gg = g if keepdims else np.expand_dims(g, axis=axis)
        a._accumulate(soft * gg, donate="fresh")

    return Tensor._make(out, (a,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero with prob ``p`` and rescale by 1/(1-p)."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    a = x
    keep = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    out_data = x.data * keep

    def backward(g):
        a._accumulate(g * keep, donate="fresh")

    return Tensor._make(out_data, (a,), backward)


def accuracy(logits, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``logits`` (N, C) against integer labels."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = data.argmax(axis=1)
    return float((pred == np.asarray(labels)).mean())
