"""Plan IR: buffer handles, lifetimes, and the linear-scan arena.

A compiled step is a straight-line program over three kinds of values:

- :class:`Handle` — an intermediate buffer the planner owns.  Handles are
  declared during emission with shape/dtype only; after all instructions
  are emitted, a linear-scan pass assigns every handle a byte offset in
  one arena allocation, reusing memory between handles whose lifetimes
  (first/last touching instruction) do not overlap.
- :class:`View` — a derived array built once at bind time (a transpose /
  reshape / slice of a handle's arena array, a broadcast of a gradient,
  or a window view over the input buffer).  Views carry their base handle
  so touching a view extends the base's lifetime.
- plain ``np.ndarray`` — memory the planner does not own: parameter data,
  persistent input/label/gradient buffers, workspace-arena buffers shared
  with the eager kernels, and captured constants.

Instructions are *factories*: ``factory(resolve) -> callable | None``.
Emission stores the factory plus the list of values it touches (for
lifetime analysis); after offsets are assigned and handle arrays
materialised, every factory is invoked once with :meth:`PlanBuilder.resolve`
to produce the zero-argument closure replayed each step (``None`` means
the factory turned out to be a no-op, e.g. a reshape that binds as a
view).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

_ALIGN = 64


class Unsupported(Exception):
    """Raised during capture/emission when a graph shape cannot be planned.

    The step compiler catches this and marks the signature as
    fall-back-to-eager; the message becomes the ``reason`` label on the
    ``compile.fallbacks`` counter.
    """


class Handle:
    """A planner-owned buffer: shape/dtype at emission, array after layout."""

    __slots__ = ("shape", "dtype", "nbytes", "first", "last", "offset",
                 "name", "array")

    def __init__(self, shape: tuple[int, ...], dtype, name: str = ""):
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.nbytes = int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize
        self.first: int | None = None
        self.last: int | None = None
        self.offset: int | None = None
        self.name = name
        self.array: np.ndarray | None = None

    def __repr__(self) -> str:
        return (f"Handle({self.name or '?'}, {self.shape}, {self.dtype}, "
                f"live=[{self.first},{self.last}], off={self.offset})")


class View:
    """A bind-time derived array over a handle (or constant memory).

    ``build`` receives ``resolve`` and returns the array; the result is
    memoised so every consumer sees the same object.  ``base`` is the
    handle whose storage the view aliases (``None`` when the view is over
    memory the planner does not own).
    """

    __slots__ = ("base", "build", "_arr")

    def __init__(self, base: Handle | None,
                 build: Callable[[Callable], np.ndarray]):
        self.base = base
        self.build = build
        self._arr: np.ndarray | None = None

    def materialize(self, resolve) -> np.ndarray:
        if self._arr is None:
            self._arr = self.build(resolve)
        return self._arr


def _align(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class PlanBuilder:
    """Collects handles and instruction factories, then lays out and binds.

    Emission order is execution order: the instruction counter doubles as
    the timestamp for lifetime analysis, covering the forward and backward
    sequences as one interval space (an activation read by a backward
    instruction stays live across the whole forward tail).
    """

    def __init__(self):
        self.handles: list[Handle] = []
        self._factories: list[Callable] = []
        self._uses: list[list[Any]] = []
        self._counter = 0
        self.arena: np.ndarray | None = None
        self.persistent_bytes = 0

    # ------------------------------------------------------------ declare
    def alloc(self, shape, dtype, name: str = "") -> Handle:
        """Declare an arena-planned intermediate buffer."""
        h = Handle(shape, dtype, name)
        self.handles.append(h)
        return h

    def persistent(self, shape, dtype) -> np.ndarray:
        """Allocate a buffer that lives across steps (inputs, parameter
        gradients) — plain memory, never part of the reuse arena."""
        arr = np.empty(shape, dtype=dtype)
        self.persistent_bytes += arr.nbytes
        return arr

    # ------------------------------------------------------------- emit
    def emit(self, factory: Callable[[Callable], Callable | None],
             uses: list[Any]) -> None:
        """Append one instruction.

        ``uses`` lists every Handle/View the bound closure will read or
        write; under-reporting a use lets the arena recycle a buffer that
        is still needed, so emitters must be exhaustive here.
        """
        idx = self._counter
        self._counter += 1
        for u in uses:
            h = u.base if isinstance(u, View) else u
            if isinstance(h, Handle):
                if h.first is None:
                    h.first = idx
                h.last = idx
        self._factories.append(factory)
        self._uses.append(uses)

    def touch(self, value: Any) -> None:
        """Extend a value's lifetime to the current instruction frontier
        (for reads that happen outside an emitted instruction, e.g. a
        gradient alias consumed by a later emission)."""
        h = value.base if isinstance(value, View) else value
        if isinstance(h, Handle) and h.first is not None:
            h.last = max(h.last, self._counter)

    # ---------------------------------------------------------- finalize
    def finalize(self) -> list[Callable]:
        """Assign offsets, materialise the arena, bind all factories.

        Linear-scan first-fit: handles sorted by first touch; a handle may
        reuse bytes of any handle whose last touch strictly precedes its
        first.  Returns the bound closure list (factories that bind to
        ``None`` are dropped).
        """
        live: list[tuple[int, int, int]] = []   # (last, offset, nbytes)
        total = 0
        planned = [h for h in self.handles if h.first is not None]
        for h in sorted(planned, key=lambda h: (h.first, -h.nbytes)):
            live = [iv for iv in live if iv[0] >= h.first]
            live.sort(key=lambda iv: iv[1])
            off = 0
            for last, o, nb in live:
                if off + h.nbytes <= o:
                    break
                off = _align(o + nb)
            h.offset = off
            live.append((h.last, off, h.nbytes))
            total = max(total, off + h.nbytes)
        self.arena = np.empty(_align(total), dtype=np.uint8)
        for h in planned:
            h.array = (self.arena[h.offset:h.offset + h.nbytes]
                       .view(h.dtype).reshape(h.shape))
        for h in self.handles:
            # Declared but never emitted against (defensive): standalone.
            if h.array is None:
                h.array = np.empty(h.shape, dtype=h.dtype)
        resolve = self.resolve
        fns = [f(resolve) for f in self._factories]
        return [f for f in fns if f is not None]

    def resolve(self, value: Any) -> np.ndarray:
        """Handle -> its arena array; View -> its memoised array;
        anything else passes through."""
        if isinstance(value, Handle):
            return value.array
        if isinstance(value, View):
            return value.materialize(self.resolve)
        return value

    # ------------------------------------------------------------- stats
    def stats(self) -> dict:
        planned = [h for h in self.handles if h.array is not None]
        return {
            "handles": len(planned),
            "instructions": len(self._factories),
            "arena_bytes": 0 if self.arena is None else int(self.arena.nbytes),
            "raw_bytes": int(sum(h.nbytes for h in planned)),
            "persistent_bytes": int(self.persistent_bytes),
        }
