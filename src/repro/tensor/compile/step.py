"""The step compiler: capture a training step once, replay it forever.

``StepCompiler.try_step(model, xb, yb)`` is the single entry point used
by :func:`repro.fl.local.train_local`:

- On the first call for a ``(model, input-signature)`` pair it runs the
  step *eagerly* with a capture hook installed on :meth:`Tensor._make`,
  so the capture step IS a normal training step (same results, no warmup
  throwaway), then builds a static plan from the recorded tape.
- Later calls with the same signature replay the plan: two ``np.copyto``
  for input/labels, a flat closure list, and a parameter-gradient swap.
  No tensors, no graph, no topological sort, no per-op allocation.
- Anything the planner cannot express (:class:`Unsupported`) marks the
  signature as fallback and ``try_step`` returns ``None`` forever after,
  which tells the caller to run the eager path.

Per-step guards keep the plan honest when runtime state the plan baked
in could drift: SPATL channel masks, cohort-mode parameter stacking,
active dropout, eval mode, and auxiliary losses all force the eager
path for that step without invalidating the plan.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.tensor.compile.ir import PlanBuilder, Unsupported
from repro.tensor.compile.kernels import BWD, FWD, Build, Record
from repro.tensor.tensor import (Tensor, _backward_op_name,
                                 set_graph_capture_hook)
from repro.tensor import functional as F


class _Fallback:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<FALLBACK>"


#: Per-signature marker: this graph shape cannot be compiled, stay eager.
FALLBACK = _Fallback()


def _counter(name: str, **labels):
    from repro.obs.metrics import get_registry
    return get_registry().counter(name, **labels)


def _topo_order(loss: Tensor) -> list[Tensor]:
    """The exact reverse-topological schedule :meth:`Tensor.backward`
    uses (same DFS, same push order), snapshotted before the eager
    backward frees the graph edges."""
    topo: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(loss, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for p in node._parents:
            if id(p) not in visited and p.requires_grad:
                stack.append((p, False))
    return topo


class StepPlan:
    """A bound, replayable training step for one input signature."""

    __slots__ = ("instrs", "in_buf", "lab_buf", "loss_cell", "param_grads",
                 "all_params", "stats")

    def __init__(self, instrs, in_buf, lab_buf, loss_cell, param_grads,
                 all_params, stats):
        self.instrs = instrs
        self.in_buf = in_buf
        self.lab_buf = lab_buf
        self.loss_cell = loss_cell
        self.param_grads = param_grads
        self.all_params = all_params
        self.stats = stats

    def replay(self, xb: np.ndarray, yb: np.ndarray) -> float:
        np.copyto(self.in_buf, xb)
        # "unsafe" matches the ``np.asarray(labels, dtype=int64)`` cast the
        # eager cross-entropy performs.
        np.copyto(self.lab_buf, yb, casting="unsafe")
        for fn in self.instrs:
            fn()
        # Gradients land in persistent buffers; publish them exactly as a
        # ``zero_grad(); backward()`` pair would have: every parameter
        # grad replaced, untouched parameters cleared (a stale grad from a
        # previous eager step must not leak into the optimizer).
        for p in self.all_params:
            p.grad = None
        for p, gbuf in self.param_grads:
            p.grad = gbuf
        return self.loss_cell[0]


class _ModelEntry:
    """Per-model plan cache plus the cached guard lists."""

    __slots__ = ("plans", "mods", "dropouts")

    def __init__(self, model):
        self.plans: dict = {}
        self.mods = list(model.modules())
        from repro.nn.dropout import Dropout
        self.dropouts = [m for m in self.mods if isinstance(m, Dropout)]

    def guards_ok(self, model) -> bool:
        if not model.training:
            return False
        for m in self.mods:
            if getattr(m, "_channel_masks", None):
                return False
            if getattr(m, "_cohort_n", 0):
                return False
        for d in self.dropouts:
            if d.p > 0.0:
                return False
        return True


class StepCompiler:
    """Trace-and-replay executor for local SGD steps.

    One compiler instance serves any number of models; plans are cached
    per ``(model identity, input signature)``.  The model cache is weak,
    so scratch models can be collected with their plans.
    """

    def __init__(self):
        self._models = weakref.WeakKeyDictionary()

    # Plans hold bound closures over this process's arrays; worker
    # processes must recapture, so pickling ships an empty compiler.
    def __getstate__(self):
        return {}

    def __setstate__(self, state):
        self.__init__()

    # ------------------------------------------------------------------ #
    def try_step(self, model, xb: np.ndarray, yb, extra_loss=None):
        """Run one forward/backward as a compiled replay if possible.

        Returns the scalar loss with every ``p.grad`` populated (the
        caller still runs ``opt.step()``), or ``None`` when the step must
        be taken eagerly.  The first call per signature runs eagerly
        under the capture hook, so it both trains and compiles.
        """
        if extra_loss is not None:
            return None
        entry = self._models.get(model)
        if entry is None:
            entry = _ModelEntry(model)
            self._models[model] = entry
        if not entry.guards_ok(model):
            return None
        yarr = np.asarray(yb)
        sig = (xb.shape, str(xb.dtype), yarr.shape, str(yarr.dtype))
        plan = entry.plans.get(sig)
        if plan is FALLBACK:
            return None
        if plan is None:
            return self._capture(model, xb, yarr, entry, sig)
        from repro.obs.trace import get_tracer
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("compile.replay", batch=xb.shape[0]):
                loss = plan.replay(xb, yarr)
        else:
            loss = plan.replay(xb, yarr)
        _counter("compile.replays").inc()
        return loss

    def plan_for(self, model, sig=None):
        """The cached plan(s) for ``model`` (introspection/tests)."""
        entry = self._models.get(model)
        if entry is None:
            return None
        if sig is None:
            return dict(entry.plans)
        return entry.plans.get(sig)

    # ------------------------------------------------------------------ #
    def _capture(self, model, xb, yarr, entry, sig) -> float:
        from repro.obs.trace import get_tracer
        with get_tracer().span("compile.capture", model=type(model).__name__,
                               batch=int(xb.shape[0])):
            records: list[tuple] = []

            def hook(out, parents, backward):
                records.append((out, parents, backward))

            prev = set_graph_capture_hook(hook)
            try:
                x_in = Tensor(xb)
                logits = model(x_in)
                loss = F.cross_entropy(logits, yarr)
            finally:
                set_graph_capture_hook(prev)
            # Snapshot the backward schedule before backward() frees the
            # graph edges (the records keep the closures alive).
            topo = _topo_order(loss)
            model.zero_grad()
            loss.backward()
            loss_val = loss.item()
            try:
                plan = _build_plan(model, records, topo, loss, x_in, xb,
                                   yarr)
            except Unsupported as exc:
                plan = FALLBACK
                _counter("compile.fallbacks", reason=str(exc)).inc()
            else:
                _counter("compile.captures").inc()
            entry.plans[sig] = plan
        return loss_val


def _build_plan(model, raw_records, topo, loss, x_in, xb, yarr) -> StepPlan:
    if yarr.ndim != 1 or yarr.dtype.kind not in "iu":
        raise Unsupported("labels must be a 1-d integer array")
    pb = PlanBuilder()
    in_buf = pb.persistent(xb.shape, xb.dtype)
    lab_buf = pb.persistent(yarr.shape, np.int64)
    ctx = Build(pb, model, x_in, in_buf, lab_buf)
    ctx.params = {id(p): n for n, p in model.named_parameters()}
    from repro.nn.norm import _BatchNorm
    ctx.bn_by_weight = {
        id(m.weight): m for m in model.modules()
        if isinstance(m, _BatchNorm) and m.weight is not None}

    recs: list[Record] = []
    for out, parents, backward in raw_records:
        rec = Record(out, parents, backward, _backward_op_name(backward))
        recs.append(rec)
        if out.requires_grad:
            ctx.records[id(out)] = rec
        else:
            ctx.req_false.add(id(out))

    # Which records actually feed the loss.  A requires_grad=False
    # intermediate consumed on the path cannot be replayed (its value
    # would be baked in as a stale constant); a requires_grad=True record
    # *off* the path cannot be dropped either (it may carry side effects
    # such as batch-norm running statistics).
    reach: set[int] = set()
    stack = [loss]
    while stack:
        t = stack.pop()
        tid = id(t)
        if tid in reach:
            continue
        rec = ctx.records.get(tid)
        if rec is None:
            if tid in ctx.req_false:
                raise Unsupported("non-grad intermediate consumed")
            continue
        reach.add(tid)
        stack.extend(rec.parents)
    for rec in recs:
        if rec.out.requires_grad and id(rec.out) not in reach:
            raise Unsupported(f"unreachable op: {rec.op}")

    for rec in recs:
        if id(rec.out) not in reach:
            continue
        for p in rec.parents:
            if id(p) in ctx.records:
                ctx.consumer_recs.setdefault(id(p), []).append(rec)

    # Forward: creation order is execution order.
    last = None
    for rec in recs:
        if id(rec.out) not in reach:
            continue
        emit = FWD.get(rec.op)
        if emit is None:
            raise Unsupported(f"op: {rec.op}")
        emit(ctx, rec)
        last = rec
    if ctx.pending_fusion:
        raise Unsupported("fused add never consumed")
    if last is None or last.out is not loss or last.op != "cross_entropy":
        raise Unsupported("loss root is not cross_entropy")

    # Backward: the eager schedule, with each node's closure swapped for
    # its planned equivalent.
    for node in reversed(topo):
        rec = ctx.records.get(id(node))
        if rec is None:
            continue
        if node is loss:
            BWD["cross_entropy"](ctx, rec, None)
            continue
        g = ctx.gref.get(id(node))
        if g is None:
            continue
        BWD[rec.op](ctx, rec, g)

    instrs = pb.finalize()
    stats = pb.stats()
    stats["fused_forward"] = ctx.fused_fwd
    all_params = [p for _, p in model.named_parameters()]
    return StepPlan(instrs, in_buf, lab_buf, ctx.loss_cell, ctx.param_grads,
                    all_params, stats)
