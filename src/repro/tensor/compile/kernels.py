"""Per-op emitters: captured tape records -> planned instructions.

Every emitter replays the *exact* arithmetic of its eager counterpart
(:mod:`repro.tensor.tensor`, :mod:`repro.nn.conv`, :mod:`repro.nn.norm`,
:mod:`repro.nn.pooling`, :mod:`repro.tensor.functional`) with outputs
redirected into planned buffers — same operands, same operand order, same
accumulation order, so replayed steps are byte-identical to eager steps
(the ``out=`` forms of NumPy ufuncs/reductions/GEMMs are bitwise equal to
their allocating forms, the invariant DESIGN.md §10 already relies on).

Gradient flow mirrors :meth:`Tensor._accumulate`'s donation contract:

- a contribution eager computes fresh (``donate="fresh"`` or an
  unbroadcast reduction) is computed directly into the parent's planned
  gradient buffer on first touch, or into a temporary then ``+=``-ed;
- a contribution eager passes through by reference (``donate=None``
  views) is copied on first touch — exactly where eager copies;
- scratch-donated arena memory (conv dx, batch-norm gx) becomes the
  parent's gradient *alias* for non-leaf parents, exactly as eager
  aliases it.

Anything outside the supported shapes raises :class:`Unsupported`, which
the step compiler converts into a per-signature fallback to eager.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.compile.ir import Handle, PlanBuilder, Unsupported, View

_POISON = object()       # value slot of a fused-away node: must never be read


def freevars(fn) -> dict:
    """The closure's free variables by name (op operands and geometry)."""
    if fn.__closure__ is None:
        return {}
    return dict(zip(fn.__code__.co_freevars,
                    (c.cell_contents for c in fn.__closure__)))


def _base_of(value):
    if isinstance(value, Handle):
        return value
    if isinstance(value, View):
        return value.base
    return None


class Record:
    """One captured op: output tensor, parents, backward closure."""

    __slots__ = ("out", "parents", "backward", "op", "free")

    def __init__(self, out, parents, backward, op):
        self.out = out
        self.parents = parents
        self.backward = backward
        self.op = op
        self.free = freevars(backward)


class Build:
    """Mutable state of one plan construction (shared by all emitters)."""

    def __init__(self, pb: PlanBuilder, model, x_in, in_buf, lab_buf):
        self.pb = pb
        self.model = model
        self.x_in = x_in
        self.in_buf = in_buf
        self.lab_buf = lab_buf
        self.vals: dict[int, object] = {id(x_in): in_buf}
        self.gref: dict[int, object] = {}
        self.aux: dict[int, object] = {}
        self.records: dict[int, Record] = {}
        self.req_false: set[int] = set()
        self.consumer_recs: dict[int, list[Record]] = {}
        self.params: dict[int, str] = {}
        self.bn_by_weight: dict[int, object] = {}
        self.pgrads: dict[int, np.ndarray] = {}
        self.param_grads: list[tuple] = []
        self.pending_fusion: dict[int, Record] = {}
        self.claimed_slots: set[int] = set()
        self.loss_cell = [0.0]
        self.arange_n: np.ndarray | None = None
        self.fused_fwd = 0
        self.fused_bwd = 0

    # ------------------------------------------------------------ values
    def val(self, t):
        """Replay value of a tensor: planned handle/view for op outputs,
        the input buffer for the step input, parameter data for leaves,
        captured arrays for constants."""
        tid = id(t)
        if tid in self.vals:
            v = self.vals[tid]
            if v is _POISON:
                raise Unsupported("fused node value consumed")
            return v
        if tid in self.req_false:
            raise Unsupported("requires_grad=False intermediate consumed")
        # Leaf: parameter data is stable in place (load_state_dict writes
        # through ``p.data[...]``); anything else is a captured constant
        # whose contents must be step-invariant (shortcut zeros, scalar
        # coercions) — the golden-state tests pin this contract.
        self.vals[tid] = t.data
        return t.data

    def claim_slot(self, ws) -> None:
        """A workspace slot driving one op per step: a second claim means
        a module ran twice (weight sharing), which the one-forward-per-
        backward arena discipline cannot replay."""
        if ws is not None:
            if id(ws) in self.claimed_slots:
                raise Unsupported("module executed twice per step")
            self.claimed_slots.add(id(ws))

    # ----------------------------------------------------- contributions
    def _grad_target(self, parent, shape, name):
        pid = id(parent)
        if pid in self.params:
            buf = self.pgrads.get(pid)
            if buf is None:
                if tuple(shape) != parent.data.shape:
                    raise Unsupported("parameter grad shape mismatch")
                buf = self.pb.persistent(shape, parent.data.dtype)
                self.pgrads[pid] = buf
                self.param_grads.append((parent, buf))
            return buf
        return self.pb.alloc(shape, parent.data.dtype, name)

    def contrib_compute(self, parent, shape, dtype, make, uses, name="grad"):
        """A contribution eager computes into a fresh array.

        ``make(resolve, out_arr) -> closure`` computes the contribution
        into ``out_arr``.  First touch computes straight into the parent's
        gradient buffer (same values as eager's fresh-array donation);
        later touches compute into a temporary and ``+=`` it, mirroring
        ``self.grad += grad``.
        """
        if not parent.requires_grad:
            return
        if np.dtype(dtype) != parent.data.dtype:
            raise Unsupported("gradient dtype mismatch")
        cur = self.gref.get(id(parent))
        if cur is None:
            target = self._grad_target(parent, shape, name)

            def factory(r, make=make, target=target):
                return make(r, r(target))

            self.pb.emit(factory, uses + [target])
            self.gref[id(parent)] = target
        else:
            tmp = self.pb.alloc(shape, dtype, name + ".tmp")

            def factory(r, make=make, tmp=tmp, cur=cur):
                inner = make(r, r(tmp))
                gp = r(cur)
                tarr = r(tmp)

                def run():
                    inner()
                    np.add(gp, tarr, out=gp)
                return run

            self.pb.emit(factory, uses + [tmp, cur])

    def contrib_view(self, parent, value, donate, uses, name="grad"):
        """A contribution that is existing memory (a view of the node's
        gradient, or scratch-donated arena memory)."""
        if not parent.requires_grad:
            return
        cur = self.gref.get(id(parent))
        nonleaf = id(parent) in self.records
        if cur is None:
            if donate == "scratch" and nonleaf:
                # Eager aliases: the parent's grad IS this memory.
                self.gref[id(parent)] = value
                for u in uses:
                    self.pb.touch(u)
                self.pb.touch(value)
                return
            target = self._grad_target(parent, parent.data.shape, name)

            def factory(r, value=value, target=target):
                src = r(value)
                dst = r(target)
                return lambda: np.copyto(dst, src)

            self.pb.emit(factory, uses + [value, target])
            self.gref[id(parent)] = target
        else:
            def factory(r, value=value, cur=cur):
                src = r(value)
                gp = r(cur)
                return lambda: np.add(gp, src, out=gp)

            self.pb.emit(factory, uses + [value, cur])


# ===================================================================== #
# forward emitters                                                      #
# ===================================================================== #

def fwd_conv2d(ctx: Build, rec: Record) -> None:
    """Emit Conv2d forward via the workspace im2col path into an arena slot."""
    f = rec.free
    ws = f["ws"]
    if ws is None:
        raise Unsupported("conv2d without workspace slot")
    ctx.claim_slot(ws)
    x, weight, bias = f["x"], f["weight"], f["bias"]
    stride, padding = f["stride"], f["padding"]
    xref = ctx.val(x)
    out_h = ctx.pb.alloc(rec.out.data.shape, rec.out.data.dtype, "conv.out")
    wdata = weight.data
    bdata = None if bias is None else bias.data
    from repro.nn.conv import _forward_data

    def factory(r):
        xr = r(xref)
        oa = r(out_h)
        return lambda: _forward_data(xr, wdata, bdata, stride, padding, ws,
                                     out_arr=oa)

    ctx.pb.emit(factory, [xref, out_h])
    ctx.vals[id(rec.out)] = out_h


def fwd_batchnorm(ctx: Build, rec: Record) -> None:
    """Emit train-mode BatchNorm forward plus its running-stat updates."""
    f = rec.free
    ws, w, b, x = f["ws"], f["w"], f["b"], f["x"]
    axes, shape, nred = f["axes"], f["shape"], f["nred"]
    if w is None or b is None:
        raise Unsupported("batchnorm without affine parameters")
    if not f["training"]:
        raise Unsupported("batchnorm captured in eval mode")
    mod = ctx.bn_by_weight.get(id(w))
    if mod is None:
        raise Unsupported("batchnorm module not found")
    if rec.out.data.dtype != x.data.dtype:
        raise Unsupported("batchnorm dtype change")
    ctx.claim_slot(ws)
    xhat = f["xhat"]                              # stable arena buffer
    sq = ws.buffer("batchnorm.scratch", x.data.shape, x.data.dtype)
    red_count = x.data.size // mod.num_features
    xref = ctx.val(x)
    out_h = ctx.pb.alloc(rec.out.data.shape, rec.out.data.dtype, "bn.out")
    inv_cell = [None]
    wdata, bdata = w.data, b.data

    def factory(r):
        xr = r(xref)
        oa = r(out_h)

        def run():
            mu = xr.mean(axis=axes, keepdims=True)
            np.subtract(xr, mu, out=xhat)
            np.multiply(xhat, xhat, out=sq)
            var = sq.sum(axis=axes) / red_count
            mean = mu.reshape(-1)
            unbiased = var * nred / max(nred - 1, 1)
            m = mod.momentum
            mod.set_buffer("running_mean",
                           (1 - m) * mod.running_mean
                           + m * mean.astype(np.float32))
            mod.set_buffer("running_var",
                           (1 - m) * mod.running_var
                           + m * unbiased.astype(np.float32))
            mod.set_buffer("num_batches_tracked", mod.num_batches_tracked + 1)
            inv_std = 1.0 / np.sqrt(var.reshape(shape) + mod.eps)
            np.multiply(xhat, inv_std, out=xhat)
            np.multiply(xhat, wdata.reshape(shape), out=oa)
            np.add(oa, bdata.reshape(shape), out=oa)
            inv_cell[0] = inv_std
        return run

    ctx.pb.emit(factory, [xref, out_h])
    ctx.vals[id(rec.out)] = out_h
    ctx.aux[id(rec.out)] = inv_cell


def fwd_relu(ctx: Build, rec: Record) -> None:
    """Emit ReLU forward and stash the positive mask for the backward."""
    a = rec.parents[0]
    out_h = ctx.pb.alloc(rec.out.data.shape, rec.out.data.dtype, "relu.out")
    mask_h = ctx.pb.alloc(rec.out.data.shape, np.bool_, "relu.mask")
    pend = ctx.pending_fusion.pop(id(a), None)
    if pend is not None:
        # Fused bias-add/residual-add -> ReLU: the add lands straight in
        # the ReLU output buffer, the mask is taken there, and the
        # rectification happens in place — one buffer and one pass fewer,
        # same values (elementwise, no cross-element reads).
        ar = ctx.val(pend.parents[0])
        br = ctx.val(pend.parents[1])

        def factory(r):
            aa, bb = r(ar), r(br)
            oa, mk = r(out_h), r(mask_h)

            def run():
                np.add(aa, bb, out=oa)
                np.greater(oa, 0, out=mk)
                np.multiply(oa, mk, out=oa)
            return run

        ctx.pb.emit(factory, [ar, br, out_h, mask_h])
        ctx.vals[id(pend.out)] = _POISON
        ctx.fused_fwd += 1
    else:
        xref = ctx.val(a)

        def factory(r):
            xr = r(xref)
            oa, mk = r(out_h), r(mask_h)

            def run():
                np.greater(xr, 0, out=mk)
                np.multiply(xr, mk, out=oa)
            return run

        ctx.pb.emit(factory, [xref, out_h, mask_h])
    ctx.vals[id(rec.out)] = out_h
    ctx.aux[id(rec.out)] = mask_h


def fwd_add(ctx: Build, rec: Record) -> None:
    """Emit elementwise add, fusing into the consumer ReLU when it is sole."""
    cons = ctx.consumer_recs.get(id(rec.out), ())
    if len(cons) == 1 and cons[0].op == "relu" and rec.out.requires_grad:
        ctx.pending_fusion[id(rec.out)] = rec
        return
    a, b = rec.parents
    ar, br = ctx.val(a), ctx.val(b)
    out_h = ctx.pb.alloc(rec.out.data.shape, rec.out.data.dtype, "add.out")

    def factory(r):
        aa, bb, oa = r(ar), r(br), r(out_h)
        return lambda: np.add(aa, bb, out=oa)

    ctx.pb.emit(factory, [ar, br, out_h])
    ctx.vals[id(rec.out)] = out_h


def fwd_mul(ctx: Build, rec: Record) -> None:
    """Emit elementwise (broadcasting) multiply."""
    a, b = rec.parents
    ar, br = ctx.val(a), ctx.val(b)
    out_h = ctx.pb.alloc(rec.out.data.shape, rec.out.data.dtype, "mul.out")

    def factory(r):
        aa, bb, oa = r(ar), r(br), r(out_h)
        return lambda: np.multiply(aa, bb, out=oa)

    ctx.pb.emit(factory, [ar, br, out_h])
    ctx.vals[id(rec.out)] = out_h


def fwd_matmul(ctx: Build, rec: Record) -> None:
    """Emit a 2-D matmul; higher ranks are unsupported."""
    a, b = rec.parents
    if a.data.ndim != 2 or b.data.ndim != 2:
        raise Unsupported("non-2d matmul")
    ar, br = ctx.val(a), ctx.val(b)
    out_h = ctx.pb.alloc(rec.out.data.shape, rec.out.data.dtype, "matmul.out")

    def factory(r):
        aa, bb, oa = r(ar), r(br), r(out_h)
        return lambda: np.matmul(aa, bb, out=oa)

    ctx.pb.emit(factory, [ar, br, out_h])
    ctx.vals[id(rec.out)] = out_h


def fwd_sum(ctx: Build, rec: Record) -> None:
    """Emit a reduction matching the recorded axis/keepdims."""
    f = rec.free
    axis, keepdims = f["axis"], f["keepdims"]
    xref = ctx.val(rec.parents[0])
    out_h = ctx.pb.alloc(rec.out.data.shape, rec.out.data.dtype, "sum.out")

    def factory(r):
        xr, oa = r(xref), r(out_h)
        return lambda: np.sum(xr, axis=axis, keepdims=keepdims, out=oa)

    ctx.pb.emit(factory, [xref, out_h])
    ctx.vals[id(rec.out)] = out_h


def fwd_reshape(ctx: Build, rec: Record) -> None:
    """Emit reshape as a no-copy arena view when possible, else a copy."""
    a = rec.parents[0]
    shape = rec.out.data.shape
    try:
        np.reshape(a.data, shape, copy=False)
    except ValueError:
        raise Unsupported("copying reshape") from None
    xref = ctx.val(a)

    def build(r):
        try:
            return np.reshape(r(xref), shape, copy=False)
        except ValueError:
            raise Unsupported("copying reshape at bind") from None

    ctx.vals[id(rec.out)] = View(_base_of(xref), build)


def fwd_transpose(ctx: Build, rec: Record) -> None:
    """Emit transpose as a strided view of the parent's buffer."""
    inv = rec.free["inv"]
    axes = tuple(int(i) for i in np.argsort(inv))
    xref = ctx.val(rec.parents[0])
    ctx.vals[id(rec.out)] = View(_base_of(xref),
                                 lambda r: r(xref).transpose(axes))


def fwd_getitem(ctx: Build, rec: Record) -> None:
    """Emit basic (slice) indexing as a view; fancy indexing is unsupported."""
    f = rec.free
    if not f["basic"]:
        raise Unsupported("fancy indexing")
    idx = f["idx"]
    xref = ctx.val(rec.parents[0])
    ctx.vals[id(rec.out)] = View(_base_of(xref), lambda r: r(xref)[idx])


def fwd_concatenate(ctx: Build, rec: Record) -> None:
    """Emit concatenate as per-part copies into one arena slot."""
    f = rec.free
    axis, offsets = f["axis"], f["offsets"]
    srcs = [ctx.val(t) for t in rec.parents]
    out_h = ctx.pb.alloc(rec.out.data.shape, rec.out.data.dtype, "concat.out")
    ndim = rec.out.data.ndim
    sls = []
    for lo, hi in zip(offsets[:-1], offsets[1:]):
        sl = [slice(None)] * ndim
        sl[axis] = slice(int(lo), int(hi))
        sls.append(tuple(sl))

    def factory(r):
        oa = r(out_h)
        pairs = [(oa[sl], r(src)) for sl, src in zip(sls, srcs)]

        def run():
            for dst, src in pairs:
                np.copyto(dst, src)
        return run

    ctx.pb.emit(factory, srcs + [out_h])
    ctx.vals[id(rec.out)] = out_h


def fwd_max_pool2d(ctx: Build, rec: Record) -> None:
    """Emit non-overlapping max-pool forward, keeping flat argmax indices."""
    f = rec.free
    n, c, h, w = f["n"], f["c"], f["h"], f["w"]
    ho, wo, k, s = f["ho"], f["wo"], f["k"], f["s"]
    ws = f["ws"]
    if s < k:
        raise Unsupported("overlapping max-pool")
    ctx.claim_slot(ws)
    xref = ctx.val(rec.parents[0])
    dtype = rec.out.data.dtype
    flat_h = ctx.pb.alloc((n, c, ho, wo, k, k), dtype, "maxpool.flat")
    arg_h = ctx.pb.alloc((n, c, ho, wo), np.intp, "maxpool.arg")
    out_h = ctx.pb.alloc(rec.out.data.shape, dtype, "maxpool.out")

    def factory(r):
        from numpy.lib.stride_tricks import sliding_window_view
        xr = r(xref)
        windows = sliding_window_view(xr, (k, k), axis=(2, 3))[:, :, ::s, ::s]
        flat6 = r(flat_h)
        flat = flat6.reshape(n, c, ho, wo, k * k)
        arg = r(arg_h)
        oa = r(out_h)

        def run():
            np.copyto(flat6, windows)
            np.argmax(flat, axis=-1, out=arg)
            tal = np.take_along_axis(flat, arg[..., None], axis=-1)
            np.copyto(oa, tal[..., 0])
        return run

    ctx.pb.emit(factory, [xref, flat_h, arg_h, out_h])
    ctx.vals[id(rec.out)] = out_h
    ctx.aux[id(rec.out)] = arg_h


def fwd_cross_entropy(ctx: Build, rec: Record) -> None:
    """Emit softmax cross-entropy (the loss root) into the scalar loss cell."""
    f = rec.free
    n = f["n"]
    logits = rec.parents[0]
    if ctx.lab_buf.shape != (n,):
        raise Unsupported("label shape mismatch")
    ctx.arange_n = np.arange(n)
    lshape = logits.data.shape
    ldtype = logits.data.dtype
    xref = ctx.val(logits)
    sh = ctx.pb.alloc(lshape, ldtype, "ce.shifted")
    e = ctx.pb.alloc(lshape, ldtype, "ce.exp")
    logp = ctx.pb.alloc(lshape, ldtype, "ce.logp")
    soft = ctx.pb.alloc(lshape, ldtype, "ce.soft")
    loss_cell = ctx.loss_cell
    lab = ctx.lab_buf
    ar = ctx.arange_n

    def factory(r):
        lg = r(xref)
        shv, ev, lp, sf = r(sh), r(e), r(logp), r(soft)

        def run():
            m = lg.max(axis=1, keepdims=True)
            np.subtract(lg, m, out=shv)
            np.exp(shv, out=ev)
            lse = np.log(ev.sum(axis=1, keepdims=True))
            np.subtract(shv, lse, out=lp)
            loss_cell[0] = float(np.asarray(-(lp[ar, lab].mean()),
                                            dtype=ldtype))
            np.exp(lp, out=sf)
        return run

    ctx.pb.emit(factory, [xref, sh, e, logp, soft])
    ctx.vals[id(rec.out)] = None
    ctx.aux[id(rec.out)] = soft


# ===================================================================== #
# backward emitters                                                     #
# ===================================================================== #

def bwd_cross_entropy(ctx: Build, rec: Record, g) -> None:
    """Emit the loss-root gradient (softmax minus one-hot, seed 1.0)."""
    # Root of the backward pass; the implicit seed is 1.0, so eager's
    # ``grad *= float(g) / n`` is exactly ``grad *= 1.0 / n``.
    f = rec.free
    n = f["n"]
    a = rec.parents[0]
    soft = ctx.aux[id(rec.out)]
    lab, ar = ctx.lab_buf, ctx.arange_n
    inv = 1.0 / n

    def make(r, out):
        sf = r(soft)

        def run():
            np.copyto(out, sf)
            out[ar, lab] -= 1.0
            np.multiply(out, inv, out=out)
        return run

    ctx.contrib_compute(a, a.data.shape, a.data.dtype, make, [soft],
                        "ce.dlogits")


def bwd_relu(ctx: Build, rec: Record, g) -> None:
    """Emit ReLU backward through the stashed mask (fused path included)."""
    a = rec.parents[0]
    mask_h = ctx.aux[id(rec.out)]

    def make(r, out):
        ga, mk = r(g), r(mask_h)
        return lambda: np.multiply(ga, mk, out=out)

    ctx.contrib_compute(a, rec.out.data.shape, rec.out.data.dtype, make,
                        [g, mask_h], "relu.dx")
    ctx.fused_bwd += 1


def _unbroadcast_contrib(ctx: Build, rec: Record, g, parent) -> None:
    """One side of add's backward: ``unbroadcast(g, parent.shape)``."""
    gshape = rec.out.data.shape
    pshape = parent.data.shape
    if gshape == pshape:
        ctx.contrib_view(parent, g, None, [g], "add.dx")
        return
    extra = len(gshape) - len(pshape)
    if extra > 0 and gshape[extra:] == pshape:
        axes = tuple(range(extra))

        def make(r, out):
            ga = r(g)
            return lambda: np.sum(ga, axis=axes, out=out)

        ctx.contrib_compute(parent, pshape, parent.data.dtype, make, [g],
                            "add.dbias")
        return
    raise Unsupported("unbroadcast with extent-1 axes")


def bwd_add(ctx: Build, rec: Record, g) -> None:
    """Emit add backward: route the gradient to both parents, unbroadcasting."""
    a, b = rec.parents
    _unbroadcast_contrib(ctx, rec, g, a)
    _unbroadcast_contrib(ctx, rec, g, b)


def bwd_mul(ctx: Build, rec: Record, g) -> None:
    """Emit multiply backward with eager's unbroadcast-sum discipline."""
    a, b = rec.parents
    gshape = rec.out.data.shape
    for this, other in ((a, b), (b, a)):
        if not this.requires_grad:
            continue
        if this.data.shape != gshape or other.data.shape not in ((), gshape):
            raise Unsupported("broadcasting mul backward")
        oref = ctx.val(other)

        def make(r, out, oref=oref):
            ga, ov = r(g), r(oref)
            return lambda: np.multiply(ga, ov, out=out)

        ctx.contrib_compute(this, this.data.shape, this.data.dtype, make,
                            [g, oref], "mul.dx")


def bwd_matmul(ctx: Build, rec: Record, g) -> None:
    """Emit 2-D matmul backward (g @ b.T and a.T @ g)."""
    a, b = rec.parents
    if a.data.ndim != 2 or b.data.ndim != 2:
        raise Unsupported("non-2d matmul backward")
    aref, bref = ctx.val(a), ctx.val(b)
    if a.requires_grad:
        def make_a(r, out):
            ga = r(g)
            bswap = np.swapaxes(r(bref), -1, -2)
            return lambda: np.matmul(ga, bswap, out=out)

        ctx.contrib_compute(a, a.data.shape, a.data.dtype, make_a,
                            [g, bref], "matmul.da")
    if b.requires_grad:
        def make_b(r, out):
            ga = r(g)
            aswap = np.swapaxes(r(aref), -1, -2)
            return lambda: np.matmul(aswap, ga, out=out)

        ctx.contrib_compute(b, b.data.shape, b.data.dtype, make_b,
                            [g, aref], "matmul.db")


def bwd_transpose(ctx: Build, rec: Record, g) -> None:
    """Emit transpose backward by inverting the recorded permutation."""
    a = rec.parents[0]
    inv = rec.free["inv"]
    view = View(_base_of(g), lambda r: r(g).transpose(inv))
    ctx.contrib_view(a, view, None, [g], "transpose.dx")


def bwd_reshape(ctx: Build, rec: Record, g) -> None:
    """Emit reshape backward as a reshape of the incoming gradient."""
    a = rec.parents[0]
    pshape = a.data.shape
    view = View(_base_of(g), lambda r: r(g).reshape(pshape))
    ctx.contrib_view(a, view, None, [g], "reshape.dx")


def bwd_sum(ctx: Build, rec: Record, g) -> None:
    """Emit sum backward by broadcasting the gradient over the reduced axes."""
    f = rec.free
    axis, keepdims = f["axis"], f["keepdims"]
    a = rec.parents[0]
    if a.data.dtype != rec.out.data.dtype:
        raise Unsupported("sum dtype change")
    pshape = a.data.shape

    def build(r):
        garr = np.asarray(r(g))
        if axis is not None and not keepdims:
            garr = np.expand_dims(garr, axis=axis)
        return np.broadcast_to(garr, pshape)

    ctx.contrib_view(a, View(_base_of(g), build), None, [g], "sum.dx")


def bwd_getitem(ctx: Build, rec: Record, g) -> None:
    """Emit slice backward: zero the parent gradient slot, then scatter."""
    f = rec.free
    if not f["basic"]:
        raise Unsupported("fancy indexing backward")
    idx = f["idx"]
    a = rec.parents[0]

    def make(r, out):
        ga = r(g)

        def run():
            out.fill(0)
            out[idx] = ga
        return run

    ctx.contrib_compute(a, a.data.shape, a.data.dtype, make, [g],
                        "getitem.dx")


def bwd_concatenate(ctx: Build, rec: Record, g) -> None:
    """Emit concatenate backward by splitting the gradient at the offsets."""
    f = rec.free
    axis, offsets = f["axis"], f["offsets"]
    ndim = rec.out.data.ndim
    for t, lo, hi in zip(rec.parents, offsets[:-1], offsets[1:]):
        if not t.requires_grad:
            continue
        sl = [slice(None)] * ndim
        sl[axis] = slice(int(lo), int(hi))
        sl = tuple(sl)
        view = View(_base_of(g), lambda r, sl=sl: r(g)[sl])
        ctx.contrib_view(t, view, None, [g], "concat.dx")


def bwd_conv2d(ctx: Build, rec: Record, g) -> None:
    """Emit Conv2d backward (bias sum, weight matmul, col2im input grad)."""
    f = rec.free
    ws = f["ws"]
    x, weight, bias = f["x"], f["weight"], f["bias"]
    n, ho, wo, out_c = f["n"], f["ho"], f["wo"], f["out_c"]
    kh, kw = f["kh"], f["kw"]
    stride, padding = f["stride"], f["padding"]
    cols, wmat, xp_shape = f["cols"], f["wmat"], f["xp_shape"]
    dtype = rec.out.data.dtype
    rows = n * ho * wo
    gmat_cell: list = []

    def prep(r):
        garr = r(g)
        try:
            # Same view-vs-copy decision as eager: both gradients are
            # C-contiguous (planned buffers mirror eager's fresh arrays),
            # so the reshape succeeds or fails identically.
            gmat_cell.append(np.reshape(garr.transpose(0, 2, 3, 1),
                                        (rows, out_c), copy=False))
            return None
        except ValueError:
            gmbuf = ws.buffer("conv2d.gmat", (rows, out_c), garr.dtype)
            gmat_cell.append(gmbuf)
            gt_view = gmbuf.reshape(n, ho, wo, out_c)
            return lambda: np.copyto(gt_view, garr.transpose(0, 2, 3, 1))

    ctx.pb.emit(prep, [g])

    if bias is not None and bias.requires_grad:
        def make_bias(r, out):
            return lambda: np.sum(gmat_cell[0], axis=0, out=out)

        ctx.contrib_compute(bias, bias.data.shape, dtype, make_bias, [g],
                            "conv.dbias")

    if weight.requires_grad:
        def make_w(r, out):
            o2 = out.reshape(out_c, -1)
            return lambda: np.matmul(gmat_cell[0].T, cols, out=o2)

        ctx.contrib_compute(weight, weight.data.shape, dtype, make_w, [g],
                            "conv.dw")

    if x.requires_grad:
        dcols = ws.buffer("conv2d.dcols", (rows, wmat.shape[1]), dtype)
        dx = ws.buffer("conv2d.dx", xp_shape, dtype, zero="always")
        from repro.nn.conv import _col2im_into

        def factory(r):
            def run():
                np.matmul(gmat_cell[0], wmat, out=dcols)
                dx[...] = 0
                _col2im_into(dcols, dx, kh, kw, stride, n, ho, wo)
            return run

        ctx.pb.emit(factory, [g])
        dxp = dx[:, :, padding:-padding, padding:-padding] if padding else dx
        ctx.contrib_view(x, dxp, "scratch", [], "conv.dx")


def bwd_batchnorm(ctx: Build, rec: Record, g) -> None:
    """Emit train-mode BatchNorm backward through the saved normalizer."""
    f = rec.free
    ws = f["ws"]
    a, w, b, x = f["a"], f["w"], f["b"], f["x"]
    axes, shape, nred = f["axes"], f["shape"], f["nred"]
    xhat = f["xhat"]
    dtype = rec.out.data.dtype
    scratch = ws.buffer("batchnorm.scratch", rec.out.data.shape, dtype)
    inv_cell = ctx.aux[id(rec.out)]

    if b.requires_grad:
        def make_b(r, out):
            ga = r(g)
            return lambda: np.sum(ga, axis=axes, out=out)

        ctx.contrib_compute(b, b.data.shape, dtype, make_b, [g], "bn.dbias")

    if w.requires_grad:
        def prep_w(r):
            ga = r(g)
            return lambda: np.multiply(ga, xhat, out=scratch)

        ctx.pb.emit(prep_w, [g])

        def make_w(r, out):
            return lambda: np.sum(scratch, axis=axes, out=out)

        ctx.contrib_compute(w, w.data.shape, dtype, make_w, [g], "bn.dw")

    if a.requires_grad:
        gx = ws.buffer("batchnorm.gx", rec.out.data.shape, dtype)
        wdata = w.data

        def factory(r):
            ga = r(g)

            def run():
                np.multiply(ga, wdata.reshape(shape), out=gx)
                gsum = gx.sum(axis=axes, keepdims=True)
                np.multiply(gx, xhat, out=scratch)
                gxhat_sum = scratch.sum(axis=axes, keepdims=True)
                np.subtract(gx, gsum / nred, out=gx)
                np.multiply(xhat, gxhat_sum, out=scratch)
                np.divide(scratch, nred, out=scratch)
                np.subtract(gx, scratch, out=gx)
                np.multiply(gx, inv_cell[0], out=gx)
            return run

        ctx.pb.emit(factory, [g])
        ctx.contrib_view(a, gx, "scratch", [], "bn.dx")


def bwd_max_pool2d(ctx: Build, rec: Record, g) -> None:
    """Emit max-pool backward scattering through the saved flat argmaxes."""
    f = rec.free
    n, c, h, w = f["n"], f["c"], f["h"], f["w"]
    ho, wo, k, s = f["ho"], f["wo"], f["k"], f["s"]
    ws = f["ws"]
    if s < k:
        raise Unsupported("overlapping max-pool backward")
    a = rec.parents[0]
    arg_h = ctx.aux[id(rec.out)]
    from repro.nn.pooling import _pool_flat_base
    if ws is not None:
        base = ws.cached("maxpool.base", (n, c, h, w, ho, wo, s),
                         lambda: _pool_flat_base(n, c, h, w, ho, wo, s))
    else:
        base = _pool_flat_base(n, c, h, w, ho, wo, s)

    def make(r, out):
        ga = r(g)
        arg = r(arg_h)
        flat_out = out.reshape(-1)

        def run():
            out.fill(0)
            ki, kj = np.divmod(arg, k)
            flat_idx = base + ki * w + kj
            flat_out[flat_idx.reshape(-1)] = np.ravel(ga)
        return run

    ctx.contrib_compute(a, a.data.shape, a.data.dtype, make, [g, arg_h],
                        "maxpool.dx")


FWD = {
    "conv2d": fwd_conv2d,
    "batchnorm": fwd_batchnorm,
    "relu": fwd_relu,
    "add": fwd_add,
    "mul": fwd_mul,
    "matmul": fwd_matmul,
    "sum": fwd_sum,
    "reshape": fwd_reshape,
    "transpose": fwd_transpose,
    "getitem": fwd_getitem,
    "concatenate": fwd_concatenate,
    "max_pool2d": fwd_max_pool2d,
    "cross_entropy": fwd_cross_entropy,
}

BWD = {
    "conv2d": bwd_conv2d,
    "batchnorm": bwd_batchnorm,
    "relu": bwd_relu,
    "add": bwd_add,
    "mul": bwd_mul,
    "matmul": bwd_matmul,
    "sum": bwd_sum,
    "reshape": bwd_reshape,
    "transpose": bwd_transpose,
    "getitem": bwd_getitem,
    "concatenate": bwd_concatenate,
    "max_pool2d": bwd_max_pool2d,
    "cross_entropy": bwd_cross_entropy,
}
