"""Trace-and-replay step compiler (DESIGN.md §15).

On the first training step for a ``(model, input-signature)`` pair the
compiler records the forward/backward tape that :meth:`Tensor.backward`
already materialises, topologically sorts it into a static schedule,
plans every intermediate buffer into one arena via linear-scan lifetime
analysis, and binds a flat list of zero-argument closures.  Subsequent
steps replay that list — no graph construction, no topological sort, and
zero per-op allocations for the planned intermediates — while producing
byte-identical results to the eager engine (asserted by the golden-state
tests).  Any graph shape the planner does not understand falls back to
the eager path automatically, per signature.
"""

from repro.tensor.compile.ir import Handle, PlanBuilder, Unsupported, View
from repro.tensor.compile.step import FALLBACK, StepCompiler, StepPlan

__all__ = ["Handle", "PlanBuilder", "Unsupported", "View",
           "FALLBACK", "StepCompiler", "StepPlan"]
