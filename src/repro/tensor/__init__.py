"""Reverse-mode automatic differentiation engine on NumPy arrays.

This package is the lowest substrate of the SPATL reproduction: a small,
fully tested autograd system in the style of PyTorch's eager mode.  Every
neural-network layer, optimizer, GNN, and PPO policy in the repository is
built on :class:`~repro.tensor.tensor.Tensor`.

The public surface:

- :class:`Tensor` — n-d array with gradient tracking.
- :func:`tensor` — construction helper.
- ``no_grad`` — context manager disabling graph construction.
- the functional ops in :mod:`repro.tensor.functional` (``relu``,
  ``softmax``, ``cross_entropy``, ...).
- :mod:`repro.tensor.workspace` — the scratch-buffer arena backing the
  optimized kernels (DESIGN.md §10).
- ``forbid_dtype`` — debug guard against silent dtype upcasts.
"""

from repro.tensor.tensor import (Tensor, tensor, no_grad, is_grad_enabled,
                                 forbid_dtype)
from repro.tensor import functional, workspace

__all__ = ["Tensor", "tensor", "no_grad", "is_grad_enabled", "forbid_dtype",
           "functional", "workspace"]
