"""Core reverse-mode autodiff ``Tensor``.

Design
------
Each :class:`Tensor` optionally records the operation that produced it as a
closure ``_backward`` plus the list of parent tensors ``_parents``.  Calling
:meth:`Tensor.backward` topologically sorts the DAG reachable from the output
and accumulates gradients into ``.grad`` (a plain ``np.ndarray``) of every
tensor with ``requires_grad=True``.

Broadcasting follows NumPy semantics; gradients of broadcast operands are
reduced back to the operand shape by :func:`unbroadcast`.

All floating point data is kept in ``float32`` by default (matching the
communication-cost accounting elsewhere in the repository, which assumes
4-byte parameters), but ``float64`` tensors are supported and used by the
gradient-checking tests.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Iterable, Sequence

import numpy as np

_DEFAULT_DTYPE = np.float32

_grad_state = threading.local()

# Profiler hook: when set, Tensor.backward times every node's closure and
# reports ``(op_name, seconds)``.  None (the default) keeps the walk on the
# original unconditional-call path — one local ``is None`` check per call.
_backward_op_hook: Callable[[str, float], None] | None = None
_op_name_cache: dict = {}

# Graph-capture hook: when set, every Tensor produced through ``_make`` is
# reported as ``(out, parents, backward)`` — including nodes created with
# ``requires_grad=False`` results, which the step compiler must see to
# detect per-step values it would otherwise bake in as constants.  None
# (the default) keeps op creation on the original path: one global
# ``is None`` check per op.
_graph_capture_hook: Callable[["Tensor", tuple, Callable], None] | None = None


def set_graph_capture_hook(hook):
    """Install (or clear, with ``None``) the op-creation capture hook.

    Returns the previously installed hook.  Used by
    :mod:`repro.tensor.compile` to record one training step's tape; not a
    public API for anything else.
    """
    global _graph_capture_hook
    previous = _graph_capture_hook
    _graph_capture_hook = hook
    return previous


def set_backward_op_hook(hook: Callable[[str, float], None] | None):
    """Install (or clear, with ``None``) the backward-op profiler hook.

    Returns the previously installed hook so profilers can nest/restore.
    Used by :class:`repro.obs.profiler.OpProfiler`; not a public API for
    anything else.
    """
    global _backward_op_hook
    previous = _backward_op_hook
    _backward_op_hook = hook
    return previous


def _backward_op_name(fn) -> str:
    """Derive an op name from a backward closure's qualname (cached).

    ``conv2d.<locals>.backward`` -> ``conv2d``;
    ``Tensor.__matmul__.<locals>.backward`` -> ``matmul``;
    ``_BatchNorm.forward.<locals>.backward`` -> ``batchnorm``.
    """
    code = getattr(fn, "__code__", None)
    name = _op_name_cache.get(code)
    if name is None:
        parts = getattr(fn, "__qualname__", "op").split(".<locals>")[0].split(".")
        name = parts[-1]
        if name == "forward" and len(parts) > 1:
            name = parts[-2]
        name = name.strip("_").lower()
        _op_name_cache[code] = name
    return name


def is_grad_enabled() -> bool:
    """Return whether new operations record the autodiff graph."""
    return getattr(_grad_state, "enabled", True)


# Debug guard against silent dtype upcasts on the hot path (see
# forbid_dtype).  None (the default) keeps tensor creation on the
# original path — one global ``is None`` check.
_forbidden_dtype: np.dtype | None = None


@contextlib.contextmanager
def forbid_dtype(dtype=np.float64):
    """Debug assertion: raise if a Tensor or gradient of ``dtype`` appears.

    The float32 training path can silently upcast to float64 through a
    stray NumPy scalar (``np.float64(2) * x`` promotes), doubling memory
    traffic without changing results enough to notice.  Inside this
    context every ``Tensor`` construction and every gradient entering
    ``Tensor._accumulate`` asserts against the forbidden dtype — the
    surface through which any upcast must pass to affect training.
    Intentional float64 use (server-side aggregation, gradcheck tests,
    ``SGD._global_grad_norm``) happens on plain arrays outside that
    surface and is unaffected.
    """
    global _forbidden_dtype
    prev = _forbidden_dtype
    _forbidden_dtype = np.dtype(dtype)
    try:
        yield
    finally:
        _forbidden_dtype = prev


@contextlib.contextmanager
def no_grad():
    """Context manager: operations inside do not build the autodiff graph.

    Used for inference, parameter updates inside optimizers, and the
    communication codec (which must not retain graphs across FL rounds).
    """
    prev = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = prev


def _as_array(data, dtype=None) -> np.ndarray:
    if isinstance(data, Tensor):
        data = data.data
    arr = np.asarray(data)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype == np.float64:
        arr = arr.astype(_DEFAULT_DTYPE)
    elif arr.dtype.kind not in "fiub":
        raise TypeError(f"unsupported dtype for Tensor: {arr.dtype}")
    return arr


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape of a broadcast result) back to ``shape``.

    Sums over the leading dimensions that were added by broadcasting and
    over any axis where the original extent was 1.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from extent 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """N-dimensional array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Array-like payload.  Copied only if dtype conversion is required.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100.0  # make np_scalar * Tensor dispatch to us

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        self.data: np.ndarray = _as_array(data, dtype)
        if _forbidden_dtype is not None and self.data.dtype == _forbidden_dtype:
            raise AssertionError(
                f"Tensor created with forbidden dtype {_forbidden_dtype} "
                f"(shape {self.data.shape}) inside forbid_dtype()")
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name: str | None = None

    # ------------------------------------------------------------------ #
    # basic properties                                                     #
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a view sharing data but cut from the autodiff graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad,
                      dtype=self.data.dtype)

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=self.requires_grad,
                      dtype=dtype)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph plumbing                                                       #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a result tensor, attaching graph edges if grad is enabled."""
        req = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False, dtype=data.dtype)
        out.requires_grad = req
        if req:
            out._parents = tuple(parents)
            out._backward = backward
        if _graph_capture_hook is not None:
            _graph_capture_hook(out, tuple(parents), backward)
        return out

    def _accumulate(self, grad: np.ndarray,
                    donate: str | None = None) -> None:
        """Add ``grad`` into ``self.grad``.

        ``donate`` lets a backward closure transfer buffer ownership and
        skip the defensive first-accumulation copy (DESIGN.md §10):

        - ``"fresh"``   — the caller just allocated ``grad`` (or holds the
          only reference) and will never read or write it again;
        - ``"scratch"`` — ``grad`` aliases per-owner workspace memory that
          stays valid until the owner's next forward.  Accepted only for
          non-leaf nodes, whose ``.grad`` the engine consumes and releases
          within the same backward pass; leaves (parameters, inputs) keep
          the copy so user-visible ``.grad`` never aliases an arena.

        Donation never changes values — only whether a copy is taken.
        """
        if not self.requires_grad:
            return
        if _forbidden_dtype is not None \
                and np.asarray(grad).dtype == _forbidden_dtype:
            raise AssertionError(
                f"gradient with forbidden dtype {_forbidden_dtype} for "
                f"tensor of shape {self.shape} inside forbid_dtype()")
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            if donate == "fresh" or (donate == "scratch"
                                     and self._backward is not None):
                self.grad = grad
            else:
                # Own the buffer: closures may hand us views of arrays
                # they reuse.
                self.grad = np.array(grad)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to the implicit seed of 1.0 (scalar outputs only).
        Convention: every op's ``_backward`` closure receives the node's
        fully-accumulated output gradient and calls ``parent._accumulate``
        on each input.  ``backward()`` walks the DAG in reverse topological
        order, so each node's gradient is complete before its closure runs.
        """
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() on non-scalar tensor requires an explicit gradient")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.shape:
                raise ValueError(f"seed gradient shape {grad.shape} != tensor shape {self.shape}")

        # Topological order via iterative DFS (recursion-free: deep graphs
        # from many-layer models would overflow Python's stack).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))

        self._accumulate(grad)
        hook = _backward_op_hook
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                if hook is None:
                    node._backward(node.grad)
                else:
                    t0 = time.perf_counter()
                    node._backward(node.grad)
                    hook(_backward_op_name(node._backward),
                         time.perf_counter() - t0)
                # Release graph edges and intermediate grads so large conv
                # activations are collectible as soon as they are consumed.
                if node is not self:
                    node._backward = None
                    node._parents = ()
                    node.grad = None

    # ------------------------------------------------------------------ #
    # arithmetic                                                           #
    # ------------------------------------------------------------------ #
    def _coerce(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data
        a, b = self, other

        def backward(g):
            a._accumulate(unbroadcast(g, a.shape))
            b._accumulate(unbroadcast(g, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        out_data = self.data - other.data
        a, b = self, other

        def backward(g):
            a._accumulate(unbroadcast(g, a.shape))
            b._accumulate(unbroadcast(-g, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    def __rsub__(self, other):
        return self._coerce(other).__sub__(self)

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data
        a, b = self, other

        def backward(g):
            a._accumulate(unbroadcast(g * b.data, a.shape), donate="fresh")
            b._accumulate(unbroadcast(g * a.data, b.shape), donate="fresh")

        return Tensor._make(out_data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data
        a, b = self, other

        def backward(g):
            a._accumulate(unbroadcast(g / b.data, a.shape), donate="fresh")
            b._accumulate(unbroadcast(-g * a.data / (b.data * b.data), b.shape),
                          donate="fresh")

        return Tensor._make(out_data, (a, b), backward)

    def __rtruediv__(self, other):
        return self._coerce(other).__truediv__(self)

    def __neg__(self):
        a = self

        def backward(g):
            a._accumulate(-g, donate="fresh")

        return Tensor._make(-self.data, (a,), backward)

    def __pow__(self, exponent: float):
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        a = self
        out_data = self.data ** exponent

        def backward(g):
            a._accumulate(g * exponent * self.data ** (exponent - 1),
                          donate="fresh")

        return Tensor._make(out_data, (a,), backward)

    def __matmul__(self, other):
        other = self._coerce(other)
        a, b = self, other
        out_data = a.data @ b.data

        def backward(g):
            ad, bd = a.data, b.data
            if a.requires_grad:
                if ad.ndim == 1 and bd.ndim == 1:          # (k,)@(k,) -> ()
                    ga = g * bd
                elif ad.ndim == 1:                          # (k,)@(...,k,n) -> (...,n)
                    ga = (bd @ g[..., None])[..., 0] if bd.ndim > 2 else bd @ g
                elif bd.ndim == 1:                          # (...,m,k)@(k,) -> (...,m)
                    ga = g[..., None] * bd
                else:                                       # batched mat-mat
                    ga = g @ np.swapaxes(bd, -1, -2)
                a._accumulate(unbroadcast(np.asarray(ga), a.shape),
                              donate="fresh")
            if b.requires_grad:
                if ad.ndim == 1 and bd.ndim == 1:
                    gb = g * ad
                elif ad.ndim == 1:                          # gb: (...,k,n)
                    gb = ad[:, None] * g[..., None, :]
                elif bd.ndim == 1:                          # gb: (k,)
                    gb = np.tensordot(ad, g, axes=(tuple(range(ad.ndim - 1)),
                                                   tuple(range(g.ndim))))
                else:
                    gb = np.swapaxes(ad, -1, -2) @ g
                b._accumulate(unbroadcast(np.asarray(gb), b.shape),
                              donate="fresh")

        return Tensor._make(out_data, (a, b), backward)

    # ------------------------------------------------------------------ #
    # reductions                                                           #
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False):
        a = self
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            g = np.asarray(g)
            if axis is None:
                grad = np.broadcast_to(g, a.shape)
            else:
                if not keepdims:
                    g = np.expand_dims(g, axis=axis)
                grad = np.broadcast_to(g, a.shape)
            a._accumulate(grad.astype(a.dtype, copy=False))

        return Tensor._make(np.asarray(out_data), (a,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            n = self.size
        elif isinstance(axis, tuple):
            n = int(np.prod([self.shape[ax] for ax in axis]))
        else:
            n = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def var(self, axis=None, keepdims: bool = False):
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) * (self - mu)
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        a = self
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            g_arr = np.asarray(g)
            if axis is None:
                mask = (a.data == a.data.max())
                contrib = mask / mask.sum()
                a._accumulate((g_arr * contrib).astype(a.dtype, copy=False),
                              donate="fresh")
            else:
                expanded = a.data.max(axis=axis, keepdims=True)
                mask = (a.data == expanded)
                counts = mask.sum(axis=axis, keepdims=True)
                gg = g_arr if keepdims else np.expand_dims(g_arr, axis=axis)
                a._accumulate((mask * gg / counts).astype(a.dtype, copy=False),
                              donate="fresh")

        return Tensor._make(np.asarray(out_data), (a,), backward)

    # ------------------------------------------------------------------ #
    # shape ops                                                            #
    # ------------------------------------------------------------------ #
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        out_data = self.data.reshape(shape)

        def backward(g):
            a._accumulate(g.reshape(a.shape))

        return Tensor._make(out_data, (a,), backward)

    def flatten_from(self, start_dim: int = 1):
        """Flatten dims from ``start_dim`` on (like ``torch.flatten``)."""
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes):
        a = self
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inv = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(g):
            a._accumulate(g.transpose(inv))

        return Tensor._make(out_data, (a,), backward)

    def __getitem__(self, idx):
        a = self
        out_data = self.data[idx]
        # Basic (slice/int) indexing selects each element at most once, so
        # the backward scatter is plain assignment into zeros — equal to
        # np.add.at but without its slow buffered-iteration path.  Fancy
        # (array) indexing may repeat elements and keeps the add-scatter.
        items = idx if isinstance(idx, tuple) else (idx,)
        basic = all(isinstance(i, (int, np.integer, slice)) or i is Ellipsis
                    or i is None for i in items)

        def backward(g):
            full = np.zeros_like(a.data)
            if basic:
                full[idx] = g
            else:
                np.add.at(full, idx, g)
            a._accumulate(full, donate="fresh")

        return Tensor._make(np.asarray(out_data), (a,), backward)

    def pad2d(self, pad: int):
        """Zero-pad the last two (spatial) dims symmetrically by ``pad``."""
        if pad == 0:
            return self
        a = self
        width = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        out_data = np.pad(self.data, width)

        def backward(g):
            sl = tuple([slice(None)] * (a.ndim - 2) + [slice(pad, -pad), slice(pad, -pad)])
            a._accumulate(g[sl])

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities                                           #
    # ------------------------------------------------------------------ #
    def exp(self):
        a = self
        out_data = np.exp(self.data)

        def backward(g):
            a._accumulate(g * out_data, donate="fresh")

        return Tensor._make(out_data, (a,), backward)

    def log(self):
        a = self
        out_data = np.log(self.data)

        def backward(g):
            a._accumulate(g / a.data, donate="fresh")

        return Tensor._make(out_data, (a,), backward)

    def sqrt(self):
        a = self
        out_data = np.sqrt(self.data)

        def backward(g):
            a._accumulate(g * 0.5 / out_data, donate="fresh")

        return Tensor._make(out_data, (a,), backward)

    def tanh(self):
        a = self
        out_data = np.tanh(self.data)

        def backward(g):
            a._accumulate(g * (1.0 - out_data * out_data), donate="fresh")

        return Tensor._make(out_data, (a,), backward)

    def sigmoid(self):
        a = self
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            a._accumulate(g * out_data * (1.0 - out_data), donate="fresh")

        return Tensor._make(out_data, (a,), backward)

    def relu(self):
        a = self
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g):
            a._accumulate(g * mask, donate="fresh")

        return Tensor._make(out_data, (a,), backward)

    def clip(self, lo: float, hi: float):
        a = self
        out_data = np.clip(self.data, lo, hi)
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(g):
            a._accumulate(g * mask, donate="fresh")

        return Tensor._make(out_data, (a,), backward)

    # comparison helpers (no grad, return plain bool arrays)
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other


def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    """Construct a :class:`Tensor` (convenience mirroring ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    ts = list(tensors)
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        for t, lo, hi in zip(ts, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(lo, hi)
            t._accumulate(g[tuple(sl)])

    return Tensor._make(out_data, tuple(ts), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    ts = list(tensors)
    out_data = np.stack([t.data for t in ts], axis=axis)

    def backward(g):
        for i, t in enumerate(ts):
            sl = [slice(None)] * g.ndim
            sl[axis] = i
            t._accumulate(g[tuple(sl)])

    return Tensor._make(out_data, tuple(ts), backward)
