"""Shape/dtype-keyed scratch-buffer arena for the training hot path.

Profiling the serial FL round (``obs.profiler`` + cProfile) shows the
kernels spend a large share of their time re-allocating the same
megabyte-scale temporaries every step: im2col patch matrices, padded
inputs, ``_col2im`` scatter targets, batch-norm intermediates, SGD
update scratch.  The arena gives each *owner* (a layer or optimizer
instance) a :class:`WorkspaceSlot` holding named buffers keyed by
``(tag, shape, dtype)``; requesting the same buffer again returns the
cached array instead of allocating.

Contract
--------
A workspace buffer is **transient scratch**: it is valid from the call
that requested it until the owner's *next* request for the same
``(tag, shape, dtype)``.  The kernels rely on the engine's execution
discipline — a layer is forwarded at most once before its backward runs
(forward -> backward -> step, per batch) — so buffers captured by a
backward closure are never clobbered by a second forward of the same
layer.  Anything that must outlive the op (outputs entering the autodiff
graph, gradients handed to ``Tensor._accumulate``, which copies on first
accumulation) is freshly allocated or copied as before; only
intermediates live in the arena.  See DESIGN.md §10.

Slots are held in a ``WeakValueDictionary``-style per-owner registry
(:func:`slot_for`), so buffers are collected with their owner.  Hit/miss
and bytes-saved counts are kept per tag and exported through
``obs.metrics`` via :func:`publish_metrics`; ``obs.profiler`` joins them
onto its hotspot table.

Everything here is process-local.  The process-pool executor forks
workers, each of which grows its own arena — nothing is shared or
pickled.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["WorkspaceSlot", "slot_for", "stats_snapshot", "tag_stats",
           "reset", "publish_metrics"]


@dataclass
class TagStat:
    """Arena traffic for one buffer tag (e.g. ``conv2d.cols``)."""

    hits: int = 0
    misses: int = 0
    bytes_alloc: int = 0   # bytes newly allocated on misses
    bytes_saved: int = 0   # bytes served from cache on hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# tag -> TagStat, aggregated over every slot in this process.
_stats: dict[str, TagStat] = {}

# owner -> WorkspaceSlot; weak keys so a slot dies with its layer/optimizer.
_slots: "weakref.WeakKeyDictionary[Any, WorkspaceSlot]" = weakref.WeakKeyDictionary()


def _stat(tag: str) -> TagStat:
    st = _stats.get(tag)
    if st is None:
        st = _stats[tag] = TagStat()
    return st


class WorkspaceSlot:
    """Per-owner cache of scratch buffers and derived objects.

    Buffers are keyed by ``(tag, shape, dtype)``; a layer that sees a new
    input shape (e.g. a different eval batch size) simply grows a second
    buffer under the same tag.  Nothing is ever evicted — the working set
    is bounded by the distinct shapes an owner processes, which for FL
    training is the train batch shape plus at most one eval batch shape.
    """

    __slots__ = ("_bufs",)

    def __init__(self):
        self._bufs: dict[tuple, Any] = {}

    def buffer(self, tag: str, shape: tuple[int, ...], dtype,
               zero: str = "never") -> np.ndarray:
        """Return a cached ndarray of ``shape``/``dtype`` for ``tag``.

        ``zero`` controls fill semantics:

        - ``"never"``  — contents are whatever the last user left (caller
          overwrites every element);
        - ``"alloc"``  — zero-filled only when first allocated (callers
          that always write the same sub-region and need the rest to stay
          zero, e.g. the padded-input border);
        - ``"always"`` — zeroed on every request (scatter-add targets).
        """
        dtype = np.dtype(dtype)
        key = (tag, shape, dtype)
        buf = self._bufs.get(key)
        st = _stat(tag)
        if buf is None:
            buf = np.zeros(shape, dtype) if zero in ("alloc", "always") \
                else np.empty(shape, dtype)
            self._bufs[key] = buf
            st.misses += 1
            st.bytes_alloc += buf.nbytes
        else:
            if zero == "always":
                buf[...] = 0
            st.hits += 1
            st.bytes_saved += buf.nbytes
        return buf

    def cached(self, tag: str, key: tuple, builder: Callable[[], Any]) -> Any:
        """Memoize a derived object (a strided view over a cached buffer,
        a precomputed index array) under ``(tag, key)``.

        Views built over :meth:`buffer` arrays stay valid because buffers
        are never reallocated for a given key.
        """
        full = (tag, key)
        obj = self._bufs.get(full)
        st = _stat(tag)
        if obj is None:
            obj = self._bufs[full] = builder()
            st.misses += 1
            if isinstance(obj, np.ndarray):
                st.bytes_alloc += obj.nbytes
        else:
            st.hits += 1
            if isinstance(obj, np.ndarray):
                st.bytes_saved += obj.nbytes
        return obj


def slot_for(owner: Any) -> WorkspaceSlot:
    """The (lazily created) :class:`WorkspaceSlot` of ``owner``.

    ``owner`` must be weak-referenceable (any ordinary object; layers and
    optimizers qualify).  The slot — and every buffer in it — is released
    when the owner is garbage-collected.
    """
    slot = _slots.get(owner)
    if slot is None:
        slot = _slots[owner] = WorkspaceSlot()
    return slot


def tag_stats(tag: str) -> TagStat:
    """The live :class:`TagStat` for ``tag`` (created empty if missing)."""
    return _stat(tag)


def stats_snapshot() -> dict[str, tuple[int, int, int, int]]:
    """``{tag: (hits, misses, bytes_alloc, bytes_saved)}`` snapshot."""
    return {tag: (s.hits, s.misses, s.bytes_alloc, s.bytes_saved)
            for tag, s in _stats.items()}


def reset() -> None:
    """Drop every slot and zero the counters (test isolation)."""
    _slots.clear()
    _stats.clear()


def publish_metrics(registry=None) -> None:
    """Export per-tag counters into an ``obs.metrics`` registry.

    Counter names: ``workspace.hits``, ``workspace.misses``,
    ``workspace.bytes_saved``, each labelled ``tag=<tag>``.  Values are
    assigned absolutely (the underlying stats are monotonic), so repeated
    publishes are idempotent and survive registry swaps.
    """
    if registry is None:
        from repro.obs.metrics import get_registry
        registry = get_registry()
    for tag, st in _stats.items():
        registry.counter("workspace.hits", tag=tag).value = float(st.hits)
        registry.counter("workspace.misses", tag=tag).value = float(st.misses)
        registry.counter("workspace.bytes_saved", tag=tag).value = float(st.bytes_saved)
