"""Named metric instruments: counters, gauges, histograms with labels.

A :class:`MetricsRegistry` hands out get-or-create instruments keyed by
``(name, labels)`` — the Prometheus data model, scaled down to an
in-process simulator.  Registries snapshot to plain JSON-able dicts and
merge, so per-worker (or per-algorithm) registries can be combined into
one run-level view.

A process-global default registry always exists (instruments are cheap:
one dict lookup and an integer add per update), so call sites like the
fault-tolerance counters in :mod:`repro.fl.resilience` never need a
feature flag.  Swap or reset it with :func:`set_registry`.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Any


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, bytes, failures...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """Last-observed value (current round, live accuracy...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = float("nan")

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Cumulative-bucket histogram plus count/sum/min/max.

    ``bounds`` are upper bucket edges; observations above the last bound
    land in the implicit +inf bucket.  The default bounds are exponential
    from 1ms to ~100s — suitable for wall-time observations, the dominant
    use here.
    """

    DEFAULT_BOUNDS = tuple(0.001 * 4 ** i for i in range(9))

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] | None = None):
        self.bounds = tuple(bounds) if bounds is not None else self.DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")

    def summary(self) -> dict[str, Any]:
        """JSON-able view: count, sum, min/max/mean, per-bucket counts."""
        return {"count": self.count, "sum": self.total,
                "min": None if self.count == 0 else self.min,
                "max": None if self.count == 0 else self.max,
                "mean": None if self.count == 0 else self.mean,
                "bounds": list(self.bounds),
                "buckets": list(self.bucket_counts)}


class MetricsRegistry:
    """Get-or-create store of instruments keyed by name + labels."""

    def __init__(self):
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # ------------------------------------------------------- instruments
    def counter(self, name: str, **labels: Any) -> Counter:
        """The :class:`Counter` for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The :class:`Gauge` for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, bounds: tuple[float, ...] | None = None,
                  **labels: Any) -> Histogram:
        """The :class:`Histogram` for ``(name, labels)``.

        ``bounds`` only takes effect at creation; later callers get the
        existing instrument regardless of the bounds they pass.
        """
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(bounds)
        return inst

    # ---------------------------------------------------- snapshot/merge
    def snapshot(self) -> dict[str, Any]:
        """Flat JSON-able dump: ``name{label=v,...}`` keys per family."""
        return {
            "counters": {_render_key(n, l): c.value
                         for (n, l), c in sorted(self._counters.items())},
            "gauges": {_render_key(n, l): g.value
                       for (n, l), g in sorted(self._gauges.items())},
            "histograms": {_render_key(n, l): h.summary()
                           for (n, l), h in sorted(self._histograms.items())},
        }

    def to_json(self) -> str:
        """:meth:`snapshot` rendered as a JSON string."""
        return json.dumps(self.snapshot())

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters add; gauges take the other's value when it has one;
        histograms require matching bounds and add component-wise.
        """
        for key, counter in other._counters.items():
            name, labels = key
            self.counter(name, **dict(labels)).value += counter.value
        for key, gauge in other._gauges.items():
            if not math.isnan(gauge.value):
                name, labels = key
                self.gauge(name, **dict(labels)).value = gauge.value
        for key, hist in other._histograms.items():
            name, labels = key
            mine = self.histogram(name, bounds=hist.bounds, **dict(labels))
            if mine.bounds != hist.bounds:
                raise ValueError(f"histogram bound mismatch for {name!r}")
            mine.count += hist.count
            mine.total += hist.total
            mine.min = min(mine.min, hist.min)
            mine.max = max(mine.max, hist.max)
            for i, c in enumerate(hist.bucket_counts):
                mine.bucket_counts[i] += c

    def reset(self) -> None:
        """Drop every instrument (tests and fresh runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size, in bytes.

    Prefers ``VmHWM`` from ``/proc/self/status`` (Linux): unlike
    ``ru_maxrss``, it belongs to the current address space and so resets
    on ``exec`` — a freshly spawned subprocess reports *its own* peak,
    not the high-water mark inherited from a large parent.  Falls back
    to ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` (kilobytes on
    Linux, bytes on macOS) and returns 0 where neither exists (Windows),
    so callers can report it unconditionally.  The value is still a
    high-water mark over the process lifetime: per-phase measurements
    need subprocess isolation (see ``benchmarks/bench_scale.py``).
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover
        pass
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    import sys
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def blas_env() -> dict:
    """The BLAS/threadpool environment a numerical benchmark ran under.

    BENCH_*.json trajectories are only comparable when the linear-algebra
    backend and its thread budget match, so every ``bench_*.py`` record
    embeds this snapshot: the detected BLAS implementation (from
    ``numpy.show_config``), the ``*_NUM_THREADS`` knobs that cap its
    threadpools, and the machine's CPU count.  Unset knobs record as
    ``None`` (backend default: all cores).
    """
    import os

    import numpy as np

    backend = "unknown"
    try:
        cfg = np.show_config(mode="dicts")
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        backend = blas.get("name", "unknown")
        version = blas.get("version")
        if version:
            backend = f"{backend} {version}"
    except (TypeError, AttributeError):  # pragma: no cover - numpy < 1.25
        pass
    threads = {var: os.environ.get(var)
               for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                           "MKL_NUM_THREADS")}
    return {"blas": backend, "cpu_count": os.cpu_count(), **threads}


def observe_peak_rss(registry: "MetricsRegistry | None" = None) -> int:
    """Record :func:`peak_rss_bytes` into the ``proc.peak_rss_bytes``
    gauge (default registry unless one is given); returns the value."""
    peak = peak_rss_bytes()
    (registry or get_registry()).gauge("proc.peak_rss_bytes").set(peak)
    return peak


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous
