"""Human-readable views over traces and profiles.

Reuses :func:`repro.utils.logging.render_table` so observability output
matches the repo's paper-table style: a per-round phase timeline from a
:class:`~repro.obs.trace.Tracer` and a hotspot table from an
:class:`~repro.obs.profiler.OpProfiler`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.utils.logging import render_table

# Server-loop phase spans, in protocol order (DESIGN.md §8).
ROUND_PHASES = ("sample", "download", "local_update", "upload", "aggregate",
                "evaluate")


def span_total_seconds(tracer, name: str) -> float:
    """Summed duration of every finished span called ``name``."""
    return sum(s.duration for s in tracer.spans if s.name == name)


def span_attr_total(tracer, name: str, attr: str) -> float:
    """Sum an attribute (e.g. ``bytes``) over spans called ``name``."""
    return sum(s.attrs.get(attr, 0) for s in tracer.spans if s.name == name)


def round_timeline_table(tracer, phases: tuple[str, ...] = ROUND_PHASES) -> str:
    """Per-round table of seconds spent in each server-loop phase.

    Rows are rounds (from each span's ``round`` attribute); columns are
    the protocol phases plus the enclosing ``round`` span's total, so gaps
    between the phase sum and the total expose unattributed time.
    """
    per_round: dict[int, dict[str, float]] = defaultdict(lambda: defaultdict(float))
    totals: dict[int, float] = defaultdict(float)
    for s in tracer.spans:
        r = s.attrs.get("round")
        if r is None:
            continue
        r = int(r)
        if s.name == "round":
            totals[r] += s.duration
        elif s.name in phases:
            per_round[r][s.name] += s.duration
    rounds = sorted(set(per_round) | set(totals))
    headers = ["round"] + [f"{p} s" for p in phases] + ["total s"]
    rows = [[r] + [per_round[r].get(p, 0.0) for p in phases] + [totals.get(r, 0.0)]
            for r in rounds]
    return render_table(headers, rows, title="Round timeline")


def hotspot_table(profiler, n: int = 10) -> str:
    """Top-``n`` ops by cumulative wall time, with FLOPs and throughput.

    When the profiler exposes :meth:`~repro.obs.profiler.OpProfiler.
    workspace_stats`, two arena columns are joined on: the workspace
    hit rate and megabytes of allocation served from cache, aggregated
    over the op's buffer tags (``conv2d.cols`` etc. fold into the
    ``conv2d`` rows).  Ops without arena traffic show ``-``.
    """
    headers = ["op", "calls", "total s", "mean ms", "GFLOP", "GFLOP/s",
               "ws hit%", "ws MB saved"]
    by_prefix: dict[str, list[int]] = defaultdict(lambda: [0, 0, 0, 0])
    ws_stats = getattr(profiler, "workspace_stats", None)
    if ws_stats is not None:
        for tag, delta in ws_stats().items():
            agg = by_prefix[tag.split(".")[0]]
            for i, v in enumerate(delta):
                agg[i] += v
    rows = []
    for op, stat in profiler.top_hotspots(n):
        mean_ms = stat.seconds / stat.calls * 1e3 if stat.calls else 0.0
        row = [op, stat.calls, stat.seconds, mean_ms,
               stat.flops / 1e9, stat.gflops_per_s]
        agg = by_prefix.get(op.split(".")[0])
        if agg:
            hits, misses, _, bytes_saved = agg
            rate = 100.0 * hits / (hits + misses) if hits + misses else 0.0
            row += [rate, bytes_saved / 1e6]
        else:
            row += ["-", "-"]
        rows.append(row)
    return render_table(headers, rows, title=f"Top {len(rows)} hotspots")


def codec_byte_totals(tracer) -> dict[str, float]:
    """Bytes that crossed the codec, per direction of the span taxonomy.

    Returns the summed ``bytes`` attributes of the ``serialize`` and
    ``deserialize`` spans — by construction equal to the
    :class:`~repro.fl.comm.CommLedger` totals of a traced run, which the
    CI trace-smoke step asserts.
    """
    return {"serialize": span_attr_total(tracer, "serialize", "bytes"),
            "deserialize": span_attr_total(tracer, "deserialize", "bytes")}
