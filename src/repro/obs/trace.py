"""Context-managed tracing spans with JSONL and Chrome-trace export.

A :class:`Span` measures the wall time of one ``with`` block and carries
arbitrary key/value attributes (round index, client id, byte counts...).
Spans nest: a :class:`Tracer` keeps a stack so each finished span knows
its depth and parent, which is enough to reconstruct the round timeline
and to render a flame-graph view in ``chrome://tracing`` / Perfetto.

Codec spans (``serialize`` / ``deserialize``) carry a small attribute
taxonomy the reports rely on: ``bytes`` is always the exact wire size
(summing it per direction equals the ``CommLedger`` totals, see
DESIGN.md §8) and ``entries`` the state-dict entry count.  Since the
fast transport layer (DESIGN.md §11) three markers describe *how* the
bytes were produced without ever changing the byte counts:
``cached=True`` on serialize spans served from the per-round
:class:`~repro.fl.wire.BroadcastCache` (the full blob length is still
reported — the simulated network sent it, only the CPU encode was
skipped), ``scratch=True`` on serializes into the workspace arena, and
``zero_copy=True`` on deserializes that returned read-only views
instead of copies.

The process-global default tracer is a :class:`NullTracer` whose
``span()`` returns one shared no-op span — instrumented call sites cost a
method call and an empty ``with`` block when tracing is off, keeping the
default path's overhead unmeasurable (<2% on the tiny FedAvg benchmark)
and its numerics byte-identical.  Install a real tracer with
:func:`set_tracer` or the :func:`tracing` context manager.
"""

from __future__ import annotations

import contextlib
import json
import time
from typing import Any, Iterator


class Span:
    """One timed region: name, wall-clock bounds, and attributes.

    Created by :meth:`Tracer.span` and used as a context manager; entering
    stamps the start time, exiting stamps the end and appends the span to
    its tracer's finished list.  Attributes can be attached at creation
    (``tracer.span("upload", client=3)``) or later via :meth:`set` — e.g.
    a byte count known only once the payload is built.
    """

    __slots__ = ("name", "attrs", "t_start", "t_end", "depth", "index",
                 "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.t_start = 0.0
        self.t_end = 0.0
        self.depth = 0
        self.index = -1
        self._tracer = tracer

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on an open or finished span."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit (0 while open)."""
        return max(self.t_end - self.t_start, 0.0)

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._exit(self)

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
                f"{self.attrs})")


class _NullSpan:
    """Shared inert span: every method is a no-op.

    A single module-level instance (:data:`NULL_SPAN`) is returned by
    :class:`NullTracer` for *every* call, so the disabled path allocates
    nothing.
    """

    __slots__ = ()
    name = ""
    attrs: dict[str, Any] = {}
    duration = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        """Ignore attributes (disabled tracing)."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``span()`` hands back the shared no-op span."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """Return the shared inert span (no allocation, no recording)."""
        return NULL_SPAN


class Tracer:
    """Collects finished :class:`Span` records with nesting depth.

    Spans are appended on *exit*; :attr:`spans` is therefore ordered by
    completion time, and each span's ``index`` records creation order so
    exports can re-sort chronologically.  The tracer is single-threaded by
    design (matching the simulator): one open-span stack, no locks.
    """

    enabled = True

    def __init__(self):
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()
        self._counter = 0

    def span(self, name: str, **attrs: Any) -> Span:
        """Create an (un-entered) span; use as ``with tracer.span(...)``."""
        return Span(self, name, attrs)

    def _enter(self, span: Span) -> None:
        span.depth = len(self._stack)
        span.index = self._counter
        self._counter += 1
        self._stack.append(span)
        span.t_start = time.perf_counter()

    def _exit(self, span: Span) -> None:
        span.t_end = time.perf_counter()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:           # exited out of order: unwind
            self._stack.remove(span)
        self.spans.append(span)

    @property
    def depth(self) -> int:
        """Current nesting depth (number of open spans)."""
        return len(self._stack)

    def records(self) -> list[dict[str, Any]]:
        """Finished spans as plain dicts (JSON-able, picklable).

        The format is the JSONL export schema: ``name``, ``start_s`` /
        ``dur_s`` relative to tracer creation, ``depth``, and ``attrs``
        when present.  This is also the wire format worker processes use
        to hand their spans back to the parent (see :meth:`absorb`).
        """
        return self._records()

    def absorb(self, records: list[dict[str, Any]],
               base_depth: int = 0) -> None:
        """Append spans recorded by *another* tracer (typically in a
        worker process) into this timeline.

        Spans are re-anchored so the absorbed group starts at this
        tracer's current elapsed time, and every depth is offset by
        ``base_depth`` — pass the parent's open-span :attr:`depth` so
        worker spans nest under the span that was open when their work
        was dispatched.  Wall-clock *durations* are preserved; absolute
        placement is not meaningful across processes.
        """
        now = time.perf_counter()
        for rec in records:
            span = Span(self, rec["name"], dict(rec.get("attrs", {})))
            span.t_start = now + rec["start_s"]
            span.t_end = span.t_start + rec["dur_s"]
            span.depth = base_depth + rec["depth"]
            span.index = self._counter
            self._counter += 1
            self.spans.append(span)

    # ------------------------------------------------------------ export
    def _records(self) -> list[dict[str, Any]]:
        ordered = sorted(self.spans, key=lambda s: s.index)
        return [{"name": s.name,
                 "start_s": round(s.t_start - self._epoch, 9),
                 "dur_s": round(s.duration, 9),
                 "depth": s.depth,
                 **({"attrs": s.attrs} if s.attrs else {})}
                for s in ordered]

    def to_jsonl(self) -> str:
        """One JSON object per finished span, in creation order."""
        return "\n".join(json.dumps(r) for r in self._records())

    def to_chrome_trace(self) -> dict[str, Any]:
        """Trace-event JSON loadable by ``chrome://tracing`` / Perfetto.

        Each span becomes a complete ("ph": "X") event with microsecond
        timestamps relative to tracer creation; attributes land in
        ``args`` so they show in the inspector pane.
        """
        events = []
        for s in sorted(self.spans, key=lambda s: s.index):
            events.append({
                "name": s.name, "ph": "X", "cat": "repro",
                "ts": round((s.t_start - self._epoch) * 1e6, 3),
                "dur": round(s.duration * 1e6, 3),
                "pid": 0, "tid": 0,
                "args": {k: _jsonable(v) for k, v in s.attrs.items()},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl` output (plus newline) to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl() + "\n")

    def save_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` output to ``path`` as JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)


def _jsonable(value: Any):
    """Coerce an attribute to a JSON-serialisable primitive."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:
        return float(value)                 # numpy scalars
    except (TypeError, ValueError):
        return str(value)


_tracer: Tracer | NullTracer = NullTracer()


def get_tracer() -> Tracer | NullTracer:
    """The process-global tracer (a no-op :class:`NullTracer` by default)."""
    return _tracer


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` globally; returns the previous one for restore."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextlib.contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Enable tracing for a block: installs (or creates) a real tracer.

    ::

        with tracing() as tracer:
            algo.run(rounds=2)
        tracer.save_chrome_trace("trace.json")
    """
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
