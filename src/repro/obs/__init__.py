"""Observability: tracing spans, metric instruments, and op-level profiling.

The ROADMAP's perf goals ("as fast as the hardware allows") need the repo
to *see* where time and bytes go before any hot path can be optimised.
This package provides three orthogonal instruments, all off by default and
free when disabled:

- :mod:`repro.obs.trace` — context-managed wall-time spans with nesting
  and attributes, exportable as JSONL or Chrome ``chrome://tracing`` JSON.
  The process-global default tracer is a no-op; the FL loop, the wire
  codec, and the experiment harness emit spans through it unconditionally.
- :mod:`repro.obs.metrics` — named ``Counter``/``Gauge``/``Histogram``
  instruments with labels and a snapshot/merge API.
- :mod:`repro.obs.profiler` — op-level hooks into the autograd engine and
  the hot ``repro.nn`` modules (conv, linear, norm) recording per-op call
  counts, cumulative time, and analytic FLOPs.

``repro.obs.report`` renders hotspot and round-timeline tables from the
collected data (CLI command ``profile``; flags ``--trace-out`` /
``--metrics-out`` on every experiment command).

All three instruments compose with parallel client execution
(DESIGN.md §9): workers record into fresh per-task instruments and the
parent merges them — :meth:`MetricsRegistry.merge`,
:meth:`Tracer.absorb` — so a ``--workers N`` run reports the same
counters, span counts, and codec byte totals as the serial run.
"""

from repro.obs.trace import (NULL_SPAN, NullTracer, Span, Tracer, get_tracer,
                             set_tracer, tracing)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               get_registry, observe_peak_rss,
                               peak_rss_bytes, set_registry)
from repro.obs.profiler import OpProfiler, OpStat
from repro.obs.report import (codec_byte_totals, hotspot_table,
                              round_timeline_table, span_attr_total,
                              span_total_seconds)

__all__ = [
    "Span", "Tracer", "NullTracer", "NULL_SPAN", "get_tracer", "set_tracer",
    "tracing", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry", "peak_rss_bytes", "observe_peak_rss",
    "OpProfiler", "OpStat", "hotspot_table",
    "round_timeline_table", "span_attr_total", "span_total_seconds",
    "codec_byte_totals",
]
