"""Op-level profiler for the autograd engine and hot ``repro.nn`` layers.

Two hook families, both installed only while a profiler is active so the
default path runs the original, unwrapped code:

- **forward**: the hot modules (``Conv2d``, ``Linear``, batch norm) get
  their ``forward`` temporarily wrapped with a timer that also charges
  analytic FLOPs via :mod:`repro.nn.flops` (2 FLOPs per MAC, times the
  batch size);
- **backward**: the engine's graph walk (:meth:`Tensor.backward`) reports
  every node's closure through a module-level hook, with the op name
  derived from the closure's qualname — so ``conv2d.backward``,
  ``matmul.backward`` etc. are attributed without touching each op.

``top_hotspots(n)`` returns the ops ranked by cumulative wall time; the
table renderer lives in :mod:`repro.obs.report`.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass

# ``repro.tensor`` re-exports a ``tensor()`` *function*, which shadows the
# submodule under plain attribute imports — resolve the module explicitly.
_tensor_engine = importlib.import_module("repro.tensor.tensor")


@dataclass
class OpStat:
    """Aggregate cost of one op: calls, wall seconds, analytic FLOPs."""

    calls: int = 0
    seconds: float = 0.0
    flops: int = 0

    def add(self, seconds: float, flops: int = 0) -> None:
        """Charge one call of ``seconds`` wall time and ``flops`` work."""
        self.calls += 1
        self.seconds += seconds
        self.flops += int(flops)

    @property
    def gflops_per_s(self) -> float:
        """Achieved throughput (0 when no FLOPs were attributed)."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


class OpProfiler:
    """Collects per-op statistics while installed (also a context manager).

    ::

        with OpProfiler() as prof:
            loss.backward()
        print(prof.report())

    Install/uninstall is idempotent and restores whatever backward hook
    was present before (profilers nest, last-installed wins).
    """

    def __init__(self):
        self.stats: dict[str, OpStat] = {}
        self._installed = False
        self._saved_forwards: list[tuple[type, object]] = []
        self._prev_hook = None
        self._ws_baseline: dict[str, tuple[int, int, int, int]] = {}

    # ---------------------------------------------------------- recording
    def record(self, op: str, seconds: float, flops: int = 0) -> None:
        """Charge one call of ``op``; creates its :class:`OpStat` lazily."""
        stat = self.stats.get(op)
        if stat is None:
            stat = self.stats[op] = OpStat()
        stat.add(seconds, flops)

    def _on_backward(self, op: str, seconds: float) -> None:
        self.record(op + ".backward", seconds)

    # ------------------------------------------------------------ install
    def install(self) -> "OpProfiler":
        """Patch the hot forwards and the engine backward hook in."""
        if self._installed:
            return self
        # Imported here so a disabled profiler costs the nn stack nothing.
        from repro.nn import flops as _flops
        from repro.nn.conv import Conv2d
        from repro.nn.linear import Linear
        from repro.nn.norm import LayerNorm, _BatchNorm

        profiler = self

        def _instrument(cls: type, op: str):
            original = cls.forward

            def timed_forward(self, x, *args, **kwargs):
                t0 = time.perf_counter()
                out = original(self, x, *args, **kwargs)
                elapsed = time.perf_counter() - t0
                report = _flops.FlopsReport()
                _flops._walk(self, "", tuple(x.shape[1:]), report)
                batch = x.shape[0] if x.ndim > 1 else 1
                profiler.record(op + ".forward", elapsed,
                                report.total * batch)
                return out

            timed_forward.__doc__ = original.__doc__
            profiler._saved_forwards.append((cls, original))
            cls.forward = timed_forward

        _instrument(Conv2d, "conv2d")
        _instrument(Linear, "linear")
        _instrument(_BatchNorm, "batchnorm")
        _instrument(LayerNorm, "layernorm")
        self._prev_hook = _tensor_engine.set_backward_op_hook(
            self._on_backward)
        from repro.tensor import workspace as _workspace
        self._ws_baseline = _workspace.stats_snapshot()
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the original forwards and the previous backward hook."""
        if not self._installed:
            return
        for cls, original in reversed(self._saved_forwards):
            cls.forward = original
        self._saved_forwards.clear()
        _tensor_engine.set_backward_op_hook(self._prev_hook)
        self._prev_hook = None
        self._installed = False

    def __enter__(self) -> "OpProfiler":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()

    # ------------------------------------------------------------ queries
    def top_hotspots(self, n: int = 10) -> list[tuple[str, OpStat]]:
        """The ``n`` ops with the largest cumulative wall time."""
        ranked = sorted(self.stats.items(), key=lambda kv: -kv[1].seconds)
        return ranked[:n]

    def total_seconds(self) -> float:
        """Wall time summed over every profiled op."""
        return sum(s.seconds for s in self.stats.values())

    def workspace_stats(self) -> dict[str, tuple[int, int, int, int]]:
        """Arena traffic since :meth:`install`, per buffer tag.

        Returns ``{tag: (hits, misses, bytes_alloc, bytes_saved)}`` deltas
        against the snapshot taken when the profiler was installed, so a
        profiled region reports only its own workspace activity.  Tags
        with no traffic in the window are omitted.
        """
        from repro.tensor import workspace as _workspace
        deltas = {}
        for tag, now in _workspace.stats_snapshot().items():
            base = self._ws_baseline.get(tag, (0, 0, 0, 0))
            d = tuple(a - b for a, b in zip(now, base))
            if any(d):
                deltas[tag] = d
        return deltas

    def report(self, n: int = 10) -> str:
        """Human-readable hotspot table (top ``n`` ops by time)."""
        from repro.obs.report import hotspot_table
        return hotspot_table(self, n)
