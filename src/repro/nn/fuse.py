"""Conv+BatchNorm folding for evaluation batches (DESIGN.md §10).

In eval mode a BatchNorm is an affine map built from frozen running
statistics, so it can be absorbed into the preceding convolution:

    W' = W * (gamma / sqrt(var + eps))  (per output channel)
    b' = (b - mean) * (gamma / sqrt(var + eps)) + beta

:func:`folded_inference` activates the fold for the duration of a
``with`` block by registering folded weights in
:data:`repro.nn.conv._ACTIVE_FOLDS` (the conv forward picks them up) and
marking the absorbed BatchNorms as identity.  Nothing is written to the
modules themselves, so model state, ``state_dict``, pickling, and
deepcopy are untouched, and training — which never enters the context —
cannot observe the fold.

Pairing is structural: a ``Conv2d`` immediately followed by a matching
``BatchNorm2d`` in its parent's child order.  For every model in this
repository (Sequential chains, ``BasicBlock``, the ResNet stem)
definition order equals execution order; a custom container that
defines the pair adjacently but runs the conv's output elsewhere must
not be passed here.  Folded outputs match unfolded eval outputs to
float32 rounding — :func:`verify_fold` asserts ``rtol=1e-5`` agreement
and the test suite gates every registry model through it.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.nn import conv as _conv
from repro.nn.conv import Conv2d
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.tensor.tensor import is_grad_enabled

__all__ = ["fold_pairs", "fold_conv_bn", "folded_inference", "verify_fold"]


def fold_pairs(model: Module) -> list[tuple[Conv2d, BatchNorm2d]]:
    """Every (conv, bn) pair adjacent in some module's child order."""
    pairs = []
    stack = [model]
    while stack:
        module = stack.pop()
        children = list(module._modules.values())
        stack.extend(children)
        for a, b in zip(children, children[1:]):
            if isinstance(a, Conv2d) and isinstance(b, BatchNorm2d) \
                    and a.out_channels == b.num_features:
                pairs.append((a, b))
    return pairs


def fold_conv_bn(conv: Conv2d, bn: BatchNorm2d) -> tuple[np.ndarray, np.ndarray]:
    """Folded ``(weight, bias)`` arrays absorbing ``bn`` into ``conv``."""
    var = bn.running_var
    mean = bn.running_mean
    if bn.affine:
        gamma = bn.weight.data
        beta = bn.bias.data
    else:
        gamma = np.ones_like(var)
        beta = np.zeros_like(mean)
    scale = gamma / np.sqrt(var + bn.eps)
    w = conv.weight.data * scale[:, None, None, None]
    b0 = conv.bias.data if conv.bias is not None else 0.0
    b = (b0 - mean) * scale + beta
    return (np.ascontiguousarray(w, dtype=conv.weight.data.dtype),
            b.astype(conv.weight.data.dtype))


@contextlib.contextmanager
def folded_inference(model: Module):
    """Run the block with every foldable conv+bn pair of ``model`` fused.

    Requires eval mode and ``no_grad`` (folded outputs differ from the
    exact BN arithmetic at float32 rounding level, which must never leak
    into training or gradients).  No-op for models without foldable
    pairs.
    """
    if is_grad_enabled():
        raise RuntimeError("folded_inference requires a no_grad() context")
    if model.training:
        raise RuntimeError("folded_inference requires model.eval()")
    registered: list[tuple[int, int]] = []
    try:
        for conv, bn in fold_pairs(model):
            _conv._ACTIVE_FOLDS[id(conv)] = fold_conv_bn(conv, bn)
            _conv._FOLDED_BNS.add(id(bn))
            registered.append((id(conv), id(bn)))
        yield
    finally:
        for conv_id, bn_id in registered:
            _conv._ACTIVE_FOLDS.pop(conv_id, None)
            _conv._FOLDED_BNS.discard(bn_id)


def verify_fold(model: Module, x, rtol: float = 1e-5, atol: float = 1e-6) -> None:
    """Assert folded and unfolded eval forwards agree on input ``x``.

    ``x`` is a :class:`~repro.tensor.tensor.Tensor` batch.  Raises
    ``AssertionError`` on disagreement beyond float32 rounding — the
    allclose gate for the BN-fold eval path.
    """
    from repro.tensor.tensor import no_grad
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            plain = model(x)
            with folded_inference(model):
                fused = model(x)
        np.testing.assert_allclose(fused.data, plain.data, rtol=rtol, atol=atol)
    finally:
        if was_training:
            model.train()
