"""``Module``/``Parameter`` abstractions with named traversal and state dicts.

The federated-learning layer of this repository moves *flat dictionaries of
numpy arrays* between clients and the server, so ``state_dict`` /
``load_state_dict`` here operate on plain ``np.ndarray`` values keyed by
dotted paths (``features.0.weight`` ...), exactly the representation the
communication codec (:mod:`repro.fl.comm`) serialises.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by ``Module``."""

    def __init__(self, data, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, buffers (via :meth:`register_buffer`)
    and child ``Module`` instances as attributes; traversal methods discover
    them by introspection, in insertion order.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ---------------------------------------------------------------- #
    # attribute plumbing                                                 #
    # ---------------------------------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace a registered buffer's contents."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ---------------------------------------------------------------- #
    # traversal                                                          #
    # ---------------------------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield prefix + name, p
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix + mod_name + ".")

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, self._buffers[name]
        for mod_name, mod in self._modules.items():
            yield from mod.named_buffers(prefix + mod_name + ".")

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, mod in self._modules.items():
            yield from mod.named_modules(prefix + mod_name + ".")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for m in self.modules():
            fn(m)
        return self

    # ---------------------------------------------------------------- #
    # state                                                              #
    # ---------------------------------------------------------------- #
    def state_dict(self, include_buffers: bool = True) -> "OrderedDict[str, np.ndarray]":
        """Flat dict of parameter (and buffer) arrays, copied."""
        out: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, p in self.named_parameters():
            out[name] = p.data.copy()
        if include_buffers:
            for name, b in self.named_buffers():
                out[name] = b.copy()
        return out

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        """Load arrays by dotted name into parameters and buffers in place."""
        params = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        missing = []
        for name, p in params.items():
            if name in state:
                arr = np.asarray(state[name], dtype=p.data.dtype)
                if arr.shape != p.data.shape:
                    raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
                p.data[...] = arr
            elif strict:
                missing.append(name)
        for name, (owner, local) in buffer_owners.items():
            if name in state:
                arr = np.asarray(state[name])
                if not arr.flags.writeable:
                    # set_buffer keeps a reference, and a read-only array
                    # here is typically a zero-copy wire view whose buffer
                    # (e.g. a shared-memory segment) the sender may reuse;
                    # detach so the buffer stays mutable and owned.
                    arr = arr.copy()
                owner.set_buffer(local, arr)
            elif strict:
                missing.append(name)
        if strict:
            known = set(params) | set(buffer_owners)
            unexpected = [k for k in state if k not in known]
            if missing or unexpected:
                raise KeyError(f"load_state_dict: missing={missing} unexpected={unexpected}")

    def _buffer_owners(self) -> dict[str, tuple["Module", str]]:
        owners: dict[str, tuple[Module, str]] = {}

        def walk(mod: Module, prefix: str):
            for name in mod._buffers:
                owners[prefix + name] = (mod, name)
            for mod_name, child in mod._modules.items():
                walk(child, prefix + mod_name + ".")

        walk(self, "")
        return owners

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ---------------------------------------------------------------- #
    # training-mode & grads                                              #
    # ---------------------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            object.__setattr__(m, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ---------------------------------------------------------------- #
    # call protocol                                                      #
    # ---------------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [f"  ({n}): {m!r}".replace("\n", "\n  ") for n, m in self._modules.items()]
        body = "\n".join(child_lines)
        if body:
            return f"{self.__class__.__name__}(\n{body}\n)"
        return f"{self.__class__.__name__}()"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, m in enumerate(modules):
            setattr(self, str(i), m)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return self._modules[str(idx % len(self) if idx < 0 else idx)]

    def __iter__(self):
        return iter(self._modules.values())

    def append(self, module: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), module)
        return self

    def forward(self, x):
        for m in self._modules.values():
            x = m(x)
        return x


class ModuleList(Module):
    """Indexable container of modules (no implicit forward)."""

    def __init__(self, modules=()):
        super().__init__()
        for i, m in enumerate(modules):
            setattr(self, str(i), m)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return self._modules[str(idx % len(self) if idx < 0 else idx)]

    def __iter__(self):
        return iter(self._modules.values())

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._modules)), module)
        return self
