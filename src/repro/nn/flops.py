"""Analytic FLOPs / parameter counting.

Used for the paper's inference-acceleration evaluation (§V-D): "instead of
recording the actual run time ... we calculated the FLOPs".  The counter
walks a model symbolically with a given input shape, dispatching on layer
type, and returns both a total and a per-layer breakdown so the pruning
experiments can report per-layer reductions.

Convention (matching common FLOPs counters incl. the one used by the AMC /
GNN-RL pruning line of work the paper builds on): one multiply-accumulate
counts as 2 FLOPs; batch-norm, activations and pooling count one FLOP per
output element.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.conv import Conv2d
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module, Sequential
from repro.nn.norm import BatchNorm1d, BatchNorm2d, LayerNorm
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.activation import LeakyReLU, ReLU, Sigmoid, Tanh


@dataclass
class FlopsReport:
    """Total FLOPs plus a per-named-layer breakdown."""

    total: int = 0
    params: int = 0
    by_layer: dict = field(default_factory=dict)

    def add(self, name: str, flops: int, params: int = 0) -> None:
        self.total += int(flops)
        self.params += int(params)
        self.by_layer[name] = self.by_layer.get(name, 0) + int(flops)


def _conv_out_hw(h: int, w: int, k: int, s: int, p: int) -> tuple[int, int]:
    return (h + 2 * p - k) // s + 1, (w + 2 * p - k) // s + 1


def count_params(module: Module) -> int:
    """Total trainable parameter count."""
    return module.num_parameters()


def count_flops(model: Module, input_shape: tuple[int, int, int],
                _report: FlopsReport | None = None) -> FlopsReport:
    """Count forward-pass FLOPs of ``model`` for a single input.

    ``input_shape`` is ``(C, H, W)`` for conv models or ``(F,)`` for MLPs.
    Models that are not plain ``Sequential`` stacks can implement
    ``flops(input_shape) -> FlopsReport`` and are dispatched to it; the
    model zoo's ResNet blocks do exactly that (their skip-adds are not
    discoverable from a module walk).
    """
    report = _report if _report is not None else FlopsReport()
    if hasattr(model, "flops") and not isinstance(model, Sequential):
        sub = model.flops(input_shape)  # type: ignore[attr-defined]
        report.total += sub.total
        report.params += sub.params
        for k, v in sub.by_layer.items():
            report.by_layer[k] = report.by_layer.get(k, 0) + v
        return report
    _walk(model, "", input_shape, report)
    return report


def _numel(shape) -> int:
    n = 1
    for s in shape:
        n *= s
    return n


def _walk(module: Module, prefix: str, shape, report: FlopsReport):
    """Symbolically execute ``module``, returning the output shape."""
    if isinstance(module, Conv2d):
        c, h, w = shape
        ho, wo = _conv_out_hw(h, w, module.kernel_size, module.stride, module.padding)
        macs = module.out_channels * ho * wo * module.in_channels * module.kernel_size ** 2
        flops = 2 * macs + (module.out_channels * ho * wo if module.bias is not None else 0)
        params = module.weight.size + (module.bias.size if module.bias is not None else 0)
        report.add(prefix or "conv", flops, params)
        return (module.out_channels, ho, wo)
    if isinstance(module, Linear):
        feat = shape[-1] if isinstance(shape, tuple) else shape
        macs = module.out_features * module.in_features
        flops = 2 * macs + (module.out_features if module.bias is not None else 0)
        params = module.weight.size + (module.bias.size if module.bias is not None else 0)
        report.add(prefix or "linear", flops, params)
        return (module.out_features,)
    if isinstance(module, (BatchNorm2d, BatchNorm1d, LayerNorm)):
        n = _numel(shape)
        p = sum(q.size for q in module.parameters())
        report.add(prefix or "norm", 2 * n, p)
        return shape
    if isinstance(module, (ReLU, Tanh, Sigmoid, LeakyReLU)):
        report.add(prefix or "act", _numel(shape))
        return shape
    if isinstance(module, MaxPool2d):
        c, h, w = shape
        ho = (h - module.kernel_size) // module.stride + 1
        wo = (w - module.kernel_size) // module.stride + 1
        report.add(prefix or "maxpool", c * ho * wo * module.kernel_size ** 2)
        return (c, ho, wo)
    if isinstance(module, AvgPool2d):
        c, h, w = shape
        ho = (h - module.kernel_size) // module.stride + 1
        wo = (w - module.kernel_size) // module.stride + 1
        report.add(prefix or "avgpool", c * ho * wo * module.kernel_size ** 2)
        return (c, ho, wo)
    if isinstance(module, GlobalAvgPool2d):
        c, h, w = shape
        report.add(prefix or "gap", c * h * w)
        return (c,)
    if isinstance(module, Dropout):
        return shape
    if hasattr(module, "flops"):
        sub = module.flops(shape)  # type: ignore[attr-defined]
        report.total += sub.total
        report.params += sub.params
        for k, v in sub.by_layer.items():
            key = (prefix + "." + k) if prefix else k
            report.by_layer[key] = report.by_layer.get(key, 0) + v
        out = getattr(module, "output_shape", None)
        return out(shape) if callable(out) else shape
    if isinstance(module, Sequential) or module._modules:
        # containers: thread the shape through children.
        # A "Flatten point" between conv stacks and classifiers is detected
        # when a Linear follows a 3-d shape.
        for name, child in module._modules.items():
            key = f"{prefix}.{name}" if prefix else name
            if isinstance(child, Linear) and isinstance(shape, tuple) and len(shape) == 3:
                shape = (_numel(shape),)
            shape = _walk(child, key, shape, report)
        return shape
    return shape
