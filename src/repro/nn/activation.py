"""Activation layers (thin Module wrappers over tensor functional ops)."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class ReLU(Module):
    """max(x, 0) as a layer."""
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    """Hyperbolic tangent layer."""
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    """Logistic sigmoid layer."""
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class LeakyReLU(Module):
    """LeakyReLU layer with configurable negative slope."""
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU({self.negative_slope})"
