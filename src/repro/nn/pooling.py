"""Spatial pooling layers (max / average / global average).

The pooling backwards are vectorized (DESIGN.md §10): max-pool scatter
uses flat-index assignment (windows are disjoint for ``stride >= k``, so
every input cell receives at most one gradient and plain fancy-index
assignment replaces ``np.add.at``), falling back to ``np.bincount`` for
overlapping windows; average-pool writes the scaled gradient through
k*k strided assignments into an arena buffer (skipping the zero-fill
entirely when the window tiling covers the input).  For the non-overlapping
configurations the models use, results are byte-identical to the
original formulation (see :mod:`repro.nn.reference`); the overlapping
``np.bincount`` path accumulates in float64 and is covered by float64
gradchecks instead.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.module import Module
from repro.tensor import workspace
from repro.tensor.tensor import Tensor, is_grad_enabled


def _pool_flat_base(n: int, c: int, h: int, w: int, ho: int, wo: int,
                    s: int) -> np.ndarray:
    """(N, C, Ho, Wo) int64 flat index of each window's top-left corner."""
    base = (np.arange(n).reshape(n, 1, 1, 1) * c
            + np.arange(c).reshape(1, c, 1, 1)) * h
    base = (base + np.arange(ho).reshape(1, 1, ho, 1) * s) * w
    return base + np.arange(wo).reshape(1, 1, 1, wo) * s


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None,
               ws: workspace.WorkspaceSlot | None = None) -> Tensor:
    """Max pooling with square window; stride defaults to the window size."""
    k = kernel_size
    s = stride or k
    n, c, h, w = x.shape
    ho = (h - k) // s + 1
    wo = (w - k) // s + 1
    windows = sliding_window_view(x.data, (k, k), axis=(2, 3))[:, :, ::s, ::s]
    # (N, C, Ho, Wo, k, k)
    flat = windows.reshape(n, c, ho, wo, k * k)

    if not (is_grad_enabled() and x.requires_grad):
        # Inference fast path: the max alone, no argmax bookkeeping.
        return Tensor(np.ascontiguousarray(flat.max(axis=-1)),
                      dtype=x.data.dtype)

    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out_data = np.ascontiguousarray(out_data)
    a = x

    def backward(g):
        dx = np.zeros_like(a.data)
        ki, kj = np.divmod(arg, k)
        if ws is None:
            base = _pool_flat_base(n, c, h, w, ho, wo, s)
        else:
            base = ws.cached("maxpool.base", (n, c, h, w, ho, wo, s),
                             lambda: _pool_flat_base(n, c, h, w, ho, wo, s))
        flat_idx = base + ki * w + kj
        if s >= k:
            # Disjoint windows: each input cell gets at most one gradient,
            # so fancy-index assignment into zeros equals the add-scatter.
            dx.reshape(-1)[flat_idx.reshape(-1)] = np.ravel(g)
        else:
            # Overlapping windows can hit a cell repeatedly; bincount
            # accumulates (in float64 — exact for the float64 gradchecks).
            acc = np.bincount(flat_idx.reshape(-1), weights=np.ravel(g),
                              minlength=dx.size)
            dx[...] = acc.reshape(dx.shape)
        a._accumulate(dx, donate="fresh")

    return Tensor._make(out_data, (a,), backward)


def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None,
               ws: workspace.WorkspaceSlot | None = None) -> Tensor:
    """Average pooling with square window; stride defaults to window size."""
    k = kernel_size
    s = stride or k
    n, c, h, w = x.shape
    ho = (h - k) // s + 1
    wo = (w - k) // s + 1
    windows = sliding_window_view(x.data, (k, k), axis=(2, 3))[:, :, ::s, ::s]
    out_data = np.ascontiguousarray(windows.mean(axis=(-1, -2)))

    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(out_data, dtype=out_data.dtype)

    a = x

    def backward(g):
        if s == k:
            # Non-overlapping tiling: k*k strided assignments of the
            # scaled gradient, each writing every window's (i, j) tap in
            # one pass — no scatter, and (when the tiling covers the
            # input exactly) nothing to zero first.  dx and the scaled
            # gradient come from the arena when the consumer can take
            # scratch (non-leaf input); a leaf input gets a fresh array
            # since leaves never alias arena memory.
            covered = (h == ho * k and w == wo * k)
            if ws is not None and a._backward is not None:
                dx = ws.buffer("avgpool.dx", a.data.shape, a.data.dtype,
                               zero="never" if covered else "always")
                donate = "scratch"
            else:
                dx = (np.empty_like(a.data) if covered
                      else np.zeros_like(a.data))
                donate = "fresh"
            if ws is not None:
                gk = ws.buffer("avgpool.gk", g.shape, g.dtype)
                np.divide(g, k * k, gk)
            else:
                gk = g / (k * k)
            for i in range(k):
                for j in range(k):
                    dx[:, :, i:i + s * ho:s, j:j + s * wo:s] = gk
            a._accumulate(dx, donate=donate)
            return
        dx = np.zeros_like(a.data)
        gk = g / (k * k)
        if s > k:
            # Disjoint but gapped windows: the strided-slice adds touch
            # each cell once, so the original formulation is already exact.
            for i in range(k):
                for j in range(k):
                    dx[:, :, i:i + s * ho:s, j:j + s * wo:s] += gk
        else:
            # Overlapping windows: accumulate every tap via bincount
            # (float64 inside — exact for the float64 gradchecks).
            base = _pool_flat_base(n, c, h, w, ho, wo, s)
            taps = (base[..., None, None] + np.arange(k).reshape(k, 1) * w
                    + np.arange(k))                    # (N, C, Ho, Wo, k, k)
            gtap = np.broadcast_to(gk[..., None, None], taps.shape)
            acc = np.bincount(taps.reshape(-1), weights=np.ravel(gtap),
                              minlength=dx.size)
            dx[...] = acc.reshape(dx.shape)
        a._accumulate(dx, donate="fresh")

    return Tensor._make(out_data, (a,), backward)


class MaxPool2d(Module):
    """Max-pool layer wrapper."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride,
                          ws=workspace.slot_for(self))

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    """Average-pool layer wrapper."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride,
                          ws=workspace.slot_for(self))

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    """Mean over all spatial positions: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"
