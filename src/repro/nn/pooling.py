"""Spatial pooling layers (max / average / global average)."""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.module import Module
from repro.tensor.tensor import Tensor


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling with square window; stride defaults to the window size."""
    k = kernel_size
    s = stride or k
    n, c, h, w = x.shape
    ho = (h - k) // s + 1
    wo = (w - k) // s + 1
    windows = sliding_window_view(x.data, (k, k), axis=(2, 3))[:, :, ::s, ::s]
    # (N, C, Ho, Wo, k, k)
    flat = windows.reshape(n, c, ho, wo, k * k)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out_data = np.ascontiguousarray(out_data)
    a = x

    def backward(g):
        dx = np.zeros_like(a.data)
        ki, kj = np.divmod(arg, k)
        nn_, cc, ii, jj = np.indices((n, c, ho, wo), sparse=False)
        rows = ii * s + ki
        cols = jj * s + kj
        np.add.at(dx, (nn_, cc, rows, cols), g)
        a._accumulate(dx)

    return Tensor._make(out_data, (a,), backward)


def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Average pooling with square window; stride defaults to window size."""
    k = kernel_size
    s = stride or k
    n, c, h, w = x.shape
    ho = (h - k) // s + 1
    wo = (w - k) // s + 1
    windows = sliding_window_view(x.data, (k, k), axis=(2, 3))[:, :, ::s, ::s]
    out_data = np.ascontiguousarray(windows.mean(axis=(-1, -2)))
    a = x

    def backward(g):
        dx = np.zeros_like(a.data)
        gk = g / (k * k)
        for i in range(k):
            for j in range(k):
                dx[:, :, i:i + s * ho:s, j:j + s * wo:s] += gk
        a._accumulate(dx)

    return Tensor._make(out_data, (a,), backward)


class MaxPool2d(Module):
    """Max-pool layer wrapper."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    """Average-pool layer wrapper."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    """Mean over all spatial positions: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"
