"""2-D convolution via im2col / col2im.

The forward pass lowers the convolution to a single large matmul using
``numpy.lib.stride_tricks.sliding_window_view`` (zero-copy patch extraction),
which on a CPU-only NumPy stack is the fastest formulation by a wide margin
(one BLAS GEMM instead of nested Python loops).  The backward pass scatters
column gradients back with a small ``kh*kw`` loop of strided adds.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """(N, C, H, W) -> (N*Ho*Wo, C*kh*kw) patch matrix (copies once)."""
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))  # N,C,Ho*,Wo*,kh,kw
    windows = windows[:, :, ::stride, :: stride]
    n, c, ho, wo = windows.shape[:4]
    # (N, Ho, Wo, C, kh, kw) -> rows are receptive fields
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * ho * wo, c * kh * kw)
    return np.ascontiguousarray(cols), (n, ho, wo)


def _col2im(dcols: np.ndarray, x_shape: tuple, kh: int, kw: int,
            stride: int, n: int, ho: int, wo: int) -> np.ndarray:
    """Scatter-add (N*Ho*Wo, C*kh*kw) gradients back to (N, C, H, W)."""
    _, c, hp, wp = x_shape
    dx = np.zeros(x_shape, dtype=dcols.dtype)
    d6 = dcols.reshape(n, ho, wo, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        hi = i + stride * ho
        for j in range(kw):
            wj = j + stride * wo
            dx[:, :, i:hi:stride, j:wj:stride] += d6[:, :, :, :, i, j]
    return dx


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """Differentiable 2-D convolution.

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, kh, kw);
    ``bias``: (C_out,) or None.  Returns (N, C_out, H_out, W_out).
    """
    out_c, in_c, kh, kw = weight.shape
    if x.shape[1] != in_c:
        raise ValueError(f"input channels {x.shape[1]} != weight in-channels {in_c}")
    xp = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))) \
        if padding else x.data
    cols, (n, ho, wo) = _im2col(xp, kh, kw, stride)
    wmat = weight.data.reshape(out_c, -1)
    out = cols @ wmat.T                      # (N*Ho*Wo, O)
    if bias is not None:
        out += bias.data
    out_data = out.reshape(n, ho, wo, out_c).transpose(0, 3, 1, 2)
    out_data = np.ascontiguousarray(out_data)

    parents = (x, weight) if bias is None else (x, weight, bias)
    xp_shape = xp.shape

    def backward(g):
        gmat = g.transpose(0, 2, 3, 1).reshape(n * ho * wo, out_c)
        if bias is not None and bias.requires_grad:
            bias._accumulate(gmat.sum(axis=0))
        if weight.requires_grad:
            weight._accumulate((gmat.T @ cols).reshape(weight.shape))
        if x.requires_grad:
            dcols = gmat @ wmat
            dxp = _col2im(dcols, xp_shape, kh, kw, stride, n, ho, wo)
            if padding:
                dxp = dxp[:, :, padding:-padding, padding:-padding]
            x._accumulate(dxp)

    return Tensor._make(out_data, parents, backward)


class Conv2d(Module):
    """Convolution layer with square kernel/stride/padding.

    Weight layout matches PyTorch: ``(out_channels, in_channels, k, k)``;
    the salient-parameter machinery treats dim-0 slices as the per-filter
    (output-channel) granularity of selection.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        if bias:
            self.bias = Parameter(init.uniform_fan_in_bias(shape, rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding}, "
                f"bias={self.bias is not None})")
