"""2-D convolution via im2col / col2im.

The forward pass lowers the convolution to a single large matmul using
``numpy.lib.stride_tricks.sliding_window_view`` (zero-copy patch extraction),
which on a CPU-only NumPy stack is the fastest formulation by a wide margin
(one BLAS GEMM instead of nested Python loops).  The backward pass scatters
column gradients back with a small ``kh*kw`` loop of strided adds.

Workspace-backed hot path (DESIGN.md §10): when called with a
``workspace`` slot (the :class:`Conv2d` layer passes its own), the padded
input, im2col patch matrix, GEMM outputs, and col2im scatter target live
in per-layer arena buffers instead of being re-allocated every step.
Every arithmetic op keeps the exact operand order and accumulation order
of the allocating path, so results are byte-identical (asserted against
:mod:`repro.nn.reference` by the golden-state tests).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import workspace
from repro.tensor.tensor import Tensor, is_grad_enabled

# Populated by repro.nn.fuse.folded_inference while active: maps
# ``id(conv)`` to ``(folded_weight, folded_bias)`` arrays with the
# downstream BatchNorm absorbed.  Empty outside the context, so the
# training path pays one falsy check.  ``_FOLDED_BNS`` is the matching
# set of ``id(bn)`` whose forward becomes the identity.
_ACTIVE_FOLDS: dict[int, tuple[np.ndarray, np.ndarray]] = {}
_FOLDED_BNS: set[int] = set()

# Flat gather indices for the im2col copy, keyed by (input shape, kh, kw,
# stride).  ``np.take`` with a precomputed int64 index matrix beats the
# strided window copy by ~1.3-2x on the measured hot shapes (the window
# copy's inner runs are only ``kw`` elements, so explicit indexing wins
# over nditer) — except when the index matrix itself outgrows the last-
# level cache, where streaming 8 bytes of index per 4-byte element loses;
# ``_GATHER_IDX_MAX_BYTES`` gates that.  The indices are immutable and
# shared across layers and model copies, so they are cached process-wide;
# the handful of distinct conv input shapes in a run bounds the cache.
_GATHER_IDX: dict[tuple, np.ndarray] = {}
_GATHER_IDX_MAX_BYTES = 24_000_000


def _gather_indices(shape: tuple[int, int, int, int], kh: int, kw: int,
                    stride: int) -> np.ndarray:
    """(N*Ho*Wo, C*kh*kw) int64 flat indices into a C-contiguous input."""
    key = (shape, kh, kw, stride)
    idx = _GATHER_IDX.get(key)
    if idx is None:
        n, c, h, w = shape
        ho = (h - kh) // stride + 1
        wo = (w - kw) // stride + 1
        nn, hh, ww, cc, ii, jj = np.ix_(*(np.arange(d)
                                          for d in (n, ho, wo, c, kh, kw)))
        flat = ((nn * c + cc) * h + hh * stride + ii) * w + ww * stride + jj
        idx = _GATHER_IDX[key] = flat.reshape(n * ho * wo, c * kh * kw)
    return idx


def _im2col(x: np.ndarray, kh: int, kw: int,
            stride: int) -> tuple[np.ndarray, tuple[int, int, int]]:
    """(N, C, H, W) -> ``(cols, (n, ho, wo))`` where ``cols`` is the
    (N*Ho*Wo, C*kh*kw) patch matrix (copies once)."""
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))  # N,C,Ho*,Wo*,kh,kw
    windows = windows[:, :, ::stride, :: stride]
    n, c, ho, wo = windows.shape[:4]
    # (N, Ho, Wo, C, kh, kw) -> rows are receptive fields
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * ho * wo, c * kh * kw)
    return np.ascontiguousarray(cols), (n, ho, wo)


def _col2im_into(dcols: np.ndarray, dx: np.ndarray, kh: int, kw: int,
                 stride: int, n: int, ho: int, wo: int) -> None:
    """Scatter-add (N*Ho*Wo, C*kh*kw) gradients into a zeroed ``dx``."""
    c = dx.shape[1]
    d6 = dcols.reshape(n, ho, wo, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        hi = i + stride * ho
        for j in range(kw):
            wj = j + stride * wo
            dx[:, :, i:hi:stride, j:wj:stride] += d6[:, :, :, :, i, j]


def _col2im(dcols: np.ndarray, x_shape: tuple[int, int, int, int], kh: int,
            kw: int, stride: int, n: int, ho: int, wo: int) -> np.ndarray:
    """Scatter-add (N*Ho*Wo, C*kh*kw) gradients back to a fresh (N, C, H, W)."""
    dx = np.zeros(x_shape, dtype=dcols.dtype)
    _col2im_into(dcols, dx, kh, kw, stride, n, ho, wo)
    return dx


def _forward_data(xdata: np.ndarray, wdata: np.ndarray,
                  bdata: np.ndarray | None, stride: int, padding: int,
                  ws: workspace.WorkspaceSlot | None,
                  out_arr: np.ndarray | None = None):
    """Shared forward arithmetic for the autodiff and inference paths.

    Returns ``(out_data, cols, wmat, xp_shape, n, ho, wo)`` — ``out_data``
    is freshly allocated (it becomes a graph node's payload) unless the
    caller supplies ``out_arr``, a C-contiguous (N, C_out, Ho, Wo) buffer
    the result is written into instead (the step compiler's replay path
    owns its output placement); ``cols`` may be an arena buffer (captured
    by the backward closure under the one-forward-per-backward
    discipline).
    """
    out_c = wdata.shape[0]
    kh, kw = wdata.shape[2], wdata.shape[3]
    if padding:
        if ws is None:
            xp = np.pad(xdata, ((0, 0), (0, 0), (padding, padding),
                                (padding, padding)))
        else:
            nb, c, h, w = xdata.shape
            pshape = (nb, c, h + 2 * padding, w + 2 * padding)
            # Border zeroed once at allocation; only the interior is
            # rewritten, so the zero frame persists across reuses.
            xp = ws.buffer("conv2d.pad", pshape, xdata.dtype, zero="alloc")
            np.copyto(xp[:, :, padding:padding + h, padding:padding + w], xdata)
    else:
        xp = xdata

    if ws is None:
        cols, (n, ho, wo) = _im2col(xp, kh, kw, stride)
    else:
        nb, c, h, w = xp.shape
        n, ho, wo = nb, (h - kh) // stride + 1, (w - kw) // stride + 1
        rows, width = n * ho * wo, c * kh * kw
        cols = ws.buffer("conv2d.cols", (rows, width), xp.dtype)
        if xp.flags["C_CONTIGUOUS"] and rows * width * 8 <= _GATHER_IDX_MAX_BYTES:
            # Same elements as the strided window copy, materialized by an
            # indexed gather (byte-identical by construction, faster).
            np.take(xp.reshape(-1), _gather_indices(xp.shape, kh, kw, stride),
                    out=cols)
        elif padding:
            # xp is a stable arena buffer: the strided window view over it
            # can be built once and reused every step.
            win = ws.cached("conv2d.win", (xp.shape, xp.dtype, kh, kw, stride),
                            lambda: sliding_window_view(xp, (kh, kw), axis=(2, 3))
                            [:, :, ::stride, ::stride].transpose(0, 2, 3, 1, 4, 5))
            np.copyto(cols.reshape(win.shape), win)
        else:
            win = sliding_window_view(xp, (kh, kw), axis=(2, 3)) \
                [:, :, ::stride, ::stride].transpose(0, 2, 3, 1, 4, 5)
            np.copyto(cols.reshape(win.shape), win)

    wmat = wdata.reshape(out_c, -1)
    if ws is None:
        out = cols @ wmat.T                  # (N*Ho*Wo, O)
    else:
        out = ws.buffer("conv2d.out", (cols.shape[0], out_c), cols.dtype)
        np.matmul(cols, wmat.T, out=out)
    if bdata is not None:
        out += bdata
    if out_arr is None:
        out_data = np.ascontiguousarray(
            out.reshape(n, ho, wo, out_c).transpose(0, 3, 1, 2))
    else:
        np.copyto(out_arr, out.reshape(n, ho, wo, out_c).transpose(0, 3, 1, 2))
        out_data = out_arr
    return out_data, cols, wmat, xp.shape, n, ho, wo


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None,
           stride: int = 1, padding: int = 0,
           ws: workspace.WorkspaceSlot | None = None) -> Tensor:
    """Differentiable 2-D convolution.

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, kh, kw);
    ``bias``: (C_out,) or None.  Returns (N, C_out, H_out, W_out).
    ``ws`` routes the temporaries through a workspace arena slot.
    """
    out_c, in_c, kh, kw = weight.shape
    if x.shape[1] != in_c:
        raise ValueError(f"input channels {x.shape[1]} != weight in-channels {in_c}")
    out_data, cols, wmat, xp_shape, n, ho, wo = _forward_data(
        x.data, weight.data, None if bias is None else bias.data,
        stride, padding, ws)

    if not (is_grad_enabled() and (x.requires_grad or weight.requires_grad or
                                   (bias is not None and bias.requires_grad))):
        # Inference fast path: no closure, no graph edges, nothing retained.
        return Tensor(out_data, dtype=out_data.dtype)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g):
        gt = g.transpose(0, 2, 3, 1)
        if ws is None:
            gmat = gt.reshape(n * ho * wo, out_c)
        else:
            try:
                # When the transposed grad is reshape-compatible (N == 1,
                # 1x1 spatial maps), the allocating path got a zero-copy
                # view whose memory layout steers BLAS into a different
                # GEMM kernel — bitwise different sums.  Reproduce the
                # exact pre-PR operand layout: view when a view exists,
                # arena copy only where the original reshape copied.
                gmat = np.reshape(gt, (n * ho * wo, out_c), copy=False)
            except ValueError:
                gmat = ws.buffer("conv2d.gmat", (n * ho * wo, out_c), g.dtype)
                np.copyto(gmat.reshape(n, ho, wo, out_c), gt)
        if bias is not None and bias.requires_grad:
            bias._accumulate(gmat.sum(axis=0), donate="fresh")
        if weight.requires_grad:
            weight._accumulate((gmat.T @ cols).reshape(weight.shape),
                               donate="fresh")
        if x.requires_grad:
            if ws is None:
                dcols = gmat @ wmat
                dxp = _col2im(dcols, xp_shape, kh, kw, stride, n, ho, wo)
            else:
                dcols = ws.buffer("conv2d.dcols", (gmat.shape[0], wmat.shape[1]),
                                  g.dtype)
                np.matmul(gmat, wmat, out=dcols)
                dxp = ws.buffer("conv2d.dx", xp_shape, g.dtype, zero="always")
                _col2im_into(dcols, dxp, kh, kw, stride, n, ho, wo)
            if padding:
                dxp = dxp[:, :, padding:-padding, padding:-padding]
            # The allocating path hands over a fresh array; the arena path
            # hands over scratch valid until this layer's next forward —
            # non-leaf parents take it in place, leaves copy (DESIGN.md §10).
            x._accumulate(dxp, donate="fresh" if ws is None else "scratch")

    return Tensor._make(out_data, parents, backward)


class Conv2d(Module):
    """Convolution layer with square kernel/stride/padding.

    Weight layout matches PyTorch: ``(out_channels, in_channels, k, k)``;
    the salient-parameter machinery treats dim-0 slices as the per-filter
    (output-channel) granularity of selection.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        if bias:
            self.bias = Parameter(init.uniform_fan_in_bias(shape, rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        cohort = getattr(self, "_cohort_n", 0)
        if cohort:
            from repro.nn.cohort import conv2d_cohort
            return conv2d_cohort(x, self.weight, self.bias, self.stride,
                                 self.padding, cohort)
        if _ACTIVE_FOLDS and not self.training:
            fold = _ACTIVE_FOLDS.get(id(self))
            if fold is not None:
                w, b = fold
                out_data, *_ = _forward_data(x.data, w, b, self.stride,
                                             self.padding,
                                             workspace.slot_for(self))
                return Tensor(out_data, dtype=out_data.dtype)
        return conv2d(x, self.weight, self.bias, self.stride, self.padding,
                      ws=workspace.slot_for(self))

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding}, "
                f"bias={self.bias is not None})")
