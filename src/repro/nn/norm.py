"""Batch and layer normalisation.

BatchNorm keeps running statistics as *buffers*; in the FL layer these are
part of the communicated encoder state (as in the Non-IID benchmark's
reference implementations), so they are registered buffers included in
``state_dict``.

The batch-norm forward/backward routes its batch-sized intermediates
through the layer's workspace slot and applies the elementwise chain
in place (``out=``) — every operation keeps the operand order and
accumulation order of the original allocating code, so training numerics
stay byte-identical (asserted against :mod:`repro.nn.reference`).
Under ``no_grad`` the forward skips closure/graph construction, and
inside :func:`repro.nn.fuse.folded_inference` a BatchNorm that has been
absorbed into its preceding conv becomes the identity (DESIGN.md §10).
"""

from __future__ import annotations

import numpy as np

from repro.nn import conv as _conv
from repro.nn.module import Module, Parameter
from repro.tensor import workspace
from repro.tensor.tensor import Tensor, is_grad_enabled


class _BatchNorm(Module):
    """Shared machinery for 1-D/2-D batch norm; subclass fixes reduce axes."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_features, dtype=np.float32))
            self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        else:
            self.weight = None
            self.bias = None
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.zeros((), dtype=np.int64))

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def _shape(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        cohort = getattr(self, "_cohort_n", 0)
        if cohort:
            from repro.nn.cohort import batchnorm_cohort
            return batchnorm_cohort(self, x, cohort)
        if _conv._FOLDED_BNS and not self.training \
                and id(self) in _conv._FOLDED_BNS:
            return x        # absorbed into the preceding conv for this eval
        axes = self._axes(x)
        shape = self._shape(x)
        a = x
        ws = workspace.slot_for(self)
        # xhat = (x - mu) * inv_std, built in an arena buffer (the backward
        # closure captures it; one forward per backward, DESIGN.md §10).
        xhat = ws.buffer("batchnorm.xhat", x.data.shape, x.data.dtype)
        if self.training:
            # Fused mean/var: ``np.var`` internally recomputes the keepdims
            # mean, subtracts, squares, sums, and divides by the reduced
            # count — replicating that exact op sequence with the same
            # primitives lets one subtraction serve both the variance and
            # the xhat numerator, bit-for-bit equal to the separate
            # ``mean()``/``var()`` calls of the allocating path.
            mu = x.data.mean(axis=axes, keepdims=True)   # shape == `shape`
            np.subtract(x.data, mu, out=xhat)            # x - mean
            sq = ws.buffer("batchnorm.scratch", x.data.shape, x.data.dtype)
            np.multiply(xhat, xhat, out=sq)
            var = sq.sum(axis=axes) / (x.data.size // self.num_features)
            mean = mu.reshape(-1)
            n = x.data.size / self.num_features
            # unbiased running var, biased batch var for normalisation
            unbiased = var * n / max(n - 1, 1)
            m = self.momentum
            self.set_buffer("running_mean",
                            (1 - m) * self.running_mean + m * mean.astype(np.float32))
            self.set_buffer("running_var",
                            (1 - m) * self.running_var + m * unbiased.astype(np.float32))
            self.set_buffer("num_batches_tracked", self.num_batches_tracked + 1)
        else:
            mean = self.running_mean
            var = self.running_var
            np.subtract(x.data, mean.reshape(shape), out=xhat)

        inv_std = 1.0 / np.sqrt(var.reshape(shape) + self.eps)
        np.multiply(xhat, inv_std, out=xhat)

        if self.affine:
            w = self.weight
            b = self.bias
            # out = xhat * w + b with the same op order as the allocating
            # form; out_data is fresh (it becomes the node payload).
            out_data = np.multiply(xhat, w.data.reshape(shape))
            np.add(out_data, b.data.reshape(shape), out=out_data)
        else:
            w = b = None
            out_data = xhat.copy()

        out_data = out_data.astype(x.dtype, copy=False)
        grad_needed = is_grad_enabled() and (
            a.requires_grad or (w is not None and w.requires_grad)
            or (b is not None and b.requires_grad))
        if not grad_needed:
            return Tensor(out_data, dtype=out_data.dtype)

        training = self.training
        nred = x.data.size / self.num_features

        def backward(g):
            if b is not None and b.requires_grad:
                b._accumulate(g.sum(axis=axes), donate="fresh")
            scratch = ws.buffer("batchnorm.scratch", g.shape, g.dtype)
            if w is not None and w.requires_grad:
                np.multiply(g, xhat, out=scratch)           # g * xhat
                w._accumulate(scratch.sum(axis=axes), donate="fresh")
            if a.requires_grad:
                gx = ws.buffer("batchnorm.gx", g.shape, g.dtype)
                if w is not None:
                    np.multiply(g, w.data.reshape(shape), out=gx)
                else:
                    np.multiply(g, 1.0, out=gx)
                if training:
                    # full batch-norm backward (mean/var depend on x);
                    # op-for-op the allocating form
                    # (gx - gsum/n - xhat*gxhat_sum/n) * inv_std.
                    gsum = gx.sum(axis=axes, keepdims=True)
                    np.multiply(gx, xhat, out=scratch)
                    gxhat_sum = scratch.sum(axis=axes, keepdims=True)
                    np.subtract(gx, gsum / nred, out=gx)
                    np.multiply(xhat, gxhat_sum, out=scratch)
                    np.divide(scratch, nred, out=scratch)
                    np.subtract(gx, scratch, out=gx)
                    np.multiply(gx, inv_std, out=gx)
                    da = gx
                else:
                    np.multiply(gx, inv_std, out=gx)
                    da = gx
                # ``da`` is arena memory, valid until this layer's next
                # forward; scratch donation lets non-leaf parents take it
                # without a copy while leaves still copy (DESIGN.md §10).
                a._accumulate(da.astype(x.dtype, copy=False),
                              donate="scratch")

        parents = (a,) if w is None else (a, w, b)
        return Tensor._make(out_data, parents, backward)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.num_features})"


class BatchNorm2d(_BatchNorm):
    """Batch norm over (N, H, W) for inputs of shape (N, C, H, W)."""

    def _axes(self, x):
        return (0, 2, 3)

    def _shape(self, x):
        return (1, self.num_features, 1, 1)


class BatchNorm1d(_BatchNorm):
    """Batch norm over N for inputs of shape (N, C)."""

    def _axes(self, x):
        return (0,)

    def _shape(self, x):
        return (1, self.num_features)


class LayerNorm(Module):
    """Layer norm over the last dimension (used by the GNN node encoder)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        xhat = (x - mu) / ((var + self.eps) ** 0.5)
        return xhat * self.weight + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm({self.dim})"
