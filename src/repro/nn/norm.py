"""Batch and layer normalisation.

BatchNorm keeps running statistics as *buffers*; in the FL layer these are
part of the communicated encoder state (as in the Non-IID benchmark's
reference implementations), so they are registered buffers included in
``state_dict``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class _BatchNorm(Module):
    """Shared machinery for 1-D/2-D batch norm; subclass fixes reduce axes."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_features, dtype=np.float32))
            self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        else:
            self.weight = None
            self.bias = None
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.zeros((), dtype=np.int64))

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def _shape(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes = self._axes(x)
        shape = self._shape(x)
        a = x
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            n = x.data.size / self.num_features
            # unbiased running var, biased batch var for normalisation
            unbiased = var * n / max(n - 1, 1)
            m = self.momentum
            self.set_buffer("running_mean",
                            (1 - m) * self.running_mean + m * mean.astype(np.float32))
            self.set_buffer("running_var",
                            (1 - m) * self.running_var + m * unbiased.astype(np.float32))
            self.set_buffer("num_batches_tracked", self.num_batches_tracked + 1)
        else:
            mean = self.running_mean
            var = self.running_var

        mu = mean.reshape(shape)
        inv_std = 1.0 / np.sqrt(var.reshape(shape) + self.eps)
        xhat = (x.data - mu) * inv_std

        if self.affine:
            w = self.weight
            b = self.bias
            out_data = xhat * w.data.reshape(shape) + b.data.reshape(shape)
        else:
            w = b = None
            out_data = xhat

        training = self.training
        nred = x.data.size / self.num_features

        def backward(g):
            if b is not None and b.requires_grad:
                b._accumulate(g.sum(axis=axes))
            if w is not None and w.requires_grad:
                w._accumulate((g * xhat).sum(axis=axes))
            if a.requires_grad:
                gx = g * (w.data.reshape(shape) if w is not None else 1.0)
                if training:
                    # full batch-norm backward (mean/var depend on x)
                    gsum = gx.sum(axis=axes, keepdims=True)
                    gxhat_sum = (gx * xhat).sum(axis=axes, keepdims=True)
                    da = (gx - gsum / nred - xhat * gxhat_sum / nred) * inv_std
                else:
                    da = gx * inv_std
                a._accumulate(da.astype(x.dtype, copy=False))

        parents = (a,) if w is None else (a, w, b)
        return Tensor._make(out_data.astype(x.dtype, copy=False), parents, backward)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.num_features})"


class BatchNorm2d(_BatchNorm):
    """Batch norm over (N, H, W) for inputs of shape (N, C, H, W)."""

    def _axes(self, x):
        return (0, 2, 3)

    def _shape(self, x):
        return (1, self.num_features, 1, 1)


class BatchNorm1d(_BatchNorm):
    """Batch norm over N for inputs of shape (N, C)."""

    def _axes(self, x):
        return (0,)

    def _shape(self, x):
        return (1, self.num_features)


class LayerNorm(Module):
    """Layer norm over the last dimension (used by the GNN node encoder)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        xhat = (x - mu) / ((var + self.eps) ** 0.5)
        return xhat * self.weight + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm({self.dim})"
