"""Weight initialisers (Kaiming / Xavier / constant), numpy-Generator seeded.

Every initialiser takes an explicit ``rng`` so that model construction is
fully deterministic given a seed — a requirement for the FL experiments,
where all clients must start from bit-identical global weights.
"""

from __future__ import annotations

import math

import numpy as np


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """(fan_in, fan_out) for linear (out,in) or conv (out,in,kh,kw) weights."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_c, in_c, kh, kw = shape
        rf = kh * kw
        return in_c * rf, out_c * rf
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape, rng: np.random.Generator, gain: float = math.sqrt(2.0),
                   dtype=np.float32) -> np.ndarray:
    """He-normal initialisation: N(0, gain^2 / fan_in)."""
    fan_in, _ = _fan(tuple(shape))
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(dtype)


def kaiming_uniform(shape, rng: np.random.Generator, gain: float = math.sqrt(2.0),
                    dtype=np.float32) -> np.ndarray:
    """He-uniform initialisation: U(-b, b) with b = gain * sqrt(3 / fan_in)."""
    fan_in, _ = _fan(tuple(shape))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0,
                  dtype=np.float32) -> np.ndarray:
    """Glorot-normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(tuple(shape))
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(dtype)


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0,
                   dtype=np.float32) -> np.ndarray:
    """Glorot-uniform: U(-b, b), b = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(tuple(shape))
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def uniform_fan_in_bias(weight_shape, rng: np.random.Generator,
                        dtype=np.float32) -> np.ndarray:
    """PyTorch's default bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    fan_in, _ = _fan(tuple(weight_shape))
    bound = 1.0 / math.sqrt(fan_in)
    size = weight_shape[0]
    return rng.uniform(-bound, bound, size=size).astype(dtype)


def zeros(shape, dtype=np.float32) -> np.ndarray:
    """All-zeros init (biases, control variates)."""
    return np.zeros(shape, dtype=dtype)


def ones(shape, dtype=np.float32) -> np.ndarray:
    """All-ones init (norm scales)."""
    return np.ones(shape, dtype=dtype)


def orthogonal(shape, rng: np.random.Generator, gain: float = 1.0,
               dtype=np.float32) -> np.ndarray:
    """Orthogonal init (used by the PPO policy heads for stable RL)."""
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    a = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).reshape(shape).astype(dtype)
