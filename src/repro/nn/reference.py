"""Verbatim pre-optimization kernels, kept as the byte-identity oracle.

The PR-4 workspace/in-place rewrites of ``conv2d``, the pooling
backwards, batch norm, ``SGD.step``, ``Tensor.__getitem__``, and
``Client.evaluate`` are required to keep *training* numerics
byte-identical (same op order, same accumulation order).  This module
preserves the original implementations, character-for-character where
the math is concerned, plus :func:`reference_kernels` — a context
manager that patches them back in so golden-state tests and
``benchmarks/bench_kernels.py`` can run the exact pre-PR code path and
compare final model states byte-for-byte against the optimized kernels.

Nothing here is exercised on the normal training path; it exists for
tests and the before/after benchmark.  See DESIGN.md §10.
"""

from __future__ import annotations

import contextlib

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.tensor.tensor import Tensor


# --------------------------------------------------------------------- #
# conv2d (original im2col / col2im formulation)                          #
# --------------------------------------------------------------------- #
def _reference_im2col(x, kh, kw, stride):
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))  # N,C,Ho*,Wo*,kh,kw
    windows = windows[:, :, ::stride, :: stride]
    n, c, ho, wo = windows.shape[:4]
    # (N, Ho, Wo, C, kh, kw) -> rows are receptive fields
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * ho * wo, c * kh * kw)
    return np.ascontiguousarray(cols), (n, ho, wo)


def _reference_col2im(dcols, x_shape, kh, kw, stride, n, ho, wo):
    _, c, hp, wp = x_shape
    dx = np.zeros(x_shape, dtype=dcols.dtype)
    d6 = dcols.reshape(n, ho, wo, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        hi = i + stride * ho
        for j in range(kw):
            wj = j + stride * wo
            dx[:, :, i:hi:stride, j:wj:stride] += d6[:, :, :, :, i, j]
    return dx


def reference_conv2d(x, weight, bias, stride=1, padding=0):
    """The pre-PR ``conv2d``: allocates every temporary each call."""
    out_c, in_c, kh, kw = weight.shape
    if x.shape[1] != in_c:
        raise ValueError(f"input channels {x.shape[1]} != weight in-channels {in_c}")
    xp = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))) \
        if padding else x.data
    cols, (n, ho, wo) = _reference_im2col(xp, kh, kw, stride)
    wmat = weight.data.reshape(out_c, -1)
    out = cols @ wmat.T                      # (N*Ho*Wo, O)
    if bias is not None:
        out += bias.data
    out_data = out.reshape(n, ho, wo, out_c).transpose(0, 3, 1, 2)
    out_data = np.ascontiguousarray(out_data)

    parents = (x, weight) if bias is None else (x, weight, bias)
    xp_shape = xp.shape

    def backward(g):
        gmat = g.transpose(0, 2, 3, 1).reshape(n * ho * wo, out_c)
        if bias is not None and bias.requires_grad:
            bias._accumulate(gmat.sum(axis=0))
        if weight.requires_grad:
            weight._accumulate((gmat.T @ cols).reshape(weight.shape))
        if x.requires_grad:
            dcols = gmat @ wmat
            dxp = _reference_col2im(dcols, xp_shape, kh, kw, stride, n, ho, wo)
            if padding:
                dxp = dxp[:, :, padding:-padding, padding:-padding]
            x._accumulate(dxp)

    return Tensor._make(out_data, parents, backward)


# --------------------------------------------------------------------- #
# pooling (original np.add.at / python-loop backwards)                   #
# --------------------------------------------------------------------- #
def reference_max_pool2d(x, kernel_size, stride=None):
    """Pre-PR max pool: ``np.add.at`` scatter backward."""
    k = kernel_size
    s = stride or k
    n, c, h, w = x.shape
    ho = (h - k) // s + 1
    wo = (w - k) // s + 1
    windows = sliding_window_view(x.data, (k, k), axis=(2, 3))[:, :, ::s, ::s]
    flat = windows.reshape(n, c, ho, wo, k * k)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out_data = np.ascontiguousarray(out_data)
    a = x

    def backward(g):
        dx = np.zeros_like(a.data)
        ki, kj = np.divmod(arg, k)
        nn_, cc, ii, jj = np.indices((n, c, ho, wo), sparse=False)
        rows = ii * s + ki
        cols = jj * s + kj
        np.add.at(dx, (nn_, cc, rows, cols), g)
        a._accumulate(dx)

    return Tensor._make(out_data, (a,), backward)


def reference_avg_pool2d(x, kernel_size, stride=None):
    """Pre-PR avg pool: python k*k loop backward."""
    k = kernel_size
    s = stride or k
    n, c, h, w = x.shape
    ho = (h - k) // s + 1
    wo = (w - k) // s + 1
    windows = sliding_window_view(x.data, (k, k), axis=(2, 3))[:, :, ::s, ::s]
    out_data = np.ascontiguousarray(windows.mean(axis=(-1, -2)))
    a = x

    def backward(g):
        dx = np.zeros_like(a.data)
        gk = g / (k * k)
        for i in range(k):
            for j in range(k):
                dx[:, :, i:i + s * ho:s, j:j + s * wo:s] += gk
        a._accumulate(dx)

    return Tensor._make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# batch norm (original allocating forward/backward)                      #
# --------------------------------------------------------------------- #
def reference_batchnorm_forward(self, x):
    """The pre-PR ``_BatchNorm.forward`` (bound as a method when patched)."""
    axes = self._axes(x)
    shape = self._shape(x)
    a = x
    if self.training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        n = x.data.size / self.num_features
        # unbiased running var, biased batch var for normalisation
        unbiased = var * n / max(n - 1, 1)
        m = self.momentum
        self.set_buffer("running_mean",
                        (1 - m) * self.running_mean + m * mean.astype(np.float32))
        self.set_buffer("running_var",
                        (1 - m) * self.running_var + m * unbiased.astype(np.float32))
        self.set_buffer("num_batches_tracked", self.num_batches_tracked + 1)
    else:
        mean = self.running_mean
        var = self.running_var

    mu = mean.reshape(shape)
    inv_std = 1.0 / np.sqrt(var.reshape(shape) + self.eps)
    xhat = (x.data - mu) * inv_std

    if self.affine:
        w = self.weight
        b = self.bias
        out_data = xhat * w.data.reshape(shape) + b.data.reshape(shape)
    else:
        w = b = None
        out_data = xhat

    training = self.training
    nred = x.data.size / self.num_features

    def backward(g):
        if b is not None and b.requires_grad:
            b._accumulate(g.sum(axis=axes))
        if w is not None and w.requires_grad:
            w._accumulate((g * xhat).sum(axis=axes))
        if a.requires_grad:
            gx = g * (w.data.reshape(shape) if w is not None else 1.0)
            if training:
                # full batch-norm backward (mean/var depend on x)
                gsum = gx.sum(axis=axes, keepdims=True)
                gxhat_sum = (gx * xhat).sum(axis=axes, keepdims=True)
                da = (gx - gsum / nred - xhat * gxhat_sum / nred) * inv_std
            else:
                da = gx * inv_std
            a._accumulate(da.astype(x.dtype, copy=False))

    parents = (a,) if w is None else (a, w, b)
    return Tensor._make(out_data.astype(x.dtype, copy=False), parents, backward)


# --------------------------------------------------------------------- #
# SGD.step (original allocating update)                                  #
# --------------------------------------------------------------------- #
def reference_sgd_step(self):
    """The pre-PR ``SGD.step`` (bound as a method when patched)."""
    scale = 1.0
    if self.max_grad_norm is not None:
        norm = self._global_grad_norm()
        if norm > self.max_grad_norm:
            scale = self.max_grad_norm / (norm + 1e-12)
    for name, p in self.params:
        if p.grad is None:
            continue
        g = p.grad
        if scale != 1.0:
            g = g * scale
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        for hook in self._hooks:
            g = hook(name, g)
        if self.momentum:
            v = self._velocity.get(name)
            if v is None:
                v = np.zeros_like(p.data)
                self._velocity[name] = v
            v *= self.momentum
            v += g
            g = v
        p.data -= self.lr * g


# --------------------------------------------------------------------- #
# Tensor.relu (original copy-on-accumulate backward, no donation)        #
# --------------------------------------------------------------------- #
def reference_relu(self):
    """Pre-PR relu: allocating mask-multiply forward/backward."""
    a = self
    mask = self.data > 0
    out_data = self.data * mask

    def backward(g):
        a._accumulate(g * mask)

    return Tensor._make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# Tensor.__getitem__ (original unconditional np.add.at backward)         #
# --------------------------------------------------------------------- #
def reference_getitem(self, idx):
    """Pre-PR ``__getitem__``: allocating zeros + index-assign backward."""
    a = self
    out_data = self.data[idx]

    def backward(g):
        full = np.zeros_like(a.data)
        np.add.at(full, idx, g)
        a._accumulate(full)

    return Tensor._make(np.asarray(out_data), (a,), backward)


# --------------------------------------------------------------------- #
# Client.evaluate (original graph-building eval, no no_grad / folding)   #
# --------------------------------------------------------------------- #
def reference_evaluate(self, model, data=None, batch_size=256):
    """Pre-PR ``Client.evaluate``: plain eval loop, no BN folding."""
    from repro.tensor import functional as F
    from repro.utils.metrics import RunningAverage
    data = data if data is not None else self.val_data
    model.eval()
    acc = RunningAverage()
    loss_avg = RunningAverage()
    for lo in range(0, len(data), batch_size):
        xb = data.x[lo:lo + batch_size]
        yb = data.y[lo:lo + batch_size]
        logits = model(Tensor(xb))
        acc.update(F.accuracy(logits, yb), len(yb))
        loss_avg.update(F.cross_entropy(logits, yb).item(), len(yb))
    model.train()
    return acc.value, loss_avg.value


@contextlib.contextmanager
def reference_kernels():
    """Patch the pre-PR kernels back in for the duration of the block.

    Swaps the layer forwards (so every model built from ``repro.nn``
    layers runs the original kernels), ``SGD.step``, the ``Tensor``
    getitem backward, and ``Client.evaluate``.  Works under the
    process-pool executor too: workers are forked after patching, so
    they inherit the patched module state.
    """
    from repro.fl.client import Client
    from repro.nn.conv import Conv2d
    from repro.nn.norm import _BatchNorm
    from repro.nn.pooling import AvgPool2d, MaxPool2d
    from repro.optim.sgd import SGD

    def conv_forward(self, x):
        return reference_conv2d(x, self.weight, self.bias, self.stride,
                                self.padding)

    def maxpool_forward(self, x):
        return reference_max_pool2d(x, self.kernel_size, self.stride)

    def avgpool_forward(self, x):
        return reference_avg_pool2d(x, self.kernel_size, self.stride)

    saved = [
        (Conv2d, "forward", Conv2d.forward),
        (MaxPool2d, "forward", MaxPool2d.forward),
        (AvgPool2d, "forward", AvgPool2d.forward),
        (_BatchNorm, "forward", _BatchNorm.forward),
        (SGD, "step", SGD.step),
        (Tensor, "__getitem__", Tensor.__getitem__),
        (Tensor, "relu", Tensor.relu),
        (Client, "evaluate", Client.evaluate),
    ]
    Conv2d.forward = conv_forward
    MaxPool2d.forward = maxpool_forward
    AvgPool2d.forward = avgpool_forward
    _BatchNorm.forward = reference_batchnorm_forward
    SGD.step = reference_sgd_step
    Tensor.__getitem__ = reference_getitem
    Tensor.relu = reference_relu
    Client.evaluate = reference_evaluate
    try:
        yield
    finally:
        for owner, attr, original in saved:
            setattr(owner, attr, original)
