"""Dropout layer with its own seeded generator (deterministic experiments)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    A per-layer ``Generator`` keeps the mask stream reproducible and
    independent of all other randomness in an experiment.
    """

    def __init__(self, p: float = 0.5, seed: int | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
