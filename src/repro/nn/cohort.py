"""Cohort-batched kernels: train B clients' models as one stacked model.

The vectorized round executor (:mod:`repro.fl.vectorized`, DESIGN.md §14)
stacks B clients' identical-shape parameters into leading-batch-dim
arrays — weights ``(B, out, in, kh, kw)``, biases ``(B, out)`` — and runs
the whole cohort's local training through single batched GEMMs instead
of B sequential per-client passes.  Client samples travel *folded* into
the batch axis: a step with per-client mini-batches of N rows feeds the
unmodified model forward an input of shape ``(B*N, C, H, W)``, and every
per-sample op (ReLU, pooling, residual adds, flatten, spatial means)
runs unchanged; only the parametric layers — :class:`~repro.nn.Conv2d`,
:class:`~repro.nn.Linear`, :class:`~repro.nn.norm._BatchNorm` — dispatch
here to consume the stacked parameters.

**Byte-identity contract.**  Every kernel mirrors the serial kernel's
arithmetic op-for-op so that slice ``b`` of each batched result is
bitwise equal to what client ``b``'s serial pass produces:

- batched 3-D ``np.matmul`` (including transposed-view operands) equals
  the per-slice 2-D GEMMs it replaces;
- cross-client reductions never happen — reductions always carry the
  client axis (``sum(axis=1)`` on ``(B, rows, C)``, ``(1, 3, 4)`` on a
   5-D batch-norm view), which NumPy reduces with the same pairwise
  summation per slice as the serial ``axis=0`` / ``(0, 2, 3)`` calls;
- elementwise chains (bias adds, SGD updates, batch-norm affine) use the
  same operand order and the same Python-float scalars.

The golden tests (``tests/test_fl_vectorized.py``) assert the resulting
global models byte-identical to serial execution, clean and under
faults.  Anything outside this kernel set (dropout with p > 0, channel
masks, unknown parametric modules) raises :class:`CohortUnsupported`,
and the executor falls back to the serial path.
"""

from __future__ import annotations

import numpy as np

from repro.nn.conv import _col2im, _im2col
from repro.tensor.tensor import Tensor, is_grad_enabled


class CohortUnsupported(Exception):
    """Model/config outside the cohort kernels' support envelope.

    Raised during install or dispatch; the vectorized executor catches it
    and falls back to serial execution, so it is a routing signal, never
    a user-facing failure.
    """


def conv2d_cohort(x: Tensor, weight: Tensor, bias: Tensor | None,
                  stride: int, padding: int, cohort: int) -> Tensor:
    """Batched convolution over ``cohort`` stacked clients.

    ``x``: folded ``(B*N, C_in, H, W)``; ``weight``: stacked
    ``(B, C_out, C_in, kh, kw)``; ``bias``: stacked ``(B, C_out)`` or
    None.  im2col runs once on the folded input (patch extraction is
    per-sample, so client b's rows are exactly its serial patch matrix),
    then one batched GEMM per direction replaces B serial GEMMs.
    """
    b_, oc, ic, kh, kw = weight.shape
    rows = x.shape[0]
    if b_ != cohort or rows % cohort:
        raise CohortUnsupported(
            f"conv2d: weight stack {b_} / folded rows {rows} do not match "
            f"cohort size {cohort}")
    if padding:
        xp = np.pad(x.data, ((0, 0), (0, 0), (padding, padding),
                             (padding, padding)))
    else:
        xp = x.data
    cols, (n, ho, wo) = _im2col(xp, kh, kw, stride)     # (B*N*ho*wo, ic*kh*kw)
    per = (rows // cohort) * ho * wo                     # rows per client
    cols3 = cols.reshape(cohort, per, ic * kh * kw)
    wmat3 = weight.data.reshape(cohort, oc, ic * kh * kw)
    out3 = np.matmul(cols3, wmat3.transpose(0, 2, 1))    # (B, per, oc)
    if bias is not None:
        out3 += bias.data.reshape(cohort, 1, oc)
    out_data = np.ascontiguousarray(
        out3.reshape(rows, ho, wo, oc).transpose(0, 3, 1, 2))

    if not (is_grad_enabled() and (x.requires_grad or weight.requires_grad or
                                   (bias is not None and bias.requires_grad))):
        return Tensor(out_data, dtype=out_data.dtype)

    parents = (x, weight) if bias is None else (x, weight, bias)
    xp_shape = xp.shape

    def backward(g):
        # Serial reshapes the transposed grad into (rows, oc) — a copy
        # whenever spatial extent > 1; the folded copy has identical
        # per-element values and per-client slices stay C-contiguous.
        gmat = g.transpose(0, 2, 3, 1).reshape(rows * ho * wo, oc)
        gmat3 = gmat.reshape(cohort, per, oc)
        if bias is not None and bias.requires_grad:
            bias._accumulate(gmat3.sum(axis=1), donate="fresh")
        if weight.requires_grad:
            weight._accumulate(
                np.matmul(gmat3.transpose(0, 2, 1), cols3)
                .reshape(weight.shape), donate="fresh")
        if x.requires_grad:
            dcols3 = np.matmul(gmat3, wmat3)             # (B, per, ic*kh*kw)
            dcols = dcols3.reshape(rows * ho * wo, ic * kh * kw)
            dxp = _col2im(dcols, xp_shape, kh, kw, stride, rows, ho, wo)
            if padding:
                dxp = dxp[:, :, padding:-padding, padding:-padding]
            x._accumulate(dxp, donate="fresh")

    return Tensor._make(out_data, parents, backward)


def linear_cohort(x: Tensor, weight: Tensor, bias: Tensor | None,
                  cohort: int) -> Tensor:
    """Batched affine map over ``cohort`` stacked clients.

    ``x``: folded ``(B*N, in)``; ``weight``: stacked ``(B, out, in)``;
    ``bias``: stacked ``(B, out)`` or None.  One node replaces the serial
    three-node chain (transpose → matmul → broadcast add); the backward
    reproduces each serial node's gradient arithmetic, including the
    transposed-view GEMM operands (``x.T @ g`` per slice).
    """
    b_, fout, fin = weight.shape
    rows = x.shape[0]
    if b_ != cohort or rows % cohort:
        raise CohortUnsupported(
            f"linear: weight stack {b_} / folded rows {rows} do not match "
            f"cohort size {cohort}")
    n = rows // cohort
    x3 = x.data.reshape(cohort, n, fin)
    out3 = np.matmul(x3, weight.data.transpose(0, 2, 1))  # (B, n, out)
    if bias is not None:
        out3 = out3 + bias.data.reshape(cohort, 1, fout)
    out_data = out3.reshape(rows, fout)

    if not (is_grad_enabled() and (x.requires_grad or weight.requires_grad or
                                   (bias is not None and bias.requires_grad))):
        return Tensor(out_data, dtype=out_data.dtype)

    parents = (x, weight) if bias is None else (x, weight, bias)
    wd = weight.data

    def backward(g):
        g3 = g.reshape(cohort, n, fout)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g3.sum(axis=1), donate="fresh")
        if weight.requires_grad:
            # Serial: the matmul node hands (x.T @ g) to the transpose
            # node, which transposes it back for the leaf; keep both
            # steps so the GEMM sees the same transposed-view operands.
            gw = np.matmul(x3.transpose(0, 2, 1), g3)     # (B, in, out)
            weight._accumulate(gw.transpose(0, 2, 1))
        if x.requires_grad:
            gx3 = np.matmul(g3, wd)                       # (B, n, in)
            x._accumulate(gx3.reshape(rows, fin), donate="fresh")

    return Tensor._make(out_data, parents, backward)


def batchnorm_cohort(bn, x: Tensor, cohort: int) -> Tensor:
    """Batched training-mode batch norm over ``cohort`` stacked clients.

    Views the folded input per-client — ``(B, N, C, H, W)`` for 2-D norm
    — and mirrors :meth:`repro.nn.norm._BatchNorm.forward` with every
    reduction carrying the leading client axis: serial ``(0, 2, 3)``
    becomes ``(1, 3, 4)``, so slice b reduces exactly client b's rows.
    Running stats, ``num_batches_tracked``, and the affine parameters
    are stacked ``(B, ...)`` buffers updated elementwise.
    """
    if not bn.training:
        raise CohortUnsupported("cohort batch norm is training-only; "
                                "evaluation runs on per-client models")
    rows = x.shape[0]
    if rows % cohort:
        raise CohortUnsupported(
            f"batchnorm: folded rows {rows} not divisible by cohort "
            f"{cohort}")
    axes = tuple(a + 1 for a in bn._axes(x))         # (0,2,3) -> (1,3,4)
    shape = (cohort,) + bn._shape(x)                 # (B, 1, C, 1, 1)
    x5 = x.data.reshape((cohort, rows // cohort) + x.data.shape[1:])
    per_size = x.data.size // cohort                 # one client's x.size
    xhat = np.empty_like(x5)
    mu = x5.mean(axis=axes, keepdims=True)
    np.subtract(x5, mu, out=xhat)
    sq = np.multiply(xhat, xhat)
    var = sq.sum(axis=axes) / (per_size // bn.num_features)   # (B, C)
    mean = mu.reshape(cohort, bn.num_features)
    nred = per_size / bn.num_features
    unbiased = var * nred / max(nred - 1, 1)
    m = bn.momentum
    bn.set_buffer("running_mean",
                  (1 - m) * bn.running_mean + m * mean.astype(np.float32))
    bn.set_buffer("running_var",
                  (1 - m) * bn.running_var + m * unbiased.astype(np.float32))
    bn.set_buffer("num_batches_tracked", bn.num_batches_tracked + 1)

    inv_std = 1.0 / np.sqrt(var.reshape(shape) + bn.eps)
    np.multiply(xhat, inv_std, out=xhat)

    a, w, b = x, bn.weight, bn.bias
    if bn.affine:
        out5 = np.multiply(xhat, w.data.reshape(shape))
        np.add(out5, b.data.reshape(shape), out=out5)
    else:
        out5 = xhat.copy()
    out_data = out5.reshape(x.data.shape).astype(x.dtype, copy=False)

    grad_needed = is_grad_enabled() and (
        a.requires_grad or (w is not None and w.requires_grad)
        or (b is not None and b.requires_grad))
    if not grad_needed:
        return Tensor(out_data, dtype=out_data.dtype)

    def backward(g):
        g5 = g.reshape(x5.shape)
        if b is not None and b.requires_grad:
            b._accumulate(g5.sum(axis=axes), donate="fresh")
        if w is not None and w.requires_grad:
            w._accumulate(np.multiply(g5, xhat).sum(axis=axes),
                          donate="fresh")
        if a.requires_grad:
            if w is not None:
                gx = np.multiply(g5, w.data.reshape(shape))
            else:
                gx = np.multiply(g5, 1.0)
            gsum = gx.sum(axis=axes, keepdims=True)
            scratch = np.multiply(gx, xhat)
            gxhat_sum = scratch.sum(axis=axes, keepdims=True)
            np.subtract(gx, gsum / nred, out=gx)
            np.multiply(xhat, gxhat_sum, out=scratch)
            np.divide(scratch, nred, out=scratch)
            np.subtract(gx, scratch, out=gx)
            np.multiply(gx, inv_std, out=gx)
            a._accumulate(gx.reshape(g.shape).astype(x.dtype, copy=False),
                          donate="fresh")

    parents = (a,) if w is None else (a, w, b)
    return Tensor._make(out_data, parents, backward)


def cross_entropy_cohort(logits: Tensor, labels: np.ndarray,
                         cohort: int) -> Tensor:
    """Per-client mean cross-entropy over folded logits → ``(B,)`` losses.

    The row-wise log-softmax (max-shift, exp, row sum, log) is identical
    on folded rows; only the final mean and the backward's ``1/N`` grad
    scale are per-client, and all clients in a folded step share N, so
    the scale collapses to the same Python-float scalar serial uses.
    """
    labels = np.asarray(labels, dtype=np.int64)
    rows = logits.shape[0]
    if rows % cohort:
        raise CohortUnsupported(
            f"cross_entropy: folded rows {rows} not divisible by cohort "
            f"{cohort}")
    n = rows // cohort
    a = logits
    m = logits.data.max(axis=1, keepdims=True)
    shifted = logits.data - m
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - lse
    idx = np.arange(rows)
    picked = logp[idx, labels]
    loss = np.empty(cohort, dtype=logits.dtype)
    for c in range(cohort):
        loss[c] = -(picked[c * n:(c + 1) * n].mean())
    soft = np.exp(logp)

    def backward(g):
        grad = soft.copy()
        grad[idx, labels] -= 1.0
        for c in range(cohort):
            grad[c * n:(c + 1) * n] *= float(g[c]) / n
        a._accumulate(grad, donate="fresh")

    return Tensor._make(loss, (a,), backward)


def sgd_step_cohort(named_params, lr: float, momentum: float,
                    weight_decay: float,
                    velocity: dict[str, np.ndarray]) -> None:
    """One batched SGD step over stacked parameters.

    Mirrors :meth:`repro.optim.SGD.step` gate-for-gate and op-for-op on
    the ``(B, ...)`` stacks — weight decay, momentum, and the learning-
    rate product are elementwise with the same scalars, so slice b of
    every stack steps exactly as client b's serial optimizer would.
    ``velocity`` maps parameter name → stacked buffer (zeros at round
    start, like the serial optimizer's lazily-created state).
    """
    for name, p in named_params:
        if p.grad is None:
            continue
        g = p.grad
        if weight_decay:
            g = np.add(g, np.multiply(p.data, weight_decay))
        if momentum:
            v = velocity[name]
            v *= momentum
            v += g
            g = v
        np.subtract(p.data, np.multiply(g, lr), out=p.data)
