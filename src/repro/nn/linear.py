"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W^T + b`` with weight shape ``(out, in)``.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Seeded generator for the Kaiming-uniform init; a fresh default
        generator is used when omitted (tests always pass one).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng,
                                                     gain=1.0))
        if bias:
            self.bias = Parameter(init.uniform_fan_in_bias((out_features, in_features), rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        cohort = getattr(self, "_cohort_n", 0)
        if cohort:
            from repro.nn.cohort import linear_cohort
            return linear_cohort(x, self.weight, self.bias, cohort)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"Linear(in={self.in_features}, out={self.out_features}, "
                f"bias={self.bias is not None})")
