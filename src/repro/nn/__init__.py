"""Neural-network layer library on the :mod:`repro.tensor` autograd engine.

Provides the PyTorch-flavoured building blocks used by the model zoo:
``Module``/``Parameter`` with named parameter traversal and state dicts,
``Linear``, ``Conv2d`` (im2col), ``BatchNorm2d``, pooling, activations,
``Dropout``, ``Sequential``, weight initialisers, and an analytic FLOPs
counter used for the paper's inference-acceleration results (Table on
FLOPs, §V-D).
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.norm import BatchNorm2d, BatchNorm1d, LayerNorm
from repro.nn.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.activation import ReLU, Tanh, Sigmoid, LeakyReLU
from repro.nn.dropout import Dropout
from repro.nn import init
from repro.nn.flops import count_flops, count_params

__all__ = [
    "Module", "Parameter", "Sequential", "ModuleList",
    "Linear", "Conv2d",
    "BatchNorm2d", "BatchNorm1d", "LayerNorm",
    "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d",
    "ReLU", "Tanh", "Sigmoid", "LeakyReLU", "Dropout",
    "init", "count_flops", "count_params",
]
