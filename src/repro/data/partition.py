"""Federated data partitioners.

``dirichlet_partition`` implements the Non-IID benchmark's label-skew
scheme used by the paper for CIFAR-10 (§V-A): for each class ``k`` a
proportion vector ``p_k ~ Dir(beta)`` over clients decides how that class's
samples are spread; ``beta = 0.5`` in the paper.  ``by_writer_partition``
implements LEAF's natural per-writer split for FEMNIST.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import spawn_rng


def iid_partition(labels: np.ndarray, n_clients: int, seed: int = 0) -> list[np.ndarray]:
    """Uniform random split into ``n_clients`` near-equal shards."""
    labels = np.asarray(labels)
    rng = spawn_rng(seed, "partition", "iid")
    order = rng.permutation(len(labels))
    return [np.sort(part) for part in np.array_split(order, n_clients)]


def dirichlet_partition(labels: np.ndarray, n_clients: int, beta: float = 0.5,
                        seed: int = 0, min_size: int = 2,
                        max_retries: int = 100) -> list[np.ndarray]:
    """Label-skew Dirichlet partition (Non-IID benchmark, Li et al. 2022).

    For every class, proportions over clients are drawn from ``Dir(beta)``
    and the class's sample indices are allocated accordingly.  Retries with
    a fresh draw until every client holds at least ``min_size`` samples
    (the benchmark's standard guard against empty clients).
    """
    labels = np.asarray(labels)
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    if beta <= 0:
        raise ValueError("beta must be positive")
    num_classes = int(labels.max()) + 1
    rng = spawn_rng(seed, "partition", "dirichlet")
    for _ in range(max_retries):
        client_indices: list[list[int]] = [[] for _ in range(n_clients)]
        for k in range(num_classes):
            idx_k = np.flatnonzero(labels == k)
            rng.shuffle(idx_k)
            p = rng.dirichlet(np.full(n_clients, beta))
            # cumulative split points over this class's samples
            cuts = (np.cumsum(p) * len(idx_k)).astype(int)[:-1]
            for cid, part in enumerate(np.split(idx_k, cuts)):
                client_indices[cid].extend(part.tolist())
        sizes = [len(ci) for ci in client_indices]
        if min(sizes) >= min_size:
            return [np.sort(np.asarray(ci, dtype=np.int64)) for ci in client_indices]
    raise RuntimeError(
        f"dirichlet_partition could not satisfy min_size={min_size} after "
        f"{max_retries} retries (n={len(labels)}, clients={n_clients}, beta={beta})")


def shard_partition(labels: np.ndarray, n_clients: int, shards_per_client: int = 2,
                    seed: int = 0) -> list[np.ndarray]:
    """McMahan-style pathological split: sort by label, deal out shards."""
    labels = np.asarray(labels)
    rng = spawn_rng(seed, "partition", "shard")
    order = np.argsort(labels, kind="stable")
    n_shards = n_clients * shards_per_client
    shards = np.array_split(order, n_shards)
    assignment = rng.permutation(n_shards)
    out = []
    for cid in range(n_clients):
        mine = assignment[cid * shards_per_client:(cid + 1) * shards_per_client]
        out.append(np.sort(np.concatenate([shards[s] for s in mine])))
    return out


def by_writer_partition(writer_ids: np.ndarray, n_clients: int,
                        seed: int = 0) -> list[np.ndarray]:
    """LEAF-style natural partition: each client receives whole writers."""
    writer_ids = np.asarray(writer_ids)
    writers = np.unique(writer_ids)
    if len(writers) < n_clients:
        raise ValueError(f"{len(writers)} writers cannot fill {n_clients} clients")
    rng = spawn_rng(seed, "partition", "writer")
    shuffled = rng.permutation(writers)
    groups = np.array_split(shuffled, n_clients)
    return [np.sort(np.flatnonzero(np.isin(writer_ids, g))) for g in groups]


def quantity_label_skew(labels: np.ndarray, n_clients: int, k: int = 2,
                        seed: int = 0) -> list[np.ndarray]:
    """Quantity-based label skew: each client holds exactly ``k`` classes.

    The Non-IID benchmark's ``#label k`` setting (Li et al. 2022): classes
    are assigned to clients round-robin over a shuffled class list until
    every client has ``k``; each class's samples are split evenly among
    the clients that hold it.
    """
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1
    if k < 1 or k > num_classes:
        raise ValueError(f"k must be in [1, {num_classes}]")
    rng = spawn_rng(seed, "partition", "quantity_label")
    holders: dict[int, list[int]] = {c: [] for c in range(num_classes)}
    for cid in range(n_clients):
        classes = rng.choice(num_classes, size=k, replace=False)
        for c in classes:
            holders[int(c)].append(cid)
    # guarantee every class has at least one holder so no data is dropped
    for c, hs in holders.items():
        if not hs:
            hs.append(int(rng.integers(0, n_clients)))
    client_indices: list[list[int]] = [[] for _ in range(n_clients)]
    for c, hs in holders.items():
        idx_c = np.flatnonzero(labels == c)
        rng.shuffle(idx_c)
        for cid, part in zip(hs, np.array_split(idx_c, len(hs))):
            client_indices[cid].extend(part.tolist())
    # clients that drew only empty classes get one sample to stay valid
    for cid, ci in enumerate(client_indices):
        if not ci:
            donor = max(range(n_clients), key=lambda i: len(client_indices[i]))
            ci.append(client_indices[donor].pop())
    return [np.sort(np.asarray(ci, dtype=np.int64)) for ci in client_indices]


def quantity_skew(labels: np.ndarray, n_clients: int, beta: float = 0.5,
                  seed: int = 0, min_size: int = 2) -> list[np.ndarray]:
    """Quantity skew: IID label mix but Dirichlet-skewed shard *sizes*.

    The Non-IID benchmark's ``q ~ Dir(beta)`` setting: client i receives a
    ``q_i`` fraction of a uniformly shuffled dataset.
    """
    labels = np.asarray(labels)
    rng = spawn_rng(seed, "partition", "quantity")
    order = rng.permutation(len(labels))
    for _ in range(100):
        q = rng.dirichlet(np.full(n_clients, beta))
        cuts = (np.cumsum(q) * len(labels)).astype(int)[:-1]
        parts = np.split(order, cuts)
        if min(len(p) for p in parts) >= min_size:
            return [np.sort(p) for p in parts]
    raise RuntimeError("quantity_skew could not satisfy min_size")


def feature_noise_levels(n_clients: int, max_noise: float = 0.5) -> np.ndarray:
    """Per-client Gaussian noise scales for feature-distribution skew.

    The Non-IID benchmark's feature-skew setting adds ``N(0, sigma * i/N)``
    noise to client i's inputs; this returns those sigmas.  Apply with
    :func:`apply_feature_noise`.
    """
    if n_clients < 1:
        raise ValueError("n_clients must be positive")
    return max_noise * np.arange(1, n_clients + 1) / n_clients


def apply_feature_noise(x: np.ndarray, sigma: float,
                        rng: np.random.Generator) -> np.ndarray:
    """Additive Gaussian feature noise for one client's shard."""
    if sigma <= 0:
        return x
    return (x + rng.normal(0.0, sigma, size=x.shape)).astype(x.dtype)


def partition_summary(labels: np.ndarray, parts: list[np.ndarray],
                      num_classes: int | None = None) -> dict:
    """Describe a partition: sizes and per-client label histograms.

    Also reports average pairwise total-variation distance between client
    label distributions — the heterogeneity measure used in the tests to
    verify that smaller ``beta`` means more skew.
    """
    labels = np.asarray(labels)
    k = num_classes or int(labels.max()) + 1
    hists = np.stack([np.bincount(labels[p], minlength=k) for p in parts])
    dists = hists / np.maximum(hists.sum(axis=1, keepdims=True), 1)
    n = len(parts)
    tv_total, pairs = 0.0, 0
    for i in range(n):
        for j in range(i + 1, n):
            tv_total += 0.5 * np.abs(dists[i] - dists[j]).sum()
            pairs += 1
    return {
        "sizes": hists.sum(axis=1).tolist(),
        "label_hist": hists.tolist(),
        "mean_tv_distance": tv_total / max(pairs, 1),
    }
