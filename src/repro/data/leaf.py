"""LEAF benchmark format I/O (Caldas et al., the paper's FEMNIST setting).

LEAF distributes federated datasets as JSON files of the form::

    {"users": [...], "num_samples": [...],
     "user_data": {user: {"x": [...], "y": [...]}}}

This module writes our synthetic FEMNIST in that exact layout and reads
any LEAF-formatted file back into per-user :class:`ArrayDataset` shards —
so a downstream user can drop in *real* LEAF FEMNIST JSON and run every
experiment unchanged.  Per LEAF's protocol, each user's data is split into
train/test at a fixed fraction and reported statistics are sample-weighted.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.datasets import ArrayDataset, SyntheticFEMNIST
from repro.utils.rng import spawn_rng


def export_leaf_json(dataset: SyntheticFEMNIST, path: str | Path) -> None:
    """Write a writer-keyed dataset in LEAF's JSON layout.

    Images are flattened row-major (LEAF stores flat pixel lists); the
    reader restores shape from the recorded metadata entry.
    """
    path = Path(path)
    users = [f"writer_{w:04d}" for w in range(dataset.n_writers)]
    user_data = {}
    num_samples = []
    for w, user in enumerate(users):
        idx = np.flatnonzero(dataset.writer_ids == w)
        user_data[user] = {
            "x": dataset.x[idx].reshape(len(idx), -1).tolist(),
            "y": dataset.y[idx].tolist(),
        }
        num_samples.append(int(len(idx)))
    payload = {
        "users": users,
        "num_samples": num_samples,
        "user_data": user_data,
        "metadata": {"shape": list(dataset.x.shape[1:])},
    }
    path.write_text(json.dumps(payload))


def load_leaf_json(path: str | Path,
                   shape: tuple[int, ...] | None = None
                   ) -> dict[str, ArrayDataset]:
    """Read a LEAF JSON file into ``{user: ArrayDataset}``.

    ``shape`` overrides the per-sample shape when the file lacks our
    metadata entry (real LEAF files store flat vectors; FEMNIST is
    ``(1, 28, 28)``).
    """
    payload = json.loads(Path(path).read_text())
    if shape is None:
        meta = payload.get("metadata", {})
        if "shape" not in meta:
            raise ValueError("no shape metadata; pass shape= explicitly")
        shape = tuple(meta["shape"])
    out = {}
    for user in payload["users"]:
        data = payload["user_data"][user]
        x = np.asarray(data["x"], dtype=np.float32).reshape((-1,) + shape)
        y = np.asarray(data["y"], dtype=np.int64)
        out[user] = ArrayDataset(x, y)
    return out


def leaf_train_test_split(shards: dict[str, ArrayDataset],
                          test_fraction: float = 0.1, seed: int = 0
                          ) -> tuple[dict[str, ArrayDataset],
                                     dict[str, ArrayDataset]]:
    """LEAF's per-user split: every user contributes to train *and* test."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    train, test = {}, {}
    for user, shard in shards.items():
        rng = spawn_rng(seed, "leaf_split", user)
        order = rng.permutation(len(shard))
        n_test = max(1, int(round(test_fraction * len(shard))))
        test[user] = shard.subset(order[:n_test])
        train[user] = shard.subset(order[n_test:])
    return train, test


def leaf_statistics(shards: dict[str, ArrayDataset]) -> dict:
    """LEAF's dataset statistics: user count, sample counts, skew measures."""
    counts = np.asarray([len(s) for s in shards.values()])
    return {
        "num_users": len(shards),
        "total_samples": int(counts.sum()),
        "mean_samples_per_user": float(counts.mean()),
        "std_samples_per_user": float(counts.std()),
        "min_samples": int(counts.min()),
        "max_samples": int(counts.max()),
    }
