"""Datasets and federated partitioning.

Real CIFAR-10 / FEMNIST are unavailable offline, so this package provides
seeded *synthetic equivalents* with the same shapes, label spaces and —
crucially for FL — the same non-IID structure knobs (Dirichlet label skew
for CIFAR-10 per the Non-IID benchmark; natural per-writer skew for FEMNIST
per LEAF).  See DESIGN.md §2 for the substitution rationale.
"""

from repro.data.datasets import (ArrayDataset, SyntheticCIFAR10,
                                 SyntheticFEMNIST, train_val_split)
from repro.data.partition import (dirichlet_partition, iid_partition,
                                  shard_partition, by_writer_partition,
                                  partition_summary, quantity_label_skew,
                                  quantity_skew, feature_noise_levels,
                                  apply_feature_noise)
from repro.data.dataloader import DataLoader

__all__ = [
    "ArrayDataset", "SyntheticCIFAR10", "SyntheticFEMNIST", "train_val_split",
    "dirichlet_partition", "iid_partition", "shard_partition",
    "by_writer_partition", "partition_summary", "quantity_label_skew",
    "quantity_skew", "feature_noise_levels", "apply_feature_noise",
    "DataLoader",
]
